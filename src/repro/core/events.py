"""Failure-event taxonomy.

The paper studies three headline cellular data-connection failures, plus a
long tail of legacy telephony failures (SMS / voice).  This module defines
the event vocabulary shared by the Android substrate, the Android-MOD
monitoring layer, the dataset schema, and the analysis pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FailureType(enum.Enum):
    """The failure classes distinguished by the study (Sec. 1)."""

    #: Signal present, but a data connection cannot be established.
    DATA_SETUP_ERROR = "DATA_SETUP_ERROR"
    #: Connection established, but no cellular data service.
    OUT_OF_SERVICE = "OUT_OF_SERVICE"
    #: Data flows, then abnormally stalls (>10 outbound TCP segments and
    #: no inbound segment within one minute).
    DATA_STALL = "DATA_STALL"
    #: Legacy short-message failures (e.g. RIL_SMS_SEND_FAIL_RETRY).
    SMS_FAILURE = "SMS_FAILURE"
    #: Legacy circuit-switched voice-call failures.
    VOICE_FAILURE = "VOICE_FAILURE"

    @property
    def is_headline(self) -> bool:
        """True for the three data-connection failure classes that make up
        more than 99% of recorded failures (Sec. 3.1)."""
        return self in _HEADLINE_TYPES


_HEADLINE_TYPES = frozenset(
    {
        FailureType.DATA_SETUP_ERROR,
        FailureType.OUT_OF_SERVICE,
        FailureType.DATA_STALL,
    }
)

#: Headline types in the order the paper usually lists them.
HEADLINE_FAILURE_TYPES: tuple[FailureType, ...] = (
    FailureType.DATA_SETUP_ERROR,
    FailureType.OUT_OF_SERVICE,
    FailureType.DATA_STALL,
)


class FalsePositiveReason(enum.Enum):
    """Why a *suspicious* event is not a true cellular failure (Sec. 2.2).

    Android-MOD's instrumentation filters these before a record reaches
    the dataset; the taxonomy is kept so filtering is testable.
    """

    #: Data connection interrupted by an incoming voice call.
    INCOMING_VOICE_CALL = "INCOMING_VOICE_CALL"
    #: Service suspended because of insufficient account balance.
    INSUFFICIENT_BALANCE = "INSUFFICIENT_BALANCE"
    #: The user disconnected cellular data manually.
    MANUAL_DISCONNECT = "MANUAL_DISCONNECT"
    #: Setup rejected rationally by an overloaded base station.
    BS_OVERLOAD_REJECTION = "BS_OVERLOAD_REJECTION"
    #: Prober verdict: the problem is on the system side
    #: (firewall / proxy / modem-driver misconfiguration).
    SYSTEM_SIDE = "SYSTEM_SIDE"
    #: Prober verdict: only the DNS resolution service is unavailable.
    DNS_SERVICE_UNAVAILABLE = "DNS_SERVICE_UNAVAILABLE"


class ProbeVerdict(enum.Enum):
    """Outcome of one round of Android-MOD network-state probing."""

    #: Connectivity restored; the stall is over.
    RECOVERED = "RECOVERED"
    #: Loopback ICMP timed out: a system-side false positive.
    SYSTEM_SIDE_FAULT = "SYSTEM_SIDE_FAULT"
    #: DNS queries timed out but ICMP to the DNS servers succeeded:
    #: DNS-resolution false positive.
    DNS_SERVICE_FAULT = "DNS_SERVICE_FAULT"
    #: DNS queries and ICMP to the DNS servers both timed out:
    #: a genuine network-side stall, still ongoing.
    NETWORK_SIDE_STALL = "NETWORK_SIDE_STALL"


@dataclass
class FailureEvent:
    """An in-flight failure observation inside the device.

    This is the *mutable* object the Android substrate and the monitoring
    layer cooperate on; the immutable record persisted to the dataset is
    :class:`repro.dataset.records.FailureRecord`.
    """

    failure_type: FailureType
    start_time: float
    device_id: int = -1
    #: Android DataFailCause name for Data_Setup_Error events, else None.
    error_code: str | None = None
    #: Duration in seconds; filled in when the failure ends.
    duration: float | None = None
    #: Set when the event is classified as a false positive.
    false_positive: FalsePositiveReason | None = None
    #: Radio/BS context captured in-situ (Sec. 2.2), keyed by field name.
    context: dict[str, object] = field(default_factory=dict)
    #: Index of the recovery stage (1-3) that fixed a Data_Stall, 0 if the
    #: stall resolved on its own, None when not applicable / unresolved.
    recovered_by_stage: int | None = None

    @property
    def is_true_failure(self) -> bool:
        """A failure that survives Android-MOD's false-positive filters."""
        return self.false_positive is None

    def close(self, end_time: float) -> None:
        """Mark the failure as ended at ``end_time``."""
        if end_time < self.start_time:
            raise ValueError("failure cannot end before it starts")
        self.duration = end_time - self.start_time

    @property
    def ended(self) -> bool:
        return self.duration is not None
