"""Core concepts of the reproduction: failure taxonomy, error codes,
signal model, user model, and the top-level study orchestrators."""

from repro.core.events import (
    FailureEvent,
    FailureType,
    FalsePositiveReason,
    ProbeVerdict,
)
from repro.core.errorcodes import (
    DataFailCause,
    ERROR_CODE_REGISTRY,
    ProtocolLayer,
)
from repro.core.signal import SignalLevel, dbm_to_level, level_bounds

__all__ = [
    "FailureEvent",
    "FailureType",
    "FalsePositiveReason",
    "ProbeVerdict",
    "DataFailCause",
    "ERROR_CODE_REGISTRY",
    "ProtocolLayer",
    "SignalLevel",
    "dbm_to_level",
    "level_bounds",
]
