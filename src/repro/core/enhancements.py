"""Deriving the deployed enhancements from measured data (Sec. 4.2).

The paper's two fixes are both *data-driven*: the Stability-Compatible
RAT policy consumes the measured transition-risk matrices (Fig. 17),
and the TIMP recovery trigger consumes the measured stall-duration
distribution (Fig. 10).  This module closes that loop — given a
measurement dataset it fits both artifacts, exactly as the deployment
pipeline would.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.analysis.transitions import measured_level_risk
from repro.android.rat_policy import (
    DEFAULT_LEVEL_RISK,
    StabilityCompatiblePolicy,
    TransitionRiskTable,
)
from repro.android.recovery import RecoveryPolicy, TIMP_RECOVERY_POLICY
from repro.dataset.store import Dataset
from repro.radio.rat import RAT
from repro.timp.annealing import AnnealingResult, optimize_probations
from repro.timp.model import RecoveryCdf, TimpModel


@dataclass(frozen=True)
class FittedEnhancements:
    """The two deployable artifacts plus their fitting evidence."""

    rat_policy: StabilityCompatiblePolicy
    recovery_policy: RecoveryPolicy
    risk_table: TransitionRiskTable
    annealing: AnnealingResult


def fit_risk_table(dataset: Dataset) -> TransitionRiskTable:
    """Fit the transition-risk table from measured transition records.

    Cells without enough field data fall back to the default shape
    (a deployment would keep the previous table for those cells).
    """
    measured = measured_level_risk(dataset)
    level_risk: dict[RAT, tuple[float, ...]] = {}
    for rat in (RAT.GSM, RAT.UMTS, RAT.LTE, RAT.NR):
        fallback = DEFAULT_LEVEL_RISK[rat]
        observed = measured.get(rat.label, fallback)
        level_risk[rat] = tuple(
            fallback[level] if math.isnan(observed[level])
            else observed[level]
            for level in range(6)
        )
    return TransitionRiskTable(level_risk)


def fit_recovery_trigger(
    dataset: Dataset,
    rng: random.Random | None = None,
    steps: int = 3_000,
) -> tuple[RecoveryPolicy, AnnealingResult]:
    """Fit the TIMP and anneal for the optimal probations (Sec. 4.2)."""
    cdf = RecoveryCdf.from_dataset(dataset)
    model = TimpModel(recovery_cdf=cdf)
    result = optimize_probations(model, rng=rng, steps=steps)
    policy = TIMP_RECOVERY_POLICY.with_probations(
        result.best_probations_s
    )
    return policy, result


def fit_enhancements(
    dataset: Dataset,
    rng: random.Random | None = None,
) -> FittedEnhancements:
    """Fit both enhancements from one measurement dataset."""
    risk_table = fit_risk_table(dataset)
    recovery_policy, annealing = fit_recovery_trigger(dataset, rng=rng)
    return FittedEnhancements(
        rat_policy=StabilityCompatiblePolicy(risk_table=risk_table),
        recovery_policy=recovery_policy,
        risk_table=risk_table,
        annealing=annealing,
    )
