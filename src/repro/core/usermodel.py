"""User-behaviour constants and models referenced by the paper.

The paper quotes two behavioural facts obtained from a sampling user
survey: victims of a Data_Stall manually reset the data connection after
roughly 30 seconds, and a normal user's tolerance of stall duration is
about the same 30 seconds (Sec. 3.2 / 4.2).  The enhancements are judged
against this tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import quantities


@dataclass(frozen=True)
class UserToleranceModel:
    """How long a user endures a stalled connection before acting."""

    #: Mean seconds before a manual data-connection reset.
    manual_reset_mean_s: float = quantities.USER_MANUAL_RESET_S
    #: Dispersion of the reset time (exponential spread around the mean
    #: is a reasonable stand-in for the survey's "~30 seconds").
    manual_reset_jitter_s: float = 10.0

    def tolerates(self, stall_duration_s: float) -> bool:
        """Whether a stall of the given length stays within tolerance."""
        return stall_duration_s <= self.manual_reset_mean_s

    def sample_reset_time(self, rng) -> float:
        """Draw one user's manual-reset time from the survey model.

        ``rng`` is a :class:`random.Random`-compatible generator.
        """
        jitter = rng.uniform(-self.manual_reset_jitter_s,
                             self.manual_reset_jitter_s)
        return max(5.0, self.manual_reset_mean_s + jitter)


#: Default tolerance model used across the library.
DEFAULT_USER_TOLERANCE = UserToleranceModel()
