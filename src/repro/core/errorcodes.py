"""Android ``DataFailCause`` registry.

When a data-connection setup fails, the radio interface layer produces an
error code describing why (Sec. 2.1).  Android defines 344 such causes
(:data:`repro.quantities.TOTAL_ERROR_CODES`); this module models the
prominent subset that carries the paper's analysis — every code in Table 2,
every code named in the prose (e.g. ``EMM_ACCESS_BARRED`` for the dense-
deployment finding), the 3GPP-standard ESM/SM causes, and the codes used by
the false-positive filters — with layer attribution (physical / link /
network, Sec. 3.2) and retryability metadata.

Numeric values for 3GPP-standard causes follow TS 24.008 / TS 24.301 as
mirrored in AOSP; vendor-range causes use their AOSP Q-era 2xxx range.
Only the *names* are load-bearing for the reproduction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ProtocolLayer(enum.Enum):
    """Where in the stack a setup failure originates (Sec. 2.1)."""

    PHYSICAL = "PHYSICAL"  # e.g. radio signal loss
    LINK = "LINK"  # data link / MAC, e.g. authentication, PPP
    NETWORK = "NETWORK"  # e.g. IP address allocation, EMM state
    MODEM = "MODEM"  # modem/RIL internal conditions
    OTHER = "OTHER"


@dataclass(frozen=True)
class DataFailCause:
    """One entry of Android's DataFailCause table."""

    name: str
    value: int
    layer: ProtocolLayer
    description: str
    #: True when Android should not retry with the same APN settings.
    permanent: bool = False
    #: True when the code commonly reflects a *rational* rejection by an
    #: overloaded or policy-restricted BS rather than a true failure; such
    #: events are filtered as false positives (Sec. 2.2).
    rational_rejection: bool = False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _c(
    name: str,
    value: int,
    layer: ProtocolLayer,
    description: str,
    *,
    permanent: bool = False,
    rational_rejection: bool = False,
) -> DataFailCause:
    return DataFailCause(
        name=name,
        value=value,
        layer=layer,
        description=description,
        permanent=permanent,
        rational_rejection=rational_rejection,
    )


_PHY = ProtocolLayer.PHYSICAL
_LNK = ProtocolLayer.LINK
_NET = ProtocolLayer.NETWORK
_MDM = ProtocolLayer.MODEM
_OTH = ProtocolLayer.OTHER

#: All modeled causes.  Grouped roughly as in AOSP's DataFailCause.java.
_CAUSES: tuple[DataFailCause, ...] = (
    _c("NONE", 0, _OTH, "No error; connection succeeded"),
    # -- 3GPP TS 24.008 / 24.301 session-management causes ----------------
    _c("OPERATOR_BARRED", 0x08, _NET, "Operator-determined barring",
       permanent=True, rational_rejection=True),
    _c("NAS_SIGNALLING", 0x0E, _NET, "NAS signalling error"),
    _c("LLC_SNDCP", 0x19, _LNK, "LLC or SNDCP failure"),
    _c("INSUFFICIENT_RESOURCES", 0x1A, _NET,
       "BS has insufficient resources for the bearer",
       rational_rejection=True),
    _c("MISSING_UNKNOWN_APN", 0x1B, _NET, "Missing or unknown APN",
       permanent=True),
    _c("UNKNOWN_PDP_ADDRESS_TYPE", 0x1C, _NET,
       "Unknown PDP address or type", permanent=True),
    _c("USER_AUTHENTICATION", 0x1D, _LNK, "User authentication failed",
       permanent=True),
    _c("ACTIVATION_REJECT_GGSN", 0x1E, _NET,
       "Activation rejected by GGSN/SGW/PGW"),
    _c("ACTIVATION_REJECT_UNSPECIFIED", 0x1F, _NET,
       "Activation rejected, reason unspecified"),
    _c("SERVICE_OPTION_NOT_SUPPORTED", 0x20, _NET,
       "Requested service option not supported", permanent=True),
    _c("SERVICE_OPTION_NOT_SUBSCRIBED", 0x21, _NET,
       "Service option not subscribed", permanent=True,
       rational_rejection=True),
    _c("SERVICE_OPTION_OUT_OF_ORDER", 0x22, _NET,
       "Service option temporarily out of order",
       rational_rejection=True),
    _c("NSAPI_IN_USE", 0x23, _NET, "NSAPI already in use"),
    _c("REGULAR_DEACTIVATION", 0x24, _NET,
       "Regular deactivation of the connection",
       rational_rejection=True),
    _c("QOS_NOT_ACCEPTED", 0x25, _NET, "Requested QoS not accepted"),
    _c("NETWORK_FAILURE", 0x26, _NET, "Network failure"),
    _c("UMTS_REACTIVATION_REQ", 0x27, _NET, "UMTS reactivation required"),
    _c("FEATURE_NOT_SUPP", 0x28, _NET, "Feature not supported",
       permanent=True),
    _c("TFT_SEMANTIC_ERROR", 0x29, _NET,
       "Semantic error in the TFT operation", permanent=True),
    _c("TFT_SYTAX_ERROR", 0x2A, _NET,
       "Syntactical error in the TFT operation", permanent=True),
    _c("UNKNOWN_PDP_CONTEXT", 0x2B, _NET, "Unknown PDP context"),
    _c("FILTER_SEMANTIC_ERROR", 0x2C, _NET,
       "Semantic error in packet filters", permanent=True),
    _c("FILTER_SYTAX_ERROR", 0x2D, _NET,
       "Syntactical error in packet filters", permanent=True),
    _c("PDP_WITHOUT_ACTIVE_TFT", 0x2E, _NET,
       "PDP context without an active TFT"),
    _c("ONLY_IPV4_ALLOWED", 0x32, _NET, "Only IPv4 addresses allowed",
       permanent=True),
    _c("ONLY_IPV6_ALLOWED", 0x33, _NET, "Only IPv6 addresses allowed",
       permanent=True),
    _c("ONLY_SINGLE_BEARER_ALLOWED", 0x34, _NET,
       "Only a single bearer is allowed"),
    _c("ESM_INFO_NOT_RECEIVED", 0x35, _NET,
       "ESM information not received"),
    _c("PDN_CONN_DOES_NOT_EXIST", 0x36, _NET,
       "PDN connection does not exist"),
    _c("MULTI_CONN_TO_SAME_PDN_NOT_ALLOWED", 0x37, _NET,
       "Multiple connections to the same PDN not allowed",
       permanent=True),
    _c("MAX_ACTIVE_PDP_CONTEXT_REACHED", 0x41, _NET,
       "Maximum number of active PDP contexts reached",
       rational_rejection=True),
    _c("UNSUPPORTED_APN_IN_CURRENT_PLMN", 0x42, _NET,
       "APN unsupported in the current PLMN", permanent=True),
    _c("INVALID_TRANSACTION_ID", 0x51, _NET, "Invalid transaction id"),
    _c("MESSAGE_INCORRECT_SEMANTIC", 0x5F, _NET,
       "Semantically incorrect message", permanent=True),
    _c("INVALID_MANDATORY_INFO", 0x60, _NET,
       "Invalid mandatory information", permanent=True),
    _c("MESSAGE_TYPE_UNSUPPORTED", 0x61, _NET,
       "Message type non-existent or unsupported", permanent=True),
    _c("MSG_TYPE_NONCOMPATIBLE_STATE", 0x62, _NET,
       "Message type not compatible with protocol state"),
    _c("UNKNOWN_INFO_ELEMENT", 0x63, _NET,
       "Information element unknown", permanent=True),
    _c("CONDITIONAL_IE_ERROR", 0x64, _NET, "Conditional IE error",
       permanent=True),
    _c("MSG_AND_PROTOCOL_STATE_UNCOMPATIBLE", 0x65, _NET,
       "Message incompatible with protocol state"),
    _c("PROTOCOL_ERRORS", 0x6F, _NET, "Unspecified protocol error",
       permanent=True),
    _c("APN_TYPE_CONFLICT", 0x70, _NET, "APN type conflict"),
    _c("INVALID_PCSCF_ADDR", 0x71, _NET, "Invalid P-CSCF address"),
    _c("INTERNAL_CALL_PREEMPT_BY_HIGH_PRIO_APN", 0x72, _MDM,
       "Internal data call preempted by a higher-priority APN"),
    _c("EMM_ACCESS_BARRED", 0x73, _NET,
       "EPS mobility management access barred (LTE)"),
    _c("EMERGENCY_IFACE_ONLY", 0x74, _MDM,
       "Only the emergency interface is available"),
    _c("IFACE_MISMATCH", 0x75, _MDM, "Interface mismatch"),
    _c("COMPANION_IFACE_IN_USE", 0x76, _MDM,
       "Companion interface in use"),
    _c("IP_ADDRESS_MISMATCH", 0x77, _NET, "IP address mismatch"),
    _c("IFACE_AND_POL_FAMILY_MISMATCH", 0x78, _MDM,
       "Interface and policy-family mismatch"),
    _c("EMM_ACCESS_BARRED_INFINITE_RETRY", 0x79, _NET,
       "EMM access barred with infinite retry"),
    _c("AUTH_FAILURE_ON_EMERGENCY_CALL", 0x7A, _LNK,
       "Authentication failure on an emergency call"),
    # -- Table 2 / prose codes in the AOSP vendor (2xxx) range -------------
    _c("GPRS_REGISTRATION_FAIL", 2018, _NET,
       "Failures due to unsuccessful GPRS registration"),
    _c("SIGNAL_LOST", 2019, _PHY,
       "Failures due to network/modem disconnection"),
    _c("NO_SERVICE", 2216, _PHY, "No service during connection setup"),
    _c("INVALID_EMM_STATE", 2190, _NET,
       "Invalid state of EPS Mobility Management in LTE"),
    _c("UNPREFERRED_RAT", 2039, _MDM,
       "Current RAT is no longer the preferred RAT"),
    _c("PPP_TIMEOUT", 2228, _LNK,
       "Failure at the Point-to-Point Protocol setup stage (timeout)"),
    _c("NO_HYBRID_HDR_SERVICE", 2209, _PHY,
       "No hybrid High-Data-Rate service"),
    _c("PDP_LOWERLAYER_ERROR", 2195, _NET,
       "Packet Data Protocol error due to RRC failures or forbidden PLMN"),
    _c("MAX_ACCESS_PROBE", 2079, _PHY,
       "Exceeded maximum number of access probes"),
    _c("IRAT_HANDOVER_FAILED", 2194, _PHY,
       "Data-call transfer failed during an inter-RAT handover"),
    # -- Further vendor-range causes exercised by the simulator ------------
    _c("CONGESTION", 2106, _NET, "Network congestion",
       rational_rejection=True),
    _c("ACCESS_ATTEMPT_ALREADY_IN_PROGRESS", 2219, _MDM,
       "Another access attempt is already in progress"),
    _c("RADIO_POWER_OFF", 2044, _PHY, "Radio is powered off",
       rational_rejection=True),
    _c("MODEM_RESTART", 2113, _MDM, "Modem restarted"),
    _c("NAS_REQUEST_REJECTED_BY_NETWORK", 2167, _NET,
       "NAS request rejected by the network"),
    _c("EMERGENCY_MODE", 2221, _MDM, "Device is in emergency mode"),
    _c("INVALID_CONNECTION_ID", 2156, _MDM, "Invalid connection id"),
    _c("MAX_PPP_INACTIVITY_TIMER_EXPIRED", 2046, _LNK,
       "Maximum PPP inactivity timer expired"),
    _c("IPV6_ADDRESS_TRANSFER_FAILED", 2047, _NET,
       "IPv6 address transfer failed"),
    _c("TRAT_SWAP_FAILED", 2048, _MDM,
       "Target RAT swap failed"),
    _c("DUAL_SWITCH", 2227, _MDM,
       "Device falls back from dual-connectivity"),
    _c("DATA_ROAMING_SETTINGS_DISABLED", 2064, _OTH,
       "Data roaming disabled by the user", rational_rejection=True),
    _c("DATA_SETTINGS_DISABLED", 2063, _OTH,
       "Cellular data disabled by the user", rational_rejection=True),
    _c("DDS_SWITCHED", 2065, _MDM, "Default data subscription switched"),
    _c("APN_DISABLED", 2045, _OTH, "APN disabled",
       rational_rejection=True),
    _c("INTERNAL_EPC_NONEPC_TRANSITION", 2057, _NET,
       "Transition between EPC and non-EPC RAT"),
    _c("INTERFACE_IN_USE", 2058, _MDM, "Data interface in use"),
    _c("APN_PENDING_HANDOVER", 2041, _MDM,
       "APN awaiting a pending handover"),
    _c("PROFILE_BEARER_INCOMPATIBLE", 2042, _NET,
       "Profile and bearer are incompatible"),
    _c("SIM_CARD_CHANGED", 2043, _OTH, "SIM card changed",
       rational_rejection=True),
    _c("LOW_POWER_MODE_OR_POWERING_DOWN", 2055, _OTH,
       "Device in low-power mode or powering down",
       rational_rejection=True),
    _c("PDN_CONN_DOES_NOT_EXIST_VENDOR", 2158, _NET,
       "PDN connection does not exist (vendor report)"),
    _c("EPS_SERVICES_NOT_ALLOWED", 2177, _NET,
       "EPS services not allowed", permanent=True),
    _c("PLMN_NOT_ALLOWED", 2172, _NET, "PLMN not allowed",
       permanent=True),
    _c("LOCATION_AREA_NOT_ALLOWED", 2173, _NET,
       "Location area not allowed", permanent=True),
    _c("TRACKING_AREA_NOT_ALLOWED", 2174, _NET,
       "Tracking area not allowed", permanent=True),
    _c("NETWORK_INITIATED_DETACH_NO_AUTO_REATTACH", 2154, _NET,
       "Network-initiated detach without auto-reattach"),
    _c("ESM_PROCEDURE_TIME_OUT", 2155, _NET, "ESM procedure timeout"),
    _c("CONNECTION_RELEASED", 2113 + 1000, _NET,
       "RRC connection released by the network"),
    _c("DRB_RELEASED_BY_RRC", 2112, _NET, "DRB released by RRC"),
    _c("ACCESS_BLOCK", 2087, _NET,
       "Access blocked by the base station", rational_rejection=True),
    _c("ACCESS_BLOCK_ALL", 2088, _NET,
       "All access classes blocked", rational_rejection=True),
    _c("IS707B_MAX_ACCESS_PROBES", 2089, _PHY,
       "IS-707B maximum access probes exceeded"),
    _c("THERMAL_EMERGENCY", 2090, _MDM,
       "Modem thermal emergency"),
    _c("CONCURRENT_SERVICES_INCOMPATIBLE", 2091, _MDM,
       "Concurrent services are incompatible"),
    _c("NO_CDMA_SERVICE", 2084, _PHY, "No CDMA service available"),
    _c("NO_GPRS_CONTEXT", 2094, _NET, "No GPRS context active"),
    _c("ILLEGAL_MS", 2095, _NET, "Illegal mobile station",
       permanent=True),
    _c("ILLEGAL_ME", 2096, _NET, "Illegal mobile equipment",
       permanent=True),
    _c("GPRS_SERVICES_AND_NON_GPRS_SERVICES_NOT_ALLOWED", 2097, _NET,
       "Neither GPRS nor non-GPRS services allowed", permanent=True),
    _c("GPRS_SERVICES_NOT_ALLOWED", 2098, _NET,
       "GPRS services not allowed", permanent=True),
    _c("MS_IDENTITY_CANNOT_BE_DERIVED_BY_THE_NETWORK", 2099, _NET,
       "MS identity cannot be derived by the network"),
    _c("IMPLICITLY_DETACHED", 2100, _NET,
       "Device implicitly detached by the network"),
    _c("PLMN_NOT_ALLOWED_LEGACY", 2101, _NET,
       "PLMN not allowed (legacy report)", permanent=True),
    _c("LA_NOT_ALLOWED", 2102, _NET,
       "Location area not allowed (legacy report)", permanent=True),
    _c("GPRS_SERVICES_NOT_ALLOWED_IN_THIS_PLMN", 2103, _NET,
       "GPRS services not allowed in this PLMN", permanent=True),
    _c("PDP_DUPLICATE", 2104, _NET, "Duplicate PDP context"),
    _c("UE_RAT_CHANGE", 2105, _MDM, "UE changed RAT during setup"),
    _c("NO_PDP_CONTEXT_ACTIVATED", 2107, _NET,
       "No PDP context activated"),
    _c("ACCESS_CLASS_DSAC_REJECTION", 2108, _NET,
       "Domain-specific access-class rejection",
       rational_rejection=True),
    _c("PDP_ACTIVATE_MAX_RETRY_FAILED", 2109, _NET,
       "PDP activation failed after maximum retries"),
    _c("RAB_FAILURE", 2110, _NET, "Radio access bearer failure"),
    _c("ESM_UNKNOWN_EPS_BEARER_CONTEXT", 2111, _NET,
       "Unknown EPS bearer context"),
    _c("EMM_DETACHED", 2114, _NET, "EMM detached"),
    _c("EMM_ATTACH_FAILED", 2115, _NET, "EMM attach failed"),
    _c("EMM_ATTACH_STARTED", 2116, _NET,
       "EMM attach started; setup deferred"),
    _c("LTE_NAS_SERVICE_REQUEST_FAILED", 2117, _NET,
       "LTE NAS service request failed"),
    _c("ESM_FAILURE", 2182, _NET, "Generic ESM failure"),
    _c("DUPLICATE_BEARER_ID", 2118, _NET, "Duplicate bearer id"),
    _c("ESM_COLLISION_SCENARIOS", 2119, _NET,
       "ESM procedure collision"),
    _c("ESM_BEARER_DEACTIVATED_TO_SYNC_WITH_NETWORK", 2120, _NET,
       "Bearer deactivated to re-synchronize with the network"),
    _c("ESM_NW_ACTIVATED_DED_BEARER_WITH_ID_OF_DEF_BEARER", 2121, _NET,
       "Network activated a dedicated bearer with a default bearer id"),
    _c("ESM_BAD_OTA_MESSAGE", 2122, _NET, "Malformed OTA ESM message"),
    _c("ESM_DOWNLOAD_SERVER_REJECTED_THE_CALL", 2123, _NET,
       "Download server rejected the data call"),
    _c("ESM_CONTEXT_TRANSFERRED_DUE_TO_IRAT", 2124, _NET,
       "ESM context transferred due to inter-RAT mobility"),
    _c("DS_EXPLICIT_DEACTIVATION", 2125, _OTH,
       "Explicit deactivation by the data service",
       rational_rejection=True),
    _c("ESM_LOCAL_CAUSE_NONE", 2126, _NET, "ESM local cause none"),
    _c("LTE_THROTTLING_NOT_REQUIRED", 2127, _MDM,
       "LTE throttling not required"),
    _c("ACCESS_CONTROL_LIST_CHECK_FAILURE", 2128, _MDM,
       "Access-control list check failed"),
    _c("SERVICE_NOT_ALLOWED_ON_PLMN", 2129, _NET,
       "Service not allowed on this PLMN", permanent=True),
    _c("EMM_T3417_EXPIRED", 2130, _NET, "EMM timer T3417 expired"),
    _c("EMM_T3417_EXT_EXPIRED", 2131, _NET,
       "EMM timer T3417-EXT expired"),
    _c("RRC_UPLINK_DATA_TRANSMISSION_FAILURE", 2132, _PHY,
       "RRC uplink data transmission failure"),
    _c("RRC_UPLINK_DELIVERY_FAILED_DUE_TO_HANDOVER", 2133, _PHY,
       "RRC uplink delivery failed due to handover"),
    _c("RRC_UPLINK_CONNECTION_RELEASE", 2134, _NET,
       "RRC uplink connection released"),
    _c("RRC_UPLINK_RADIO_LINK_FAILURE", 2135, _PHY,
       "RRC uplink radio-link failure"),
    _c("RRC_UPLINK_ERROR_REQUEST_FROM_NAS", 2136, _NET,
       "RRC uplink error requested by NAS"),
    _c("RRC_CONNECTION_ACCESS_STRATUM_FAILURE", 2137, _PHY,
       "RRC connection access-stratum failure"),
    _c("RRC_CONNECTION_ANOTHER_PROCEDURE_IN_PROGRESS", 2138, _MDM,
       "RRC connection: another procedure in progress"),
    _c("RRC_CONNECTION_ACCESS_BARRED", 2139, _NET,
       "RRC connection access barred", rational_rejection=True),
    _c("RRC_CONNECTION_CELL_RESELECTION", 2140, _PHY,
       "RRC connection aborted by cell reselection"),
    _c("RRC_CONNECTION_CONFIG_FAILURE", 2141, _PHY,
       "RRC connection configuration failure"),
    _c("RRC_CONNECTION_TIMER_EXPIRED", 2142, _PHY,
       "RRC connection timer expired"),
    _c("RRC_CONNECTION_LINK_FAILURE", 2143, _PHY,
       "RRC connection radio-link failure"),
    _c("RRC_CONNECTION_CELL_NOT_CAMPED", 2144, _PHY,
       "RRC connection: not camped on a cell"),
    _c("RRC_CONNECTION_SYSTEM_INTERVAL_FAILURE", 2145, _PHY,
       "RRC connection system-interval failure"),
    _c("RRC_CONNECTION_REJECT_BY_NETWORK", 2146, _NET,
       "RRC connection rejected by the network",
       rational_rejection=True),
    _c("RRC_CONNECTION_NORMAL_RELEASE", 2147, _NET,
       "RRC connection normal release", rational_rejection=True),
    _c("RRC_CONNECTION_RADIO_LINK_FAILURE", 2148, _PHY,
       "RRC connection radio-link failure (post-setup)"),
    _c("RRC_CONNECTION_REESTABLISHMENT_FAILURE", 2149, _PHY,
       "RRC connection re-establishment failure"),
    _c("RRC_CONNECTION_OUT_OF_SERVICE_DURING_CELL_REGISTER", 2150, _PHY,
       "Out of service during cell registration"),
    _c("RRC_CONNECTION_ABORT_REQUEST", 2151, _MDM,
       "RRC connection abort requested"),
    _c("RRC_CONNECTION_SYSTEM_INFORMATION_BLOCK_READ_ERROR", 2152, _PHY,
       "SIB read error during RRC connection"),
    _c("NETWORK_INITIATED_TERMINATION", 2153, _NET,
       "Network-initiated termination"),
    _c("APN_MISMATCH", 2054, _OTH, "APN mismatch"),
    _c("COMPANION_DATA_CALL_ERROR", 2056, _MDM,
       "Companion data call error"),
    _c("UNACCEPTABLE_NETWORK_PARAMETER", 2065 + 1000, _NET,
       "Unacceptable network parameter"),
    _c("MIP_CONFIG_FAILURE", 2050, _NET,
       "Mobile-IP configuration failure"),
    _c("VSNCP_TIMEOUT", 2236, _LNK, "VSNCP negotiation timeout"),
    _c("VSNCP_GEN_ERROR", 2237, _LNK, "VSNCP generic error"),
    _c("VSNCP_APN_UNAUTHORIZED", 2238, _LNK, "VSNCP APN unauthorized",
       permanent=True),
    _c("VSNCP_PDN_LIMIT_EXCEEDED", 2239, _LNK,
       "VSNCP PDN limit exceeded", rational_rejection=True),
    _c("VSNCP_NO_PDN_GATEWAY_ADDRESS", 2240, _LNK,
       "VSNCP: no PDN gateway address"),
    _c("VSNCP_PDN_GATEWAY_UNREACHABLE", 2241, _LNK,
       "VSNCP: PDN gateway unreachable"),
    _c("VSNCP_PDN_GATEWAY_REJECT", 2242, _LNK,
       "VSNCP: PDN gateway rejected the request"),
    _c("VSNCP_INSUFFICIENT_PARAMETERS", 2243, _LNK,
       "VSNCP: insufficient parameters"),
    _c("VSNCP_RESOURCE_UNAVAILABLE", 2244, _LNK,
       "VSNCP: resource unavailable", rational_rejection=True),
    _c("VSNCP_ADMINISTRATIVELY_PROHIBITED", 2245, _LNK,
       "VSNCP: administratively prohibited", permanent=True),
    _c("VSNCP_PDN_ID_IN_USE", 2246, _LNK, "VSNCP: PDN id in use"),
    _c("VSNCP_SUBSCRIBER_LIMITATION", 2247, _LNK,
       "VSNCP: subscriber limitation", rational_rejection=True),
    _c("VSNCP_PDN_EXISTS_FOR_THIS_APN", 2248, _LNK,
       "VSNCP: PDN already exists for this APN"),
    _c("VSNCP_RECONNECT_NOT_ALLOWED", 2249, _LNK,
       "VSNCP: reconnect not allowed", permanent=True),
    _c("IPV6_PREFIX_UNAVAILABLE", 2250, _NET,
       "IPv6 prefix unavailable"),
    _c("HANDOFF_PREFERENCE_CHANGED", 2251, _MDM,
       "Handoff preference changed"),
    # -- CDMA / HDR / eHRPD family (the 3GPP2 side of the table) -----------
    _c("CDMA_LOCKED_UNTIL_POWER_CYCLE", 2055 + 1000, _MDM,
       "CDMA modem locked until power cycle"),
    _c("CDMA_INTERCEPT", 2073, _NET, "CDMA call intercepted"),
    _c("CDMA_REORDER", 2074, _NET, "CDMA reorder tone"),
    _c("CDMA_RELEASE_DUE_TO_SO_REJECTION", 2075, _NET,
       "CDMA release due to service-option rejection"),
    _c("CDMA_INCOMING_CALL", 2076, _OTH,
       "CDMA data call released by an incoming call",
       rational_rejection=True),
    _c("CDMA_ALERT_STOP", 2077, _NET, "CDMA alert stop"),
    _c("CHANNEL_ACQUISITION_FAILURE", 2078, _PHY,
       "Channel acquisition failure"),
    _c("ALL_MATCHING_ORDERS_BUSY", 2080, _NET,
       "All matching origination orders busy",
       rational_rejection=True),
    _c("REJECTED_BY_BASE_STATION", 2081, _NET,
       "Origination rejected by the base station",
       rational_rejection=True),
    _c("CONCURRENT_SERVICE_NOT_SUPPORTED_BY_BASE_STATION", 2082, _NET,
       "Concurrent service unsupported by the base station"),
    _c("NO_RESPONSE_FROM_BASE_STATION", 2083, _PHY,
       "No response from the base station"),
    _c("RUIM_NOT_PRESENT", 2085, _OTH, "RUIM not present",
       permanent=True),
    _c("HDR_NO_LOCK_ON_REVERSE_LINK", 2086 + 1000, _PHY,
       "HDR: no lock on the reverse link"),
    _c("HDR_FADE", 2217, _PHY, "HDR signal fade"),
    _c("HDR_ACCESS_FAILURE", 2213, _PHY, "HDR access failure"),
    _c("HDR_NO_LOCK", 2212, _PHY, "HDR: no lock"),
    _c("HDR_ACCESS_THROTTLED", 2214, _NET,
       "HDR access attempts throttled", rational_rejection=True),
    _c("EHRPD_SUBSCRIPTION_LIMITATION", 2201, _NET,
       "eHRPD subscription limitation", rational_rejection=True),
    _c("EHRPD_PDN_ID_IN_USE", 2158 + 1000, _NET,
       "eHRPD PDN id already in use"),
    _c("UNSUPPORTED_1X_PREV", 2215, _PHY,
       "Unsupported 1x protocol revision"),
    _c("OTASP_COMMIT_IN_PROGRESS", 2208, _MDM,
       "OTASP commit in progress", rational_rejection=True),
    # -- IP / interface bring-up family -------------------------------------
    _c("PDN_IPV4_CALL_DISALLOWED", 2032, _NET,
       "IPv4 PDN call disallowed", permanent=True),
    _c("PDN_IPV4_CALL_THROTTLED", 2033, _NET,
       "IPv4 PDN call throttled", rational_rejection=True),
    _c("PDN_IPV6_CALL_DISALLOWED", 2034, _NET,
       "IPv6 PDN call disallowed", permanent=True),
    _c("PDN_IPV6_CALL_THROTTLED", 2035, _NET,
       "IPv6 PDN call throttled", rational_rejection=True),
    _c("IPV6_RENEW_FAILED", 2029 + 1000, _NET,
       "IPv6 address renewal failed"),
    _c("ADDRESS_ASSIGNMENT_FAILURE", 2030 + 1000, _NET,
       "IP address assignment failure"),
    _c("IP_VERSION_MISMATCH", 2055 + 2000, _NET,
       "IP version mismatch between request and bearer"),
    _c("PDN_THROTTLED", 2207, _NET, "PDN connection throttled",
       rational_rejection=True),
    _c("APN_THROTTLED", 2206, _NET, "APN throttled",
       rational_rejection=True),
    # -- IWLAN / ePDG family (present in the Q table) -----------------------
    _c("IWLAN_PDN_CONNECTION_REJECTION", 2204 + 1000, _NET,
       "IWLAN: PDN connection rejected"),
    _c("IWLAN_MAX_CONNECTION_REACHED", 2205 + 1000, _NET,
       "IWLAN: maximum connections reached",
       rational_rejection=True),
    _c("IWLAN_AUTHORIZATION_REJECTED", 2202 + 1000, _LNK,
       "IWLAN: authorization rejected", permanent=True),
    _c("IWLAN_IKEV2_AUTH_FAILURE", 2203 + 1000, _LNK,
       "IWLAN: IKEv2 authentication failure"),
    _c("IWLAN_IKEV2_MSG_TIMEOUT", 2210 + 1000, _LNK,
       "IWLAN: IKEv2 message timeout"),
    _c("IWLAN_DNS_RESOLUTION_NAME_FAILURE", 2211 + 1000, _NET,
       "IWLAN: ePDG name resolution failed"),
    _c("IWLAN_EPDG_UNREACHABLE", 2218 + 1000, _NET,
       "IWLAN: ePDG unreachable"),
    # -- Misc. modem-internal conditions ------------------------------------
    _c("DATA_PLAN_EXPIRED", 2198, _OTH, "Data plan expired",
       rational_rejection=True),
    _c("INTERNAL_CALL_PREEMPT_BY_EMERGENCY", 2056 + 2000, _MDM,
       "Preempted by an emergency call", rational_rejection=True),
    _c("MODEM_POWERED_OFF", 2057 + 2000, _PHY,
       "Modem powered off", rational_rejection=True),
    _c("INVALID_MODE", 2223, _MDM, "Invalid modem mode"),
    _c("INVALID_SIM_STATE", 2224, _OTH, "Invalid SIM state",
       rational_rejection=True),
    _c("MODEM_APP_TIMEOUT", 2225, _MDM,
       "Modem application timeout"),
    _c("DATA_SETTINGS_ROAMING_DISABLED", 2226 + 1000, _OTH,
       "Roaming data disabled", rational_rejection=True),
    _c("TEST_LOOPBACK_REGISTRATION_FAIL", 2220 + 1000, _MDM,
       "Loopback test registration failure"),
    _c("RADIO_NOT_AVAILABLE", 2222, _PHY, "Radio not available",
       rational_rejection=True),
    _c("UNACCEPTABLE_NON_EPS_AUTHENTICATION", 2187, _NET,
       "Unacceptable non-EPS authentication", permanent=True),
    _c("CS_DOMAIN_NOT_AVAILABLE", 2181, _NET,
       "CS domain not available"),
    _c("ESM_LOCAL_CAUSE_TIMEOUT", 2155 + 1000, _NET,
       "ESM local procedure timeout"),
    _c("MULTIPLE_PDP_CALL_NOT_ALLOWED", 2192, _NET,
       "Multiple PDP calls not allowed"),
    _c("NULL_APN_DISALLOWED", 2061, _NET,
       "Null APN disallowed", permanent=True),
    _c("THERMAL_MITIGATION", 2062, _MDM,
       "Thermal mitigation in effect", rational_rejection=True),
    _c("DATA_DISABLED_ON_SUBSCRIPTION", 2066, _OTH,
       "Data disabled on this subscription",
       rational_rejection=True),
    _c("FADE", 2229, _PHY, "Generic signal fade"),
    _c("ACCESS_TECHNOLOGY_CHANGED", 2230, _MDM,
       "Access technology changed mid-setup"),
    _c("TFT_SEMANTIC_ERROR_IN_PACKET", 2231, _NET,
       "Semantic error in a packet filter operation"),
    _c("PHYSICAL_LINK_CLOSE_IN_PROGRESS", 2232, _PHY,
       "Physical link close in progress"),
    _c("PDN_INACTIVITY_TIMER_EXPIRED", 2233, _NET,
       "PDN inactivity timer expired", rational_rejection=True),
    _c("MAX_IPV4_CONNECTIONS", 2234, _NET,
       "Maximum IPv4 connections reached",
       rational_rejection=True),
    _c("MAX_IPV6_CONNECTIONS", 2235, _NET,
       "Maximum IPv6 connections reached",
       rational_rejection=True),
    # -- Legacy RIL-era negative codes -------------------------------------
    _c("REGISTRATION_FAIL", -1, _NET,
       "CS registration failure (legacy RIL report)"),
    _c("GPRS_REGISTRATION_FAIL_LEGACY", -2, _NET,
       "PS registration failure (legacy RIL report)"),
    _c("SIGNAL_LOST_LEGACY", -3, _PHY,
       "Signal lost (legacy RIL report)"),
    _c("PREF_RADIO_TECH_CHANGED", -4, _MDM,
       "Preferred radio technology changed",
       rational_rejection=True),
    _c("RADIO_POWER_OFF_LEGACY", -5, _PHY,
       "Radio powered off (legacy RIL report)",
       rational_rejection=True),
    _c("TETHERED_CALL_ACTIVE", -6, _MDM,
       "Tethered call active", rational_rejection=True),
    _c("ERROR_UNSPECIFIED", 0xFFFF, _OTH, "Unspecified error"),
    # -- OEM-specific causes ------------------------------------------------
    *(
        _c(f"OEM_DCFAILCAUSE_{i}", 0x1000 + i, _MDM,
           f"OEM-specific data-call failure cause {i}")
        for i in range(1, 16)
    ),
)


class ErrorCodeRegistry:
    """Lookup table over the modeled DataFailCause entries."""

    def __init__(self, causes: tuple[DataFailCause, ...] = _CAUSES) -> None:
        self._by_name: dict[str, DataFailCause] = {}
        for cause in causes:
            if cause.name in self._by_name:
                raise ValueError(f"duplicate cause name: {cause.name}")
            self._by_name[cause.name] = cause

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self._by_name.values())

    def get(self, name: str) -> DataFailCause:
        """Return the cause registered under ``name`` (KeyError if absent)."""
        return self._by_name[name]

    def names(self) -> list[str]:
        return list(self._by_name)

    def by_layer(self, layer: ProtocolLayer) -> list[DataFailCause]:
        """All causes attributed to a protocol layer."""
        return [c for c in self._by_name.values() if c.layer is layer]

    def rational_rejections(self) -> frozenset[str]:
        """Names of causes treated as rational (false-positive) rejections."""
        return frozenset(
            c.name for c in self._by_name.values() if c.rational_rejection
        )

    def retryable(self, name: str) -> bool:
        """Whether Android may retry setup after this cause."""
        return not self.get(name).permanent


#: The process-wide registry instance.
ERROR_CODE_REGISTRY = ErrorCodeRegistry()
