"""The top-level study orchestrator.

:class:`NationwideStudy` reproduces the paper's pipeline end to end:
simulate the opt-in fleet under vanilla Android (measurement, Sec. 2),
run every analysis of Sec. 3 over the collected dataset, and render the
tables/figures.  :func:`run_ab_evaluation` additionally runs the
patched arm and evaluates the enhancements (Sec. 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import report
from repro.analysis.decomposition import ErrorCodeShare, error_code_decomposition
from repro.analysis.evaluation import ABEvaluation, evaluate_ab
from repro.analysis.isp_bs import (
    IspStats,
    ZipfFit,
    bs_failure_ranking,
    fit_zipf,
    normalized_prevalence_by_level,
    per_isp_stats,
    per_rat_bs_prevalence,
)
from repro.analysis.landscape import (
    GroupComparison,
    ModelStats,
    compare_5g,
    compare_android_versions,
    per_model_stats,
)
from repro.analysis.stats import GeneralStats, compute_general_stats
from repro.dataset.store import Dataset
from repro.fleet.scenario import ScenarioConfig, default_scenario
from repro.fleet.simulator import FleetSimulator


@dataclass
class StudyResult:
    """Everything one measurement run yields."""

    dataset: Dataset
    general: GeneralStats
    models: list[ModelStats]
    error_codes: list[ErrorCodeShare]
    isps: list[IspStats]
    zipf: ZipfFit
    rat_bs_prevalence: dict[str, float]
    normalized_prevalence: dict[int, float]
    comparison_5g: GroupComparison
    comparison_android: GroupComparison

    def render(self) -> str:
        """A text report in the shape of the paper's Sec. 3."""
        parts = [
            "== General statistics (Sec. 3.1) ==",
            report.render_general_stats(self.dataset),
            "== Table 1 (measured) ==",
            report.render_table1(self.dataset),
            "== Table 2 (measured) ==",
            report.render_table2(self.dataset),
            "== ISP landscape (Figs. 12-13) ==",
            report.render_isp_stats(self.dataset),
            "== Normalized prevalence by signal level (Fig. 15) ==",
            report.render_level_series(self.normalized_prevalence),
            f"== BS Zipf fit (Fig. 11): a={self.zipf.a:.2f}, "
            f"b={self.zipf.b:.2f}, R^2={self.zipf.r_squared:.3f} ==",
        ]
        return "\n".join(parts) + "\n"


@dataclass
class NationwideStudy:
    """Reproduces the measurement study over a simulated fleet."""

    scenario: ScenarioConfig = field(default_factory=default_scenario)

    def run(
        self,
        workers: int | None = None,
        *,
        checkpoint_dir=None,
        resume: bool = False,
    ) -> StudyResult:
        """Simulate the vanilla arm and run the full Sec. 3 analysis.

        ``workers`` is forwarded to :meth:`FleetSimulator.run`; ``N >=
        2`` shards the fleet across worker processes (identical
        records, see ``docs/performance.md``).  ``checkpoint_dir`` /
        ``resume`` make the simulation leg durable: completed shards
        are spooled to disk and a killed run picks up where it left
        off.
        """
        dataset = FleetSimulator(self.scenario.vanilla()).run(
            workers=workers,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
        )
        return self.analyze(dataset)

    @staticmethod
    def analyze(dataset: Dataset) -> StudyResult:
        """Run every Sec. 3 analysis over an existing dataset."""
        return StudyResult(
            dataset=dataset,
            general=compute_general_stats(dataset),
            models=per_model_stats(dataset),
            error_codes=error_code_decomposition(dataset),
            isps=per_isp_stats(dataset),
            zipf=fit_zipf(bs_failure_ranking(dataset)),
            rat_bs_prevalence=per_rat_bs_prevalence(dataset),
            normalized_prevalence=normalized_prevalence_by_level(dataset),
            comparison_5g=compare_5g(dataset),
            comparison_android=compare_android_versions(dataset),
        )


def run_ab_evaluation(
    scenario: ScenarioConfig | None = None,
    workers: int | None = None,
    *,
    n_shards: int | None = None,
    checkpoint_dir=None,
    resume: bool = False,
) -> tuple[Dataset, Dataset, ABEvaluation]:
    """Run both arms of the Sec. 4.3 deployment evaluation.

    Returns (vanilla dataset, patched dataset, evaluation).  With
    ``workers >= 2`` each arm runs sharded across worker processes;
    common-random-numbers pairing survives sharding because per-device
    streams depend only on ``(seed, device id, purpose)``, so the A/B
    deltas are identical at any worker count.

    With ``checkpoint_dir`` set, each arm checkpoints into its own
    subdirectory (``<dir>/vanilla``, ``<dir>/patched``) — the arm is
    part of the scenario fingerprint, so the stores cannot be mixed up.
    """
    scenario = scenario or default_scenario()
    arm_dir = (lambda arm: None) if checkpoint_dir is None else (
        lambda arm: Path(checkpoint_dir) / arm
    )
    vanilla = FleetSimulator(scenario.vanilla()).run(
        workers=workers, n_shards=n_shards,
        checkpoint_dir=arm_dir("vanilla"), resume=resume,
    )
    patched = FleetSimulator(scenario.patched()).run(
        workers=workers, n_shards=n_shards,
        checkpoint_dir=arm_dir("patched"), resume=resume,
    )
    return vanilla, patched, evaluate_ab(vanilla, patched)
