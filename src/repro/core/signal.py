"""Received-signal-strength (RSS) levels.

Android buckets raw signal strength into six levels, 0 (worst) through
5 (excellent); the paper's Figures 15-17 are keyed on these levels.  The
dBm thresholds follow Android's ``SignalStrength`` conventions per RAT
(RSSI for 2G, RSCP for 3G, RSRP for 4G, SS-RSRP for 5G), extended with a
sixth "excellent" bucket as used by the vendor build in the paper.

This module sits below :mod:`repro.radio`, so the threshold table is
keyed by RAT *name* and the helpers accept either a RAT enum member or
its name string.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.radio.rat import RAT


class SignalLevel(enum.IntEnum):
    """Android signal levels; comparable as integers."""

    LEVEL_0 = 0  # none / worst
    LEVEL_1 = 1  # poor
    LEVEL_2 = 2  # moderate
    LEVEL_3 = 3  # good
    LEVEL_4 = 4  # great
    LEVEL_5 = 5  # excellent

    @property
    def is_excellent(self) -> bool:
        return self is SignalLevel.LEVEL_5


#: All levels in ascending order.
ALL_LEVELS: tuple[SignalLevel, ...] = tuple(SignalLevel)

#: Per-RAT lower dBm bounds for levels 1..5.  A reading below the level-1
#: bound is level 0; a reading at or above the level-5 bound is level 5.
_LEVEL_THRESHOLDS_DBM: dict[str, tuple[float, float, float, float, float]] = {
    "GSM": (-107.0, -103.0, -97.0, -89.0, -78.0),
    "UMTS": (-112.0, -105.0, -99.0, -93.0, -82.0),
    "LTE": (-125.0, -115.0, -105.0, -95.0, -84.0),
    "NR": (-120.0, -110.0, -100.0, -90.0, -80.0),
}


def _rat_key(rat: "RAT | str") -> str:
    key = getattr(rat, "value", rat)
    if key not in _LEVEL_THRESHOLDS_DBM:
        raise KeyError(f"unknown RAT: {rat!r}")
    return key


def level_bounds(rat: "RAT | str") -> tuple[float, float, float, float, float]:
    """The ascending dBm thresholds separating levels for ``rat``."""
    return _LEVEL_THRESHOLDS_DBM[_rat_key(rat)]


def dbm_to_level(rat: "RAT | str", dbm: float) -> SignalLevel:
    """Bucket a raw dBm reading into an Android signal level.

    >>> dbm_to_level("LTE", -130.0)
    <SignalLevel.LEVEL_0: 0>
    >>> dbm_to_level("LTE", -80.0)
    <SignalLevel.LEVEL_5: 5>
    """
    level = 0
    for bound in _LEVEL_THRESHOLDS_DBM[_rat_key(rat)]:
        if dbm >= bound:
            level += 1
    return SignalLevel(level)
