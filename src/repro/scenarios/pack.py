"""Scenario-pack schema, validation, and loading.

A pack is a mapping with up to seven sections, every one optional
except ``name``::

    pack: 1                      # schema version
    name: flash-crowd-hubs
    description: ...
    tags: [crowd, stress]
    fleet:                       # -> ScenarioConfig core knobs
      devices: 2000
      seed: 2020
      study_months: 8.0
      arm: vanilla               # or patched
      frequency_scale: 1.0
      false_positive_rate: 0.10
    carriers:                    # multi-carrier population
      policy: user-defined       # operator-assigned | user-defined
      weights: {ISP-A: 0.2, ISP-B: 0.3, ISP-C: 0.5}   # | quality-first
    five_g:
      coverage_hole_factor: 2.5  # mmWave hole severity (1.0 = none)
    topology:                    # -> TopologyConfig
      base_stations: 1000
      deployment_mix: {transport_hub: 0.10, urban_core: 0.25, ...}
      infrastructure_sharing: false
    chaos:                       # -> ChaosConfig (absent = lossless)
      drop_rate: 0.05
      outages: [[3600, 7200]]
      outage_waves: {count: 3, first_start_s: 3600,
                     duration_s: 1800, spacing_s: 7200}
    run:                         # sweep-runner execution options
      engine: batch              # batch (default) | serial
      workers: 2
      shards: 4

Everything is validated **at parse time**: unknown keys (with a
did-you-mean suggestion) and out-of-range values raise
:class:`PackError` carrying the full key path, so a broken pack never
costs a partial sweep.  :func:`pack_from_dict` returns a
:class:`ScenarioPack` whose ``data`` attribute is the *normalized*
document — every known key present with its resolved value — which is
what :func:`pack_fingerprint` hashes and :func:`pack_to_dict` returns,
making dict -> pack -> dict a fixed point.

Carrier-selection policies (the iCellular axis):

``operator-assigned``
    The paper's population: devices follow the ISPs' subscriber
    shares.
``user-defined``
    Explicit per-ISP weights — a population that chose carriers by
    hand (requires ``weights``).
``quality-first``
    iCellular-style selection: users probe and prefer reliable
    carriers, so each ISP's share is its subscriber share divided by
    its residual hazard factor (renormalized).
"""

from __future__ import annotations

import dataclasses
import difflib
import hashlib
import json
import re
from pathlib import Path

from repro.chaos.config import ChaosConfig
from repro.dataset.records import ARM_PATCHED, ARM_VANILLA
from repro.fleet import behavior
from repro.fleet.scenario import (
    ENGINE_BATCH,
    ENGINE_SERIAL,
    ScenarioConfig,
)
from repro.network.basestation import DeploymentClass
from repro.network.isp import ISP, ISP_PROFILES
from repro.network.topology import TopologyConfig

#: Bumped when the pack schema changes incompatibly.
SCHEMA_VERSION = 1

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9_-]*$")

POLICY_OPERATOR = "operator-assigned"
POLICY_USER = "user-defined"
POLICY_QUALITY = "quality-first"
CARRIER_POLICIES = (POLICY_OPERATOR, POLICY_USER, POLICY_QUALITY)


class PackError(ValueError):
    """A scenario pack failed validation.

    ``path`` is the full dotted key path of the offending value
    (``chaos.outages[1]``), ``source`` the file it came from (when
    loaded from disk) — both baked into ``str(exc)`` so CLI users see
    exactly what to fix.
    """

    def __init__(self, message: str, *, path: str = "",
                 source: str | None = None) -> None:
        self.path = path
        self.source = source
        prefix = f"{source}: " if source else ""
        where = f"{path}: " if path else ""
        super().__init__(f"{prefix}{where}{message}")


# ---------------------------------------------------------------------------
# validation primitives
# ---------------------------------------------------------------------------


def _join(path: str, key: str) -> str:
    return f"{path}.{key}" if path else key


def _require_mapping(value, path: str, source) -> dict:
    if not isinstance(value, dict):
        raise PackError(
            f"expected a mapping, got {type(value).__name__}",
            path=path, source=source,
        )
    return value


def _reject_unknown(mapping: dict, allowed, path: str, source) -> None:
    for key in mapping:
        if key not in allowed:
            hint = ""
            close = difflib.get_close_matches(str(key), list(allowed),
                                              n=1)
            if close:
                hint = f" (did you mean {close[0]!r}?)"
            raise PackError(
                f"unknown key {key!r}{hint}; valid keys: "
                f"{', '.join(sorted(allowed))}",
                path=_join(path, str(key)), source=source,
            )


def _number(value, path: str, source, *, integer: bool = False,
            lo=None, hi=None, lo_open: bool = False):
    """A validated int/float; bools are rejected (YAML footgun)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        kind = "an integer" if integer else "a number"
        raise PackError(f"expected {kind}, got {value!r}",
                        path=path, source=source)
    if integer and not isinstance(value, int):
        raise PackError(f"expected an integer, got {value!r}",
                        path=path, source=source)
    if lo is not None and (value <= lo if lo_open else value < lo):
        op = ">" if lo_open else ">="
        raise PackError(f"must be {op} {lo}, got {value}",
                        path=path, source=source)
    if hi is not None and value > hi:
        raise PackError(
            f"must be within [{lo if lo is not None else '-inf'}, "
            f"{hi}], got {value}",
            path=path, source=source,
        )
    return int(value) if integer else float(value)


def _boolean(value, path: str, source) -> bool:
    if not isinstance(value, bool):
        raise PackError(f"expected true/false, got {value!r}",
                        path=path, source=source)
    return value


def _string(value, path: str, source, *, choices=None) -> str:
    if not isinstance(value, str):
        raise PackError(f"expected a string, got {value!r}",
                        path=path, source=source)
    if choices is not None and value not in choices:
        raise PackError(
            f"must be one of {', '.join(choices)}; got {value!r}",
            path=path, source=source,
        )
    return value


# ---------------------------------------------------------------------------
# the pack container
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ScenarioPack:
    """One validated scenario pack, ready to run."""

    name: str
    description: str
    tags: tuple[str, ...]
    #: The composed scenario (``metrics`` off; the sweep runner turns
    #: it on so every pack lands obs metrics in the report).
    scenario: ScenarioConfig
    #: Sweep-runner worker-count override (None: use the CLI's).
    workers: int | None
    #: Shard-count override (None: one shard per worker).
    shards: int | None
    #: The normalized document (defaults applied) — the fingerprint
    #: base and the round-trip surface.
    data: dict
    #: Where the pack came from, for error messages (not part of the
    #: fingerprint).
    source: str | None = None

    @property
    def engine(self) -> str:
        return self.scenario.engine

    def fingerprint(self) -> str:
        return pack_fingerprint(self)


def pack_fingerprint(pack: ScenarioPack) -> str:
    """Identity of the pack's *content* (source path excluded).

    Covers the normalized document and the schema version, so editing
    any knob — or a schema change that alters how knobs resolve —
    yields a different fingerprint and invalidates stale sweep
    results.
    """
    canonical = json.dumps(
        {"schema": SCHEMA_VERSION, "pack": pack.data},
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def pack_to_dict(pack: ScenarioPack) -> dict:
    """The normalized pack document (JSON/YAML-serializable)."""
    return json.loads(json.dumps(pack.data))


# ---------------------------------------------------------------------------
# section validators
# ---------------------------------------------------------------------------

_FLEET_KEYS = ("devices", "seed", "study_months", "arm",
               "frequency_scale", "false_positive_rate",
               "max_events_per_device")
_CARRIER_KEYS = ("policy", "weights")
_FIVE_G_KEYS = ("coverage_hole_factor",)
_TOPOLOGY_KEYS = ("base_stations", "seed", "propensity_sigma",
                  "hub_propensity_factor", "cdma_fraction",
                  "infrastructure_sharing", "sharing_density_factor",
                  "deployment_mix")
_CHAOS_KEYS = ("enabled", "seed", "drop_rate", "duplicate_rate",
               "reorder_rate", "corrupt_rate", "outages",
               "outage_waves", "wifi_availability", "max_attempts",
               "base_backoff_s", "backoff_multiplier", "max_backoff_s",
               "jitter", "max_spool_bytes", "drain_interval_s",
               "max_drain_rounds")
_WAVE_KEYS = ("count", "first_start_s", "duration_s", "spacing_s")
_RUN_KEYS = ("engine", "workers", "shards")
_TOP_KEYS = ("pack", "name", "description", "tags", "fleet",
             "carriers", "five_g", "topology", "chaos", "run")

_ARMS = {"vanilla": ARM_VANILLA, "patched": ARM_PATCHED}


def _validate_fleet(raw: dict, source) -> dict:
    section = _require_mapping(raw.get("fleet", {}), "fleet", source)
    _reject_unknown(section, _FLEET_KEYS, "fleet", source)
    get = section.get
    return {
        "devices": _number(get("devices", 2_000),
                           "fleet.devices", source,
                           integer=True, lo=1),
        "seed": _number(get("seed", 2_020), "fleet.seed", source,
                        integer=True),
        "study_months": _number(get("study_months", 8.0),
                                "fleet.study_months", source,
                                lo=0, lo_open=True),
        "arm": _string(get("arm", "vanilla"), "fleet.arm", source,
                       choices=tuple(_ARMS)),
        "frequency_scale": _number(get("frequency_scale", 1.0),
                                   "fleet.frequency_scale", source,
                                   lo=0, lo_open=True),
        "false_positive_rate": _number(
            get("false_positive_rate", 0.10),
            "fleet.false_positive_rate", source, lo=0),
        "max_events_per_device": _number(
            get("max_events_per_device", 50_000),
            "fleet.max_events_per_device", source, integer=True, lo=1),
    }


def _isp_label(key, path: str, source) -> ISP:
    """Accept 'ISP-A' (the label) or the bare letter 'A'."""
    text = str(key)
    for isp in ISP:
        if text in (isp.label, isp.name):
            return isp
    raise PackError(
        f"unknown carrier {key!r}; valid carriers: "
        f"{', '.join(isp.label for isp in ISP)}",
        path=path, source=source,
    )


def _validate_carriers(raw: dict, source) -> dict:
    section = _require_mapping(raw.get("carriers", {}), "carriers",
                               source)
    _reject_unknown(section, _CARRIER_KEYS, "carriers", source)
    policy = _string(section.get("policy", POLICY_OPERATOR),
                     "carriers.policy", source,
                     choices=CARRIER_POLICIES)
    normalized: dict = {"policy": policy}
    if policy == POLICY_USER:
        if "weights" not in section:
            raise PackError(
                "policy 'user-defined' requires explicit weights",
                path="carriers.weights", source=source,
            )
        weights = _require_mapping(section["weights"],
                                   "carriers.weights", source)
        resolved: dict[str, float] = {isp.label: 0.0 for isp in ISP}
        for key, value in weights.items():
            isp = _isp_label(key, _join("carriers.weights", str(key)),
                             source)
            resolved[isp.label] = _number(
                value, _join("carriers.weights", str(key)), source,
                lo=0)
        if sum(resolved.values()) <= 0:
            raise PackError("weights must have a positive sum",
                            path="carriers.weights", source=source)
        normalized["weights"] = {k: resolved[k]
                                 for k in sorted(resolved)}
    elif "weights" in section:
        raise PackError(
            f"weights are only valid with policy '{POLICY_USER}' "
            f"(got policy {policy!r})",
            path="carriers.weights", source=source,
        )
    return normalized


def _carrier_weights(carriers: dict) -> tuple[float, ...] | None:
    """The ScenarioConfig ``isp_weights`` a carriers block implies."""
    policy = carriers["policy"]
    if policy == POLICY_OPERATOR:
        return None
    if policy == POLICY_USER:
        return tuple(carriers["weights"][isp.label] for isp in ISP)
    # quality-first: subscriber share discounted by residual hazard —
    # users migrate toward the reliable carriers (iCellular).
    return tuple(
        ISP_PROFILES[isp].subscriber_share
        / behavior.ISP_HAZARD_FACTOR[isp]
        for isp in ISP
    )


def _validate_five_g(raw: dict, source) -> dict:
    section = _require_mapping(raw.get("five_g", {}), "five_g", source)
    _reject_unknown(section, _FIVE_G_KEYS, "five_g", source)
    return {
        "coverage_hole_factor": _number(
            section.get("coverage_hole_factor", 1.0),
            "five_g.coverage_hole_factor", source, lo=0, lo_open=True),
    }


def _validate_topology(raw: dict, fleet: dict, source) -> dict:
    section = _require_mapping(raw.get("topology", {}), "topology",
                               source)
    _reject_unknown(section, _TOPOLOGY_KEYS, "topology", source)
    get = section.get
    normalized = {
        "base_stations": _number(
            get("base_stations", max(400, fleet["devices"] // 2)),
            "topology.base_stations", source, integer=True,
            lo=len(DeploymentClass)),
        "seed": _number(get("seed", fleet["seed"] + 1),
                        "topology.seed", source, integer=True),
        "propensity_sigma": _number(get("propensity_sigma", 1.8),
                                    "topology.propensity_sigma",
                                    source, lo=0, lo_open=True),
        "hub_propensity_factor": _number(
            get("hub_propensity_factor", 3.0),
            "topology.hub_propensity_factor", source,
            lo=0, lo_open=True),
        "cdma_fraction": _number(get("cdma_fraction", 0.03),
                                 "topology.cdma_fraction", source,
                                 lo=0, hi=1),
        "infrastructure_sharing": _boolean(
            get("infrastructure_sharing", False),
            "topology.infrastructure_sharing", source),
        "sharing_density_factor": _number(
            get("sharing_density_factor", 0.55),
            "topology.sharing_density_factor", source,
            lo=0, hi=1, lo_open=True),
    }
    if "deployment_mix" in section:
        mix = _require_mapping(section["deployment_mix"],
                               "topology.deployment_mix", source)
        valid = {cls.value.lower(): cls.value
                 for cls in DeploymentClass}
        resolved: dict[str, float] = {}
        for key, value in mix.items():
            path = _join("topology.deployment_mix", str(key))
            name = valid.get(str(key).lower())
            if name is None:
                close = difflib.get_close_matches(
                    str(key).lower(), list(valid), n=1)
                hint = f" (did you mean {close[0]!r}?)" if close else ""
                raise PackError(
                    f"unknown deployment class {key!r}{hint}; valid "
                    f"classes: {', '.join(sorted(valid))}",
                    path=path, source=source,
                )
            resolved[name.lower()] = _number(value, path, source, lo=0)
        if not resolved or sum(resolved.values()) <= 0:
            raise PackError(
                "deployment_mix needs at least one positive weight",
                path="topology.deployment_mix", source=source,
            )
        normalized["deployment_mix"] = {
            k: resolved[k] for k in sorted(resolved)
        }
    return normalized


def _validate_chaos(raw: dict, source) -> dict | None:
    if "chaos" not in raw:
        return None
    section = _require_mapping(raw["chaos"], "chaos", source)
    _reject_unknown(section, _CHAOS_KEYS, "chaos", source)
    get = section.get
    normalized = {
        "enabled": _boolean(get("enabled", True), "chaos.enabled",
                            source),
        "seed": _number(get("seed", 1337), "chaos.seed", source,
                        integer=True),
        "drop_rate": _number(get("drop_rate", 0.0),
                             "chaos.drop_rate", source, lo=0, hi=1),
        "duplicate_rate": _number(get("duplicate_rate", 0.0),
                                  "chaos.duplicate_rate", source,
                                  lo=0, hi=1),
        "reorder_rate": _number(get("reorder_rate", 0.0),
                                "chaos.reorder_rate", source,
                                lo=0, hi=1),
        "corrupt_rate": _number(get("corrupt_rate", 0.0),
                                "chaos.corrupt_rate", source,
                                lo=0, hi=1),
        "wifi_availability": _number(get("wifi_availability", 0.35),
                                     "chaos.wifi_availability",
                                     source, lo=0, hi=1),
        "max_attempts": _number(get("max_attempts", 10),
                                "chaos.max_attempts", source,
                                integer=True, lo=1),
        "base_backoff_s": _number(get("base_backoff_s", 2.0),
                                  "chaos.base_backoff_s", source,
                                  lo=0),
        "backoff_multiplier": _number(get("backoff_multiplier", 2.0),
                                      "chaos.backoff_multiplier",
                                      source, lo=1),
        "max_backoff_s": _number(get("max_backoff_s", 120.0),
                                 "chaos.max_backoff_s", source, lo=0),
        "jitter": _number(get("jitter", 0.5), "chaos.jitter", source,
                          lo=0),
        "drain_interval_s": _number(get("drain_interval_s", 30.0),
                                    "chaos.drain_interval_s", source,
                                    lo=0, lo_open=True),
        "max_drain_rounds": _number(get("max_drain_rounds", 400),
                                    "chaos.max_drain_rounds", source,
                                    integer=True, lo=1),
    }
    if "max_spool_bytes" in section:
        value = section["max_spool_bytes"]
        if value is not None:
            value = _number(value, "chaos.max_spool_bytes", source,
                            integer=True, lo=1)
        normalized["max_spool_bytes"] = value
    else:
        normalized["max_spool_bytes"] = 4 * 1024 * 1024

    outages: list[list[float]] = []
    for i, window in enumerate(section.get("outages", []) or []):
        path = f"chaos.outages[{i}]"
        if (not isinstance(window, (list, tuple))
                or len(window) != 2):
            raise PackError(
                f"expected a [start_s, end_s] pair, got {window!r}",
                path=path, source=source,
            )
        start = _number(window[0], path + "[0]", source, lo=0)
        end = _number(window[1], path + "[1]", source, lo=0)
        if end <= start:
            raise PackError(
                f"outage window ({start}, {end}) is empty",
                path=path, source=source,
            )
        outages.append([start, end])
    if "outage_waves" in section:
        waves = _require_mapping(section["outage_waves"],
                                 "chaos.outage_waves", source)
        _reject_unknown(waves, _WAVE_KEYS, "chaos.outage_waves",
                        source)
        count = _number(waves.get("count", 1),
                        "chaos.outage_waves.count", source,
                        integer=True, lo=1)
        first = _number(waves.get("first_start_s", 0.0),
                        "chaos.outage_waves.first_start_s", source,
                        lo=0)
        duration = _number(waves.get("duration_s"),
                           "chaos.outage_waves.duration_s", source,
                           lo=0, lo_open=True) \
            if "duration_s" in waves else None
        if duration is None:
            raise PackError("duration_s is required",
                            path="chaos.outage_waves.duration_s",
                            source=source)
        spacing = _number(waves.get("spacing_s", duration * 2),
                          "chaos.outage_waves.spacing_s", source,
                          lo=0, lo_open=True)
        # A recovery-wave profile: repeated regional blackouts, each
        # followed by a re-upload surge when service returns.
        for i in range(count):
            start = first + i * spacing
            outages.append([start, start + duration])
    normalized["outages"] = sorted(outages)
    return normalized


def _validate_run(raw: dict, source) -> dict:
    section = _require_mapping(raw.get("run", {}), "run", source)
    _reject_unknown(section, _RUN_KEYS, "run", source)
    normalized = {
        "engine": _string(section.get("engine", ENGINE_BATCH),
                          "run.engine", source,
                          choices=(ENGINE_SERIAL, ENGINE_BATCH)),
    }
    for key in ("workers", "shards"):
        if key in section and section[key] is not None:
            normalized[key] = _number(section[key], _join("run", key),
                                      source, integer=True, lo=1)
    return normalized


# ---------------------------------------------------------------------------
# assembly
# ---------------------------------------------------------------------------


def pack_from_dict(raw: dict, *, source: str | None = None) -> ScenarioPack:
    """Validate a pack document and compose its scenario.

    Raises :class:`PackError` (with the full key path and, when given,
    the source file) on the first problem found — never a raw
    ``KeyError``/``TypeError`` mid-run.
    """
    raw = _require_mapping(raw, "", source)
    _reject_unknown(raw, _TOP_KEYS, "", source)

    version = _number(raw.get("pack", SCHEMA_VERSION), "pack", source,
                      integer=True)
    if version != SCHEMA_VERSION:
        raise PackError(
            f"unsupported pack schema version {version} "
            f"(this build reads v{SCHEMA_VERSION})",
            path="pack", source=source,
        )
    if "name" not in raw:
        raise PackError("a pack needs a name", path="name",
                        source=source)
    name = _string(raw["name"], "name", source)
    if not _NAME_RE.match(name):
        raise PackError(
            f"name {name!r} must be lowercase letters/digits/"
            "dashes/underscores (it names directories and report "
            "rows)",
            path="name", source=source,
        )
    description = _string(raw.get("description", ""), "description",
                          source)
    tags_raw = raw.get("tags", [])
    if not isinstance(tags_raw, (list, tuple)):
        raise PackError(f"expected a list of strings, got {tags_raw!r}",
                        path="tags", source=source)
    tags = tuple(_string(tag, f"tags[{i}]", source)
                 for i, tag in enumerate(tags_raw))

    fleet = _validate_fleet(raw, source)
    carriers = _validate_carriers(raw, source)
    five_g = _validate_five_g(raw, source)
    topology = _validate_topology(raw, fleet, source)
    chaos = _validate_chaos(raw, source)
    run = _validate_run(raw, source)

    data = {
        "pack": SCHEMA_VERSION,
        "name": name,
        "description": description,
        "tags": list(tags),
        "fleet": fleet,
        "carriers": carriers,
        "five_g": five_g,
        "topology": topology,
        "run": run,
    }
    if chaos is not None:
        data["chaos"] = chaos

    hole = five_g["coverage_hole_factor"]
    deployment_mix = None
    if "deployment_mix" in topology:
        deployment_mix = tuple(
            (cls.upper(), weight)
            for cls, weight in topology["deployment_mix"].items()
        )
    chaos_config = None
    if chaos is not None:
        chaos_config = ChaosConfig(
            enabled=chaos["enabled"],
            seed=chaos["seed"],
            drop_rate=chaos["drop_rate"],
            duplicate_rate=chaos["duplicate_rate"],
            reorder_rate=chaos["reorder_rate"],
            corrupt_rate=chaos["corrupt_rate"],
            outages=tuple((start, end)
                          for start, end in chaos["outages"]),
            max_attempts=chaos["max_attempts"],
            base_backoff_s=chaos["base_backoff_s"],
            backoff_multiplier=chaos["backoff_multiplier"],
            max_backoff_s=chaos["max_backoff_s"],
            jitter=chaos["jitter"],
            max_spool_bytes=chaos["max_spool_bytes"],
            wifi_availability=chaos["wifi_availability"],
            drain_interval_s=chaos["drain_interval_s"],
            max_drain_rounds=chaos["max_drain_rounds"],
        )
    try:
        scenario = ScenarioConfig(
            n_devices=fleet["devices"],
            seed=fleet["seed"],
            study_months=fleet["study_months"],
            arm=_ARMS[fleet["arm"]],
            frequency_scale=fleet["frequency_scale"],
            false_positive_rate=fleet["false_positive_rate"],
            max_events_per_device=fleet["max_events_per_device"],
            engine=run["engine"],
            isp_weights=_carrier_weights(carriers),
            ambient_factor_5g=(
                None if hole == 1.0
                else behavior.AMBIENT_FRACTION_5G * hole
            ),
            chaos=chaos_config,
            topology=TopologyConfig(
                n_base_stations=topology["base_stations"],
                seed=topology["seed"],
                propensity_sigma=topology["propensity_sigma"],
                hub_propensity_factor=topology["hub_propensity_factor"],
                cdma_fraction=topology["cdma_fraction"],
                infrastructure_sharing=topology[
                    "infrastructure_sharing"],
                sharing_density_factor=topology[
                    "sharing_density_factor"],
                deployment_mix=deployment_mix,
            ),
        )
    except ValueError as exc:
        # Anything the dataclasses reject beyond the schema's ranges
        # still surfaces as a parse-time pack error.
        raise PackError(str(exc), source=source) from exc
    return ScenarioPack(
        name=name,
        description=description,
        tags=tags,
        scenario=scenario,
        workers=run.get("workers"),
        shards=run.get("shards"),
        data=data,
        source=source,
    )


def load_pack(path: str | Path) -> ScenarioPack:
    """Load and validate one pack file (``.yaml``/``.yml``/``.json``)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise PackError(f"cannot read pack: {exc}",
                        source=str(path)) from exc
    if path.suffix.lower() == ".json":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PackError(f"invalid JSON: {exc}",
                            source=str(path)) from exc
    else:
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - env-specific
            raise PackError(
                "YAML packs need the 'pyyaml' package (pip install "
                "pyyaml), or rewrite the pack as JSON",
                source=str(path),
            ) from exc
        try:
            raw = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise PackError(f"invalid YAML: {exc}",
                            source=str(path)) from exc
    if raw is None:
        raise PackError("pack file is empty", source=str(path))
    return pack_from_dict(raw, source=str(path))


def resolve_pack_paths(specs: list[str]) -> list[Path]:
    """Expand CLI pack arguments into concrete pack files.

    Each spec may be a pack file, or a directory whose immediate
    ``*.yaml`` / ``*.yml`` / ``*.json`` files are taken in sorted
    order.  Order is preserved across specs; duplicates (same resolved
    path) are dropped.
    """
    resolved: list[Path] = []
    seen: set[Path] = set()

    def add(path: Path) -> None:
        real = path.resolve()
        if real not in seen:
            seen.add(real)
            resolved.append(path)

    for spec in specs:
        path = Path(spec)
        if path.is_dir():
            entries = sorted(
                entry for entry in path.iterdir()
                if entry.suffix.lower() in (".yaml", ".yml", ".json")
            )
            if not entries:
                raise PackError("directory contains no pack files "
                                "(*.yaml, *.yml, *.json)",
                                source=str(path))
            for entry in entries:
                add(entry)
        elif path.exists():
            add(path)
        else:
            raise PackError("no such pack file or directory",
                            source=str(path))
    return resolved
