"""The checkpointed scenario-sweep runner.

``run_sweep`` fans a list of validated packs through the shard
supervisor — **one fingerprint-keyed, checkpointed run per pack** —
then folds every pack's exact ``metadata["analysis"]`` block into the
cross-scenario comparison table and landscape report of
:mod:`repro.analysis.landscape`.

Layout of a sweep output directory::

    <out>/landscape.md            the rendered landscape report
    <out>/landscape.json          its JSON twin
    <out>/packs/<name>/result.json     deterministic pack result
    <out>/packs/<name>/metrics.json    deterministic obs snapshot
    <out>/packs/<name>/execution.json  volatile timing/supervision
    <out>/packs/<name>/checkpoint/     the engine's shard spool

Durability contract (the ``sweep-smoke`` CI job): ``result.json`` is
written atomically and carries the pack's content fingerprint.  A
sweep killed mid-flight and restarted with ``resume=True``

* **skips** every pack whose ``result.json`` is complete and matches
  the current fingerprint (its stored result is reused verbatim — the
  simulation never reruns),
* **resumes** the in-flight pack from its shard checkpoints, and
* produces ``landscape.md`` / ``landscape.json`` / ``result.json``
  files byte-identical to an undisturbed control sweep — every
  deterministic output excludes wall-clock data, which lives in
  ``execution.json`` only.

Editing a pack changes its fingerprint; a resumed sweep then reruns
that pack from scratch instead of serving stale results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import replace
from pathlib import Path

from repro.analysis.columnar import analysis_summary
from repro.analysis.landscape import (
    ScenarioRow,
    comparison_table,
    render_scenario_landscape,
    scenario_landscape_dict,
    scenario_row,
)
from repro.dataset.store import Dataset
from repro.fleet.simulator import FleetSimulator
from repro.parallel.checkpoint import CheckpointMismatchError
from repro.scenarios.pack import PackError, ScenarioPack

#: Bumped when the result.json layout changes incompatibly.
RESULT_FORMAT = 1

STATUS_RAN = "ran"
STATUS_SKIPPED = "skipped"
STATUS_RERUN = "rerun (pack changed)"


@dataclasses.dataclass(frozen=True)
class PackOutcome:
    """What happened to one pack during a sweep."""

    pack: ScenarioPack
    status: str
    payload: dict
    pack_dir: Path


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """Everything one sweep produced."""

    out_dir: Path
    outcomes: list[PackOutcome]
    table: str
    report_md_path: Path
    report_json_path: Path

    @property
    def skipped(self) -> list[str]:
        return [outcome.pack.name for outcome in self.outcomes
                if outcome.status == STATUS_SKIPPED]

    @property
    def ran(self) -> list[str]:
        return [outcome.pack.name for outcome in self.outcomes
                if outcome.status != STATUS_SKIPPED]


def record_digest(dataset: Dataset) -> str:
    """SHA-256 over the dataset's records (metadata excluded)."""
    hasher = hashlib.sha256()
    for group in (dataset.devices, dataset.base_stations,
                  dataset.failures, dataset.transitions):
        for record in group:
            hasher.update(
                json.dumps(record.to_dict(), sort_keys=True).encode()
            )
    return hasher.hexdigest()


def _atomic_write_text(path: Path, text: str) -> None:
    """Readers (and a resumed sweep) see old or new, never half."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=path.name + ".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _dump(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _load_result(path: Path) -> dict | None:
    """A complete stored pack result, or None (absent/torn/foreign)."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict) or not payload.get("complete"):
        return None
    if payload.get("format") != RESULT_FORMAT:
        return None
    return payload


def _check_packs(packs: list[ScenarioPack]) -> None:
    if not packs:
        raise PackError("a sweep needs at least one pack")
    seen: dict[str, ScenarioPack] = {}
    for pack in packs:
        other = seen.get(pack.name)
        if other is not None:
            raise PackError(
                f"duplicate pack name {pack.name!r} "
                f"(also defined in {other.source or 'a dict pack'}); "
                "pack names key output directories and report rows",
                source=pack.source,
            )
        seen[pack.name] = pack


def _run_pack(pack: ScenarioPack, pack_dir: Path, *,
              workers: int | None, shards: int | None,
              engine_resume: bool) -> dict:
    """Simulate one pack through the checkpointed sharded engine."""
    scenario = replace(pack.scenario, metrics=True)
    effective_workers = pack.workers or workers or 1
    effective_shards = pack.shards or shards
    simulator = FleetSimulator(scenario)
    checkpoint_dir = pack_dir / "checkpoint"
    try:
        dataset = simulator.run(
            workers=effective_workers,
            n_shards=effective_shards,
            checkpoint_dir=checkpoint_dir,
            resume=engine_resume and checkpoint_dir.exists(),
        )
    except CheckpointMismatchError:
        # The shard spool belongs to an older version of this pack
        # (edited mid-sweep): restart the pack from scratch.
        dataset = simulator.run(
            workers=effective_workers,
            n_shards=effective_shards,
            checkpoint_dir=checkpoint_dir,
            resume=False,
        )

    metrics = dataset.metadata.get("metrics") or {}
    payload = {
        "format": RESULT_FORMAT,
        "complete": True,
        "fingerprint": pack.fingerprint(),
        "pack": pack.data,
        "record_digest": record_digest(dataset),
        "analysis": dataset.metadata["analysis"],
        "summary": analysis_summary(dataset.metadata["analysis"]),
        "counters": dict(metrics.get("counters") or {}),
        "telemetry": dataset.metadata.get("telemetry"),
        "workers": effective_workers,
        "engine": scenario.engine,
    }
    # Wall-clock facts are real but non-deterministic; they live in a
    # separate file so every byte of result.json is reproducible.
    execution = dataset.metadata.get("execution")
    if execution is not None:
        _atomic_write_text(pack_dir / "execution.json",
                           _dump({"execution": execution}))
    _atomic_write_text(pack_dir / "metrics.json", _dump(metrics))
    _atomic_write_text(pack_dir / "result.json", _dump(payload))
    return payload


def _row_for(pack: ScenarioPack, payload: dict) -> ScenarioRow:
    return scenario_row(
        pack.name,
        payload["analysis"],
        description=pack.description,
        arm=pack.scenario.arm,
        engine=payload.get("engine", pack.scenario.engine),
        tags=pack.tags,
        counters=payload.get("counters") or {},
        telemetry=payload.get("telemetry"),
    )


def run_sweep(
    packs: list[ScenarioPack],
    out_dir: str | Path,
    *,
    workers: int | None = None,
    shards: int | None = None,
    resume: bool = False,
    progress=None,
) -> SweepResult:
    """Run every pack and render the cross-scenario landscape.

    ``workers`` / ``shards`` are sweep-wide defaults; a pack's own
    ``run.workers`` / ``run.shards`` override them.  With ``resume``,
    packs whose stored result matches their current fingerprint are
    skipped (their results reused byte-identically) and the in-flight
    pack continues from its shard checkpoints.
    """
    _check_packs(packs)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    say = progress or (lambda message: None)

    outcomes: list[PackOutcome] = []
    for index, pack in enumerate(packs, start=1):
        pack_dir = out_dir / "packs" / pack.name
        fingerprint = pack.fingerprint()
        stored = _load_result(pack_dir / "result.json")
        prefix = f"[{index}/{len(packs)}] {pack.name}"
        if stored is not None and resume:
            if stored.get("fingerprint") == fingerprint:
                say(f"{prefix}: skipped (complete, fingerprint "
                    f"{fingerprint[:12]})")
                outcomes.append(PackOutcome(pack, STATUS_SKIPPED,
                                            stored, pack_dir))
                continue
            say(f"{prefix}: pack changed since the stored result — "
                "rerunning")
            payload = _run_pack(pack, pack_dir, workers=workers,
                                shards=shards, engine_resume=False)
            outcomes.append(PackOutcome(pack, STATUS_RERUN, payload,
                                        pack_dir))
            continue
        say(f"{prefix}: running ({pack.scenario.n_devices} devices, "
            f"engine {pack.scenario.engine})")
        payload = _run_pack(pack, pack_dir, workers=workers,
                            shards=shards, engine_resume=resume)
        outcomes.append(PackOutcome(pack, STATUS_RAN, payload,
                                    pack_dir))

    rows = [_row_for(outcome.pack, outcome.payload)
            for outcome in outcomes]
    table = comparison_table(rows)
    report_md = out_dir / "landscape.md"
    report_json = out_dir / "landscape.json"
    _atomic_write_text(report_md, render_scenario_landscape(rows))
    _atomic_write_text(report_json, _dump(scenario_landscape_dict(rows)))
    say(f"landscape report: {report_md} (+ {report_json.name})")
    return SweepResult(
        out_dir=out_dir,
        outcomes=outcomes,
        table=table,
        report_md_path=report_md,
        report_json_path=report_json,
    )
