"""Declarative scenario packs and landscape sweeps.

The fleet layer runs *one* scenario; this package turns the repo into
a scenario **matrix**.  A pack is a small declarative document (YAML,
JSON, or a plain dict) that composes existing knobs — fleet size and
mix, BS-class densities for dense-hub flash crowds, chaos profiles for
regional outages and recovery waves, multi-carrier device populations
with a carrier-selection policy, and 5G coverage-hole profiles — into
a named, validated :class:`~repro.fleet.scenario.ScenarioConfig` plus
per-pack run options.

Validation happens entirely at parse time: unknown keys and
out-of-range values are rejected with the full key path
(``chaos.drop_rate: must be within [0, 1], got 1.5``) before any
simulation starts, mirroring the CLI's parse-time count validation.

:func:`~repro.scenarios.sweep.run_sweep` fans a list of packs through
the checkpointed shard supervisor — one fingerprint-keyed run per
pack, resumable and skippable — folds each pack's
``metadata["analysis"]`` block into a cross-scenario comparison
table, and renders a landscape report (markdown + JSON) via
:mod:`repro.analysis.landscape`.  See ``docs/scenarios.md``.
"""

from repro.scenarios.pack import (
    PackError,
    ScenarioPack,
    load_pack,
    pack_fingerprint,
    pack_from_dict,
    pack_to_dict,
    resolve_pack_paths,
)
from repro.scenarios.sweep import (
    PackOutcome,
    SweepResult,
    run_sweep,
)

__all__ = [
    "PackError",
    "ScenarioPack",
    "load_pack",
    "pack_fingerprint",
    "pack_from_dict",
    "pack_to_dict",
    "resolve_pack_paths",
    "PackOutcome",
    "SweepResult",
    "run_sweep",
]
