"""Record schemas for the collected dataset.

The backend receives three record streams from the fleet:

* :class:`DeviceRecord` — one per opt-in device, with its hardware model
  attributes and its per-(RAT, level) connected-time exposure (needed by
  the *normalized* prevalence of Figs. 15-16);
* :class:`FailureRecord` — one per true failure event, carrying the
  in-situ context Android-MOD records (Sec. 2.2);
* :class:`TransitionRecord` — one per RAT-transition decision, used by
  Fig. 17 and by the A/B evaluation of the stability-compatible policy.

Records are slotted dataclasses: a nationwide run holds hundreds of
thousands of them in memory.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

#: Evaluation arm labels.
ARM_VANILLA = "vanilla"
ARM_PATCHED = "patched"


def record_identity(data: dict) -> str:
    """Content hash identifying one record across retried uploads.

    The device-side spooler stamps every payload with this key and the
    backend deduplicates on it, so the two ends of a lossy transport
    agree on what "the same record" means without a shared counter.
    """
    blob = json.dumps(
        {key: data[key] for key in sorted(data)},
        sort_keys=True, default=str,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(slots=True)
class DeviceRecord:
    """One opt-in device."""

    device_id: int
    model: int
    android_version: str
    has_5g: bool
    isp: str
    arm: str = ARM_VANILLA
    #: Connected seconds by (RAT label, signal level), e.g. ("4G", 3).
    exposure_s: dict = field(default_factory=dict)

    @property
    def total_connected_s(self) -> float:
        return sum(self.exposure_s.values())

    def to_dict(self) -> dict:
        data = asdict(self)
        data["exposure_s"] = {
            f"{rat}:{level}": seconds
            for (rat, level), seconds in self.exposure_s.items()
        }
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "DeviceRecord":
        exposure = {}
        for key, seconds in data.get("exposure_s", {}).items():
            rat, level = key.rsplit(":", 1)
            exposure[(rat, int(level))] = seconds
        return cls(
            device_id=data["device_id"],
            model=data["model"],
            android_version=data["android_version"],
            has_5g=data["has_5g"],
            isp=data["isp"],
            arm=data.get("arm", ARM_VANILLA),
            exposure_s=exposure,
        )


@dataclass(slots=True)
class FailureRecord:
    """One true (filter-surviving) cellular failure."""

    device_id: int
    model: int
    android_version: str
    has_5g: bool
    isp: str
    failure_type: str
    start_time: float
    duration_s: float
    bs_id: int
    rat: str  # "2G".."5G"
    signal_level: int  # 0..5
    deployment: str
    error_code: str | None = None
    #: Recovery resolver for Data_Stall records (see android.recovery).
    resolved_by: int | None = None
    stages_executed: int = 0
    #: True when the failure followed a RAT transition.
    post_transition: bool = False
    arm: str = ARM_VANILLA

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FailureRecord":
        return cls(**data)


@dataclass(slots=True)
class BaseStationRecord:
    """One BS of the topology inventory (the Fig. 14 denominator)."""

    bs_id: int
    isp: str
    rats: tuple[str, ...]  # supported generations, e.g. ("2G", "4G")
    deployment: str

    def to_dict(self) -> dict:
        data = asdict(self)
        data["rats"] = list(self.rats)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "BaseStationRecord":
        return cls(
            bs_id=data["bs_id"],
            isp=data["isp"],
            rats=tuple(data["rats"]),
            deployment=data["deployment"],
        )


@dataclass(slots=True)
class TransitionRecord:
    """One RAT-transition decision and its aftermath."""

    device_id: int
    from_rat: str
    from_level: int
    to_rat: str
    to_level: int
    #: False when the policy vetoed the move (device stayed put).
    executed: bool
    #: Whether a failure occurred in the post-decision window.
    failed_after: bool
    arm: str = ARM_VANILLA

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TransitionRecord":
        return cls(**data)
