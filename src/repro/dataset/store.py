"""The in-memory dataset and its gzip-JSONL persistence.

The backend of the study is, analytically speaking, three record streams
plus metadata; this module gives them a home.  Persistence uses one
gzip-compressed JSON-lines file with a type tag per line, mirroring the
compressed uploads of Sec. 2.2 at the container level.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.dataset.records import (
    BaseStationRecord,
    DeviceRecord,
    FailureRecord,
    TransitionRecord,
)


@dataclass
class Dataset:
    """Everything a study run collected."""

    devices: list[DeviceRecord] = field(default_factory=list)
    base_stations: list[BaseStationRecord] = field(default_factory=list)
    failures: list[FailureRecord] = field(default_factory=list)
    transitions: list[TransitionRecord] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    # -- convenience -------------------------------------------------------

    @property
    def n_devices(self) -> int:
        return len(self.devices)

    @property
    def n_failures(self) -> int:
        return len(self.failures)

    def failures_of_type(self, failure_type: str) -> list[FailureRecord]:
        return [f for f in self.failures
                if f.failure_type == failure_type]

    def devices_by_model(self) -> dict[int, list[DeviceRecord]]:
        grouped: dict[int, list[DeviceRecord]] = {}
        for device in self.devices:
            grouped.setdefault(device.model, []).append(device)
        return grouped

    def failures_by_device(self) -> dict[int, list[FailureRecord]]:
        grouped: dict[int, list[FailureRecord]] = {}
        for failure in self.failures:
            grouped.setdefault(failure.device_id, []).append(failure)
        return grouped

    def merge(self, other: "Dataset") -> "Dataset":
        """A new dataset containing both runs' records (A/B analysis).

        Base stations are deduplicated by id (both arms usually share
        one topology, but arms with disjoint inventories keep every
        station).  Each arm's full metadata survives under
        ``merged_from``, and the exact-merge blocks (``metrics``,
        ``analysis``) are re-merged to the top level so a merged
        dataset stays exportable like a single run.
        """
        seen_stations = {bs.bs_id for bs in self.base_stations}
        base_stations = self.base_stations + [
            bs for bs in other.base_stations
            if bs.bs_id not in seen_stations
        ]
        metadata: dict = {
            "merged_from": [self.metadata, other.metadata],
        }
        metrics = [arm.get("metrics") for arm in (self.metadata,
                                                  other.metadata)]
        metrics = [block for block in metrics if block]
        if metrics:
            from repro.obs import deterministic_view, merge_snapshots

            metadata["metrics"] = deterministic_view(
                merge_snapshots(metrics)
            )
        analysis = [arm.get("analysis") for arm in (self.metadata,
                                                    other.metadata)]
        analysis = [block for block in analysis if block]
        if analysis:
            from repro.analysis.columnar import merge_analysis_blocks

            metadata["analysis"] = merge_analysis_blocks(analysis)
        return Dataset(
            devices=self.devices + other.devices,
            base_stations=base_stations,
            failures=self.failures + other.failures,
            transitions=self.transitions + other.transitions,
            metadata=metadata,
        )

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> dict:
        """Drop the cached columnar view: it is rebuildable on demand
        and would otherwise bloat checkpoints and worker result pipes
        (see :mod:`repro.analysis.columnar`)."""
        state = dict(self.__dict__)
        state.pop("_columnar", None)
        return state


def save_dataset(dataset: Dataset, path: str | Path) -> None:
    """Write ``dataset`` as gzip JSON-lines to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        handle.write(json.dumps({"kind": "metadata",
                                 "data": dataset.metadata}) + "\n")
        for device in dataset.devices:
            handle.write(json.dumps({"kind": "device",
                                     "data": device.to_dict()}) + "\n")
        for station in dataset.base_stations:
            handle.write(json.dumps({"kind": "base_station",
                                     "data": station.to_dict()}) + "\n")
        for failure in dataset.failures:
            handle.write(json.dumps({"kind": "failure",
                                     "data": failure.to_dict()}) + "\n")
        for transition in dataset.transitions:
            handle.write(json.dumps({"kind": "transition",
                                     "data": transition.to_dict()}) + "\n")


def load_dataset(path: str | Path) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    dataset = Dataset()
    parsers = {
        "device": (dataset.devices, DeviceRecord.from_dict),
        "base_station": (dataset.base_stations,
                         BaseStationRecord.from_dict),
        "failure": (dataset.failures, FailureRecord.from_dict),
        "transition": (dataset.transitions, TransitionRecord.from_dict),
    }
    with gzip.open(Path(path), "rt", encoding="utf-8") as handle:
        for line in handle:
            entry = json.loads(line)
            kind = entry["kind"]
            if kind == "metadata":
                dataset.metadata = entry["data"]
                continue
            target, parser = parsers[kind]
            target.append(parser(entry["data"]))
    return dataset
