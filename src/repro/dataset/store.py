"""The in-memory dataset and its gzip-JSONL persistence.

The backend of the study is, analytically speaking, three record streams
plus metadata; this module gives them a home.  Persistence uses one
gzip-compressed JSON-lines file with a type tag per line, mirroring the
compressed uploads of Sec. 2.2 at the container level.
"""

from __future__ import annotations

import gzip
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.dataset.records import (
    BaseStationRecord,
    DeviceRecord,
    FailureRecord,
    TransitionRecord,
)


@dataclass
class Dataset:
    """Everything a study run collected."""

    devices: list[DeviceRecord] = field(default_factory=list)
    base_stations: list[BaseStationRecord] = field(default_factory=list)
    failures: list[FailureRecord] = field(default_factory=list)
    transitions: list[TransitionRecord] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    # -- convenience -------------------------------------------------------

    @property
    def n_devices(self) -> int:
        return len(self.devices)

    @property
    def n_failures(self) -> int:
        return len(self.failures)

    def failures_of_type(self, failure_type: str) -> list[FailureRecord]:
        return [f for f in self.failures
                if f.failure_type == failure_type]

    def devices_by_model(self) -> dict[int, list[DeviceRecord]]:
        grouped: dict[int, list[DeviceRecord]] = {}
        for device in self.devices:
            grouped.setdefault(device.model, []).append(device)
        return grouped

    def failures_by_device(self) -> dict[int, list[FailureRecord]]:
        grouped: dict[int, list[FailureRecord]] = {}
        for failure in self.failures:
            grouped.setdefault(failure.device_id, []).append(failure)
        return grouped

    def merge(self, other: "Dataset") -> "Dataset":
        """A new dataset containing both runs' records (A/B analysis).

        Base stations are deduplicated by id (both arms usually share
        one topology, but arms with disjoint inventories keep every
        station).  Each arm's full metadata survives under
        ``merged_from``, and the exact-merge blocks (``metrics``,
        ``analysis``) are re-merged to the top level so a merged
        dataset stays exportable like a single run.
        """
        seen_stations = {bs.bs_id for bs in self.base_stations}
        base_stations = self.base_stations + [
            bs for bs in other.base_stations
            if bs.bs_id not in seen_stations
        ]
        metadata: dict = {
            "merged_from": [self.metadata, other.metadata],
        }
        metrics = [arm.get("metrics") for arm in (self.metadata,
                                                  other.metadata)]
        metrics = [block for block in metrics if block]
        if metrics:
            from repro.obs import deterministic_view, merge_snapshots

            metadata["metrics"] = deterministic_view(
                merge_snapshots(metrics)
            )
        analysis = [arm.get("analysis") for arm in (self.metadata,
                                                    other.metadata)]
        analysis = [block for block in analysis if block]
        if analysis:
            from repro.analysis.columnar import merge_analysis_blocks

            metadata["analysis"] = merge_analysis_blocks(analysis)
        return Dataset(
            devices=self.devices + other.devices,
            base_stations=base_stations,
            failures=self.failures + other.failures,
            transitions=self.transitions + other.transitions,
            metadata=metadata,
        )

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> dict:
        """Drop the cached columnar view: it is rebuildable on demand
        and would otherwise bloat checkpoints and worker result pipes
        (see :mod:`repro.analysis.columnar`)."""
        state = dict(self.__dict__)
        state.pop("_columnar", None)
        return state


class DatasetCorruptError(RuntimeError):
    """A dataset file is unreadable (truncated or damaged container)."""


def save_dataset(dataset: Dataset, path: str | Path) -> None:
    """Write ``dataset`` as gzip JSON-lines to ``path``, atomically.

    The file is staged next to the target and renamed into place only
    after the compressed stream is complete and fsynced — a crash (or
    full disk) mid-save leaves any previous ``path`` intact instead of
    a truncated gzip that fails to load.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as raw:
            # mtime=0 keeps the byte stream a pure function of the
            # dataset (reproducible artifacts digest-compare equal).
            with gzip.GzipFile(fileobj=raw, mode="wb",
                               mtime=0) as handle:
                def emit(kind: str, data: dict) -> None:
                    handle.write(
                        (json.dumps({"kind": kind, "data": data})
                         + "\n").encode("utf-8")
                    )

                emit("metadata", dataset.metadata)
                for device in dataset.devices:
                    emit("device", device.to_dict())
                for station in dataset.base_stations:
                    emit("base_station", station.to_dict())
                for failure in dataset.failures:
                    emit("failure", failure.to_dict())
                for transition in dataset.transitions:
                    emit("transition", transition.to_dict())
            raw.flush()
            os.fsync(raw.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_dataset(path: str | Path) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`.

    Records with an unknown ``kind`` tag (written by a newer schema)
    are skipped, not fatal; the skip count lands in
    ``metadata["skipped_records"]`` so the loss is visible.  A damaged
    container — truncated gzip, undecodable line — raises
    :class:`DatasetCorruptError` rather than a codec internal error.
    """
    dataset = Dataset()
    parsers = {
        "device": (dataset.devices, DeviceRecord.from_dict),
        "base_station": (dataset.base_stations,
                         BaseStationRecord.from_dict),
        "failure": (dataset.failures, FailureRecord.from_dict),
        "transition": (dataset.transitions, TransitionRecord.from_dict),
    }
    skipped = 0
    try:
        with gzip.open(Path(path), "rt", encoding="utf-8") as handle:
            for line in handle:
                entry = json.loads(line)
                kind = entry["kind"]
                if kind == "metadata":
                    dataset.metadata = entry["data"]
                    continue
                if kind not in parsers:
                    skipped += 1
                    continue
                target, parser = parsers[kind]
                target.append(parser(entry["data"]))
    except FileNotFoundError:
        raise
    except (OSError, EOFError, gzip.BadGzipFile, json.JSONDecodeError,
            UnicodeDecodeError, KeyError, ValueError, TypeError) as exc:
        raise DatasetCorruptError(
            f"dataset file {path} is damaged: {exc}"
        ) from exc
    if skipped:
        dataset.metadata["skipped_records"] = skipped
    return dataset
