"""Dataset layer: compact record schemas, the in-memory dataset, a
gzip-JSONL store, and aggregation helpers used by the analysis."""

from repro.dataset.records import (
    DeviceRecord,
    FailureRecord,
    TransitionRecord,
)
from repro.dataset.store import Dataset, load_dataset, save_dataset
from repro.dataset.aggregate import cdf, group_by, quantile

__all__ = [
    "DeviceRecord",
    "FailureRecord",
    "TransitionRecord",
    "Dataset",
    "load_dataset",
    "save_dataset",
    "cdf",
    "group_by",
    "quantile",
]
