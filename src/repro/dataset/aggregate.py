"""Aggregation helpers shared by the analysis modules."""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from typing import TypeVar

import numpy as np

T = TypeVar("T")
K = TypeVar("K")


def group_by(items: Iterable[T], key: Callable[[T], K]) -> dict[K, list[T]]:
    """Group ``items`` into lists keyed by ``key(item)``."""
    grouped: dict[K, list[T]] = {}
    for item in items:
        grouped.setdefault(key(item), []).append(item)
    return grouped


def cdf(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: (sorted values, cumulative probabilities)."""
    if len(values) == 0:
        return np.array([]), np.array([])
    xs = np.sort(np.asarray(values, dtype=float))
    ps = np.arange(1, len(xs) + 1) / len(xs)
    return xs, ps


def quantile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile of ``values`` (0 <= q <= 1)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be within [0, 1]")
    if len(values) == 0:
        raise ValueError("cannot take a quantile of no data")
    return float(np.quantile(np.asarray(values, dtype=float), q))


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of ``values`` strictly below ``threshold``."""
    if len(values) == 0:
        raise ValueError("cannot compute a fraction of no data")
    array = np.asarray(values, dtype=float)
    return float(np.mean(array < threshold))


def safe_mean(values: Sequence[float], default: float = 0.0) -> float:
    """Mean of ``values`` or ``default`` when empty."""
    if len(values) == 0:
        return default
    return float(np.mean(np.asarray(values, dtype=float)))
