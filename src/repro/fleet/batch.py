"""The vectorized batch fleet engine (``engine="batch"``).

Advances every device of a shard with numpy array operations instead of
per-device Python state machines: batched profile draws (gamma hazards
via ``scipy.special.gammaincinv``), Poisson event counts by chunked
exponential cumsums, RAT/level/deployment/BS draws as categorical
``searchsorted`` over precomputed probability tables, failure durations
as array lognormal/latency sampling, RAT-transition selection through
dense policy tables (:func:`repro.android.rat_policy.stability_veto_table`),
and the closed-form first recovery cycle of every Data_Stall.

**Slow-path oracle.**  Devices whose episodes enter genuinely
sequential rare states eject from the batch into the *existing*
per-device mechanisms and rejoin with their results composed back into
the arrays:

* Data_Stall episodes that survive the first full recovery cycle with a
  device-recoverable component (< 0.3% of stalls) finish through
  :func:`repro.android.recovery._resolve_stall` — the same resolver the
  serial engine uses — seeded per episode, with the cycle-1 prefix
  composed exactly (probation windows and stage overheads are
  deterministic, so cycle 2 of the serial resolver is cycle 1 of the
  oracle continuation shifted by one cycle length).
* EN-DC state on the patched arm is order-dependent (the first executed
  LTE/NR transition attaches the master/slave pair; every warm handover
  success swaps them), so patched 5G devices' post-transition setup
  failures replay through a per-device ordered walk using the same
  sync-failure tables as :class:`repro.android.handover.HandoverManager`.

Chaos-affected uploads stay engine-agnostic: the telemetry pipeline
consumes finished records, so ``FleetSimulator.run`` applies it
identically to both engines.

**Blessed RNG divergence.**  The serial engine draws from stateful
``random.Random(f"{seed}:{device}:{purpose}")`` streams whose consumption
order is entangled with mechanism internals (the modem consumes hidden
latency draws per setup attempt, the recovery resolver consumes stage
rolls that depend on earlier outcomes).  The batch engine instead uses a
counter-based (splitmix64) generator keyed by
``(seed, purpose, device_id, slot)`` — stateless and order-independent,
which is what makes the batch digest invariant under sharding and
worker count.  Record *digests* therefore differ between engines while
record *distributions* agree; the golden batch digests are blessed in
``benchmarks/golden_digests.json`` and the distributional equivalence is
enforced by ``tests/test_batch_engine.py``.  Three small semantic
blessings ride along (see ``docs/scaling.md``): every record's
``start_time`` is the scheduled episode time (serial offsets setup-error
starts by the first attempt latency and voice starts by the call setup
time, and lets long episodes push later same-device starts forward via
the device clock), and BS assignment draws once from the
propensity-weighted RAT-supporting subset of the resolved pool (serial
makes eight weighted attempts over the full pool before falling back to
a uniform draw over the supporting subset).
"""

from __future__ import annotations

import gc
import random
from hashlib import blake2b
from itertools import repeat

import numpy as np
from scipy.special import gammaincinv, ndtri

from repro.android.handover import (
    _MEASUREMENT_FAILURE_BY_SOURCE_LEVEL,
    _SYNC_FAILURE_BY_TARGET_LEVEL,
)
from repro.android.rat_policy import stability_veto_table
from repro.android.recovery import (
    AUTO_RECOVERED,
    TIMP_RECOVERY_POLICY,
    UNRESOLVED,
    USER_RESET,
    VANILLA_RECOVERY_POLICY,
    RecoveryPolicy,
    _RESOLVER_LABELS,
    _resolve_stall,
)
from repro.android.state_machine import DataConnectionState
from repro.core.errorcodes import ERROR_CODE_REGISTRY
from repro.core.events import FailureType
from repro.core.usermodel import DEFAULT_USER_TOLERANCE
from repro.dataset.records import (
    ARM_PATCHED,
    DeviceRecord,
    FailureRecord,
    TransitionRecord,
)
from repro.dataset.store import Dataset
from repro.fleet import behavior
from repro.fleet.device import _condition_policy
from repro.fleet.models import PHONE_MODELS
from repro.fleet.scenario import ScenarioConfig
from repro.network.basestation import DEPLOYMENT_TRAITS, DeploymentClass
from repro.network.bearer import (
    DEFAULT_CAUSE_SAMPLER,
    _DENSITY_FLAVOURED,
    _HANDOVER_FLAVOURED,
    _LEGACY_FLAVOURED,
    _SIGNAL_FLAVOURED,
)
from repro.network.isp import ISP_PROFILES
from repro.network.topology import _DEPLOYMENT_MIX, NationalTopology
from repro.obs import (
    DURATION_BUCKETS_S,
    EVENT_COUNT_BUCKETS,
    STAGE_COUNT_BUCKETS,
    counter_key,
    get_registry,
)
from repro.parallel.sharding import ShardSpec
from repro.parallel.stats import ShardStats, StopWatch
from repro.radio.modem import _SETUP_LATENCY_S
from repro.radio.rat import ALL_RATS, RAT_LABELS
from repro.simtime import SECONDS_PER_MONTH

# ---------------------------------------------------------------------------
# Counter-based RNG
# ---------------------------------------------------------------------------

_U64 = np.uint64
_PHI = _U64(0x9E3779B97F4A7C15)
_SLOT_MULT = _U64(0xD6E8FEB86659FD93)
_MIX_1 = _U64(0xBF58476D1CE4E5B9)
_MIX_2 = _U64(0x94D049BB133111EB)
_MASK = 0xFFFFFFFFFFFFFFFF

_PURPOSE_KEYS: dict[tuple[int, str], np.uint64] = {}


def _purpose_key(seed: int, purpose: str) -> np.uint64:
    key = _PURPOSE_KEYS.get((seed, purpose))
    if key is None:
        digest = int.from_bytes(
            blake2b(purpose.encode(), digest_size=8).digest(), "little"
        )
        key = _U64((seed ^ digest) & _MASK)
        _PURPOSE_KEYS[(seed, purpose)] = key
    return key


def _splitmix(h: np.ndarray) -> np.ndarray:
    h = (h ^ (h >> _U64(30))) * _MIX_1
    h = (h ^ (h >> _U64(27))) * _MIX_2
    return h ^ (h >> _U64(31))


def _uniform(seed: int, purpose: str, device_ids: np.ndarray,
             slots=None) -> np.ndarray:
    """Deterministic uniforms in (0, 1) keyed by (seed, purpose,
    device, slot) — stateless, so draw order cannot matter."""
    ids = np.asarray(device_ids, dtype=np.uint64)
    h = _purpose_key(seed, purpose) ^ (ids * _PHI)
    if slots is not None:
        h = h ^ (np.asarray(slots, dtype=np.uint64) * _SLOT_MULT)
    h = _splitmix(_splitmix(h) + _PHI)
    return (h >> _U64(11)).astype(np.float64) * 2.0 ** -53 + 2.0 ** -54


def _normal(seed: int, purpose: str, device_ids, slots=None) -> np.ndarray:
    return ndtri(_uniform(seed, purpose, device_ids, slots))


def _pick(cum: np.ndarray, u: np.ndarray) -> np.ndarray:
    """``random.choices``-style categorical draw over a normalized
    cumulative-weight table (first index with ``u < cum[i]``)."""
    return np.minimum(np.searchsorted(cum, u, side="right"),
                      len(cum) - 1)


def _cum(weights) -> np.ndarray:
    w = np.asarray(weights, dtype=np.float64)
    c = np.cumsum(w)
    return c / c[-1]


# ---------------------------------------------------------------------------
# Precomputed probability tables (derived from the live generative
# sources at first use — never hand-copied constants)
# ---------------------------------------------------------------------------


class _Tables:
    """Categorical tables shared by every batch shard (process-wide)."""

    def __init__(self) -> None:
        # -- phone models (Table 1 order) --
        self.model_cum = _cum([s.user_share for s in PHONE_MODELS])
        self.model_id = np.asarray([s.model for s in PHONE_MODELS],
                                   dtype=np.int64)
        self.model_shape = np.asarray(
            [s.fit.shape for s in PHONE_MODELS])
        self.model_scale = np.asarray(
            [s.fit.scale for s in PHONE_MODELS])
        self.model_has5g = np.asarray(
            [s.has_5g for s in PHONE_MODELS], dtype=bool)
        self.model_version = np.asarray(
            [s.android_version for s in PHONE_MODELS], dtype=object)
        self.model_android9 = np.asarray(
            [s.android_version.startswith("9") for s in PHONE_MODELS],
            dtype=bool)

        # -- ISPs (profile order: A, B, C) --
        isps = list(ISP_PROFILES)
        self.isps = isps
        self.isp_cum = _cum(
            [ISP_PROFILES[isp].subscriber_share for isp in isps])
        self.isp_label = np.asarray([isp.label for isp in isps],
                                    dtype=object)
        self.isp_factor = np.asarray(
            [behavior.ISP_HAZARD_FACTOR[isp] for isp in isps])

        # -- failure-type mix (codes: 0 SETUP, 1 STALL, 2 OOS, 3 SMS,
        #    4 VOICE — alphabetical by .value, matching columnar order) --
        self.type_values = tuple(t.value for t in (
            FailureType.DATA_SETUP_ERROR, FailureType.DATA_STALL,
            FailureType.OUT_OF_SERVICE, FailureType.SMS_FAILURE,
            FailureType.VOICE_FAILURE,
        ))
        legacy = behavior.TYPE_WEIGHT_LEGACY / 2
        oos_active_w = (behavior.TYPE_WEIGHT_OOS
                        / behavior.OOS_ACTIVE_DEVICE_FRACTION)
        self.type_cum_active = _cum([
            behavior.TYPE_WEIGHT_SETUP, behavior.TYPE_WEIGHT_STALL,
            oos_active_w, legacy, legacy,
        ])
        self.type_cum_inactive = _cum([
            behavior.TYPE_WEIGHT_SETUP, behavior.TYPE_WEIGHT_STALL,
            0.0, legacy, legacy,
        ])

        # -- event RAT (usage x hazard), keyed by 5G capability --
        def rat_table(usage: dict) -> tuple[np.ndarray, np.ndarray]:
            codes = np.asarray(
                [ALL_RATS.index(rat) for rat in usage], dtype=np.int64)
            cum = _cum([share * behavior.RAT_HAZARD_FACTOR[rat]
                        for rat, share in usage.items()])
            return codes, cum

        self.rat5_codes, self.rat5_cum = rat_table(behavior.RAT_USAGE_5G)
        self.ratn_codes, self.ratn_cum = rat_table(
            behavior.RAT_USAGE_NON_5G)
        self.usage5 = [(rat.label, share)
                       for rat, share in behavior.RAT_USAGE_5G.items()]
        self.usagen = [(rat.label, share)
                       for rat, share in behavior.RAT_USAGE_NON_5G.items()]

        # -- signal levels --
        self.level_cum = _cum([
            behavior.EXPOSURE_LEVEL_SHARES[lvl] * hz
            for lvl, hz in enumerate(behavior.LEVEL_HAZARD)
        ])
        self.concentration = behavior.DeviceRadioProfile.concentration

        # -- deployments (enum/mix order; codes 0..5) --
        self.dep_classes = tuple(cls for cls, _ in
                                 behavior.DEPLOYMENT_TIME_MIX)
        self.dep_values = np.asarray(
            [cls.value for cls in self.dep_classes], dtype=object)
        self.dep_cum = _cum([w for _, w in behavior.DEPLOYMENT_TIME_MIX])
        self.remote_code = self.dep_classes.index(DeploymentClass.REMOTE)
        self.lvl5_dep_codes = np.asarray([
            self.dep_classes.index(DeploymentClass.TRANSPORT_HUB),
            self.dep_classes.index(DeploymentClass.URBAN_CORE),
            self.dep_classes.index(DeploymentClass.URBAN),
        ], dtype=np.int64)
        # Deployment density class for the cause sampler: 0 = no boost,
        # else index into the >=0.6 density list below.
        densities = [DEPLOYMENT_TRAITS[cls].density
                     for cls in self.dep_classes]
        self.dense_values = [d for d in densities if d >= 0.6]
        self.dens_class = np.asarray(
            [self.dense_values.index(d) + 1 if d >= 0.6 else 0
             for d in densities], dtype=np.int64)

        # -- stall mixture --
        mix = behavior.STALL_MIXTURE
        self.stall_cum = _cum([c.weight for c in mix])
        self.stall_lnmed = np.log([c.median_s for c in mix])
        self.stall_sigma = np.asarray([c.sigma for c in mix])
        self.stall_dr = np.asarray([c.device_recoverable for c in mix])
        fp_mix = behavior.STALL_FALSE_POSITIVE_MIX
        assert fp_mix[0][0].value == "NETWORK_STALL"
        self.stall_genuine_p = (fp_mix[0][1]
                                / sum(w for _, w in fp_mix))

        # -- transition scenario tables --
        self.trA_cur_lvl_vals = np.asarray([1, 2, 3, 4], dtype=np.int64)
        self.trA_cur_lvl_cum = _cum([1, 3, 5, 4])
        self.trA_nr_cum = _cum([50, 15, 12, 11, 7, 5])
        lte, umts, gsm = (ALL_RATS.index(r) for r in (
            behavior.RAT.LTE, behavior.RAT.UMTS, behavior.RAT.GSM))
        self.trB_cur_rat_codes = np.asarray([lte, umts, gsm],
                                            dtype=np.int64)
        self.trB_cur_rat_cum = _cum([0.7, 0.1, 0.2])
        self.trB_cur_lvl_cum = _cum([1, 2, 4, 5, 4])
        self.trB_oth_lvl_cum = _cum([2, 3, 4, 4, 3])
        # other_rats = (GSM, UMTS, LTE) minus current, in that order.
        self.tr_others = np.zeros((4, 2), dtype=np.int64)
        self.tr_others[gsm] = (umts, lte)
        self.tr_others[umts] = (gsm, lte)
        self.tr_others[lte] = (gsm, umts)
        self.risk = np.asarray([
            behavior.GENERATIVE_LEVEL_RISK[rat] for rat in ALL_RATS])
        self.post_type_cum = _cum([0.50, 0.35, 0.15])

        # -- handover stage tables --
        self.meas_fail = np.asarray([
            _MEASUREMENT_FAILURE_BY_SOURCE_LEVEL[lvl]
            for lvl in range(6)])
        self.sync_fail = np.asarray([
            _SYNC_FAILURE_BY_TARGET_LEVEL[lvl] for lvl in range(6)])

        # -- setup latencies --
        self.lat_base = np.asarray(
            [_SETUP_LATENCY_S[rat] for rat in ALL_RATS])

        # -- false positives --
        self.fp_cum = _cum([0.70, 0.10, 0.10, 0.10])

        # -- cause sampler variants --
        base = DEFAULT_CAUSE_SAMPLER.base_weights
        names = list(base)
        self.cause_names = np.asarray(names, dtype=object)
        self.cause_retryable = np.asarray(
            [ERROR_CODE_REGISTRY.retryable(n) for n in names],
            dtype=bool)
        self.cause_cums: dict[tuple[int, int, int, int], np.ndarray] = {}
        flavour_boosts = (
            (_SIGNAL_FLAVOURED, lambda _: 3.0),
            (_DENSITY_FLAVOURED, lambda d: 1.0 + 2.2 * d),
            (_LEGACY_FLAVOURED, lambda _: 3.5),
            (_HANDOVER_FLAVOURED, lambda _: 6.0),
        )
        for sig in (0, 1):
            for dens_i in range(len(self.dense_values) + 1):
                for leg in (0, 1):
                    for hand in (0, 1):
                        w = dict(base)
                        flags = (sig, dens_i, leg, hand)
                        for (flavoured, factor), flag in zip(
                            flavour_boosts, flags
                        ):
                            if not flag:
                                continue
                            d = (self.dense_values[dens_i - 1]
                                 if flavoured is _DENSITY_FLAVOURED
                                 else 0.0)
                            for code in flavoured:
                                if code in w:
                                    w[code] *= factor(d)
                        self.cause_cums[flags] = _cum(list(w.values()))

        # -- user model --
        self.reset_mean = DEFAULT_USER_TOLERANCE.manual_reset_mean_s
        self.reset_jitter = DEFAULT_USER_TOLERANCE.manual_reset_jitter_s


_TABLES: _Tables | None = None


def _tables() -> _Tables:
    global _TABLES
    if _TABLES is None:
        _TABLES = _Tables()
    return _TABLES


# ---------------------------------------------------------------------------
# Topology batch index
# ---------------------------------------------------------------------------


def _topology_index(topology: NationalTopology, tables: _Tables) -> dict:
    """Per-(ISP, deployment, RAT) resolved sampling pools plus a
    ``load`` lookup, cached on the topology instance.

    The serial sampler's fallback chain (exact pool, then the ISP's
    pools densest-first) is resolved at build time; the draw itself is
    a single propensity-weighted categorical over the RAT-supporting
    subset of the resolved pool (the blessed batch form of the serial
    eight-attempt/uniform-fallback dance).
    """
    cached = topology.__dict__.get("_batch_index")
    if cached is not None:
        return cached
    max_id = max((bs.bs_id for bs in topology.base_stations), default=0)
    load = np.zeros(max_id + 1)
    for bs in topology.base_stations:
        load[bs.bs_id] = bs.load
    pools: dict[tuple[int, int, int], tuple | None] = {}
    for i_isp, isp in enumerate(tables.isps):
        for i_dep, dep in enumerate(tables.dep_classes):
            chain = [dep] + [cls for cls, _ in _DEPLOYMENT_MIX]
            for i_rat, rat in enumerate(ALL_RATS):
                entry = None
                for cls in chain:
                    pool = topology._pools.get((isp, cls))
                    if pool is None:
                        continue
                    supporting = [bs for bs in pool.stations
                                  if bs.supports(rat)]
                    if not supporting:
                        continue
                    ids = np.asarray([bs.bs_id for bs in supporting],
                                     dtype=np.int64)
                    cum = _cum([bs.failure_propensity
                                for bs in supporting])
                    entry = (ids, cum)
                    break
                pools[(i_isp, i_dep, i_rat)] = entry
    index = {"pools": pools, "load": load}
    topology.__dict__["_batch_index"] = index
    return index


def _draw_bs(index: dict, isp_idx: np.ndarray, dep: np.ndarray,
             rat: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Vectorized BS draw grouped by (ISP, deployment, RAT) triple."""
    out = np.zeros(len(u), dtype=np.int64)
    if not len(u):
        return out
    key = (isp_idx * len(_DEPLOYMENT_MIX) + dep) * len(ALL_RATS) + rat
    for k in np.unique(key):
        triple = (int(k) // (len(_DEPLOYMENT_MIX) * len(ALL_RATS)),
                  (int(k) // len(ALL_RATS)) % len(_DEPLOYMENT_MIX),
                  int(k) % len(ALL_RATS))
        entry = index["pools"].get(triple)
        if entry is None:
            raise LookupError(
                f"no base station for {triple} in batch index"
            )
        ids, cum = entry
        sel = key == k
        idx = np.minimum(np.searchsorted(cum, u[sel], side="left"),
                         len(ids) - 1)
        out[sel] = ids[idx]
    return out


# ---------------------------------------------------------------------------
# Vectorized Poisson (Knuth below the normal-approximation cutoff)
# ---------------------------------------------------------------------------


def _poisson_batch(seed: int, purpose: str, ids: np.ndarray,
                   means: np.ndarray, cap: int) -> np.ndarray:
    out = np.zeros(means.shape, dtype=np.int64)
    big = means > 200.0
    if big.any():
        z = _normal(seed, purpose + ":gauss", ids[big])
        out[big] = np.maximum(
            0, np.rint(means[big] + np.sqrt(means[big]) * z)
        ).astype(np.int64)
    active = np.flatnonzero(~big & (means > 0.0))
    acc = np.zeros(active.size)
    m = means[active]
    base = 0
    chunk = 32
    while active.size:
        slots = np.arange(base, base + chunk, dtype=np.uint64)
        u = _uniform(
            seed, purpose, np.repeat(ids[active], chunk),
            np.tile(slots, active.size),
        ).reshape(active.size, chunk)
        sums = acc[:, None] + np.cumsum(-np.log(u), axis=1)
        out[active] += (sums < m[:, None]).sum(axis=1)
        alive = sums[:, -1] < m
        active = active[alive]
        acc = sums[alive, -1]
        m = m[alive]
        base += chunk
    return np.minimum(out, cap)


# ---------------------------------------------------------------------------
# Stall recovery: closed-form cycle 1 + slow-path oracle
# ---------------------------------------------------------------------------


def _policy_windows(policy: RecoveryPolicy) -> dict:
    """Deterministic cycle scalars: window [s_i, e_i) then overhead to
    st_i; one full cycle spans [0, T1)."""
    s, e, st = [], [], []
    t = 0.0
    for probation, stage in zip(policy.probations_s, policy.stages):
        s.append(t)
        e.append(t + probation)
        st.append(t + probation + stage.overhead_s)
        t = st[-1]
    return {
        "s": np.asarray(s), "e": np.asarray(e), "st": np.asarray(st),
        "sr": np.asarray([stage.success_rate for stage in policy.stages]),
        "T1": t,
    }


def _resolve_stalls_batch(
    seed: int, tag: str, config: ScenarioConfig, policy: RecoveryPolicy,
    dev_ids: np.ndarray, slots: np.ndarray, natural: np.ndarray,
    dr: np.ndarray,
) -> dict:
    """Resolve stall episodes: vectorized first recovery cycle, serial
    oracle (:func:`repro.android.recovery._resolve_stall`) for the rare
    multi-cycle survivors.  Mirrors ``resolve_stall`` exactly — windows
    watch for the earlier of natural fix and (engaged) user reset with
    user resets winning ties, stages auto-resolve when the fix lands
    inside their overhead (inclusive), and pending user resets clear at
    the first window whose end passes them."""
    tables = _tables()
    n = natural.size
    W = _policy_windows(policy)
    engaged = _uniform(seed, tag + ":engaged", dev_ids, slots) < (
        behavior.USER_RESET_ENGAGEMENT)
    reset_u = _uniform(seed, tag + ":reset", dev_ids, slots)
    user = np.where(
        engaged,
        np.maximum(5.0, tables.reset_mean
                   + tables.reset_jitter * (2.0 * reset_u - 1.0)),
        np.inf,
    )
    user_ok = _uniform(seed, tag + ":usersucc", dev_ids, slots) < (
        0.85 * dr)
    stage_u = np.stack(
        [_uniform(seed, f"{tag}:stage{i}", dev_ids, slots)
         for i in (1, 2, 3)], axis=1,
    ) if n else np.zeros((0, 3))
    sr = W["sr"][None, :] * np.where(dr < 1.0, dr, 1.0)[:, None]

    dur = np.zeros(n)
    resby = np.full(n, UNRESOLVED, dtype=np.int64)
    stages = np.zeros(n, dtype=np.int64)
    resolved = np.zeros(n, dtype=bool)
    pending = engaged.copy()
    passed = np.zeros((3, n), dtype=bool)
    for i in range(3):
        lo, hi, st = W["s"][i], W["e"][i], W["st"][i]
        act = ~resolved
        auto_c = act & (natural >= lo) & (natural < hi)
        user_c = (act & pending & user_ok
                  & (user >= lo) & (user < hi))
        u_win = user_c & (~auto_c | (user <= natural))
        a_win = auto_c & ~u_win
        dur[u_win] = user[u_win]
        resby[u_win] = USER_RESET
        stages[u_win] = i
        dur[a_win] = natural[a_win]
        resby[a_win] = AUTO_RECOVERED
        stages[a_win] = i
        resolved |= u_win | a_win
        cont = act & ~u_win & ~a_win
        pending &= ~(cont & (user <= hi))
        passed[i] = cont
        stages[cont] = i + 1
        auto_st = cont & (natural <= st)
        dur[auto_st] = natural[auto_st]
        resby[auto_st] = AUTO_RECOVERED
        resolved |= auto_st
        fixed = cont & ~auto_st & (stage_u[:, i] < sr[:, i])
        dur[fixed] = st
        resby[fixed] = i + 1
        resolved |= fixed

    # Survivors of the full first cycle.
    surv = ~resolved
    dead = surv & (dr <= 0.0)  # nothing the handset does can help
    dur[dead] = natural[dead]
    resby[dead] = UNRESOLVED  # stages stay 3
    oracle_starts: dict[int, list[float]] = {1: [], 2: [], 3: []}
    t1 = W["T1"]
    cond_cache: dict[float, RecoveryPolicy] = {}
    for j in np.flatnonzero(surv & (dr > 0.0)):
        # Slow-path oracle: the device ejects from the batch and its
        # episode continues through the serial resolver (cycles 2..25),
        # rejoining with the composed resolution.
        d = float(dr[j])
        cond = cond_cache.get(d)
        if cond is None:
            cond = _condition_policy(policy, d)
            cond_cache[d] = cond
        rng = random.Random(
            f"{seed}:bstall:{tag}:{int(dev_ids[j])}:{int(slots[j])}"
        )
        rest_user = float(user[j]) - t1 if pending[j] else None
        rest = _resolve_stall(cond, float(natural[j]) - t1, rng,
                              rest_user, 0.85 * d, 24)
        dur[j] = t1 + rest.duration_s
        resby[j] = rest.resolved_by
        stages[j] = 3 + rest.stages_executed
        for when, text in rest.timeline:
            if text.startswith("stage ") and text.endswith("started"):
                oracle_starts[int(text.split()[1])].append(t1 + when)
    return {
        "duration": dur, "resolved_by": resby, "stages": stages,
        "passed": passed, "windows": W, "oracle_starts": oracle_starts,
        "n_oracle": int((surv & (dr > 0.0)).sum()),
    }


# ---------------------------------------------------------------------------
# The batch step
# ---------------------------------------------------------------------------


def _sample_deployment(seed: int, purpose: str, tables: _Tables,
                       dev_ids, slots, level: np.ndarray) -> np.ndarray:
    """behavior.sample_event_deployment over arrays."""
    u = _uniform(seed, purpose, dev_ids, slots)
    mix = _pick(tables.dep_cum, u)
    lvl5 = np.where(
        u < 0.70, tables.lvl5_dep_codes[0],
        np.where(u < 0.92, tables.lvl5_dep_codes[1],
                 tables.lvl5_dep_codes[2]),
    )
    return np.where(level == 5, lvl5, mix)


def _sample_causes(tables: _Tables, variant_key: np.ndarray,
                   u: np.ndarray) -> np.ndarray:
    """Cause-code draw grouped by sampler-variant flags packed as
    ``((sig * D + dens) * 2 + leg) * 2 + hand``."""
    out = np.zeros(len(u), dtype=np.int64)
    n_dens = len(tables.dense_values) + 1
    for k in np.unique(variant_key):
        flags = (int(k) // (n_dens * 4),
                 (int(k) // 4) % n_dens,
                 (int(k) // 2) % 2, int(k) % 2)
        cum = tables.cause_cums[flags]
        sel = variant_key == k
        out[sel] = _pick(cum, u[sel])
    return out


def _variant_key(tables: _Tables, level, dep, rat, handover: int):
    n_dens = len(tables.dense_values) + 1
    sig = (level <= 1).astype(np.int64)
    dens = tables.dens_class[dep]
    leg = (rat <= 1).astype(np.int64)
    return ((sig * n_dens + dens) * 2 + leg) * 2 + handover


class _RecordColumns:
    """Accumulates per-category failure-lane arrays, then emits the
    device-major / time-sorted record list exactly like the serial
    engine's per-device walk."""

    _FIELDS = ("dev", "start", "type", "dur", "bs", "rat", "lvl",
               "dep", "err", "resby", "stages", "post")

    def __init__(self) -> None:
        self.chunks: list[dict] = []

    def add(self, **arrays) -> None:
        n = len(arrays["dev"])
        if not n:
            return
        chunk = {}
        for name in self._FIELDS:
            value = arrays[name]
            if np.isscalar(value) or value is None:
                if name == "err":
                    col = np.full(n, value, dtype=object)
                else:
                    col = np.full(
                        n, value,
                        dtype=bool if name == "post" else None)
            else:
                col = value
            chunk[name] = col
        self.chunks.append(chunk)

    def sorted_columns(self) -> dict:
        if not self.chunks:
            return {name: np.zeros(0, dtype=object if name == "err"
                                   else np.int64 if name in
                                   ("dev", "type", "bs", "rat", "lvl",
                                    "dep", "resby", "stages")
                                   else bool if name == "post"
                                   else np.float64)
                    for name in self._FIELDS}
        cols = {
            name: np.concatenate([c[name] for c in self.chunks])
            for name in self._FIELDS
        }
        order = np.lexsort((cols["start"], cols["dev"]))
        return {name: col[order] for name, col in cols.items()}


_RESOLVED_BY_NONE = -(1 << 30)


def simulate_shard_batch(
    config: ScenarioConfig,
    topology: NationalTopology,
    spec: ShardSpec,
) -> tuple[Dataset, ShardStats]:
    """Vectorized counterpart of ``FleetSimulator.simulate_shard``."""
    watch = StopWatch()
    registry = get_registry()
    # Bulk-constructing hundreds of thousands of record objects trips
    # the generational collector over and over; the records are slotted
    # dataclasses holding only scalars (no cycles possible), so pausing
    # collection for the build is safe and nearly halves the wall time.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        with registry.span("fleet.simulate_shard"):
            shard, counters = _simulate(config, topology, spec, registry)
    finally:
        if gc_was_enabled:
            gc.enable()
    stats = ShardStats(
        shard=spec.index,
        device_lo=spec.lo,
        device_hi=spec.hi,
        n_devices=spec.n_devices,
        n_failures=len(shard.failures),
        n_transitions=len(shard.transitions),
        wall_s=watch.elapsed(),
        cpu_s=watch.cpu_elapsed(),
    )
    del counters
    return shard, stats


def _simulate(config: ScenarioConfig, topology: NationalTopology,
              spec: ShardSpec, registry) -> tuple[Dataset, dict]:
    tables = _tables()
    topo = _topology_index(topology, tables)
    seed = config.seed
    patched = config.arm == ARM_PATCHED
    if patched:
        recovery = TIMP_RECOVERY_POLICY
        if config.patched_probations_s is not None:
            recovery = recovery.with_probations(
                config.patched_probations_s)
    else:
        recovery = VANILLA_RECOVERY_POLICY

    dev = np.arange(spec.lo, spec.hi, dtype=np.int64)
    n = dev.size
    ids = dev.astype(np.uint64)
    study_s = config.study_months * SECONDS_PER_MONTH

    # -- device profiles ----------------------------------------------------
    model = _pick(tables.model_cum, _uniform(seed, "profile:model", ids))
    isp_cum = (tables.isp_cum if config.isp_weights is None
               else _cum(list(config.isp_weights)))
    isp_idx = _pick(isp_cum, _uniform(seed, "profile:isp", ids))
    hazard = gammaincinv(
        tables.model_shape[model] * tables.isp_factor[isp_idx],
        _uniform(seed, "profile:hazard", ids),
    ) * tables.model_scale[model]
    hazard *= config.frequency_scale * (config.study_months / 8.0)
    has5g = tables.model_has5g[model]
    android9 = tables.model_android9[model]
    factor_5g = (behavior.AMBIENT_FRACTION_5G
                 if config.ambient_factor_5g is None
                 else config.ambient_factor_5g)
    ambient_hazard = hazard * np.where(has5g, factor_5g, 1.0)
    oos_active = _uniform(seed, "profile:oos", ids) < (
        behavior.OOS_ACTIVE_DEVICE_FRACTION)
    home = _pick(tables.level_cum, _uniform(seed, "profile:home", ids))
    endc_dev = has5g & patched

    cap = config.max_events_per_device
    n_amb = _poisson_batch(seed, "poisson:ambient", ids,
                           ambient_hazard, cap)
    tr_rate = np.where(has5g, behavior.TRANSITION_RATE_5G,
                       behavior.TRANSITION_RATE_NON_5G)
    n_tr = _poisson_batch(seed, "poisson:transition", ids,
                          hazard * tr_rate, cap)
    n_fp = _poisson_batch(
        seed, "poisson:fp", ids,
        ambient_hazard * config.false_positive_rate, cap)

    records = _RecordColumns()
    stall_blocks = []
    dc = {"retryable": 0, "permanent": 0}

    def expand(counts):
        lanes = np.repeat(np.arange(counts.size), counts)
        starts = np.zeros(counts.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        slot = (np.arange(lanes.size, dtype=np.int64)
                - np.repeat(starts, counts)).astype(np.uint64)
        return lanes, slot

    # =======================================================================
    # Ambient episodes
    # =======================================================================
    a_lane, a_slot = expand(n_amb)
    a_ids = ids[a_lane]
    a_when = study_s * _uniform(seed, "amb:time", a_ids, a_slot)
    u_type = _uniform(seed, "amb:type", a_ids, a_slot)
    a_type = np.where(
        oos_active[a_lane],
        _pick(tables.type_cum_active, u_type),
        _pick(tables.type_cum_inactive, u_type),
    )
    u_rat = _uniform(seed, "amb:rat", a_ids, a_slot)
    a_rat = np.where(
        has5g[a_lane],
        tables.rat5_codes[_pick(tables.rat5_cum, u_rat)],
        tables.ratn_codes[_pick(tables.ratn_cum, u_rat)],
    )
    # Home-concentrated signal level (behavior.sample_event_level).
    u_lvl = _uniform(seed, "amb:level", a_ids, a_slot)
    sign = np.where(
        _uniform(seed, "amb:levelsign", a_ids, a_slot) < 0.5, 1, -1)
    conc = tables.concentration
    offset = np.where(u_lvl < (1.0 + conc) / 2.0, 1, 2)
    a_lvl = np.where(
        u_lvl < conc, home[a_lane],
        np.clip(home[a_lane] + sign * offset, 0, 5),
    )

    # Stall naturals first: long outages override level + deployment.
    stall_m = a_type == 1
    s_ids, s_slot = a_ids[stall_m], a_slot[stall_m]
    comp = _pick(tables.stall_cum,
                 _uniform(seed, "amb:stallcomp", s_ids, s_slot))
    s_nat = np.minimum(
        np.exp(tables.stall_lnmed[comp] + tables.stall_sigma[comp]
               * _normal(seed, "amb:stallnat", s_ids, s_slot)),
        behavior.MAX_STALL_DURATION_S,
    )
    long_out = (s_nat > 1200.0) & (
        _uniform(seed, "amb:longout", s_ids, s_slot) < 0.6)
    s_idx = np.flatnonzero(stall_m)
    lo_lvl_cap = np.minimum(
        (_uniform(seed, "amb:longlvl", s_ids, s_slot) * 3.0).astype(
            np.int64), 2)
    a_lvl[s_idx[long_out]] = np.minimum(
        a_lvl[s_idx[long_out]], lo_lvl_cap[long_out])

    a_dep = _sample_deployment(seed, "amb:dep", tables, a_ids, a_slot,
                               a_lvl)
    a_dep[s_idx[long_out]] = tables.remote_code
    a_bs = _draw_bs(topo, isp_idx[a_lane], a_dep, a_rat,
                    _uniform(seed, "amb:bs", a_ids, a_slot))

    # -- Data_Setup_Error ---------------------------------------------------
    sm = a_type == 0
    cause_idx = _sample_causes(
        tables,
        _variant_key(tables, a_lvl[sm], a_dep[sm], a_rat[sm], 0),
        _uniform(seed, "amb:cause", a_ids[sm], a_slot[sm]),
    )
    setup_retry = tables.cause_retryable[cause_idx]
    lat1 = tables.lat_base[a_rat[sm]] * (
        0.8 + 0.8 * _uniform(seed, "amb:lat1", a_ids[sm], a_slot[sm]))
    lat2 = tables.lat_base[a_rat[sm]] * (
        0.8 + 0.8 * _uniform(seed, "amb:lat2", a_ids[sm], a_slot[sm]))
    setup_dur = np.where(setup_retry, lat1 + 5.0 + lat2,
                         np.maximum(lat1, 0.5))
    records.add(
        dev=a_lane[sm], start=a_when[sm], type=0, dur=setup_dur,
        bs=a_bs[sm], rat=a_rat[sm], lvl=a_lvl[sm], dep=a_dep[sm],
        err=tables.cause_names[cause_idx],
        resby=np.full(int(sm.sum()), _RESOLVED_BY_NONE, dtype=np.int64),
        stages=np.zeros(int(sm.sum()), dtype=np.int64), post=False,
    )
    dc["retryable"] += int(setup_retry.sum())
    dc["permanent"] += int((~setup_retry).sum())

    # -- Data_Stall ---------------------------------------------------------
    genuine = _uniform(seed, "amb:stallkind", s_ids, s_slot) < (
        tables.stall_genuine_p)
    res = _resolve_stalls_batch(
        seed, "amb", config, recovery,
        s_ids[genuine], s_slot[genuine], s_nat[genuine],
        tables.stall_dr[comp[genuine]],
    )
    meas_err = np.where(
        res["duration"] > 1200.0, 60.0, 5.0,
    ) * _uniform(seed, "amb:stallmeas", s_ids[genuine], s_slot[genuine])
    observed = res["duration"] + meas_err
    g_idx = s_idx[genuine]
    records.add(
        dev=a_lane[g_idx], start=a_when[g_idx], type=1, dur=observed,
        bs=a_bs[g_idx], rat=a_rat[g_idx], lvl=a_lvl[g_idx],
        dep=a_dep[g_idx], err=None, resby=res["resolved_by"],
        stages=res["stages"], post=False,
    )
    stall_blocks.append(res)

    # -- Out_of_Service -----------------------------------------------------
    om = a_type == 2
    oos_dur = np.minimum(
        np.exp(np.log(behavior.OOS_MEDIAN_S) + behavior.OOS_SIGMA
               * _normal(seed, "amb:oos", a_ids[om], a_slot[om])),
        behavior.MAX_STALL_DURATION_S,
    )
    records.add(
        dev=a_lane[om], start=a_when[om], type=2, dur=oos_dur,
        bs=a_bs[om], rat=a_rat[om], lvl=a_lvl[om], dep=a_dep[om],
        err=None, resby=_RESOLVED_BY_NONE, stages=0, post=False,
    )

    # -- SMS / voice --------------------------------------------------------
    smsm = a_type == 3
    records.add(
        dev=a_lane[smsm], start=a_when[smsm], type=3, dur=0.0,
        bs=a_bs[smsm], rat=a_rat[smsm], lvl=a_lvl[smsm],
        dep=a_dep[smsm], err="RIL_SMS_SEND_FAIL_RETRY",
        resby=_RESOLVED_BY_NONE, stages=0, post=False,
    )
    vm = a_type == 4
    congested = _uniform(seed, "amb:voice", a_ids[vm], a_slot[vm]) < (
        topo["load"][a_bs[vm]])
    records.add(
        dev=a_lane[vm], start=a_when[vm], type=4, dur=0.0,
        bs=a_bs[vm], rat=a_rat[vm], lvl=a_lvl[vm], dep=a_dep[vm],
        err=np.where(congested, "CS_NETWORK_CONGESTION",
                     "CS_CALL_SETUP_FAILED").astype(object),
        resby=_RESOLVED_BY_NONE, stages=0, post=False,
    )

    # =======================================================================
    # RAT-transition opportunities
    # =======================================================================
    t_lane, t_slot = expand(n_tr)
    t_ids = ids[t_lane]
    t_when = study_s * _uniform(seed, "tr:time", t_ids, t_slot)
    t5g = has5g[t_lane]
    bra = t5g & (_uniform(seed, "tr:branch", t_ids, t_slot) < 0.75)
    m = t_lane.size

    u_clvl = _uniform(seed, "tr:curlvl", t_ids, t_slot)
    u_crat = _uniform(seed, "tr:currat", t_ids, t_slot)
    cur_rat = np.where(
        bra, 2, tables.trB_cur_rat_codes[_pick(tables.trB_cur_rat_cum,
                                               u_crat)])
    cur_lvl = np.where(
        bra, tables.trA_cur_lvl_vals[_pick(tables.trA_cur_lvl_cum,
                                           u_clvl)],
        _pick(tables.trB_cur_lvl_cum, u_clvl),
    )
    u_inc1 = _uniform(seed, "tr:extra1", t_ids, t_slot)
    u_inc2 = _uniform(seed, "tr:extra2", t_ids, t_slot)
    u_lvl1 = _uniform(seed, "tr:othlvl1", t_ids, t_slot)
    u_lvl2 = _uniform(seed, "tr:othlvl2", t_ids, t_slot)
    nr_lvl = _pick(tables.trA_nr_cum,
                   _uniform(seed, "tr:nrlvl", t_ids, t_slot))

    c_rat = np.full((3, m), -1, dtype=np.int64)
    c_lvl = np.zeros((3, m), dtype=np.int64)
    c_rat[0], c_lvl[0] = cur_rat, cur_lvl
    c_rat[1, bra] = 3
    c_lvl[1, bra] = nr_lvl[bra]
    bra3 = bra & (u_inc1 < 0.3)
    c_rat[2, bra3] = 1
    c_lvl[2, bra3] = 1 + np.minimum(
        (u_lvl1[bra3] * 3.0).astype(np.int64), 2)
    brb = ~bra
    others = tables.tr_others[cur_rat]
    oth_lvl1 = _pick(tables.trB_oth_lvl_cum, u_lvl1)
    oth_lvl2 = _pick(tables.trB_oth_lvl_cum, u_lvl2)
    bb1 = brb & (u_inc1 < 0.6)
    c_rat[1, bb1] = others[bb1, 0]
    c_lvl[1, bb1] = oth_lvl1[bb1]
    bb2 = brb & (u_inc2 < 0.6)
    c_rat[2, bb2] = others[bb2, 1]
    c_lvl[2, bb2] = oth_lvl2[bb2]

    # Policy selection over the candidate slots.
    present = c_rat >= 0
    keys = np.where(present, c_rat * 8 + c_lvl, -1)
    cols = np.arange(m)
    if patched:
        veto = stability_veto_table()
        order = np.argsort(-keys, axis=0, kind="stable")
        chosen = np.zeros(m, dtype=np.int64)
        taken = np.zeros(m, dtype=bool)
        for r in range(3):
            slot = order[r]
            cr = c_rat[slot, cols]
            cl = c_lvl[slot, cols]
            ok = (present[slot, cols] & ~taken
                  & ~veto[cur_rat, cur_lvl, cr, np.clip(cl, 0, 5)])
            chosen[ok] = slot[ok]
            taken |= ok
        # Every move vetoed -> stay (slot 0 is always acceptable, so
        # this is unreachable; kept for parity with the scalar walk).
        chosen[~taken] = 0
    else:
        masked = keys.copy()
        masked[:, android9[t_lane]] = np.where(
            c_rat[:, android9[t_lane]] == 3, -1,
            keys[:, android9[t_lane]])
        chosen = np.argmax(masked, axis=0)
    sel_rat = c_rat[chosen, cols]
    sel_lvl = c_lvl[chosen, cols]
    executed = sel_rat != cur_rat

    proc_rate = np.where(endc_dev[t_lane] & (sel_rat >= 2), 0.01, 0.05)
    p_fail = np.where(
        executed,
        np.minimum(
            0.95,
            behavior.TRANSITION_BASE_FAILURE_P
            + behavior.TRANSITION_RISK_SLOPE * np.maximum(
                0.0,
                tables.risk[sel_rat, sel_lvl]
                - tables.risk[cur_rat, cur_lvl]),
        ) + proc_rate,
        behavior.TRANSITION_BASE_FAILURE_P,
    )
    failed = _uniform(seed, "tr:fail", t_ids, t_slot) < p_fail

    after_rat = np.where(executed, sel_rat, cur_rat)
    after_lvl = np.where(executed, sel_lvl, cur_lvl)
    pf = np.flatnonzero(failed)
    pf_ids, pf_slot = t_ids[pf], t_slot[pf]
    pf_dep = _sample_deployment(seed, "tr:dep", tables, pf_ids, pf_slot,
                                after_lvl[pf])
    pf_bs = _draw_bs(topo, isp_idx[t_lane[pf]], pf_dep, after_rat[pf],
                     _uniform(seed, "tr:bs", pf_ids, pf_slot))
    ptype = _pick(tables.post_type_cum,
                  _uniform(seed, "tr:ptype", pf_ids, pf_slot))

    # -- post-transition setup errors (handover procedure) ------------------
    hm = ptype == 0
    h_idx = pf[hm]
    sched_cause = tables.cause_names[_sample_causes(
        tables,
        _variant_key(tables, after_lvl[h_idx], pf_dep[hm],
                     after_rat[h_idx], 1),
        _uniform(seed, "tr:cause", pf_ids[hm], pf_slot[hm]),
    )]
    u_ho = _uniform(seed, "tr:handover", pf_ids[hm], pf_slot[hm])
    meas_failed = u_ho < tables.meas_fail[cur_lvl[h_idx]]
    ho_err = np.where(
        meas_failed, "RRC_UPLINK_DELIVERY_FAILED_DUE_TO_HANDOVER",
        sched_cause).astype(object)
    ho_dur = np.where(meas_failed, 0.5, 1.0)

    if patched and endc_dev.any():
        # Slow-path oracle: EN-DC attach/swap is order-dependent per
        # device, so patched 5G devices replay their transition lanes
        # in time order (same tables, same outcomes as HandoverManager).
        ho_pos = np.full(m, -1, dtype=np.int64)
        ho_pos[h_idx] = np.arange(h_idx.size)
        relevant = endc_dev[t_lane] & (
            (executed & (sel_rat >= 2)) | (failed & (ho_pos >= 0)))
        attached = np.zeros(n, dtype=bool)
        slave = np.full(n, 3, dtype=np.int64)
        walk = np.flatnonzero(relevant)
        walk = walk[np.lexsort((t_when[walk], t_lane[walk]))]
        for j in walk:
            d = t_lane[j]
            if executed[j] and sel_rat[j] >= 2:
                attached[d] = True
            k = ho_pos[j]
            if k >= 0 and attached[d] and slave[d] == after_rat[j]:
                if u_ho[k] < tables.sync_fail[after_lvl[j]]:
                    ho_err[k] = "IRAT_HANDOVER_FAILED"
                    ho_dur[k] = 4.0
                else:
                    ho_err[k] = sched_cause[k]
                    ho_dur[k] = 0.5
                    slave[d] = 5 - slave[d]  # swap LTE <-> NR

    records.add(
        dev=t_lane[h_idx], start=t_when[h_idx], type=0, dur=ho_dur,
        bs=pf_bs[hm], rat=after_rat[h_idx], lvl=after_lvl[h_idx],
        dep=pf_dep[hm], err=ho_err,
        resby=_RESOLVED_BY_NONE, stages=0, post=True,
    )

    # -- post-transition stalls ---------------------------------------------
    tsm = ptype == 1
    ts_idx = pf[tsm]
    ts_ids, ts_slot = pf_ids[tsm], pf_slot[tsm]
    ts_comp = _pick(tables.stall_cum,
                    _uniform(seed, "trs:comp", ts_ids, ts_slot))
    ts_nat = np.minimum(
        np.exp(tables.stall_lnmed[ts_comp] + tables.stall_sigma[ts_comp]
               * _normal(seed, "trs:nat", ts_ids, ts_slot)),
        behavior.MAX_STALL_DURATION_S,
    )
    ts_genuine = _uniform(seed, "trs:kind", ts_ids, ts_slot) < (
        tables.stall_genuine_p)
    ts_res = _resolve_stalls_batch(
        seed, "trs", config, recovery,
        ts_ids[ts_genuine], ts_slot[ts_genuine], ts_nat[ts_genuine],
        tables.stall_dr[ts_comp[ts_genuine]],
    )
    ts_meas = np.where(ts_res["duration"] > 1200.0, 60.0, 5.0) * (
        _uniform(seed, "trs:meas", ts_ids[ts_genuine],
                 ts_slot[ts_genuine]))
    tg_idx = ts_idx[ts_genuine]
    tg_pos = np.flatnonzero(tsm)[ts_genuine]
    records.add(
        dev=t_lane[tg_idx], start=t_when[tg_idx], type=1,
        dur=ts_res["duration"] + ts_meas, bs=pf_bs[tg_pos],
        rat=after_rat[tg_idx], lvl=after_lvl[tg_idx], dep=pf_dep[tg_pos],
        err=None, resby=ts_res["resolved_by"], stages=ts_res["stages"],
        post=True,
    )
    stall_blocks.append(ts_res)

    # -- post-transition OOS ------------------------------------------------
    tom = ptype == 2
    to_idx = pf[tom]
    to_dur = np.minimum(
        np.exp(np.log(behavior.OOS_MEDIAN_S) + behavior.OOS_SIGMA
               * _normal(seed, "tr:oos", pf_ids[tom], pf_slot[tom])),
        behavior.MAX_STALL_DURATION_S,
    )
    records.add(
        dev=t_lane[to_idx], start=t_when[to_idx], type=2, dur=to_dur,
        bs=pf_bs[tom], rat=after_rat[to_idx], lvl=after_lvl[to_idx],
        dep=pf_dep[tom], err=None, resby=_RESOLVED_BY_NONE, stages=0,
        post=True,
    )

    # =======================================================================
    # False-positive setup episodes (never recorded; they exist for the
    # monitor-filtering story and the DC/episode counters)
    # =======================================================================
    f_lane, f_slot = expand(n_fp)
    f_ids = ids[f_lane]
    flavour = _pick(tables.fp_cum,
                    _uniform(seed, "fp:flavour", f_ids, f_slot))
    overload = flavour == 0
    fp_cause = _sample_causes(
        tables,
        np.zeros(int((~overload).sum()), dtype=np.int64),
        _uniform(seed, "fp:cause", f_ids[~overload], f_slot[~overload]),
    )
    fp_retry = tables.cause_retryable[fp_cause]
    # All overload causes are rational rejections with retryable codes.
    dc["retryable"] += int(overload.sum()) + int(fp_retry.sum())
    dc["permanent"] += int((~fp_retry).sum())

    # =======================================================================
    # Assembly
    # =======================================================================
    shard = Dataset()
    cols = records.sorted_columns()
    model_id = tables.model_id[model]
    version = tables.model_version[model]
    isp_label = tables.isp_label[isp_idx]
    type_values = np.asarray(tables.type_values, dtype=object)
    rat_labels = np.asarray(RAT_LABELS, dtype=object)
    r_dev = cols["dev"]
    resby_col = cols["resby"]
    shard.failures.extend(map(
        FailureRecord,
        dev[r_dev].tolist(),
        model_id[r_dev].tolist(),
        version[r_dev].tolist(),
        has5g[r_dev].tolist(),
        isp_label[r_dev].tolist(),
        type_values[cols["type"]].tolist(),
        cols["start"].tolist(),
        cols["dur"].tolist(),
        cols["bs"].tolist(),
        rat_labels[cols["rat"]].tolist(),
        cols["lvl"].tolist(),
        tables.dep_values[cols["dep"]].tolist(),
        cols["err"].tolist(),
        [None if r == _RESOLVED_BY_NONE else r
         for r in resby_col.tolist()],
        cols["stages"].tolist(),
        cols["post"].tolist(),
        repeat(config.arm),
    ))

    t_order = np.lexsort((t_when, t_lane))
    shard.transitions.extend(map(
        TransitionRecord,
        dev[t_lane[t_order]].tolist(),
        rat_labels[cur_rat[t_order]].tolist(),
        cur_lvl[t_order].tolist(),
        rat_labels[sel_rat[t_order]].tolist(),
        sel_lvl[t_order].tolist(),
        executed[t_order].tolist(),
        failed[t_order].tolist(),
        repeat(config.arm),
    ))

    total_s = (
        behavior.STUDY_CONNECTED_SECONDS
        * (config.study_months / 8.0)
        * np.exp(0.3 * _normal(seed, "profile:usage", ids))
    )
    level_shares = tuple(enumerate(behavior.EXPOSURE_LEVEL_SHARES))
    exp_keys, exp_shares = {}, {}
    for five_g, usage in ((True, tables.usage5), (False, tables.usagen)):
        exp_keys[five_g] = [
            (label, level)
            for label, _ in usage for level, _ in level_shares
        ]
        exp_shares[five_g] = np.asarray([
            rat_share * level_share
            for _, rat_share in usage for _, level_share in level_shares
        ])
    exp_rows = {
        five_g: np.outer(total_s, shares).tolist()
        for five_g, shares in exp_shares.items()
    }
    dev_list = dev.tolist()
    model_list = model_id.tolist()
    has5g_list = has5g.tolist()
    append_device = shard.devices.append
    for i in range(n):
        five_g = has5g_list[i]
        append_device(DeviceRecord(
            dev_list[i], model_list[i], version[i], five_g,
            isp_label[i], config.arm,
            dict(zip(exp_keys[five_g], exp_rows[five_g][i])),
        ))

    if registry.enabled:
        _emit_metrics(
            registry, config, n, n_amb + n_tr + n_fp,
            int(n_amb.sum()), int(n_tr.sum()), int(n_fp.sum()),
            cols, type_values, executed, failed, dc, stall_blocks,
        )
    return shard, dc


# ---------------------------------------------------------------------------
# Metrics (bulk form of the serial engine's per-event increments)
# ---------------------------------------------------------------------------

_DC = DataConnectionState
_DC_RETRY_PAIRS = (
    (_DC.INACTIVE, _DC.ACTIVATING), (_DC.ACTIVATING, _DC.RETRYING),
    (_DC.RETRYING, _DC.ACTIVATING), (_DC.ACTIVATING, _DC.ACTIVE),
    (_DC.ACTIVE, _DC.DISCONNECTING), (_DC.DISCONNECTING, _DC.INACTIVE),
)
_DC_PERMANENT_PAIRS = (
    (_DC.INACTIVE, _DC.ACTIVATING), (_DC.ACTIVATING, _DC.INACTIVE),
)


def _emit_metrics(registry, config, n_devices, events_per_device,
                  n_ambient, n_transitions, n_fps, cols, type_values,
                  executed, failed, dc, stall_blocks) -> None:
    from repro.fleet import simulator as _sim

    registry.inc_key(_sim._DEVICES_KEY, n_devices)
    registry.inc_key(_sim._EPISODE_KEYS["ambient"], n_ambient)
    registry.inc_key(_sim._EPISODE_KEYS["transition"], n_transitions)
    registry.inc_key(_sim._EPISODE_KEYS["false_positive"], n_fps)
    registry.get_histogram(
        "fleet_device_events", EVENT_COUNT_BUCKETS
    ).observe_many(events_per_device.astype(np.float64))

    type_counts = np.bincount(cols["type"], minlength=len(type_values))
    for value, count in zip(type_values, type_counts):
        if count:
            registry.inc_key(
                counter_key("fleet_failures_total", type=value),
                int(count))
    registry.get_histogram(
        "fleet_failure_duration_s", DURATION_BUCKETS_S
    ).observe_many(cols["dur"])

    for ex in (False, True):
        for fl in (False, True):
            count = int(((executed == ex) & (failed == fl)).sum())
            if count:
                registry.inc_key(
                    _sim._RAT_TRANSITION_KEYS[ex, fl], count)

    for source, target in _DC_RETRY_PAIRS:
        registry.inc_key(
            counter_key("android_dc_transitions_total",
                        source=source.value, target=target.value),
            dc["retryable"])
    for source, target in _DC_PERMANENT_PAIRS:
        registry.inc_key(
            counter_key("android_dc_transitions_total",
                        source=source.value, target=target.value),
            dc["permanent"])

    # Stall recovery metrics (resolve_stall._record_resolution in bulk).
    durations = np.concatenate(
        [b["duration"] for b in stall_blocks]) if stall_blocks else (
        np.zeros(0))
    stages = np.concatenate(
        [b["stages"] for b in stall_blocks]) if stall_blocks else (
        np.zeros(0, dtype=np.int64))
    resby = np.concatenate(
        [b["resolved_by"] for b in stall_blocks]) if stall_blocks else (
        np.zeros(0, dtype=np.int64))
    if not durations.size:
        return
    labels, counts = np.unique(resby, return_counts=True)
    for value, count in zip(labels.tolist(), counts.tolist()):
        label = _RESOLVER_LABELS.get(value, f"stage{value}")
        registry.inc("android_stall_resolutions_total", count,
                     resolved_by=label)
    total_stages = int(stages.sum())
    if total_stages:
        registry.inc("android_stall_stages_total", total_stages)
    registry.get_histogram(
        "android_stall_duration_s", DURATION_BUCKETS_S
    ).observe_many(durations)
    registry.get_histogram(
        "android_stall_stages_executed", STAGE_COUNT_BUCKETS
    ).observe_many(stages.astype(np.float64))
    for block in stall_blocks:
        ends = block["windows"]["e"]
        for i in range(3):
            hist = registry.get_histogram(
                "android_stall_stage_start_s", DURATION_BUCKETS_S,
                stage=str(i + 1))
            count = int(block["passed"][i].sum())
            if count:
                hist.observe_many(np.full(count, ends[i]))
            extra = block["oracle_starts"][i + 1]
            if extra:
                hist.observe_many(np.asarray(extra))
