"""Scenario presets for study runs.

The paper's 70M devices and 5.27M BSes become laptop-scale replicas; the
statistics every table and figure reports (prevalence, frequency,
normalized prevalence, CDF shapes, rank distributions) are scale-free,
so the replica preserves their shapes (DESIGN.md Sec. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.chaos.config import ChaosConfig
from repro.dataset.records import ARM_PATCHED, ARM_VANILLA
from repro.network.topology import TopologyConfig

#: The per-device state-machine engine (the correctness oracle).
ENGINE_SERIAL = "serial"
#: The vectorized array engine (:mod:`repro.fleet.batch`).
ENGINE_BATCH = "batch"


@dataclass(frozen=True)
class ScenarioConfig:
    """Parameters of one fleet-simulation run."""

    n_devices: int = 5_000
    seed: int = 7
    study_months: float = 8.0
    arm: str = ARM_VANILLA
    #: Global multiplier on per-device hazards (cuts event counts for
    #: quick runs while preserving relative shapes).
    frequency_scale: float = 1.0
    #: Extra false-positive setup episodes per unit hazard.
    false_positive_rate: float = 0.10
    #: Hard per-device event cap (memory guard; far above the mean).
    max_events_per_device: int = 50_000
    #: Probations the patched arm deploys; None means the paper's
    #: TIMP optimum (21 / 6 / 16 s).  Used by ablation sweeps.
    patched_probations_s: tuple[float, float, float] | None = None
    topology: TopologyConfig = field(
        default_factory=lambda: TopologyConfig(n_base_stations=3_000)
    )
    #: Fault injection for the telemetry upload path; ``None`` keeps
    #: the legacy lossless in-process hand-off.  When set, the run's
    #: failure records are additionally shipped through per-device
    #: spoolers and a :class:`~repro.chaos.transport.ChaosTransport`
    #: into an ingestion server, and the reconciliation summary lands
    #: in ``Dataset.metadata["telemetry"]``.
    chaos: ChaosConfig | None = None
    #: Enable the observability layer (:mod:`repro.obs`): the run
    #: collects counters / gauges / histograms into
    #: ``Dataset.metadata["metrics"]`` and span timings into
    #: ``metadata["execution"]["spans"]``.  Off by default — the no-op
    #: registry keeps instrumented hot paths free.
    metrics: bool = False
    #: Simulation engine: ``"serial"`` realizes every device through the
    #: per-device state machines (the correctness oracle); ``"batch"``
    #: advances whole shards with vectorized numpy draws, ejecting
    #: devices in rare states to the serial mechanisms
    #: (:mod:`repro.fleet.batch`).  The two engines draw from different
    #: RNG streams, so their record *digests* differ while the record
    #: *distributions* agree (see ``docs/scaling.md``).
    engine: str = ENGINE_SERIAL
    #: Carrier-population override: per-ISP subscriber weights in
    #: profile order (ISP-A, ISP-B, ISP-C).  ``None`` keeps the
    #: paper's subscriber shares; scenario packs use this to model
    #: multi-carrier populations under different carrier-selection
    #: policies (see :mod:`repro.scenarios`).  Weights need not sum
    #: to 1 — only their ratios matter.
    isp_weights: tuple[float, ...] | None = None
    #: Override of :data:`repro.fleet.behavior.AMBIENT_FRACTION_5G`,
    #: the ambient-hazard multiplier applied to 5G-capable devices.
    #: Values above the default (0.50) model mmWave coverage holes:
    #: 5G devices spend more time at cell edges and dead zones, so
    #: their ambient failure incidence rises.  ``None`` keeps the
    #: default.
    ambient_factor_5g: float | None = None

    def __post_init__(self) -> None:
        if self.n_devices <= 0:
            raise ValueError("need at least one device")
        if self.arm not in (ARM_VANILLA, ARM_PATCHED):
            raise ValueError(f"unknown arm: {self.arm!r}")
        if self.frequency_scale <= 0:
            raise ValueError("frequency scale must be positive")
        if self.engine not in (ENGINE_SERIAL, ENGINE_BATCH):
            raise ValueError(f"unknown engine: {self.engine!r}")
        if self.isp_weights is not None:
            weights = tuple(float(w) for w in self.isp_weights)
            from repro.network.isp import ISP

            if len(weights) != len(ISP):
                raise ValueError(
                    f"isp_weights needs one weight per ISP "
                    f"({len(ISP)}), got {len(weights)}"
                )
            if any(w < 0 for w in weights) or sum(weights) <= 0:
                raise ValueError(
                    "isp_weights must be non-negative with a "
                    "positive sum"
                )
            object.__setattr__(self, "isp_weights", weights)
        if (self.ambient_factor_5g is not None
                and self.ambient_factor_5g <= 0):
            raise ValueError("ambient_factor_5g must be positive")

    def patched(self) -> "ScenarioConfig":
        """The same scenario under the enhanced (patched) system."""
        return replace(self, arm=ARM_PATCHED)

    def vanilla(self) -> "ScenarioConfig":
        return replace(self, arm=ARM_VANILLA)


def smoke_scenario(seed: int = 7) -> ScenarioConfig:
    """A fast scenario for tests (~1k devices)."""
    return ScenarioConfig(
        n_devices=1_000,
        seed=seed,
        topology=TopologyConfig(n_base_stations=800, seed=seed + 1),
    )


def default_scenario(seed: int = 7) -> ScenarioConfig:
    """The standard benchmark scenario (~5k devices)."""
    return ScenarioConfig(
        n_devices=5_000,
        seed=seed,
        topology=TopologyConfig(n_base_stations=3_000, seed=seed + 1),
    )


def full_scenario(seed: int = 7) -> ScenarioConfig:
    """A larger run for tighter statistics (~20k devices)."""
    return ScenarioConfig(
        n_devices=20_000,
        seed=seed,
        topology=TopologyConfig(n_base_stations=8_000, seed=seed + 1),
    )
