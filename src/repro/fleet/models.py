"""The 34 phone models and their failure-propensity calibration.

Table 1 publishes, per model, the fraction of devices with at least one
failure (*prevalence*) and the mean failures per device (*frequency*).
A gamma-mixed Poisson (negative binomial) is the canonical model for
such over-dispersed per-device counts: each device draws a personal
hazard ``lambda ~ Gamma(shape, scale)`` and experiences
``N ~ Poisson(lambda)`` failures over the study.  Matching the two
published moments — ``E[N] = shape * scale = frequency`` and
``P(N = 0) = (1 + scale)^-shape = 1 - prevalence`` — pins the gamma down
uniquely, and also reproduces Table 1's massive skew (most devices see
zero failures; one device saw 198,228).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from scipy.optimize import brentq

from repro import quantities
from repro.quantities import PhoneModelRow
from repro.radio.rat import RAT

#: RATs supported by non-5G and 5G phones respectively.
NON_5G_RATS = frozenset({RAT.GSM, RAT.UMTS, RAT.LTE})
FIVE_G_RATS = frozenset({RAT.GSM, RAT.UMTS, RAT.LTE, RAT.NR})


@dataclass(frozen=True)
class NegativeBinomialFit:
    """Gamma mixing parameters matched to (prevalence, frequency)."""

    shape: float
    scale: float

    @property
    def mean(self) -> float:
        return self.shape * self.scale

    @property
    def p_zero(self) -> float:
        return (1.0 + self.scale) ** (-self.shape)


def fit_negative_binomial_mixture(
    prevalence: float,
    frequency: float,
    factor_weights: tuple[tuple[float, float], ...],
) -> NegativeBinomialFit:
    """Fit the gamma so the *mixture over ISP hazard factors* matches
    Table 1's two moments.

    A device's hazard is ``lambda ~ Gamma(c * shape, scale)`` where
    ``c`` is its ISP's coverage-quality factor: scaling the *shape*
    moves the extensive margin (how many users fail at all), which is
    the only way ISP discrepancies can show up in prevalence under a
    heavily over-dispersed count distribution.  With ``E[c] = 1`` the
    mean constraint stays ``shape * scale = frequency``; the
    zero-probability constraint becomes
    ``sum_i w_i (1 + scale)^(-c_i * shape) = 1 - prevalence``, monotone
    increasing in ``scale`` (from ~0 toward 1), so a unique root exists.
    """
    if not 0.0 < prevalence < 1.0:
        raise ValueError("prevalence must be strictly within (0, 1)")
    if frequency <= 0:
        raise ValueError("frequency must be positive")
    weight_total = sum(w for _, w in factor_weights)
    mean_factor = sum(c * w for c, w in factor_weights) / weight_total
    if abs(mean_factor - 1.0) > 0.05:
        raise ValueError("hazard factors must average to ~1")
    target = 1.0 - prevalence

    def p_zero(scale: float) -> float:
        shape = frequency / scale
        return sum(
            (w / weight_total) * (1.0 + scale) ** (-c * shape)
            for c, w in factor_weights
        )

    lo, hi = 1e-9, 1e12
    if p_zero(lo) > target:
        raise ValueError(
            "inconsistent moments: P(N>=1) bounds the mean from below"
        )
    scale = brentq(lambda s: p_zero(s) - target, lo, hi,
                   xtol=1e-12, rtol=1e-12)
    return NegativeBinomialFit(shape=frequency / scale, scale=scale)


def fit_negative_binomial(
    prevalence: float, frequency: float
) -> NegativeBinomialFit:
    """Solve the gamma parameters from Table 1's two moments.

    With ``shape = frequency / scale``, the zero-probability condition
    becomes ``(frequency / scale) * ln(1 + scale) = -ln(1 - prevalence)``,
    whose left side decreases monotonically in ``scale`` from
    ``frequency`` (scale -> 0) to 0 (scale -> inf), so a unique root
    exists whenever ``-ln(1 - prevalence) < frequency`` — true for every
    row of Table 1.
    """
    if not 0.0 < prevalence < 1.0:
        raise ValueError("prevalence must be strictly within (0, 1)")
    if frequency <= 0:
        raise ValueError("frequency must be positive")
    target = -math.log(1.0 - prevalence)
    if target >= frequency:
        raise ValueError(
            "inconsistent moments: P(N>=1) bounds the mean from below"
        )

    def gap(scale: float) -> float:
        return (frequency / scale) * math.log1p(scale) - target

    lo, hi = 1e-9, 1e12
    scale = brentq(gap, lo, hi, xtol=1e-12, rtol=1e-12)
    return NegativeBinomialFit(shape=frequency / scale, scale=scale)


@dataclass(frozen=True)
class PhoneModelSpec:
    """One phone model: the Table 1 row plus derived attributes."""

    row: PhoneModelRow
    fit: NegativeBinomialFit

    @property
    def model(self) -> int:
        return self.row.model

    @property
    def has_5g(self) -> bool:
        return self.row.has_5g

    @property
    def android_version(self) -> str:
        return self.row.android_version

    @property
    def user_share(self) -> float:
        return self.row.user_share

    @property
    def supported_rats(self) -> frozenset[RAT]:
        return FIVE_G_RATS if self.row.has_5g else NON_5G_RATS

    def sample_hazard(self, rng, isp_factor: float = 1.0) -> float:
        """Draw one device's personal failure hazard (failures/study).

        ``isp_factor`` scales the gamma shape — the ISP coverage-quality
        channel of the mixture calibration (see
        :func:`fit_negative_binomial_mixture`).
        """
        return rng.gammavariate(
            self.fit.shape * isp_factor, self.fit.scale
        )


@lru_cache(maxsize=1)
def _build_specs() -> tuple[PhoneModelSpec, ...]:
    # Calibrate against the ISP hazard mixture so Table 1's per-model
    # marginals hold across the whole (ISP-heterogeneous) fleet.
    from repro.fleet.behavior import ISP_HAZARD_FACTOR
    from repro.network.isp import ISP_PROFILES

    factor_weights = tuple(
        (ISP_HAZARD_FACTOR[isp], profile.subscriber_share)
        for isp, profile in ISP_PROFILES.items()
    )
    specs = []
    for row in quantities.TABLE1:
        fit = fit_negative_binomial_mixture(
            row.prevalence, row.frequency, factor_weights
        )
        specs.append(PhoneModelSpec(row=row, fit=fit))
    return tuple(specs)


#: Specs for all 34 models, in Table 1 order.
PHONE_MODELS: tuple[PhoneModelSpec, ...] = _build_specs()

#: Lookup by model number.
PHONE_MODELS_BY_ID: dict[int, PhoneModelSpec] = {
    spec.model: spec for spec in PHONE_MODELS
}
