"""Fleet substrate: the 34-model device population, behaviour and
workload generators, per-device component assembly, and the nationwide
fleet simulator that produces study datasets."""

from repro.fleet.models import PhoneModelSpec, PHONE_MODELS, fit_negative_binomial
from repro.fleet.scenario import ScenarioConfig
from repro.fleet.simulator import FleetSimulator

__all__ = [
    "PhoneModelSpec",
    "PHONE_MODELS",
    "fit_negative_binomial",
    "ScenarioConfig",
    "FleetSimulator",
]
