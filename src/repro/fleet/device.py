"""Per-device component assembly and failure-episode realization.

A :class:`SimulatedDevice` owns real instances of every mechanism the
paper studies — modem, DcTracker + state machine, ServiceStateTracker,
netstack + stall detector, Android-MOD monitor + prober, RAT policy and
recovery policy — and realizes the workload the behaviour generators
schedule *through those mechanisms*, so each dataset record is produced
by the same code path the paper instruments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.android.dc_tracker import DcTracker
from repro.android.data_stall import VanillaDataStallDetector
from repro.android.dual_connectivity import (
    COLD_TRANSITION_FAILURE_RATE,
    ControlPlaneLink,
    EnDcManager,
    ENDC_TRANSITION_FAILURE_RATE,
)
from repro.android.handover import HandoverManager
from repro.android.rat_policy import RatCandidate
from repro.android.recovery import (
    RecoveryPolicy,
    StageParameters,
    resolve_stall,
)
from repro.android.telephony_legacy import (
    SmsManager,
    SmsSendOutcome,
    VoiceCallManager,
)
from repro.android.service_state import ServiceStateTracker
from repro.android.telephony import TelephonyManager
from repro.core.events import FailureEvent, FailureType, ProbeVerdict
from repro.core.signal import SignalLevel
from repro.core.usermodel import DEFAULT_USER_TOLERANCE
from repro.dataset.records import FailureRecord
from repro.fleet import behavior
from repro.fleet.models import PhoneModelSpec
from repro.monitoring.insitu import InSituCollector
from repro.monitoring.listener import CellularMonitorService
from repro.monitoring.overhead import OverheadAccountant
from repro.monitoring.prober import NetworkStateProber
from repro.netstack.faults import ActiveFault, FaultKind
from repro.netstack.stack import DeviceNetStack
from repro.network.basestation import BaseStation
from repro.network.isp import ISP
from repro.radio.modem import Modem
from repro.radio.rat import RAT
from repro.simtime import SimClock


class ScriptedBearer:
    """Wraps a real BS but scripts the next admission responses.

    The fleet scheduler decides *that* an episode fails and with which
    cause (sampled from the paper's empirical mix); this adapter makes
    the network produce exactly that response so the real DcTracker /
    modem path experiences it.
    """

    def __init__(
        self,
        bs: BaseStation,
        causes: list[str | None],
        organic_after_script: bool = False,
    ) -> None:
        self._bs = bs
        self._script = list(causes)
        self._organic_after_script = organic_after_script

    @property
    def bs_id(self) -> int:
        return self._bs.bs_id

    @property
    def identity(self):
        return self._bs.identity

    @property
    def isp(self):
        return self._bs.isp

    def supports(self, rat: RAT) -> bool:
        return self._bs.supports(rat)

    def admit_bearer(self, rat, signal_level, rng) -> str | None:
        if self._script:
            return self._script.pop(0)
        if self._organic_after_script:
            return self._bs.admit_bearer(rat, signal_level, rng)
        # The scheduled episode is over; the fleet scheduler, not the
        # BS, decides when the next failure happens.
        return None


@dataclass
class SimulatedDevice:
    """One opt-in phone, fully assembled."""

    device_id: int
    spec: PhoneModelSpec
    isp: ISP
    arm: str
    rat_policy: object
    recovery_policy: RecoveryPolicy
    rng: random.Random
    use_endc: bool = False
    clock: SimClock = field(default_factory=SimClock)
    records: list[FailureRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        # The fleet scheduler owns failure injection, so the modem's own
        # stochastic failure paths are disabled here (they stay on for
        # organic use; see tests/integration).
        self.modem = Modem(self.spec.supported_rats, self.rng,
                           internal_error_rate=0.0,
                           deep_fade_timeout_rate=0.0)
        self.stack = DeviceNetStack()
        self.tracker = DcTracker(self.clock, self.modem,
                                 retry_delays_s=(5.0,))
        self.service = ServiceStateTracker(self.clock)
        self.detector = VanillaDataStallDetector(self.clock,
                                                 self.stack.counters)
        self.telephony = TelephonyManager()
        self.prober = NetworkStateProber(self.clock)
        self.accountant = OverheadAccountant()
        self.monitor = CellularMonitorService(
            insitu=InSituCollector(self.telephony),
            sink=self._sink,
        )
        self.tracker.register_setup_error_listener(
            self.monitor.on_data_setup_error
        )
        self.endc = EnDcManager() if self.use_endc else None
        #: Filled per-episode so the sink can finalize records.
        self._episode_context: dict[str, object] = {}

    # -- record sink ----------------------------------------------------------

    def _sink(self, event: FailureEvent) -> None:
        context = event.context
        ep = self._episode_context
        record = FailureRecord(
            device_id=self.device_id,
            model=self.spec.model,
            android_version=self.spec.android_version,
            has_5g=self.spec.has_5g,
            isp=self.isp.label,
            failure_type=event.failure_type.value,
            start_time=event.start_time,
            duration_s=event.duration or 0.0,
            bs_id=int(context.get("bs_id") or ep.get("bs_id") or 0),
            rat=ep.get("rat", "4G"),
            signal_level=int(ep.get("signal_level", 3)),
            deployment=ep.get("deployment", "URBAN"),
            error_code=event.error_code,
            resolved_by=event.recovered_by_stage,
            stages_executed=int(ep.get("stages_executed", 0)),
            post_transition=bool(ep.get("post_transition", False)),
            arm=self.arm,
        )
        self.records.append(record)

    def _enter_episode(self, context: behavior.EventContext,
                       post_transition: bool = False) -> None:
        self.telephony.attach(context.bs, context.rat, context.signal_level)
        self._episode_context = {
            "bs_id": context.bs.bs_id,
            "rat": context.rat.label,
            "signal_level": int(context.signal_level),
            "deployment": context.deployment.value,
            "stages_executed": 0,
            "post_transition": post_transition,
        }

    # -- episode realizers -------------------------------------------------------

    def realize_setup_error(
        self,
        context: behavior.EventContext,
        cause: str,
        post_transition: bool = False,
    ) -> None:
        """One Data_Setup_Error episode: a failed attempt then recovery."""
        self._enter_episode(context, post_transition)
        self.accountant.event_opened()
        start = self.clock.now()
        bearer = ScriptedBearer(context.bs, [cause])
        result = self.tracker.establish(
            bearer, context.rat, context.signal_level
        )
        # The connectivity gap (first failure to re-establishment) is the
        # episode's duration; retries that also fail extend it.
        gap = max(self.clock.now() - start, 0.5)
        if self.records and self.records[-1].start_time >= start:
            self.records[-1].duration_s = gap
        self.accountant.event_closed(gap)
        if result.success:
            self.tracker.teardown()

    def realize_false_positive_setup(
        self, context: behavior.EventContext, cause: str
    ) -> None:
        """A rational rejection (e.g. BS overload) — must be filtered."""
        self._enter_episode(context)
        bearer = ScriptedBearer(context.bs, [cause])
        result = self.tracker.establish(
            bearer, context.rat, context.signal_level
        )
        if result.success:
            self.tracker.teardown()

    def realize_stall(
        self,
        context: behavior.EventContext,
        natural_duration_s: float,
        component: behavior.StallComponent,
        fault_kind: FaultKind,
        post_transition: bool = False,
    ) -> None:
        """One suspected Data_Stall episode, start to verdict."""
        self._enter_episode(context, post_transition)
        start = self.clock.now()
        fault = ActiveFault(kind=fault_kind, start=start,
                            duration=natural_duration_s)
        self.stack.inject_fault(fault)
        volley = self.prober.probe_once(
            self.stack,
            self.prober.base_icmp_timeout_s,
            self.prober.base_dns_timeout_s,
        )
        event = FailureEvent(
            failure_type=FailureType.DATA_STALL, start_time=start
        )
        if volley.verdict in (
            ProbeVerdict.SYSTEM_SIDE_FAULT,
            ProbeVerdict.DNS_SERVICE_FAULT,
        ):
            # A false positive: filtered, never recorded.
            event.close(start)
            self.monitor.on_stall_verdict(event, volley.verdict)
            self.stack.clear_fault()
            return
        self.accountant.event_opened()
        user_reset = None
        if self.rng.random() < behavior.USER_RESET_ENGAGEMENT:
            user_reset = DEFAULT_USER_TOLERANCE.sample_reset_time(self.rng)
        policy = _condition_policy(
            self.recovery_policy, component.device_recoverable
        )
        resolution = resolve_stall(
            policy, natural_duration_s, self.rng, user_reset_s=user_reset,
            # A manual reset is stage-1-like: it cannot fix a stall the
            # handset has no way to fix (isolated dead zones).
            user_reset_success_rate=0.85 * component.device_recoverable,
        )
        observed = resolution.duration_s + self._measurement_error(
            resolution.duration_s
        )
        event.close(start + observed)
        event.recovered_by_stage = resolution.resolved_by
        self._episode_context["stages_executed"] = (
            resolution.stages_executed
        )
        self.monitor.on_failure_event(event)
        # One volley per ~5 s until the prober's multiplicative backoff
        # (and eventual reversion to vanilla) caps the round count.
        probe_rounds = min(max(1, int(observed / 5.0)), 260)
        self.accountant.event_closed(
            observed, probe_rounds=probe_rounds,
            probe_bytes=probe_rounds * 350,
        )
        self.stack.clear_fault()

    def realize_out_of_service(
        self,
        context: behavior.EventContext,
        duration_s: float,
        post_transition: bool = False,
    ) -> None:
        """One Out_of_Service episode through the ServiceStateTracker."""
        self._enter_episode(context, post_transition)
        self.accountant.event_opened()
        self.service.begin_outage()
        self.clock.advance(duration_s)
        event = self.service.end_outage()
        if event is None:
            raise RuntimeError("outage did not close")
        self.monitor.on_failure_event(event)
        self.accountant.event_closed(duration_s)

    def realize_legacy_failure(self, context: behavior.EventContext,
                               failure_type: FailureType) -> None:
        """SMS / voice failures (<1% of events, Sec. 3.1), driven
        through the real legacy telephony services."""
        self._enter_episode(context)
        self.accountant.event_opened()
        start = self.clock.now()
        if failure_type is FailureType.SMS_FAILURE:
            sms = SmsManager(self.clock, self.rng)
            sms.register_failure_listener(self.monitor.on_failure_event)
            # One scheduled failure: first submit fails, retry sends.
            result = sms.send(context.signal_level,
                              script=[True, False])
            if result.outcome is not SmsSendOutcome.SENT:
                raise RuntimeError("scripted SMS retry must succeed")
        else:
            voice = VoiceCallManager(self.clock, self.rng)
            voice.register_failure_listener(
                self.monitor.on_failure_event
            )
            voice.place_call(context.signal_level,
                             cell_load=context.bs.load,
                             force_failure=True)
        self.accountant.event_closed(
            max(self.clock.now() - start, 1.0)
        )

    def realize_handover_failure(
        self,
        from_rat: RAT,
        from_level: SignalLevel,
        context: behavior.EventContext,
        cause: str,
    ) -> None:
        """A post-transition Data_Setup_Error, realized through the
        inter-RAT handover procedure (preparation rejected by the
        target cell with the scheduled cause)."""
        self._enter_episode(context, post_transition=True)
        self.accountant.event_opened()
        start = self.clock.now()
        manager = HandoverManager(self.rng, endc=self.endc)
        bearer = ScriptedBearer(context.bs, [cause])
        result = manager.execute(
            from_rat, from_level, bearer,
            context.rat, context.signal_level,
        )
        # The scheduler decided this transition fails; the procedure
        # supplies the mechanical texture (stage, cause, disturbance).
        event = FailureEvent(
            failure_type=FailureType.DATA_SETUP_ERROR,
            start_time=start,
            error_code=result.cause or cause,
        )
        event.close(start + max(result.disturbance_s, 0.5))
        self.monitor.on_failure_event(event)
        self.accountant.event_closed(event.duration or 1.0)

    # -- RAT transitions ------------------------------------------------------

    def decide_transition(
        self, scenario: behavior.TransitionScenario
    ) -> tuple[RatCandidate, RatCandidate, bool]:
        """Run the device's policy on a transition opportunity.

        Returns (current, selected, executed).
        """
        current = RatCandidate(scenario.current_rat, scenario.current_level)
        candidates = [
            RatCandidate(rat, level) for rat, level in scenario.candidates
        ]
        selected = self.rat_policy.select(current, candidates)
        executed = selected.rat is not current.rat
        return current, selected, executed

    def transition_procedure_failure_rate(self, target: RAT) -> float:
        """Control-procedure failure odds, cheaper under EN-DC."""
        if (
            self.endc is not None
            and target in (RAT.LTE, RAT.NR)
        ):
            self._ensure_endc_pair()
            return ENDC_TRANSITION_FAILURE_RATE
        return COLD_TRANSITION_FAILURE_RATE

    def _ensure_endc_pair(self) -> None:
        if self.endc is None or self.endc.dual_connected:
            return
        self.endc.attach_master(ControlPlaneLink(RAT.LTE, bs_id=0))
        self.endc.attach_slave(ControlPlaneLink(RAT.NR, bs_id=0))

    # -- helpers -----------------------------------------------------------

    def _measurement_error(self, duration_s: float) -> float:
        """Android-MOD probing granularity (Sec. 2.2): at most 5 s, or
        minute-scale after the prober reverts for >20-minute stalls."""
        if duration_s > 1200.0:
            return self.rng.uniform(0.0, 60.0)
        return self.rng.uniform(0.0, 5.0)


def _condition_policy(
    policy: RecoveryPolicy, device_recoverable: float
) -> RecoveryPolicy:
    """Scale stage effectiveness by the episode's fixability.

    Device-side recovery operations cannot repair a BS-side outage; the
    mixture component says how fixable this stall is from the handset.
    """
    if device_recoverable >= 1.0:
        return policy
    stages = tuple(
        StageParameters(
            overhead_s=stage.overhead_s,
            success_rate=stage.success_rate * device_recoverable,
        )
        for stage in policy.stages
    )
    return RecoveryPolicy(probations_s=policy.probations_s, stages=stages)
