"""Organic (schedule-free) simulation mode.

The calibrated fleet simulator *schedules* failures from Table 1
hazards and realizes them through the real mechanisms.  This module is
the validation counterpart: no failure is ever scheduled — devices
simply open data sessions against the live base stations and whatever
the admission mechanics (EMM density trouble, overload, contention,
deep fades) decide to reject becomes a failure.

Organic mode cannot match the paper's absolute marginals (that is what
the calibration is for), but the qualitative tendencies must emerge
from the mechanisms alone — hubs worse than suburbs, level 0 worse
than level 4, idle 3G cells healthier than 2G/4G.  The ablation bench
``benchmarks/test_ablation_organic.py`` asserts exactly that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.android.dc_tracker import DcTracker
from repro.core.signal import SignalLevel
from repro.fleet import behavior
from repro.monitoring.insitu import InSituCollector
from repro.monitoring.listener import CellularMonitorService
from repro.android.telephony import TelephonyManager
from repro.network.basestation import DeploymentClass
from repro.network.isp import ISP, ISP_PROFILES
from repro.network.topology import NationalTopology, TopologyConfig
from repro.radio.modem import Modem
from repro.radio.rat import RAT
from repro.simtime import SimClock


@dataclass(frozen=True)
class OrganicAttempt:
    """One organic data-session attempt."""

    device_id: int
    isp: str
    deployment: str
    rat: str
    signal_level: int
    success: bool
    #: DataFailCause of the final failed attempt (None on success).
    cause: str | None
    #: True-failure count surfaced to the monitor for this session.
    true_failures: int
    filtered: int


@dataclass
class OrganicResult:
    """All attempts of one organic run plus grouping helpers."""

    attempts: list[OrganicAttempt] = field(default_factory=list)

    def failure_rate(self, predicate=None) -> float:
        pool = [a for a in self.attempts
                if predicate is None or predicate(a)]
        if not pool:
            raise ValueError("no attempts match the predicate")
        return sum(not a.success for a in pool) / len(pool)

    def failure_rate_by(self, key) -> dict:
        groups: dict = {}
        for attempt in self.attempts:
            groups.setdefault(key(attempt), []).append(attempt)
        return {
            group: sum(not a.success for a in pool) / len(pool)
            for group, pool in groups.items()
        }


class OrganicSimulator:
    """Drives unscripted sessions through the real setup machinery."""

    def __init__(self, topology: NationalTopology | None = None,
                 seed: int = 0) -> None:
        self.topology = topology or NationalTopology(
            TopologyConfig(n_base_stations=2_000, seed=seed + 1)
        )
        self.seed = seed

    def run(self, n_devices: int = 50,
            sessions_per_device: int = 40) -> OrganicResult:
        """Open ``sessions_per_device`` organic sessions per device."""
        result = OrganicResult()
        isps = list(ISP_PROFILES)
        isp_weights = [ISP_PROFILES[isp].subscriber_share
                       for isp in isps]
        for device_id in range(1, n_devices + 1):
            rng = random.Random(f"organic:{self.seed}:{device_id}")
            isp = rng.choices(isps, weights=isp_weights)[0]
            self._run_device(device_id, isp, sessions_per_device,
                             rng, result)
        return result

    # -- internals -----------------------------------------------------------

    def _run_device(self, device_id: int, isp: ISP, sessions: int,
                    rng: random.Random, result: OrganicResult) -> None:
        clock = SimClock()
        modem = Modem({RAT.GSM, RAT.UMTS, RAT.LTE, RAT.NR}, rng)
        tracker = DcTracker(clock, modem, retry_delays_s=(5.0,))
        telephony = TelephonyManager()
        sink: list = []
        monitor = CellularMonitorService(
            insitu=InSituCollector(telephony), sink=sink.append,
        )
        tracker.register_setup_error_listener(
            monitor.on_data_setup_error
        )
        for _ in range(sessions):
            deployment = behavior._weighted(
                rng, list(behavior.DEPLOYMENT_TIME_MIX)
            )
            level = SignalLevel(rng.choices(
                range(6),
                weights=behavior.EXPOSURE_LEVEL_SHARES,
            )[0])
            rat = rng.choices(
                [RAT.GSM, RAT.UMTS, RAT.LTE],
                weights=[0.10, 0.04, 0.86],
            )[0]
            try:
                bs = self.topology.sample_bs(rng, isp, deployment, rat,
                                             weighted=False)
            except LookupError:
                continue
            if deployment is DeploymentClass.TRANSPORT_HUB:
                level = SignalLevel.LEVEL_5  # dense cells, strong signal
            telephony.attach(bs, rat, level)
            before = len(sink)
            filtered_before = monitor.filtered
            setup = tracker.establish(bs, rat, level)
            if setup.success:
                tracker.teardown()
            result.attempts.append(OrganicAttempt(
                device_id=device_id,
                isp=isp.label,
                deployment=bs.deployment.value,
                rat=rat.label,
                signal_level=int(level),
                success=setup.success,
                cause=setup.final_cause,
                true_failures=len(sink) - before,
                filtered=monitor.filtered - filtered_before,
            ))
