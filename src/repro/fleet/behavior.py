"""Workload and context generators for the fleet.

This module is the *generative* side of the substitution rule: it plays
the role of the physical world (user mobility, radio conditions, outage
processes) whose marginals the paper measured.  Everything here produces
*inputs* to the real mechanism code (state machines, detectors, recovery
engines); nothing here writes analysis outputs.

Calibration anchors (see DESIGN.md Sec. 4):

* per-(RAT, level) failure hazards shaped after Figs. 15-16 — monotone
  decreasing from level 0 to 4 with the hub-driven uptick at level 5;
* per-level connected-time exposure shares;
* the Data_Stall natural-duration mixture matched to Sec. 2.2/3.1
  (60% auto-fix within 10 s, >80% under 300 s, <10% above 1200 s, mean
  in the hundreds of seconds, a multi-hour disrepair tail);
* per-ISP hazard multipliers standing in for the coverage differences
  of Sec. 3.3.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.events import FailureType
from repro.core.signal import SignalLevel
from repro.netstack.faults import FaultKind
from repro.network.basestation import BaseStation, DeploymentClass
from repro.network.isp import ISP
from repro.network.topology import NationalTopology
from repro.radio.rat import RAT

# ---------------------------------------------------------------------------
# Radio-context distributions
# ---------------------------------------------------------------------------

#: Fraction of connected time spent at each signal level (levels 0-5).
EXPOSURE_LEVEL_SHARES: tuple[float, ...] = (
    0.02, 0.08, 0.15, 0.30, 0.40, 0.05,
)

#: Failure hazard per unit connected time, by level — the generative
#: ground truth behind Fig. 15's shape.  Level 5's uptick is hub-driven.
LEVEL_HAZARD: tuple[float, ...] = (6.0, 2.5, 1.6, 1.0, 0.7, 5.0)

#: Per-RAT multiplier on the level hazard: 5G modules are immature
#: (Sec. 3.2), 3G cells are idle (Sec. 3.3).
RAT_HAZARD_FACTOR: dict[RAT, float] = {
    RAT.GSM: 0.95,
    RAT.UMTS: 0.50,
    RAT.LTE: 1.00,
    RAT.NR: 1.40,
}

#: Fraction of connected time per RAT for non-5G and 5G devices.
RAT_USAGE_NON_5G: dict[RAT, float] = {
    RAT.GSM: 0.10,
    RAT.UMTS: 0.04,
    RAT.LTE: 0.86,
}
RAT_USAGE_5G: dict[RAT, float] = {
    RAT.GSM: 0.06,
    RAT.UMTS: 0.03,
    RAT.LTE: 0.61,
    RAT.NR: 0.30,
}

#: Deployment-class mix of where devices spend connected time.
DEPLOYMENT_TIME_MIX: tuple[tuple[DeploymentClass, float], ...] = (
    (DeploymentClass.TRANSPORT_HUB, 0.04),
    (DeploymentClass.URBAN_CORE, 0.16),
    (DeploymentClass.URBAN, 0.38),
    (DeploymentClass.SUBURBAN, 0.27),
    (DeploymentClass.RURAL, 0.12),
    (DeploymentClass.REMOTE, 0.03),
)

#: Residual per-ISP hazard multiplier (coverage quality, Sec. 3.3).
#: Applied to the gamma *shape* (the extensive margin: how many of an
#: ISP's users run into failure situations at all), which is what moves
#: prevalence under a heavily over-dispersed count distribution.
ISP_HAZARD_FACTOR: dict[ISP, float] = {
    ISP.A: 1.00,
    ISP.B: 1.35,
    ISP.C: 0.73,
}

#: Study-long connected seconds for an average device (8 months at a
#: ~55% attach duty cycle).
STUDY_CONNECTED_SECONDS = 8 * 30.44 * 86_400 * 0.55

# ---------------------------------------------------------------------------
# Failure-type mix
# ---------------------------------------------------------------------------

#: Global mean counts per device (Sec. 3.1: 16 / 14 / 3 of 33).
TYPE_WEIGHT_SETUP = 16.0
TYPE_WEIGHT_STALL = 14.0
TYPE_WEIGHT_OOS = 3.0
TYPE_WEIGHT_LEGACY = 0.33  # <1% SMS/voice failures

#: Only this fraction of devices experience Out_of_Service at all
#: (Sec. 3.1: 95% of phones report none; ~23% of devices fail at all).
OOS_ACTIVE_DEVICE_FRACTION = 0.20

# ---------------------------------------------------------------------------
# Data_Stall natural-duration mixture
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StallComponent:
    """One log-normal component of the natural-duration mixture."""

    weight: float
    median_s: float
    sigma: float
    #: Probability a device-side recovery operation can fix this stall
    #: (BS-side outages are not fixable from the handset).
    device_recoverable: float


#: Mixture calibrated to the paper's anchors (see module docstring):
#: fast device-side glitches, fixable medium outages, mostly-fixable
#: long outages (re-registration / radio restart can land on another
#: cell), and a thin truly-isolated tail (remote cells in disrepair,
#: nothing the handset does helps — the 25.5-hour failures of Sec. 3.1).
STALL_MIXTURE: tuple[StallComponent, ...] = (
    StallComponent(weight=0.600, median_s=3.0, sigma=0.70,
                   device_recoverable=1.00),
    StallComponent(weight=0.300, median_s=150.0, sigma=1.00,
                   device_recoverable=0.95),
    StallComponent(weight=0.096, median_s=1_500.0, sigma=1.10,
                   device_recoverable=0.85),
    StallComponent(weight=0.004, median_s=2_500.0, sigma=1.00,
                   device_recoverable=0.00),
)

#: Hard cap: the longest failure the paper observed (25.5 hours).
MAX_STALL_DURATION_S = 91_770.0

#: Fraction of suspected stalls that are false positives by kind
#: (system-side misconfigurations and DNS outages, Sec. 2.2).
STALL_FALSE_POSITIVE_MIX: tuple[tuple[FaultKind, float], ...] = (
    (FaultKind.NETWORK_STALL, 0.93),
    (FaultKind.FIREWALL_MISCONFIG, 0.02),
    (FaultKind.PROXY_MISCONFIG, 0.02),
    (FaultKind.MODEM_DRIVER_FAILURE, 0.01),
    (FaultKind.DNS_OUTAGE, 0.02),
)

#: Fraction of stall victims who would manually reset (~30 s, Sec. 3.2).
USER_RESET_ENGAGEMENT = 0.35

# ---------------------------------------------------------------------------
# Out_of_Service durations
# ---------------------------------------------------------------------------

OOS_MEDIAN_S = 12.0
OOS_SIGMA = 1.0

# ---------------------------------------------------------------------------
# RAT transitions
# ---------------------------------------------------------------------------

#: Transition opportunities per unit ambient hazard for 5G devices; the
#: blind policy converts a large share of these into failures, which is
#: the ~40% of 5G-phone failures the enhancement removes (Sec. 4.3).
TRANSITION_RATE_5G = 1.85
#: Same for non-5G devices (2G/3G/4G moves only).
TRANSITION_RATE_NON_5G = 0.30

#: Share of a 5G device's Table 1 frequency that is *ambient* (not
#: transition-induced) under the blind policy; the rest comes from the
#: transition stream above.  Non-5G devices are fully ambient.
AMBIENT_FRACTION_5G = 0.50

#: P(failure shortly after a transition) floor and risk slope.
TRANSITION_BASE_FAILURE_P = 0.03
TRANSITION_RISK_SLOPE = 1.40

#: Generative failure-likelihood table by (RAT, level) used to score
#: executed transitions; same shape family as Figs. 15-17.
GENERATIVE_LEVEL_RISK: dict[RAT, tuple[float, ...]] = {
    RAT.GSM: (0.30, 0.18, 0.13, 0.10, 0.08, 0.10),
    RAT.UMTS: (0.22, 0.13, 0.09, 0.07, 0.05, 0.06),
    RAT.LTE: (0.32, 0.19, 0.14, 0.10, 0.08, 0.11),
    RAT.NR: (0.45, 0.26, 0.18, 0.13, 0.10, 0.14),
}


# ---------------------------------------------------------------------------
# Samplers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EventContext:
    """Where/how one failure episode happens."""

    rat: RAT
    signal_level: SignalLevel
    deployment: DeploymentClass
    bs: BaseStation


def sample_failure_type(
    rng: random.Random, oos_active: bool
) -> FailureType:
    """Draw the episode's failure class from the per-device mix."""
    weights = [
        (FailureType.DATA_SETUP_ERROR, TYPE_WEIGHT_SETUP),
        (FailureType.DATA_STALL, TYPE_WEIGHT_STALL),
        (FailureType.OUT_OF_SERVICE,
         TYPE_WEIGHT_OOS / OOS_ACTIVE_DEVICE_FRACTION if oos_active
         else 0.0),
        (FailureType.SMS_FAILURE, TYPE_WEIGHT_LEGACY / 2),
        (FailureType.VOICE_FAILURE, TYPE_WEIGHT_LEGACY / 2),
    ]
    return _weighted(rng, weights)


def rat_usage_mix(has_5g: bool) -> dict[RAT, float]:
    return RAT_USAGE_5G if has_5g else RAT_USAGE_NON_5G


def sample_event_rat(rng: random.Random, has_5g: bool) -> RAT:
    """RAT where the failure occurs, biased by usage x RAT hazard."""
    usage = rat_usage_mix(has_5g)
    weights = [
        (rat, share * RAT_HAZARD_FACTOR[rat])
        for rat, share in usage.items()
    ]
    return _weighted(rng, weights)


@dataclass(frozen=True)
class DeviceRadioProfile:
    """Where one device's failures concentrate.

    Real failures cluster at the radio conditions of the places a user
    actually frequents (home, commute, workplace), so each device draws
    a *home level* once; most of its failures happen there.  Without
    this clustering a 30-failure device would touch every signal level
    and the per-level device prevalence of Figs. 15-16 would saturate.
    """

    home_level: SignalLevel
    concentration: float = 0.7


_LEVEL_EVENT_WEIGHTS = [
    (SignalLevel(level), EXPOSURE_LEVEL_SHARES[level] * hazard)
    for level, hazard in enumerate(LEVEL_HAZARD)
]


def make_radio_profile(rng: random.Random) -> DeviceRadioProfile:
    """Draw a device's home failure level (exposure x hazard weighted)."""
    return DeviceRadioProfile(
        home_level=_weighted(rng, _LEVEL_EVENT_WEIGHTS)
    )


def sample_event_level(
    rng: random.Random,
    rat: RAT,
    profile: DeviceRadioProfile | None = None,
) -> SignalLevel:
    """Signal level at failure time.

    Without a profile the level follows exposure x hazard globally.
    With one, failures concentrate at the device's home level with the
    remainder spilling to *adjacent* levels — a user's radio conditions
    vary locally, not across the whole national distribution.
    """
    del rat  # the level-hazard shape is shared across RATs
    if profile is None:
        return _weighted(rng, _LEVEL_EVENT_WEIGHTS)
    roll = rng.random()
    if roll < profile.concentration:
        return profile.home_level
    offset = 1 if roll < (1.0 + profile.concentration) / 2 else 2
    sign = 1 if rng.random() < 0.5 else -1
    level = int(profile.home_level) + sign * offset
    return SignalLevel(min(5, max(0, level)))


def sample_event_deployment(
    rng: random.Random, signal_level: SignalLevel
) -> DeploymentClass:
    """Deployment class of the serving BS.

    Level-5 failures come overwhelmingly from densely deployed hub
    cells — the causal story behind Fig. 15's anomaly (Sec. 3.3).
    """
    if signal_level is SignalLevel.LEVEL_5:
        roll = rng.random()
        if roll < 0.70:
            return DeploymentClass.TRANSPORT_HUB
        if roll < 0.92:
            return DeploymentClass.URBAN_CORE
        return DeploymentClass.URBAN
    return _weighted(rng, list(DEPLOYMENT_TIME_MIX))


def sample_event_context(
    rng: random.Random,
    topology: NationalTopology,
    isp: ISP,
    has_5g: bool,
    long_outage: bool = False,
    profile: DeviceRadioProfile | None = None,
) -> EventContext:
    """Draw the full radio context of one failure episode."""
    rat = sample_event_rat(rng, has_5g)
    level = sample_event_level(rng, rat, profile)
    if long_outage and rng.random() < 0.6:
        # Multi-hour outages concentrate on neglected remote cells
        # (Sec. 3.1); their signal is typically poor too.
        deployment = DeploymentClass.REMOTE
        level = min(level, SignalLevel(rng.choice([0, 1, 2])))
    else:
        deployment = sample_event_deployment(rng, level)
    bs = topology.sample_bs(rng, isp, deployment, rat)
    return EventContext(rat=rat, signal_level=level,
                        deployment=deployment, bs=bs)


def sample_stall_natural_duration(
    rng: random.Random,
) -> tuple[float, StallComponent]:
    """Natural (un-intervened) stall duration plus its component."""
    component = _weighted(
        rng, [(c, c.weight) for c in STALL_MIXTURE]
    )
    duration = rng.lognormvariate(
        _ln(component.median_s), component.sigma
    )
    return min(duration, MAX_STALL_DURATION_S), component


def sample_stall_fault_kind(rng: random.Random) -> FaultKind:
    return _weighted(rng, list(STALL_FALSE_POSITIVE_MIX))


def sample_oos_duration(rng: random.Random) -> float:
    return min(
        rng.lognormvariate(_ln(OOS_MEDIAN_S), OOS_SIGMA),
        MAX_STALL_DURATION_S,
    )


def generative_risk(rat: RAT, level: SignalLevel) -> float:
    return GENERATIVE_LEVEL_RISK[rat][int(level)]


def transition_failure_probability(
    from_rat: RAT,
    from_level: SignalLevel,
    to_rat: RAT,
    to_level: SignalLevel,
) -> float:
    """P(failure in the observation window after an executed transition)."""
    increase = generative_risk(to_rat, to_level) - generative_risk(
        from_rat, from_level
    )
    return min(
        0.95,
        TRANSITION_BASE_FAILURE_P + TRANSITION_RISK_SLOPE * max(0.0, increase),
    )


def stay_failure_probability(rat: RAT, level: SignalLevel) -> float:
    """P(failure in the same window without transitioning)."""
    return TRANSITION_BASE_FAILURE_P


@dataclass(frozen=True)
class TransitionScenario:
    """One transition opportunity: where the device is and what it sees."""

    current_rat: RAT
    current_level: SignalLevel
    candidates: tuple[tuple[RAT, SignalLevel], ...]


def sample_transition_scenario(
    rng: random.Random, has_5g: bool
) -> TransitionScenario:
    """Draw a transition opportunity.

    For 5G devices the canonical situation of Sec. 3.2 dominates: a
    healthy 4G connection with a weak-to-moderate 5G cell in sight —
    exactly where blind 5G preference hurts.
    """
    if has_5g and rng.random() < 0.75:
        current = (RAT.LTE, SignalLevel(rng.choices(
            [1, 2, 3, 4], weights=[1, 3, 5, 4])[0]))
        nr_level = SignalLevel(rng.choices(
            [0, 1, 2, 3, 4, 5], weights=[50, 15, 12, 11, 7, 5])[0])
        candidates = [current, (RAT.NR, nr_level)]
        if rng.random() < 0.3:
            candidates.append((RAT.UMTS, SignalLevel(rng.choice([1, 2, 3]))))
    else:
        current_rat = _weighted(rng, [(RAT.LTE, 0.7), (RAT.UMTS, 0.1),
                                      (RAT.GSM, 0.2)])
        current = (current_rat, SignalLevel(rng.choices(
            [0, 1, 2, 3, 4], weights=[1, 2, 4, 5, 4])[0]))
        other_rats = [r for r in (RAT.GSM, RAT.UMTS, RAT.LTE)
                      if r is not current_rat]
        candidates = [current]
        for rat in other_rats:
            if rng.random() < 0.6:
                candidates.append((rat, SignalLevel(rng.choices(
                    [0, 1, 2, 3, 4], weights=[2, 3, 4, 4, 3])[0])))
    return TransitionScenario(
        current_rat=current[0],
        current_level=current[1],
        candidates=tuple(candidates),
    )


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


def _weighted(rng: random.Random, table):
    total = sum(weight for _, weight in table)
    roll = rng.random() * total
    cumulative = 0.0
    for item, weight in table:
        cumulative += weight
        if roll < cumulative:
            return item
    return table[-1][0]


def _ln(x: float) -> float:
    return math.log(x)
