"""The nationwide fleet simulator.

Runs one scenario end to end: builds the BS topology, assembles each
opt-in device from real mechanism components, schedules its workload
from the behaviour generators, realizes every episode *through* those
mechanisms, and returns the collected :class:`~repro.dataset.store.Dataset`.

Pairing across arms: every stochastic decision is drawn from a stream
seeded by ``(scenario seed, device id, purpose)``, so a vanilla run and
a patched run of the same scenario see identical devices, identical
ambient episodes, and identical transition opportunities — the only
differences are the policy decisions and recovery triggers under test,
exactly like the paper's A/B deployment but with common random numbers.

The same seeding discipline makes device simulation embarrassingly
parallel: ``run(workers=N)`` partitions the population into contiguous
device-id shards and executes them in worker processes via
:mod:`repro.parallel`, producing records byte-identical to the
sequential run (see ``docs/performance.md``).
"""

from __future__ import annotations

import random

from repro.android.rat_policy import (
    StabilityCompatiblePolicy,
    policy_for_android_version,
)
from repro.android.recovery import (
    RecoveryPolicy,
    TIMP_RECOVERY_POLICY,
    VANILLA_RECOVERY_POLICY,
)
from repro.analysis.columnar import compute_analysis_block
from repro.chaos.pipeline import TelemetryRunResult, run_telemetry_pipeline
from repro.core.events import FailureType
from repro.dataset.records import (
    ARM_PATCHED,
    BaseStationRecord,
    DeviceRecord,
    TransitionRecord,
)
from repro.dataset.store import Dataset
from repro.fleet import behavior
from repro.fleet.device import SimulatedDevice
from repro.fleet.models import PHONE_MODELS, PhoneModelSpec
from repro.fleet.scenario import ENGINE_BATCH, ScenarioConfig
from repro.monitoring.listener import DeviceFlags
from repro.network.bearer import DEFAULT_CAUSE_SAMPLER
from repro.obs import (
    DURATION_BUCKETS_S,
    EVENT_COUNT_BUCKETS,
    MetricsRegistry,
    counter_key,
    get_registry,
    use_registry,
)
from repro.network.basestation import DEPLOYMENT_TRAITS
from repro.network.isp import ISP, ISP_PROFILES
from repro.network.topology import NationalTopology
from repro.parallel.sharding import ShardSpec
from repro.parallel.stats import ShardStats, StopWatch, execution_metadata
from repro.radio.rat import RAT
from repro.simtime import SECONDS_PER_MONTH

#: How post-transition failures split across types.
_POST_TRANSITION_TYPE_MIX = (
    (FailureType.DATA_SETUP_ERROR, 0.50),
    (FailureType.DATA_STALL, 0.35),
    (FailureType.OUT_OF_SERVICE, 0.15),
)

#: False-positive setup flavours and their odds.
_FP_FLAVOURS = (
    ("overload", 0.70),
    ("voice_call", 0.10),
    ("balance", 0.10),
    ("manual", 0.10),
)

_OVERLOAD_FP_CAUSES = ("INSUFFICIENT_RESOURCES", "CONGESTION",
                       "ACCESS_BLOCK")

#: Precomputed counter keys for the per-device/per-episode hot paths,
#: so enabling metrics does not pay kwargs + sort on every increment.
_DEVICES_KEY = counter_key("fleet_devices_total")
_EPISODE_KEYS = {
    kind: counter_key("fleet_episodes_total", kind=kind)
    for kind in ("ambient", "transition", "false_positive")
}
_RAT_TRANSITION_KEYS = {
    (executed, failed): counter_key("fleet_transitions_total",
                                    executed=str(executed).lower(),
                                    failed=str(failed).lower())
    for executed in (False, True)
    for failed in (False, True)
}
_FAILURE_TYPE_KEYS: dict = {}


class FleetSimulator:
    """Simulates one scenario and produces its dataset."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.topology = NationalTopology(config.topology)
        #: Chaos telemetry result of the last run (None when the
        #: scenario has no ``chaos`` block).
        self.telemetry: TelemetryRunResult | None = None

    # -- public API ----------------------------------------------------------

    def run(
        self,
        workers: int | None = None,
        *,
        n_shards: int | None = None,
        checkpoint_dir=None,
        resume: bool = False,
    ) -> Dataset:
        """Simulate every device; returns the collected dataset.

        ``workers`` selects the execution engine: ``None`` or ``1``
        runs sequentially in-process (the legacy path); ``N >= 2``
        shards the device population across ``N`` worker processes via
        :func:`repro.parallel.run_sharded`.  Records are identical
        either way; ``dataset.metadata["execution"]`` describes what
        actually ran (mode, per-shard stats, throughput, supervision).

        ``checkpoint_dir`` spools every completed shard to a durable
        store and ``resume=True`` reloads completed shards from it (a
        checkpointed request always routes through the sharded engine,
        even at one worker, so the artifacts exist to resume from);
        ``n_shards`` sets the partition granularity independently of
        process concurrency.  See ``docs/performance.md``.

        In sharded mode each shard replays its own telemetry pipeline,
        so ``self.telemetry`` stays ``None`` and the merged summary
        lands in ``dataset.metadata["telemetry"]`` instead.
        """
        if workers is not None and workers < 1:
            raise ValueError("workers must be a positive integer")
        if resume and checkpoint_dir is None:
            raise ValueError("resume requires a checkpoint directory")
        if ((workers is not None and workers > 1) or checkpoint_dir
                or (n_shards is not None and n_shards > 1)):
            from repro.parallel.engine import run_sharded

            self.telemetry = None
            return run_sharded(
                self.config, workers or 1,
                n_shards=n_shards,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
                base_station_records=base_station_rows(self.topology),
            )

        dataset = Dataset(metadata=self.base_metadata(self.config))
        dataset.base_stations = base_station_rows(self.topology)
        registry = MetricsRegistry() if self.config.metrics else None
        watch = StopWatch()
        with use_registry(registry):
            shard, stats = self.simulate_shard(
                ShardSpec(index=0, n_shards=1, lo=1,
                          hi=self.config.n_devices + 1)
            )
            dataset.devices.extend(shard.devices)
            dataset.failures.extend(shard.failures)
            dataset.transitions.extend(shard.transitions)
            chaos = self.config.chaos
            if chaos is not None and chaos.enabled:
                self.telemetry = run_telemetry_pipeline(dataset, chaos)
                dataset.metadata["telemetry"] = self.telemetry.summary()
            # Same streaming aggregate the sharded workers compute —
            # one partial over the single full-range shard, so serial
            # and sharded runs carry byte-identical analysis blocks.
            dataset.metadata["analysis"] = compute_analysis_block(dataset)
        # The stats cover the whole serial task (simulation + telemetry
        # + metrics), matching what sharded workers report.
        stats.wall_s = watch.elapsed()
        stats.cpu_s = watch.cpu_elapsed()
        if registry is not None:
            dataset.metadata["metrics"] = registry.deterministic_snapshot()
        dataset.metadata["execution"] = execution_metadata(
            mode="serial", workers=1, shards=[stats],
            wall_s=watch.elapsed(),
            spans=registry.span_timings() if registry else None,
        )
        return dataset

    def simulate_shard(self, spec: ShardSpec) -> tuple[Dataset, ShardStats]:
        """Simulate one contiguous device-id shard.

        Returns the shard-local records plus execution stats.  Used by
        both the sequential path (one full-range shard) and the
        :mod:`repro.parallel` workers, so the two engines realize
        devices through literally the same code.

        With ``engine="batch"`` the shard is advanced by the vectorized
        array engine instead (:mod:`repro.fleet.batch`); the serial
        walk below stays the correctness oracle.
        """
        if self.config.engine == ENGINE_BATCH:
            from repro.fleet.batch import simulate_shard_batch

            return simulate_shard_batch(self.config, self.topology, spec)
        shard = Dataset()
        watch = StopWatch()
        registry = get_registry()
        with registry.span("fleet.simulate_shard"):
            for device_id in spec.device_ids():
                with registry.span("fleet.device"):
                    self._simulate_device(device_id, shard)
        stats = ShardStats(
            shard=spec.index,
            device_lo=spec.lo,
            device_hi=spec.hi,
            n_devices=spec.n_devices,
            n_failures=len(shard.failures),
            n_transitions=len(shard.transitions),
            wall_s=watch.elapsed(),
            cpu_s=watch.cpu_elapsed(),
        )
        return shard, stats

    @staticmethod
    def base_metadata(config: ScenarioConfig) -> dict:
        """Run-level metadata shared by every execution engine."""
        return {
            "arm": config.arm,
            "n_devices": config.n_devices,
            "seed": config.seed,
            "study_months": config.study_months,
            "frequency_scale": config.frequency_scale,
            "engine": config.engine,
        }

    # -- per-device simulation ---------------------------------------------------

    def _stream(self, device_id: int, purpose: str) -> random.Random:
        return random.Random(
            f"{self.config.seed}:{device_id}:{purpose}"
        )

    def _simulate_device(self, device_id: int, dataset: Dataset) -> None:
        profile_rng = self._stream(device_id, "profile")
        spec = self._pick_model(profile_rng)
        isp = self._pick_isp(profile_rng)
        device = self._build_device(device_id, spec, isp)

        hazard = (
            spec.sample_hazard(
                profile_rng, isp_factor=behavior.ISP_HAZARD_FACTOR[isp]
            )
            * self.config.frequency_scale
            * (self.config.study_months / 8.0)
        )
        factor_5g = (
            self.config.ambient_factor_5g
            if self.config.ambient_factor_5g is not None
            else behavior.AMBIENT_FRACTION_5G
        )
        ambient_hazard = hazard * (factor_5g if spec.has_5g else 1.0)
        study_s = self.config.study_months * SECONDS_PER_MONTH

        schedule = self._schedule(profile_rng, spec, hazard,
                                  ambient_hazard, study_s)
        oos_active = profile_rng.random() < (
            behavior.OOS_ACTIVE_DEVICE_FRACTION
        )
        radio_profile = behavior.make_radio_profile(profile_rng)

        for index, (when, kind) in enumerate(schedule):
            device.rng = self._stream(device_id, f"mech:{index}")
            if when > device.clock.now():
                device.clock.advance_to(when)
            if kind == "ambient":
                self._realize_ambient(device, profile_rng, oos_active,
                                      radio_profile)
            elif kind == "transition":
                self._realize_transition(device, profile_rng, dataset)
            else:  # false positive
                self._realize_false_positive(device, profile_rng)

        dataset.devices.append(
            self._device_record(device_id, spec, isp, profile_rng, study_s)
        )
        dataset.failures.extend(device.records)

        registry = get_registry()
        if registry.enabled:
            registry.inc_key(_DEVICES_KEY)
            registry.get_histogram(
                "fleet_device_events", EVENT_COUNT_BUCKETS
            ).observe(float(len(schedule)))
            duration_hist = registry.get_histogram(
                "fleet_failure_duration_s", DURATION_BUCKETS_S
            )
            for record in device.records:
                key = _FAILURE_TYPE_KEYS.get(record.failure_type)
                if key is None:
                    key = counter_key("fleet_failures_total",
                                      type=record.failure_type)
                    _FAILURE_TYPE_KEYS[record.failure_type] = key
                registry.inc_key(key)
                duration_hist.observe(record.duration_s)

    def _schedule(
        self,
        rng: random.Random,
        spec: PhoneModelSpec,
        hazard: float,
        ambient_hazard: float,
        study_s: float,
    ) -> list[tuple[float, str]]:
        """Time-sorted (when, kind) items for one device."""
        cap = self.config.max_events_per_device
        n_ambient = min(_poisson(rng, ambient_hazard), cap)
        transition_rate = (
            behavior.TRANSITION_RATE_5G if spec.has_5g
            else behavior.TRANSITION_RATE_NON_5G
        )
        n_transitions = min(_poisson(rng, hazard * transition_rate), cap)
        n_fps = min(
            _poisson(rng, ambient_hazard * self.config.false_positive_rate),
            cap,
        )
        schedule = (
            [(rng.uniform(0, study_s), "ambient")
             for _ in range(n_ambient)]
            + [(rng.uniform(0, study_s), "transition")
               for _ in range(n_transitions)]
            + [(rng.uniform(0, study_s), "fp") for _ in range(n_fps)]
        )
        schedule.sort()
        registry = get_registry()
        if registry.enabled:
            registry.inc_key(_EPISODE_KEYS["ambient"], n_ambient)
            registry.inc_key(_EPISODE_KEYS["transition"], n_transitions)
            registry.inc_key(_EPISODE_KEYS["false_positive"], n_fps)
        return schedule

    # -- episode realization -------------------------------------------------------

    def _realize_ambient(
        self,
        device: SimulatedDevice,
        rng: random.Random,
        oos_active: bool,
        radio_profile: behavior.DeviceRadioProfile,
    ) -> None:
        failure_type = behavior.sample_failure_type(rng, oos_active)
        if failure_type is FailureType.DATA_STALL:
            natural, component = behavior.sample_stall_natural_duration(rng)
            context = behavior.sample_event_context(
                rng, self.topology, device.isp, device.spec.has_5g,
                long_outage=natural > 1_200.0,
                profile=radio_profile,
            )
            fault_kind = behavior.sample_stall_fault_kind(rng)
            device.realize_stall(context, natural, component, fault_kind)
            return
        context = behavior.sample_event_context(
            rng, self.topology, device.isp, device.spec.has_5g,
            profile=radio_profile,
        )
        if failure_type is FailureType.DATA_SETUP_ERROR:
            cause = DEFAULT_CAUSE_SAMPLER.sample(
                rng,
                rat=context.rat,
                signal_level=context.signal_level,
                deployment_density=DEPLOYMENT_TRAITS[
                    context.deployment].density,
            )
            device.realize_setup_error(context, cause)
        elif failure_type is FailureType.OUT_OF_SERVICE:
            device.realize_out_of_service(
                context, behavior.sample_oos_duration(rng)
            )
        else:
            device.realize_legacy_failure(context, failure_type)

    def _realize_transition(
        self,
        device: SimulatedDevice,
        rng: random.Random,
        dataset: Dataset,
    ) -> None:
        scenario = behavior.sample_transition_scenario(
            rng, device.spec.has_5g
        )
        current, selected, executed = device.decide_transition(scenario)
        if executed:
            p_fail = behavior.transition_failure_probability(
                current.rat, current.signal_level,
                selected.rat, selected.signal_level,
            ) + device.transition_procedure_failure_rate(selected.rat)
        else:
            p_fail = behavior.stay_failure_probability(
                current.rat, current.signal_level
            )
        failed = rng.random() < p_fail
        after = selected if executed else current
        registry = get_registry()
        if registry.enabled:
            registry.inc_key(_RAT_TRANSITION_KEYS[executed, failed])
        dataset.transitions.append(TransitionRecord(
            device_id=device.device_id,
            from_rat=current.rat.label,
            from_level=int(current.signal_level),
            to_rat=selected.rat.label,
            to_level=int(selected.signal_level),
            executed=executed,
            failed_after=failed,
            arm=device.arm,
        ))
        if not failed:
            return
        deployment = behavior.sample_event_deployment(
            rng, after.signal_level
        )
        bs = self.topology.sample_bs(rng, device.isp, deployment, after.rat)
        context = behavior.EventContext(
            rat=after.rat, signal_level=after.signal_level,
            deployment=deployment, bs=bs,
        )
        failure_type = _weighted(rng, _POST_TRANSITION_TYPE_MIX)
        if failure_type is FailureType.DATA_SETUP_ERROR:
            cause = DEFAULT_CAUSE_SAMPLER.sample(
                rng,
                rat=after.rat,
                signal_level=after.signal_level,
                deployment_density=DEPLOYMENT_TRAITS[deployment].density,
                during_handover=True,
            )
            device.realize_handover_failure(
                current.rat, current.signal_level, context, cause
            )
        elif failure_type is FailureType.DATA_STALL:
            natural, component = behavior.sample_stall_natural_duration(rng)
            device.realize_stall(
                context, natural, component,
                fault_kind=behavior.sample_stall_fault_kind(rng),
                post_transition=True,
            )
        else:
            device.realize_out_of_service(
                context, behavior.sample_oos_duration(rng),
                post_transition=True,
            )

    def _realize_false_positive(
        self, device: SimulatedDevice, rng: random.Random
    ) -> None:
        """Suspicious-but-false events the monitor must filter out."""
        flavour = _weighted(rng, _FP_FLAVOURS)
        context = behavior.sample_event_context(
            rng, self.topology, device.isp, device.spec.has_5g
        )
        before = len(device.records)
        if flavour == "overload":
            cause = rng.choice(_OVERLOAD_FP_CAUSES)
            device.realize_false_positive_setup(context, cause)
        else:
            flags = {
                "voice_call": DeviceFlags(in_voice_call=True),
                "balance": DeviceFlags(balance_exhausted=True),
                "manual": DeviceFlags(data_manually_disabled=True),
            }[flavour]
            previous = device.monitor.flags
            device.monitor.flags = flags
            cause = DEFAULT_CAUSE_SAMPLER.sample(rng)
            device.realize_false_positive_setup(context, cause)
            device.monitor.flags = previous
        if len(device.records) != before:
            raise RuntimeError(
                "false-positive episode leaked into the dataset"
            )

    # -- population ---------------------------------------------------------

    def _pick_model(self, rng: random.Random) -> PhoneModelSpec:
        shares = [spec.user_share for spec in PHONE_MODELS]
        return rng.choices(PHONE_MODELS, weights=shares)[0]

    def _pick_isp(self, rng: random.Random) -> ISP:
        isps = list(ISP_PROFILES)
        if self.config.isp_weights is not None:
            weights = list(self.config.isp_weights)
        else:
            weights = [ISP_PROFILES[isp].subscriber_share
                       for isp in isps]
        return rng.choices(isps, weights=weights)[0]

    def _build_device(
        self, device_id: int, spec: PhoneModelSpec, isp: ISP
    ) -> SimulatedDevice:
        patched = self.config.arm == ARM_PATCHED
        if patched:
            rat_policy = StabilityCompatiblePolicy()
            recovery: RecoveryPolicy = TIMP_RECOVERY_POLICY
            if self.config.patched_probations_s is not None:
                recovery = TIMP_RECOVERY_POLICY.with_probations(
                    self.config.patched_probations_s
                )
        else:
            rat_policy = policy_for_android_version(spec.android_version)
            recovery = VANILLA_RECOVERY_POLICY
        return SimulatedDevice(
            device_id=device_id,
            spec=spec,
            isp=isp,
            arm=self.config.arm,
            rat_policy=rat_policy,
            recovery_policy=recovery,
            rng=self._stream(device_id, "mech:init"),
            use_endc=patched and spec.has_5g,
        )

    def _device_record(
        self,
        device_id: int,
        spec: PhoneModelSpec,
        isp: ISP,
        rng: random.Random,
        study_s: float,
    ) -> DeviceRecord:
        total = (
            behavior.STUDY_CONNECTED_SECONDS
            * (self.config.study_months / 8.0)
            * rng.lognormvariate(0.0, 0.3)
        )
        usage = behavior.rat_usage_mix(spec.has_5g)
        exposure: dict[tuple[str, int], float] = {}
        for rat, rat_share in usage.items():
            for level, level_share in enumerate(
                behavior.EXPOSURE_LEVEL_SHARES
            ):
                seconds = total * rat_share * level_share
                if seconds > 0:
                    exposure[(rat.label, level)] = seconds
        return DeviceRecord(
            device_id=device_id,
            model=spec.model,
            android_version=spec.android_version,
            has_5g=spec.has_5g,
            isp=isp.label,
            arm=self.config.arm,
            exposure_s=exposure,
        )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def base_station_rows(topology: NationalTopology) -> list[BaseStationRecord]:
    """The dataset's BS inventory for ``topology`` (deterministic)."""
    return [
        BaseStationRecord(
            bs_id=bs.bs_id,
            isp=bs.isp.label,
            rats=tuple(sorted(rat.label for rat in bs.supported_rats)),
            deployment=bs.deployment.value,
        )
        for bs in topology.base_stations
    ]


def _poisson(rng: random.Random, mean: float) -> int:
    """Poisson draw; normal approximation for large means."""
    if mean <= 0:
        return 0
    if mean > 200:
        return max(0, round(rng.gauss(mean, mean**0.5)))
    # Knuth's method.
    limit = 2.718281828459045 ** (-mean)
    count, product = 0, rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count


def _weighted(rng: random.Random, table):
    total = sum(weight for _, weight in table)
    roll = rng.random() * total
    cumulative = 0.0
    for item, weight in table:
        cumulative += weight
        if roll < cumulative:
            return item
    return table[-1][0]
