"""Durable per-shard checkpoints for resumable runs.

A killed run should not cost the shards it already finished.  The
engine streams every completed ``ShardResult`` into a
:class:`CheckpointStore`; a later run pointed at the same directory
with ``resume=True`` reloads the completed shards and simulates only
the rest — producing a dataset byte-identical to an uninterrupted run,
because shard results are self-contained and merge order is fixed by
shard index.

Layout of a checkpoint directory::

    <dir>/manifest.json          completion tracker (atomic rewrite)
    <dir>/shards/shard-00003.pkl one artifact per completed shard
    <dir>/quarantine/...         artifacts that failed verification

Every artifact is written atomically (temp file + fsync + rename) and
carries a header with a SHA-256 over its pickle payload; the manifest
records the same digest.  On resume, an artifact whose digest, pickle,
or device coverage does not check out is **quarantined** — moved aside
and dropped from the manifest — and its shard is simply re-run; a
truncated or bit-flipped file can cost recomputation, never
correctness.

The manifest also records a **scenario fingerprint** — a SHA-256 over
the canonical JSON of the scenario config, the shard partition, and the
format version.  Resuming against a directory whose fingerprint does
not match the requested run raises :class:`CheckpointMismatchError`:
mixing shards of different scenarios (or different partitions of the
same scenario) would silently break the byte-identity guarantee.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path

from repro.parallel.sharding import ShardSpec
from repro.parallel.supervisor import (
    ShardResultInvalid,
    validate_shard_result,
)

#: Bumped when the artifact or manifest layout changes incompatibly.
FORMAT_VERSION = 1

_MAGIC = b"repro-shard-checkpoint"
_MANIFEST = "manifest.json"


class CheckpointError(RuntimeError):
    """A checkpoint directory could not be used."""


class CheckpointMismatchError(CheckpointError):
    """Resume refused: the store belongs to a different scenario."""


def scenario_fingerprint(config, n_shards: int) -> str:
    """Identity of one (scenario, partition) pair, stable across runs.

    Built from the canonical JSON of the full ``ScenarioConfig``
    (topology and chaos blocks included), the shard count, and the
    checkpoint format version — everything that determines what a
    shard artifact contains.
    """
    payload = {
        "format": FORMAT_VERSION,
        "n_shards": n_shards,
        "scenario": dataclasses.asdict(config),
    }
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` so readers see old or new, never half."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=path.name + ".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class CheckpointStore:
    """One run's durable shard spool under ``root``."""

    def __init__(self, root: str | Path, fingerprint: str,
                 n_shards: int) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint
        self.n_shards = n_shards
        self.quarantined: list[dict] = []
        self._manifest_shards: dict[str, dict] = {}

    # -- paths ---------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST

    @property
    def shards_dir(self) -> Path:
        return self.root / "shards"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def artifact_path(self, index: int) -> Path:
        return self.shards_dir / f"shard-{index:05d}.pkl"

    # -- lifecycle -----------------------------------------------------------

    def initialize(self, *, resume: bool,
                   specs: list[ShardSpec]) -> dict[int, object]:
        """Prepare the store; returns the shard results carried over.

        With ``resume=False`` any previous contents are forgotten (the
        manifest is reset; stale artifacts get overwritten as shards
        complete).  With ``resume=True`` the manifest is read, its
        fingerprint checked against this run's, and every completed
        artifact loaded and verified; damaged artifacts are quarantined
        and their shards returned to the pending set.
        """
        loaded: dict[int, object] = {}
        if resume:
            manifest = self._read_manifest()
            if manifest is not None:
                recorded = manifest.get("fingerprint")
                if recorded != self.fingerprint:
                    raise CheckpointMismatchError(
                        f"checkpoint directory {self.root} belongs to a "
                        f"different scenario/partition (stored "
                        f"fingerprint {str(recorded)[:12]}…, this run "
                        f"is {self.fingerprint[:12]}…); refusing to "
                        "resume"
                    )
                by_index = {spec.index: spec for spec in specs}
                for key, entry in manifest.get("shards", {}).items():
                    index = int(key)
                    spec = by_index.get(index)
                    if spec is None:
                        self._quarantine(index, "unknown shard index")
                        continue
                    result = self._load_artifact(index, spec, entry)
                    if result is not None:
                        loaded[index] = result
                        self._manifest_shards[str(index)] = entry
        self._write_manifest()
        return loaded

    def save(self, result) -> None:
        """Atomically persist one completed shard and update the manifest."""
        index = result.spec.index
        payload = pickle.dumps(result,
                               protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        header = b"%s v%d %s\n" % (_MAGIC, FORMAT_VERSION,
                                   digest.encode("ascii"))
        _atomic_write(self.artifact_path(index), header + payload)
        self._manifest_shards[str(index)] = {
            "file": self.artifact_path(index).name,
            "sha256": digest,
            "n_devices": result.spec.n_devices,
        }
        self._write_manifest()

    # -- internals -----------------------------------------------------------

    def _read_manifest(self) -> dict | None:
        try:
            raw = self.manifest_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise CheckpointError(
                f"cannot read manifest {self.manifest_path}: {exc}"
            ) from exc
        try:
            manifest = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"manifest {self.manifest_path} is not valid JSON "
                f"({exc}); delete the directory to start over"
            ) from exc
        if manifest.get("format") != FORMAT_VERSION:
            raise CheckpointMismatchError(
                f"checkpoint format {manifest.get('format')!r} is not "
                f"supported (this build writes v{FORMAT_VERSION})"
            )
        return manifest

    def _write_manifest(self) -> None:
        manifest = {
            "format": FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "n_shards": self.n_shards,
            "shards": dict(sorted(self._manifest_shards.items(),
                                  key=lambda item: int(item[0]))),
        }
        _atomic_write(self.manifest_path,
                      json.dumps(manifest, indent=2).encode("utf-8"))

    def _load_artifact(self, index: int, spec: ShardSpec,
                       entry: dict):
        """One verified ShardResult, or None after quarantining."""
        path = self.artifact_path(index)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self._quarantine(index, "artifact missing")
            return None
        except OSError as exc:
            self._quarantine(index, f"unreadable: {exc}")
            return None
        newline = blob.find(b"\n")
        header = blob[:newline].split() if newline >= 0 else []
        if (newline < 0 or len(header) != 3 or header[0] != _MAGIC
                or header[1] != b"v%d" % FORMAT_VERSION):
            self._quarantine(index, "bad artifact header")
            return None
        payload = blob[newline + 1:]
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header[2].decode("ascii", "replace"):
            self._quarantine(index, "payload digest mismatch "
                                    "(truncated or corrupted)")
            return None
        if digest != entry.get("sha256"):
            self._quarantine(index, "artifact does not match manifest")
            return None
        try:
            result = pickle.loads(payload)
        except Exception as exc:  # corrupt pickle: any error shape
            self._quarantine(index, f"unpicklable payload "
                                    f"({type(exc).__name__}: {exc})")
            return None
        try:
            validate_shard_result(spec, result)
        except ShardResultInvalid as exc:
            self._quarantine(index, f"invalid shard content: {exc}")
            return None
        return result

    def _quarantine(self, index: int, reason: str) -> None:
        path = self.artifact_path(index)
        destination = self.quarantine_dir / path.name
        moved = False
        if path.exists():
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            try:
                os.replace(path, destination)
                moved = True
            except OSError:
                pass
        self.quarantined.append({
            "shard": index,
            "reason": reason,
            "moved_to": str(destination) if moved else None,
        })
