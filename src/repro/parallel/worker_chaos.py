"""Seeded fault injection for worker processes.

The supervisor's crash tolerance is only worth trusting if it is
exercised against the faults it claims to survive.  :class:`WorkerChaos`
wraps the worker entry point and, from a stream seeded by
``(chaos seed, shard index, attempt)``, injects at most one fault per
dispatch:

``kill``
    The worker SIGKILLs itself before simulating — the parent sees a
    dead process with no result (the shape of an OOM kill or a crashed
    interpreter).
``hang``
    The worker sleeps ``hang_s`` before simulating — with a per-shard
    deadline configured, the parent times the attempt out and reclaims
    the slot (the shape of a wedged worker).
``exception``
    The worker raises :class:`WorkerChaosFault` *outside* the simulation
    try block, so the process dies with a traceback on stderr and a
    non-zero exit code (the shape of an import or unpickling error in
    worker setup).
``corrupt``
    The worker simulates normally but mangles the result it sends back
    (the shape of a truncated or garbled IPC payload); the parent's
    result validation must catch it.

Because the draw depends on the attempt number, a retry of the same
shard sees a fresh draw — a run with fault rates below 1.0 converges,
and the inline-degrade path guarantees completion even at rate 1.0.
Faults fire only inside worker processes; the supervisor's inline
fallback and the engine's ``inline`` mode never inject, which is what
makes chaos runs finish with the exact serial-run dataset.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass

#: Fault kinds in the (fixed) order the single per-attempt draw checks.
FAULT_KINDS = ("kill", "hang", "exception", "corrupt")


class WorkerChaosFault(RuntimeError):
    """Raised inside a worker by the ``exception`` fault."""


@dataclass(frozen=True)
class WorkerChaosConfig:
    """Fault rates for one chaos harness (all default to off)."""

    seed: int = 0
    #: Probability the worker SIGKILLs itself on entry.
    kill_rate: float = 0.0
    #: Probability the worker sleeps ``hang_s`` before simulating.
    hang_rate: float = 0.0
    #: Probability the worker raises before simulating.
    exception_rate: float = 0.0
    #: Probability the worker mangles the result it sends back.
    corrupt_rate: float = 0.0
    #: How long a ``hang`` fault sleeps (pick well above the
    #: supervisor's per-shard deadline to exercise the timeout path).
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        rates = (self.kill_rate, self.hang_rate, self.exception_rate,
                 self.corrupt_rate)
        if any(rate < 0.0 for rate in rates) or sum(rates) > 1.0:
            raise ValueError(
                "fault rates must be non-negative and sum to at most 1"
            )


class WorkerChaos:
    """Executes the fault (if any) drawn for one ``(shard, attempt)``."""

    def __init__(self, config: WorkerChaosConfig) -> None:
        self.config = config

    def fault_for(self, shard: int, attempt: int) -> str | None:
        """The fault this dispatch draws (deterministic, at most one)."""
        rng = random.Random(f"{self.config.seed}:{shard}:{attempt}")
        roll = rng.random()
        cumulative = 0.0
        for kind in FAULT_KINDS:
            cumulative += getattr(self.config, f"{kind}_rate")
            if roll < cumulative:
                return kind
        return None

    def on_enter(self, shard: int, attempt: int) -> str | None:
        """Run entry-stage faults; returns the drawn fault (for tests).

        ``kill`` never returns; ``hang`` returns after sleeping;
        ``exception`` raises; ``corrupt`` is deferred to
        :meth:`mangle_result`.
        """
        fault = self.fault_for(shard, attempt)
        if fault == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif fault == "hang":
            time.sleep(self.config.hang_s)
        elif fault == "exception":
            raise WorkerChaosFault(
                f"injected worker exception (shard {shard}, "
                f"attempt {attempt})"
            )
        return fault

    def mangle_result(self, shard: int, attempt: int, result):
        """Corrupt ``result`` if this dispatch drew the corrupt fault.

        Drops the last device's records from the shard dataset — a
        plausible partial-write shape that the supervisor's coverage
        validation must reject.
        """
        if self.fault_for(shard, attempt) != "corrupt":
            return result
        if result.dataset.devices:
            lost = result.dataset.devices[-1].device_id
            result.dataset.devices = result.dataset.devices[:-1]
            result.dataset.failures = [
                record for record in result.dataset.failures
                if record.device_id != lost
            ]
        return result
