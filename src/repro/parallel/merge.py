"""Merging per-shard outputs back into one run.

Record merge is pure concatenation in shard order — correct because
shards are contiguous device-id ranges (see ``repro.parallel.sharding``)
and the sequential simulator emits records in device-id order.  The
merge still *verifies* that invariant instead of trusting it: a refactor
that silently reorders devices inside a shard would otherwise produce a
dataset that is subtly non-reproducible.

Telemetry merge is summation: each shard ships its failure records
through its own chaos pipeline (spoolers, transport, ingestion server),
so the run-level view is the sum of per-shard reconciliations, with the
per-shard summaries preserved for drill-down.
"""

from __future__ import annotations

from repro.dataset.store import Dataset


class ShardMergeError(RuntimeError):
    """Per-shard outputs violated the contiguous-device-order invariant."""


def merge_shard_datasets(shards: list[Dataset]) -> Dataset:
    """Concatenate shard datasets (in shard order) into one run.

    ``shards`` must cover consecutive device-id ranges in order.  The
    result carries the records only; run-level metadata (scenario
    echo, execution stats, telemetry) is attached by the engine.
    """
    merged = Dataset()
    expected_next = None
    for shard in shards:
        ids = [device.device_id for device in shard.devices]
        if ids != sorted(ids):
            raise ShardMergeError("shard devices out of id order")
        if ids:
            if expected_next is not None and ids[0] != expected_next:
                raise ShardMergeError(
                    f"shard starts at device {ids[0]}, "
                    f"expected {expected_next}"
                )
            expected_next = ids[-1] + 1
        merged.devices.extend(shard.devices)
        merged.failures.extend(shard.failures)
        merged.transitions.extend(shard.transitions)
    return merged


def merge_telemetry_summaries(summaries: list[dict]) -> dict:
    """One run-level telemetry report from per-shard pipeline summaries.

    Counter fields (reconciliation counts, server counters, transport
    fault counters, retry histograms) are summed; ``unexplained``
    identities are concatenated; the full per-shard summaries remain
    under ``"shards"``.  The result is JSON-able, like the per-shard
    summaries it merges.
    """
    if not summaries:
        raise ValueError("nothing to merge")

    reconciliation: dict = {
        "emitted": 0, "accepted": 0, "duplicates": 0, "shed": 0,
        "budget_exhausted": 0, "quarantined": 0, "in_flight": 0,
        "unexplained": [], "retry_histogram": {}, "transport": {},
    }
    server: dict[str, float] = {}
    n_devices = 0
    drain_rounds = 0
    for summary in summaries:
        rec = summary["reconciliation"]
        for key in ("emitted", "accepted", "duplicates", "shed",
                    "budget_exhausted", "quarantined", "in_flight"):
            reconciliation[key] += rec[key]
        reconciliation["unexplained"].extend(rec["unexplained"])
        for attempts, count in rec.get("retry_histogram", {}).items():
            histogram = reconciliation["retry_histogram"]
            histogram[attempts] = histogram.get(attempts, 0) + count
        for name, value in rec.get("transport", {}).items():
            transport = reconciliation["transport"]
            transport[name] = transport.get(name, 0.0) + value
        for name, value in summary["server"].items():
            server[name] = server.get(name, 0.0) + value
        n_devices += summary["n_devices"]
        drain_rounds = max(drain_rounds, summary["drain_rounds"])

    return {
        "reconciliation": reconciliation,
        "server": server,
        "n_devices": n_devices,
        "drain_rounds": drain_rounds,
        "merged_from_shards": len(summaries),
        "shards": list(summaries),
    }
