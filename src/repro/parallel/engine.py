"""The sharded fleet execution engine.

Partitions a scenario's device population into contiguous shards, runs
each shard in a worker process, and merges the per-shard outputs into a
dataset whose records are byte-identical to a sequential run of the
same scenario.  The guarantee rests on two properties the rest of the
stack already provides:

* every stochastic decision of a device comes from streams seeded by
  ``(scenario seed, device id, purpose)`` — no draw is shared across
  devices, so a device's records do not depend on which other devices
  ran, or in which process;
* the topology is rebuilt identically in every worker from
  ``config.topology.seed``, and its mutable surfaces are never touched
  by the scheduled fleet path.

Execution modes
---------------

``process`` (default)
    One worker process per shard via :mod:`multiprocessing`.  The
    engine prefers the ``fork`` start method (cheap on Linux) and falls
    back to ``spawn``; the worker entry point is a module-level
    function and every task payload is picklable, so both work.
``inline``
    The same shard/merge path executed in-process, one shard at a
    time.  This is the fallback for platforms without usable
    multiprocessing (and what the engine degrades to, with a recorded
    reason, if worker processes cannot be created).  Results are
    identical to ``process`` by construction.

Set ``REPRO_PARALLEL_MODE=inline`` to force the fallback globally.

When the scenario has a chaos block, each worker additionally replays
its shard's failure records through its own telemetry pipeline; the
engine merges the per-shard summaries (see
:func:`repro.parallel.merge.merge_telemetry_summaries`) into
``Dataset.metadata["telemetry"]``.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass

from repro.dataset.store import Dataset
from repro.fleet.scenario import ScenarioConfig
from repro.parallel.merge import (
    merge_shard_datasets,
    merge_telemetry_summaries,
)
from repro.parallel.sharding import ShardSpec, make_shards
from repro.parallel.stats import ShardStats, StopWatch, execution_metadata

#: Environment override for the execution mode ("process" or "inline").
MODE_ENV_VAR = "REPRO_PARALLEL_MODE"


@dataclass
class ShardResult:
    """Everything one worker sends back (must stay picklable)."""

    spec: ShardSpec
    dataset: Dataset
    stats: ShardStats
    #: Per-shard telemetry pipeline summary (None without chaos).
    telemetry: dict | None


def simulate_shard(config: ScenarioConfig, spec: ShardSpec) -> ShardResult:
    """Worker entry point: simulate one shard of ``config``.

    Module-level (not a closure, not a method) so it can be pickled by
    the ``spawn`` start method as well as inherited by ``fork``.
    """
    # Imported here so a spawned worker resolves it after interpreter
    # start; the import is a no-op under fork.
    from repro.chaos.pipeline import run_telemetry_pipeline
    from repro.fleet.simulator import FleetSimulator

    simulator = FleetSimulator(config)
    shard, stats = simulator.simulate_shard(spec)
    telemetry = None
    chaos = config.chaos
    if chaos is not None and chaos.enabled:
        telemetry = run_telemetry_pipeline(shard, chaos).summary()
    return ShardResult(spec=spec, dataset=shard, stats=stats,
                       telemetry=telemetry)


def _simulate_shard_task(task: tuple[ScenarioConfig, ShardSpec]) -> ShardResult:
    return simulate_shard(*task)


def preferred_start_method() -> str | None:
    """``fork`` where available (cheap), else ``spawn``, else ``None``."""
    methods = multiprocessing.get_all_start_methods()
    for method in ("fork", "spawn"):
        if method in methods:
            return method
    return None


def resolve_mode(mode: str | None) -> str:
    """Explicit argument beats the environment beats the default."""
    resolved = mode or os.environ.get(MODE_ENV_VAR) or "process"
    if resolved not in ("process", "inline"):
        raise ValueError(f"unknown parallel mode: {resolved!r}")
    return resolved


def run_sharded(
    config: ScenarioConfig,
    workers: int,
    *,
    mode: str | None = None,
    base_station_records: list | None = None,
) -> Dataset:
    """Run ``config`` across ``workers`` shards and merge the outputs.

    Returns a dataset whose device / failure / transition records are
    identical to ``FleetSimulator(config).run()``; run-level metadata
    additionally carries the ``execution`` block (and the merged
    ``telemetry`` block when the scenario has chaos enabled).
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    watch = StopWatch()
    shards = make_shards(config.n_devices, workers)
    requested_mode = resolve_mode(mode)
    fallback_reason = None
    start_method = None

    if requested_mode == "process" and len(shards) > 1:
        start_method = preferred_start_method()
        if start_method is None:
            requested_mode = "inline"
            fallback_reason = "no multiprocessing start method available"
    elif requested_mode == "process":
        # A single shard gains nothing from a worker process.
        requested_mode = "inline"

    results: list[ShardResult] | None = None
    if requested_mode == "process":
        try:
            results = _run_in_processes(config, shards, start_method)
        except (OSError, ImportError, multiprocessing.ProcessError) as exc:
            fallback_reason = (
                f"worker pool failed ({type(exc).__name__}: {exc}); "
                "ran inline"
            )
            requested_mode = "inline"
    if results is None:
        start_method = None
        results = [simulate_shard(config, spec) for spec in shards]

    results.sort(key=lambda result: result.spec.index)
    merge_watch = StopWatch()
    dataset = merge_shard_datasets([result.dataset for result in results])
    merge_s = merge_watch.elapsed()

    # Run-level metadata, mirroring the sequential run's.
    from repro.fleet.simulator import FleetSimulator, base_station_rows

    dataset.metadata.update(FleetSimulator.base_metadata(config))
    if base_station_records is None:
        from repro.network.topology import NationalTopology

        base_station_records = base_station_rows(
            NationalTopology(config.topology)
        )
    dataset.base_stations = list(base_station_records)

    summaries = [result.telemetry for result in results
                 if result.telemetry is not None]
    if summaries:
        dataset.metadata["telemetry"] = merge_telemetry_summaries(summaries)

    dataset.metadata["execution"] = execution_metadata(
        mode=requested_mode,
        workers=workers,
        shards=[result.stats for result in results],
        wall_s=watch.elapsed(),
        start_method=start_method,
        merge_s=merge_s,
        fallback_reason=fallback_reason,
    )
    return dataset


def _run_in_processes(
    config: ScenarioConfig,
    shards: list[ShardSpec],
    start_method: str,
) -> list[ShardResult]:
    context = multiprocessing.get_context(start_method)
    tasks = [(config, spec) for spec in shards]
    with context.Pool(processes=len(shards)) as pool:
        return pool.map(_simulate_shard_task, tasks)
