"""The sharded fleet execution engine.

Partitions a scenario's device population into contiguous shards, runs
each shard in a worker process, and merges the per-shard outputs into a
dataset whose records are byte-identical to a sequential run of the
same scenario.  The guarantee rests on two properties the rest of the
stack already provides:

* every stochastic decision of a device comes from streams seeded by
  ``(scenario seed, device id, purpose)`` — no draw is shared across
  devices, so a device's records do not depend on which other devices
  ran, or in which process;
* the topology is rebuilt identically in every worker from
  ``config.topology.seed``, and its mutable surfaces are never touched
  by the scheduled fleet path.

Execution modes
---------------

``process`` (default)
    Worker processes supervised by
    :class:`repro.parallel.supervisor.ShardSupervisor`: per-shard
    dispatch, infrastructure faults (worker death, missed deadline,
    corrupt result) retried with exponential backoff and finally
    degraded to inline execution, simulation bugs failed fast with the
    worker's traceback.  The engine prefers the ``fork`` start method
    (cheap on Linux) and falls back to ``spawn``; the worker entry
    point is a module-level function and every task payload is
    picklable, so both work.
``inline``
    The same shard/merge path executed in-process, one shard at a
    time.  This is the fallback for platforms without usable
    multiprocessing (and what the engine degrades to, with a recorded
    reason, if supervision itself fails).  Results are identical to
    ``process`` by construction.

Set ``REPRO_PARALLEL_MODE=inline`` to force the fallback globally.

Durability
----------

With ``checkpoint_dir`` set, every completed shard is spooled
atomically to disk (:mod:`repro.parallel.checkpoint`) as it arrives —
in both modes — and ``resume=True`` reloads completed shards instead
of re-simulating them, after verifying the store belongs to this exact
scenario and partition.  A killed run resumed this way finishes with
the same byte-identical dataset as an uninterrupted one.

When the scenario has a chaos block, each worker additionally replays
its shard's failure records through its own telemetry pipeline; the
engine merges the per-shard summaries (see
:func:`repro.parallel.merge.merge_telemetry_summaries`) into
``Dataset.metadata["telemetry"]``.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.columnar import (
    compute_analysis_block,
    merge_analysis_blocks,
)
from repro.dataset.store import Dataset
from repro.fleet.scenario import ScenarioConfig
from repro.obs import (
    MetricsRegistry,
    deterministic_view,
    merge_snapshots,
    span,
    use_registry,
)
from repro.parallel.checkpoint import (
    CheckpointStore,
    scenario_fingerprint,
)
from repro.parallel.merge import (
    merge_shard_datasets,
    merge_telemetry_summaries,
)
from repro.parallel.sharding import ShardSpec, make_shards
from repro.parallel.stats import ShardStats, StopWatch, execution_metadata
from repro.parallel.supervisor import (
    RetryPolicy,
    ShardSimulationError,
    ShardSupervisor,
)

#: Environment override for the execution mode ("process" or "inline").
MODE_ENV_VAR = "REPRO_PARALLEL_MODE"


@dataclass
class ShardResult:
    """Everything one worker sends back (must stay picklable)."""

    spec: ShardSpec
    dataset: Dataset
    stats: ShardStats
    #: Per-shard telemetry pipeline summary (None without chaos).
    telemetry: dict | None
    #: Per-shard metrics snapshot (None unless ``config.metrics``).
    metrics: dict | None = None
    #: Per-shard streaming analysis partial (see
    #: :mod:`repro.analysis.columnar`); None only in results loaded
    #: from pre-partial checkpoint stores.
    analysis: dict | None = None


def simulate_shard(config: ScenarioConfig, spec: ShardSpec) -> ShardResult:
    """Worker entry point: simulate one shard of ``config``.

    Module-level (not a closure, not a method) so it can be pickled by
    the ``spawn`` start method as well as inherited by ``fork``.
    """
    # Imported here so a spawned worker resolves it after interpreter
    # start; the import is a no-op under fork.
    from repro.chaos.pipeline import run_telemetry_pipeline
    from repro.fleet.simulator import FleetSimulator

    registry = MetricsRegistry() if config.metrics else None
    # The whole worker task is timed here, in the worker, because the
    # parent's ``time.process_time`` never sees child CPU: simulation,
    # the shard's telemetry pipeline, and the metrics snapshot all
    # count, and the totals travel back through the result pipe.
    watch = StopWatch()
    with use_registry(registry), span("parallel.shard"):
        simulator = FleetSimulator(config)
        shard, stats = simulator.simulate_shard(spec)
        telemetry = None
        chaos = config.chaos
        if chaos is not None and chaos.enabled:
            telemetry = run_telemetry_pipeline(shard, chaos).summary()
        # The streaming analysis partial: study-level aggregates that
        # merge exactly in the parent, so run statistics never require
        # re-walking the merged record lists.
        analysis = compute_analysis_block(shard)
    stats.wall_s = watch.elapsed()
    stats.cpu_s = watch.cpu_elapsed()
    return ShardResult(spec=spec, dataset=shard, stats=stats,
                       telemetry=telemetry,
                       metrics=registry.snapshot() if registry else None,
                       analysis=analysis)


def preferred_start_method() -> str | None:
    """``fork`` where available (cheap), else ``spawn``, else ``None``."""
    methods = multiprocessing.get_all_start_methods()
    for method in ("fork", "spawn"):
        if method in methods:
            return method
    return None


def resolve_mode(mode: str | None) -> str:
    """Explicit argument beats the environment beats the default."""
    resolved = mode or os.environ.get(MODE_ENV_VAR) or "process"
    if resolved not in ("process", "inline"):
        raise ValueError(f"unknown parallel mode: {resolved!r}")
    return resolved


def run_sharded(
    config: ScenarioConfig,
    workers: int,
    *,
    mode: str | None = None,
    n_shards: int | None = None,
    base_station_records: list | None = None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    retry: RetryPolicy | None = None,
    worker_chaos=None,
) -> Dataset:
    """Run ``config`` across worker processes and merge the outputs.

    Returns a dataset whose device / failure / transition records are
    identical to ``FleetSimulator(config).run()``; run-level metadata
    additionally carries the ``execution`` block (and the merged
    ``telemetry`` block when the scenario has chaos enabled).

    ``workers`` bounds process concurrency; ``n_shards`` (default:
    ``workers``) sets the partition granularity — more shards than
    workers means finer-grained checkpoints and retries at identical
    output.  ``checkpoint_dir`` / ``resume`` enable the durable
    checkpoint store; ``retry`` tunes supervision (see
    :class:`~repro.parallel.supervisor.RetryPolicy`); ``worker_chaos``
    injects seeded worker faults for robustness testing (see
    :mod:`repro.parallel.worker_chaos`).
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    if n_shards is not None and n_shards < 1:
        raise ValueError("need at least one shard")
    if resume and checkpoint_dir is None:
        raise ValueError("resume requires a checkpoint directory")
    # The parent's registry collects engine-side spans and supervision
    # counters; worker snapshots arrive via ShardResult.metrics and are
    # merged below.  None (the default) keeps every hot path no-op.
    registry = MetricsRegistry() if config.metrics else None
    watch = StopWatch()
    shards = make_shards(config.n_devices, n_shards or workers)
    requested_mode = resolve_mode(mode)
    fallback_reason = None
    start_method = None

    store = None
    resumed: dict[int, ShardResult] = {}
    checkpoint_error: str | None = None
    if checkpoint_dir is not None:
        store = CheckpointStore(
            checkpoint_dir,
            scenario_fingerprint(config, len(shards)),
            len(shards),
        )
        resumed = store.initialize(resume=resume, specs=shards)
    remaining = [spec for spec in shards if spec.index not in resumed]

    def save_result(result: ShardResult) -> None:
        """Spool one completed shard; disk trouble degrades, not kills."""
        nonlocal checkpoint_error
        if store is None or checkpoint_error is not None:
            return
        try:
            store.save(result)
        except OSError as exc:
            checkpoint_error = (
                f"checkpointing disabled after write failure "
                f"({type(exc).__name__}: {exc})"
            )

    if requested_mode == "process" and len(remaining) > 1:
        start_method = preferred_start_method()
        if start_method is None:
            requested_mode = "inline"
            fallback_reason = "no multiprocessing start method available"
    elif requested_mode == "process":
        # A single (or no) remaining shard gains nothing from workers.
        requested_mode = "inline"

    supervision: dict | None = None
    results: list[ShardResult] | None = None
    if requested_mode == "process":
        supervisor = ShardSupervisor(
            config, remaining, workers,
            start_method=start_method,
            retry=retry,
            worker_chaos=worker_chaos,
            on_result=save_result,
        )
        try:
            with use_registry(registry), span("parallel.supervise"):
                fresh = supervisor.run()
            supervision = supervisor.report.to_dict()
            results = list(resumed.values()) + fresh
        except ShardSimulationError:
            # A bug inside simulate_shard: retrying cannot help and
            # hiding it behind an inline re-run would only slow the
            # inevitable identical failure.  Completed shards are
            # already checkpointed.
            raise
        except Exception as exc:
            # Supervision machinery itself failed — classify it as
            # infrastructure and degrade the whole run to inline, with
            # the reason (and any failure history gathered so far) on
            # record.
            fallback_reason = (
                f"supervisor failed ({type(exc).__name__}: {exc}); "
                "ran inline"
            )
            supervision = supervisor.report.to_dict()
            requested_mode = "inline"
    if results is None:
        start_method = None
        fresh = []
        for spec in remaining:
            result = simulate_shard(config, spec)
            save_result(result)
            fresh.append(result)
        if supervision is None:
            supervision = {"retries": 0, "reran_shards": [],
                           "degraded_shards": [], "failures": []}
        results = list(resumed.values()) + fresh

    results.sort(key=lambda result: result.spec.index)
    merge_watch = StopWatch()
    with use_registry(registry), span("parallel.merge"):
        dataset = merge_shard_datasets(
            [result.dataset for result in results]
        )
    merge_s = merge_watch.elapsed()

    # Run-level metadata, mirroring the sequential run's.
    from repro.fleet.simulator import FleetSimulator, base_station_rows

    dataset.metadata.update(FleetSimulator.base_metadata(config))
    if base_station_records is None:
        from repro.network.topology import NationalTopology

        base_station_records = base_station_rows(
            NationalTopology(config.topology)
        )
    dataset.base_stations = list(base_station_records)

    summaries = [result.telemetry for result in results
                 if result.telemetry is not None]
    if summaries:
        dataset.metadata["telemetry"] = merge_telemetry_summaries(summaries)

    # Per-shard analysis partials merge exactly into the serial run's
    # block; results resumed from a pre-partial checkpoint store are
    # recomputed from their shard records.
    dataset.metadata["analysis"] = merge_analysis_blocks([
        getattr(result, "analysis", None)
        or compute_analysis_block(result.dataset)
        for result in results
    ])

    checkpoint_block = None
    if store is not None:
        checkpoint_block = {
            "dir": str(store.root),
            "fingerprint": store.fingerprint,
            "quarantined": list(store.quarantined),
        }
        if checkpoint_error is not None:
            checkpoint_block["error"] = checkpoint_error

    merged_spans = None
    if registry is not None:
        # Worker snapshots merge commutatively (integer counters and
        # scaled-integer histogram sums), so the deterministic view is
        # byte-identical to the serial run's metrics block.  Resumed
        # shards loaded from a checkpoint carry their snapshot too.
        snapshots = [result.metrics for result in results
                     if getattr(result, "metrics", None)]
        merged = merge_snapshots(snapshots + [registry.snapshot()])
        dataset.metadata["metrics"] = deterministic_view(merged)
        merged_spans = merged["spans"]

    dataset.metadata["execution"] = execution_metadata(
        mode=requested_mode,
        workers=workers,
        shards=[result.stats for result in results],
        wall_s=watch.elapsed(),
        start_method=start_method,
        merge_s=merge_s,
        fallback_reason=fallback_reason,
        supervision=supervision,
        resumed_shards=sorted(resumed),
        checkpoint=checkpoint_block,
        spans=merged_spans,
    )
    return dataset
