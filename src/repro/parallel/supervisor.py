"""Per-shard supervision of worker processes.

The engine used to hand every shard to a ``Pool.map`` — all-or-nothing:
one worker death discarded every completed shard and surfaced as
whatever exception the pool happened to raise.  The supervisor replaces
that with per-shard dispatch and explicit failure taxonomy:

* each shard runs in its **own process** with its **own result pipe**,
  so one worker's fate never entangles another's results;
* failures are **classified**: anything raised *inside*
  ``simulate_shard`` is a simulation bug — reported back as a payload
  with the worker's full traceback and re-raised in the parent
  immediately (:class:`ShardSimulationError`, fail fast, no retry) —
  while worker death, a missed per-shard deadline, a process that
  could not be spawned, or a result that fails validation are
  *infrastructure* faults;
* infrastructure faults are retried with **exponential backoff**
  (:class:`RetryPolicy`), re-dispatching only the failed shard; a shard
  that exhausts its retries is **degraded to inline execution** in the
  parent, which cannot suffer worker-infrastructure faults, so a run
  always completes unless the simulation itself is broken;
* every completed result is **validated** against its spec (device-id
  coverage, matching shard index) before it is accepted, so a corrupt
  or truncated payload is retried instead of silently merged;
* completed results are streamed to an ``on_result`` callback as they
  arrive (the engine points this at the checkpoint store).

The supervisor is deterministic where it matters: results are keyed by
shard index and merged in index order, so retry timing, completion
order, and degradation never change the dataset — only the
``failures`` history in ``Dataset.metadata["execution"]``.
"""

from __future__ import annotations

import heapq
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait

from repro.obs import get_registry
from repro.parallel.sharding import ShardSpec
from repro.parallel.stats import ShardFailureRecord

#: Upper bound on one wait cycle; keeps the loop responsive to
#: deadlines and backoff expiries even with no pipe activity.
_MAX_WAIT_S = 0.25

#: How long to wait for a worker that already delivered its result to
#: exit on its own before force-killing it.
_REAP_GRACE_S = 5.0


class ShardSimulationError(RuntimeError):
    """A worker's ``simulate_shard`` raised: a bug, not bad luck.

    Carries the worker-side traceback; the supervisor fails the whole
    run fast instead of retrying (re-running a deterministic simulation
    on the same inputs would fail the same way).
    """

    def __init__(self, spec: ShardSpec, error_type: str, message: str,
                 worker_traceback: str) -> None:
        super().__init__(
            f"shard {spec.index} (devices [{spec.lo}, {spec.hi})) failed "
            f"in simulate_shard with {error_type}: {message}\n"
            f"--- worker traceback ---\n{worker_traceback}"
        )
        self.spec = spec
        self.error_type = error_type
        self.error_message = message
        self.worker_traceback = worker_traceback


class ShardResultInvalid(ValueError):
    """A shard payload does not cover its spec (corrupt / truncated)."""


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor treats infrastructure faults."""

    #: Re-dispatches per shard before degrading to inline execution.
    max_retries: int = 3
    #: Backoff before retry ``n`` is ``base * factor**n``, capped.
    backoff_base_s: float = 0.1
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    #: Per-attempt deadline; a worker still running past it is killed
    #: and the attempt counts as an infrastructure fault.  ``None``
    #: disables the deadline (the default: shard runtimes scale with
    #: fleet size, so only the caller knows a sane bound).
    shard_timeout_s: float | None = None

    def backoff_s(self, failures_so_far: int) -> float:
        delay = self.backoff_base_s * (
            self.backoff_factor ** max(0, failures_so_far - 1)
        )
        return min(delay, self.backoff_max_s)


@dataclass
class _WorkerMessage:
    """What a worker sends back over its pipe (must stay picklable)."""

    ok: bool
    result: object = None
    error_type: str = ""
    error_message: str = ""
    traceback: str = ""


@dataclass
class _Running:
    spec: ShardSpec
    attempt: int
    process: object
    conn: object
    started: float
    deadline: float | None


@dataclass
class SupervisionReport:
    """What supervision did, for ``Dataset.metadata["execution"]``."""

    retries: int = 0
    reran_shards: list[int] = field(default_factory=list)
    degraded_shards: list[int] = field(default_factory=list)
    failures: list[ShardFailureRecord] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "retries": self.retries,
            "reran_shards": sorted(self.reran_shards),
            "degraded_shards": sorted(self.degraded_shards),
            "failures": [record.to_dict() for record in self.failures],
        }


def validate_shard_result(spec: ShardSpec, result) -> None:
    """Reject payloads that do not exactly cover ``spec``.

    Raises :class:`ShardResultInvalid` unless ``result`` is a
    ``ShardResult`` for this spec whose dataset contains exactly the
    shard's device ids in order and whose failure records stay inside
    the shard's id range.
    """
    from repro.parallel.engine import ShardResult

    if not isinstance(result, ShardResult):
        raise ShardResultInvalid(
            f"expected a ShardResult, got {type(result).__name__}"
        )
    if result.spec != spec:
        raise ShardResultInvalid(
            f"result spec {result.spec} does not match dispatched "
            f"spec {spec}"
        )
    ids = [device.device_id for device in result.dataset.devices]
    if ids != list(spec.device_ids()):
        raise ShardResultInvalid(
            f"shard {spec.index} devices do not cover "
            f"[{spec.lo}, {spec.hi}): got {len(ids)} devices"
            + (f" starting at {ids[0]}" if ids else "")
        )
    for record in result.dataset.failures:
        if not (spec.lo <= record.device_id < spec.hi):
            raise ShardResultInvalid(
                f"shard {spec.index} failure record for device "
                f"{record.device_id} outside [{spec.lo}, {spec.hi})"
            )
    if result.stats.shard != spec.index:
        raise ShardResultInvalid(
            f"stats shard {result.stats.shard} != spec {spec.index}"
        )


def _supervised_worker(conn, config, spec: ShardSpec, attempt: int,
                       chaos_config) -> None:
    """Worker process entry (module-level: ``spawn``-picklable).

    Chaos faults fire *outside* the simulation try block on purpose:
    they model infrastructure failures, which must reach the parent as
    a dead process / hung process / mangled payload — never as the
    simulation-failure message, which is reserved for real bugs inside
    ``simulate_shard``.
    """
    from repro.parallel.engine import simulate_shard
    from repro.parallel.worker_chaos import WorkerChaos

    chaos = WorkerChaos(chaos_config) if chaos_config is not None else None
    if chaos is not None:
        chaos.on_enter(spec.index, attempt)
    try:
        result = simulate_shard(config, spec)
    except BaseException as exc:  # noqa: BLE001 — classified, not hidden
        conn.send(_WorkerMessage(
            ok=False,
            error_type=type(exc).__name__,
            error_message=str(exc),
            traceback=traceback.format_exc(),
        ))
        conn.close()
        return
    if chaos is not None:
        result = chaos.mangle_result(spec.index, attempt, result)
    conn.send(_WorkerMessage(ok=True, result=result))
    conn.close()


class ShardSupervisor:
    """Dispatches shards to worker processes and survives their faults."""

    def __init__(
        self,
        config,
        specs: list[ShardSpec],
        workers: int,
        *,
        start_method: str,
        retry: RetryPolicy | None = None,
        worker_chaos=None,
        on_result=None,
    ) -> None:
        import multiprocessing

        self.config = config
        self.specs = list(specs)
        self.workers = max(1, workers)
        self.context = multiprocessing.get_context(start_method)
        self.retry = retry or RetryPolicy()
        self.worker_chaos = worker_chaos
        self.on_result = on_result
        self.report = SupervisionReport()
        #: Infrastructure failures per shard so far == next attempt no.
        self._attempts: dict[int, int] = {}
        #: Retry heap, wired in by :meth:`run`.
        self._pending: list[tuple[float, int, ShardSpec]] = []

    def run(self) -> list:
        """Run every spec to completion; results in shard-index order."""
        completed: dict[int, object] = {}
        # (ready_at, shard index, spec) — heap gives deterministic
        # dispatch order (earliest ready, lowest index first); the
        # failure path pushes retries onto it via ``self._pending``.
        self._pending = [(0.0, spec.index, spec) for spec in self.specs]
        heapq.heapify(self._pending)
        pending = self._pending
        running: dict[int, _Running] = {}
        try:
            while pending or running:
                now = time.monotonic()
                while (pending and len(running) < self.workers
                       and pending[0][0] <= now):
                    _, _, spec = heapq.heappop(pending)
                    self._dispatch(spec, running, completed)
                self._wait(pending, running)
                for task in list(running.values()):
                    self._collect(task, running, completed)
        except BaseException:
            self._kill_all(running)
            raise
        return [completed[spec.index] for spec in self.specs]

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, spec: ShardSpec, running, completed) -> None:
        attempt = self._attempts.get(spec.index, 0)
        recv_conn, send_conn = self.context.Pipe(duplex=False)
        process = self.context.Process(
            target=_supervised_worker,
            args=(send_conn, self.config, spec, attempt,
                  self.worker_chaos),
            daemon=True,
        )
        started = time.monotonic()
        try:
            process.start()
        except OSError as exc:
            recv_conn.close()
            send_conn.close()
            self._infrastructure_failure(
                spec, attempt, "spawn",
                f"could not start worker ({type(exc).__name__}: {exc})",
                0.0, running, completed,
            )
            return
        send_conn.close()
        deadline = None
        if self.retry.shard_timeout_s is not None:
            deadline = started + self.retry.shard_timeout_s
        running[spec.index] = _Running(
            spec=spec, attempt=attempt, process=process, conn=recv_conn,
            started=started, deadline=deadline,
        )

    def _wait(self, pending, running) -> None:
        """Sleep until pipe activity, a deadline, or a backoff expiry."""
        now = time.monotonic()
        timeout = _MAX_WAIT_S
        if pending and len(running) < self.workers:
            timeout = min(timeout, pending[0][0] - now)
        for task in running.values():
            if task.deadline is not None:
                timeout = min(timeout, task.deadline - now)
        timeout = max(0.0, timeout)
        conns = [task.conn for task in running.values()]
        if conns:
            _connection_wait(conns, timeout)
        elif timeout:
            time.sleep(timeout)

    # -- collection ----------------------------------------------------------

    def _collect(self, task: _Running, running, completed) -> None:
        if task.spec.index not in running:
            return
        now = time.monotonic()
        elapsed = now - task.started
        if task.conn.poll():
            try:
                message = task.conn.recv()
            except Exception as exc:  # died mid-send / unpicklable
                self._reap(task, running)
                self._infrastructure_failure(
                    task.spec, task.attempt, "worker-death",
                    "worker died before delivering its result "
                    f"({type(exc).__name__}"
                    f"{f': {exc}' if str(exc) else ''}; "
                    f"exitcode={task.process.exitcode})",
                    elapsed, running, completed,
                )
                return
            self._reap(task, running)
            self._handle_message(task, message, elapsed, running,
                                 completed)
        elif not task.process.is_alive():
            self._reap(task, running)
            self._infrastructure_failure(
                task.spec, task.attempt, "worker-death",
                f"worker exited without a result "
                f"(exitcode={task.process.exitcode})",
                elapsed, running, completed,
            )
        elif task.deadline is not None and now >= task.deadline:
            task.process.kill()
            self._reap(task, running)
            self._infrastructure_failure(
                task.spec, task.attempt, "deadline",
                f"worker exceeded the per-shard deadline "
                f"({self.retry.shard_timeout_s:.3g}s)",
                elapsed, running, completed,
            )

    def _handle_message(self, task: _Running, message, elapsed: float,
                        running, completed) -> None:
        if not isinstance(message, _WorkerMessage):
            self._infrastructure_failure(
                task.spec, task.attempt, "corrupt-result",
                f"unexpected payload type {type(message).__name__}",
                elapsed, running, completed,
            )
            return
        if not message.ok:
            self.report.failures.append(ShardFailureRecord(
                shard=task.spec.index, attempt=task.attempt,
                kind="simulation", category="exception",
                message=f"{message.error_type}: {message.error_message}",
                elapsed_s=elapsed,
            ))
            raise ShardSimulationError(
                task.spec, message.error_type, message.error_message,
                message.traceback,
            )
        try:
            validate_shard_result(task.spec, message.result)
        except ShardResultInvalid as exc:
            self._infrastructure_failure(
                task.spec, task.attempt, "corrupt-result", str(exc),
                elapsed, running, completed,
            )
            return
        self._complete(task.spec, message.result, completed)

    # -- failure handling ----------------------------------------------------

    def _infrastructure_failure(self, spec: ShardSpec, attempt: int,
                                category: str, message: str,
                                elapsed: float, running,
                                completed) -> None:
        self.report.failures.append(ShardFailureRecord(
            shard=spec.index, attempt=attempt, kind="infrastructure",
            category=category, message=message, elapsed_s=elapsed,
        ))
        # Fault counters land on the parent registry (workers cannot
        # observe their own death); a clean run records none, keeping
        # serial-vs-sharded metrics byte-identical.
        registry = get_registry()
        if registry.enabled:
            registry.inc("parallel_shard_failures_total",
                         category=category)
        failures = attempt + 1
        self._attempts[spec.index] = failures
        if spec.index not in self.report.reran_shards:
            self.report.reran_shards.append(spec.index)
        if failures <= self.retry.max_retries:
            self.report.retries += 1
            registry.inc("parallel_shard_retries_total")
            ready_at = time.monotonic() + self.retry.backoff_s(failures)
            heapq.heappush(self._pending, (ready_at, spec.index, spec))
        else:
            # Out of retries: degrade to inline execution in the
            # parent, which no worker-infrastructure fault can touch.
            from repro.parallel.engine import simulate_shard

            result = simulate_shard(self.config, spec)
            validate_shard_result(spec, result)
            self.report.degraded_shards.append(spec.index)
            registry.inc("parallel_shard_degraded_total")
            self._complete(spec, result, completed)

    def _complete(self, spec: ShardSpec, result, completed) -> None:
        completed[spec.index] = result
        if self.on_result is not None:
            self.on_result(result)

    # -- process bookkeeping -------------------------------------------------

    def _reap(self, task: _Running, running) -> None:
        running.pop(task.spec.index, None)
        try:
            task.conn.close()
        except OSError:
            pass
        task.process.join(timeout=_REAP_GRACE_S)
        if task.process.is_alive():
            task.process.kill()
            task.process.join()

    def _kill_all(self, running) -> None:
        for task in list(running.values()):
            try:
                task.process.kill()
            except (OSError, ValueError):
                pass
            self._reap(task, running)
