"""Per-shard execution statistics.

Every fleet run — serial or sharded — records what each shard did and
how long it took in ``Dataset.metadata["execution"]``, so throughput
regressions show up in ordinary run artifacts, not only in dedicated
benchmarks.  The schema is documented in ``docs/performance.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass
class ShardFailureRecord:
    """One failed dispatch of one shard, as the supervisor saw it.

    ``kind`` separates *infrastructure* faults (worker death, hung
    worker past its deadline, corrupt result payload, process spawn
    failure — retried with backoff) from *simulation* failures
    (exceptions raised inside ``simulate_shard`` — never retried; the
    run fails fast with the worker's traceback).
    """

    #: Shard position in the partition (0-based).
    shard: int
    #: Which dispatch of this shard failed (0-based attempt counter).
    attempt: int
    #: ``"infrastructure"`` or ``"simulation"``.
    kind: str
    #: Fault category: ``worker-death`` / ``deadline`` /
    #: ``corrupt-result`` / ``spawn`` / ``exception``.
    category: str
    #: Human-readable detail (exit code, timeout, validation error).
    message: str
    #: Seconds between dispatch and failure detection.
    elapsed_s: float

    def to_dict(self) -> dict:
        return {
            "shard": self.shard,
            "attempt": self.attempt,
            "kind": self.kind,
            "category": self.category,
            "message": self.message,
            "elapsed_s": self.elapsed_s,
        }


@dataclass
class ShardStats:
    """What one shard realized and what it cost."""

    #: Shard position in the partition (0-based).
    shard: int
    #: Device-id range ``[device_lo, device_hi)``.
    device_lo: int
    device_hi: int
    #: Devices simulated.
    n_devices: int
    #: Failure episodes realized (dataset failure records).
    n_failures: int
    #: Transition opportunities realized.
    n_transitions: int
    #: Wall-clock seconds of the whole worker task (simulation plus the
    #: shard's telemetry pipeline and metrics snapshot; excludes
    #: pickling and merge).  On an oversubscribed machine this includes
    #: contention from sibling workers.
    wall_s: float
    #: CPU seconds of the whole worker task, measured **inside the
    #: worker** with ``time.process_time`` and shipped back through the
    #: result pipe — the parent's ``process_time`` cannot see child
    #: CPU, so measuring there would report ~0 for spawned shards.
    #: Contention-free, so it is the honest basis for projecting
    #: speedup onto machines with enough cores.
    cpu_s: float = 0.0

    @property
    def devices_per_s(self) -> float:
        return self.n_devices / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "shard": self.shard,
            "device_lo": self.device_lo,
            "device_hi": self.device_hi,
            "n_devices": self.n_devices,
            "n_failures": self.n_failures,
            "n_transitions": self.n_transitions,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "devices_per_s": self.devices_per_s,
        }


class StopWatch:
    """A tiny wall + CPU stopwatch (keeps timing code out of the way)."""

    def __init__(self) -> None:
        self._started = time.perf_counter()
        self._cpu_started = time.process_time()

    def elapsed(self) -> float:
        return time.perf_counter() - self._started

    def cpu_elapsed(self) -> float:
        return time.process_time() - self._cpu_started


def execution_metadata(
    mode: str,
    workers: int,
    shards: list[ShardStats],
    wall_s: float,
    *,
    start_method: str | None = None,
    merge_s: float | None = None,
    fallback_reason: str | None = None,
    supervision: dict | None = None,
    resumed_shards: list[int] | None = None,
    checkpoint: dict | None = None,
    spans: dict | None = None,
) -> dict:
    """The JSON-able ``Dataset.metadata["execution"]`` block.

    ``supervision`` is the supervisor's report (``retries``,
    ``reran_shards``, ``degraded_shards``, ``failures``); the engine
    passes it for every sharded run so the retry/re-run history is part
    of ordinary run artifacts.  ``resumed_shards`` lists shards loaded
    from a checkpoint instead of simulated; ``checkpoint`` echoes the
    store (directory, fingerprint, quarantined artifacts); ``spans``
    carries aggregated phase timings from :mod:`repro.obs` when the run
    had metrics enabled.  ``cpu_s`` sums worker-side CPU across shards,
    so it stays honest for spawned workers whose CPU is invisible to
    the parent's ``process_time``.
    """
    n_devices = sum(stats.n_devices for stats in shards)
    block = {
        "mode": mode,
        "workers": workers,
        "n_shards": len(shards),
        "wall_s": wall_s,
        "cpu_s": sum(stats.cpu_s for stats in shards),
        "devices_per_s": n_devices / wall_s if wall_s > 0 else 0.0,
        "shards": [stats.to_dict() for stats in shards],
    }
    if start_method is not None:
        block["start_method"] = start_method
    if merge_s is not None:
        block["merge_s"] = merge_s
    if fallback_reason is not None:
        block["fallback_reason"] = fallback_reason
    if supervision is not None:
        block["retries"] = supervision.get("retries", 0)
        block["reran_shards"] = supervision.get("reran_shards", [])
        block["degraded_shards"] = supervision.get("degraded_shards", [])
        block["failures"] = supervision.get("failures", [])
    if resumed_shards is not None:
        block["resumed_shards"] = resumed_shards
    if checkpoint is not None:
        block["checkpoint"] = checkpoint
    if spans is not None:
        block["spans"] = spans
    return block
