"""Sharded parallel execution of fleet scenarios.

The device population of a :class:`~repro.fleet.scenario.ScenarioConfig`
is embarrassingly parallel by construction — every stochastic decision
is drawn from a per-device stream seeded by ``(scenario seed, device
id, purpose)`` — so this package partitions it into deterministic
contiguous shards, simulates each shard in a worker process, and merges
the outputs into a dataset byte-identical (records-wise) to the
sequential run.  See ``docs/performance.md`` for the execution model,
the determinism argument, and how to pick worker counts.

Entry points: ``FleetSimulator.run(workers=N)`` /
``NationwideStudy.run(workers=N)`` / ``run_ab_evaluation(...,
workers=N)`` / the CLI ``--workers`` flag all route through
:func:`run_sharded`.
"""

from repro.parallel.engine import (
    MODE_ENV_VAR,
    ShardResult,
    preferred_start_method,
    run_sharded,
    simulate_shard,
)
from repro.parallel.merge import (
    ShardMergeError,
    merge_shard_datasets,
    merge_telemetry_summaries,
)
from repro.parallel.sharding import ShardSpec, make_shards, shard_bounds
from repro.parallel.stats import ShardStats, execution_metadata

__all__ = [
    "MODE_ENV_VAR",
    "ShardMergeError",
    "ShardResult",
    "ShardSpec",
    "ShardStats",
    "execution_metadata",
    "make_shards",
    "merge_shard_datasets",
    "merge_telemetry_summaries",
    "preferred_start_method",
    "run_sharded",
    "shard_bounds",
    "simulate_shard",
]
