"""Sharded parallel execution of fleet scenarios.

The device population of a :class:`~repro.fleet.scenario.ScenarioConfig`
is embarrassingly parallel by construction — every stochastic decision
is drawn from a per-device stream seeded by ``(scenario seed, device
id, purpose)`` — so this package partitions it into deterministic
contiguous shards, simulates each shard in a worker process, and merges
the outputs into a dataset byte-identical (records-wise) to the
sequential run.  Worker processes run under a crash-tolerant
supervisor (per-shard retries with backoff for infrastructure faults,
fail-fast for simulation bugs, inline degradation as the last resort),
and completed shards can be spooled to a durable checkpoint store so a
killed run resumes instead of restarting.  See ``docs/performance.md``
for the execution model, the determinism argument, the resilience
machinery, and how to pick worker counts.

Entry points: ``FleetSimulator.run(workers=N)`` /
``NationwideStudy.run(workers=N)`` / ``run_ab_evaluation(...,
workers=N)`` / the CLI ``--workers`` flag all route through
:func:`run_sharded`.
"""

from repro.parallel.checkpoint import (
    CheckpointError,
    CheckpointMismatchError,
    CheckpointStore,
    scenario_fingerprint,
)
from repro.parallel.engine import (
    MODE_ENV_VAR,
    ShardResult,
    preferred_start_method,
    run_sharded,
    simulate_shard,
)
from repro.parallel.merge import (
    ShardMergeError,
    merge_shard_datasets,
    merge_telemetry_summaries,
)
from repro.parallel.sharding import ShardSpec, make_shards, shard_bounds
from repro.parallel.stats import (
    ShardFailureRecord,
    ShardStats,
    execution_metadata,
)
from repro.parallel.supervisor import (
    RetryPolicy,
    ShardResultInvalid,
    ShardSimulationError,
    ShardSupervisor,
    SupervisionReport,
    validate_shard_result,
)
from repro.parallel.worker_chaos import (
    WorkerChaos,
    WorkerChaosConfig,
    WorkerChaosFault,
)

__all__ = [
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointStore",
    "MODE_ENV_VAR",
    "RetryPolicy",
    "ShardFailureRecord",
    "ShardMergeError",
    "ShardResult",
    "ShardResultInvalid",
    "ShardSimulationError",
    "ShardSpec",
    "ShardStats",
    "ShardSupervisor",
    "SupervisionReport",
    "WorkerChaos",
    "WorkerChaosConfig",
    "WorkerChaosFault",
    "execution_metadata",
    "make_shards",
    "merge_shard_datasets",
    "merge_telemetry_summaries",
    "preferred_start_method",
    "run_sharded",
    "scenario_fingerprint",
    "shard_bounds",
    "simulate_shard",
    "validate_shard_result",
]
