"""Deterministic partitioning of a device population into shards.

A shard is a contiguous, half-open range of device ids.  Contiguity is
what makes the merge trivial *and* byte-identical to a sequential run:
the sequential simulator visits devices ``1..n`` in id order and
appends their records as it goes, so concatenating shard outputs in
shard order reproduces exactly the sequential record sequence — no
re-sorting, no tie-breaking.

The partition depends only on ``(n_devices, n_shards)``; it never
consults an RNG, the host, or the worker count actually achieved, so
the same scenario always maps the same device to the same shard.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a scenario's device population."""

    #: Position of this shard in the partition (0-based).
    index: int
    #: Total number of shards in the partition.
    n_shards: int
    #: First device id of the shard (inclusive; device ids start at 1).
    lo: int
    #: One past the last device id of the shard (exclusive).
    hi: int

    @property
    def n_devices(self) -> int:
        return self.hi - self.lo

    def device_ids(self) -> range:
        return range(self.lo, self.hi)


def shard_bounds(n_devices: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous, balanced ``[lo, hi)`` device-id ranges.

    Shard sizes differ by at most one; the first ``n_devices % n_shards``
    shards carry the extra device.  Requesting more shards than devices
    yields one single-device shard per device (never an empty shard).
    """
    if n_devices < 1:
        raise ValueError("need at least one device to shard")
    if n_shards < 1:
        raise ValueError("need at least one shard")
    n_shards = min(n_shards, n_devices)
    base, extra = divmod(n_devices, n_shards)
    bounds: list[tuple[int, int]] = []
    lo = 1
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        bounds.append((lo, lo + size))
        lo += size
    return bounds


def make_shards(n_devices: int, n_shards: int) -> list[ShardSpec]:
    """The :func:`shard_bounds` partition as :class:`ShardSpec` objects."""
    bounds = shard_bounds(n_devices, n_shards)
    return [
        ShardSpec(index=index, n_shards=len(bounds), lo=lo, hi=hi)
        for index, (lo, hi) in enumerate(bounds)
    ]
