"""Base stations.

A base station (BS) is the paper's unit of infrastructure analysis
(Sec. 3.3): it belongs to one ISP, supports one or more RATs, sits in a
deployment environment (from remote mountain cells in disrepair to the
densely-packed cells around public transport hubs), and admits or rejects
data bearers.  Everything Figures 11-17 measure about BSes emerges from
these attributes.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.core.signal import SignalLevel
from repro.network.bearer import DEFAULT_CAUSE_SAMPLER, CauseSampler
from repro.network.emm import EmmContext, EmmState
from repro.network.isp import ISP, profile_for
from repro.radio.rat import RAT


@dataclass(frozen=True)
class CellIdentity:
    """The BS identifier recorded in-situ by Android-MOD (Sec. 2.2).

    GSM/UMTS/LTE/NR cells use MCC+MNC+LAC+CID; CDMA cells are identified
    by SID+NID+BID instead (the paper's footnote 3).
    """

    mcc: int
    mnc: int
    lac: int | None = None
    cid: int | None = None
    # CDMA alternative identity.
    sid: int | None = None
    nid: int | None = None
    bid: int | None = None

    def __post_init__(self) -> None:
        gsm_style = self.lac is not None and self.cid is not None
        cdma_style = (
            self.sid is not None
            and self.nid is not None
            and self.bid is not None
        )
        if not (gsm_style or cdma_style):
            raise ValueError(
                "cell identity needs LAC+CID (3GPP) or SID+NID+BID (CDMA)"
            )

    @property
    def is_cdma(self) -> bool:
        return self.sid is not None

    def as_string(self) -> str:
        if self.is_cdma:
            return f"{self.mcc}-{self.sid}-{self.nid}-{self.bid}"
        return f"{self.mcc}-{self.mnc}-{self.lac}-{self.cid}"


class DeploymentClass(enum.Enum):
    """Where a BS is deployed; drives density, load, and upkeep."""

    TRANSPORT_HUB = "TRANSPORT_HUB"
    URBAN_CORE = "URBAN_CORE"
    URBAN = "URBAN"
    SUBURBAN = "SUBURBAN"
    RURAL = "RURAL"
    REMOTE = "REMOTE"


@dataclass(frozen=True)
class DeploymentTraits:
    """Per-class environment parameters (normalized to [0, 1])."""

    #: Neighbour-cell density; hubs approach 1 (Sec. 3.3).
    density: float
    #: Typical access load / contention.
    load: float
    #: Ambient interference level.
    interference: float
    #: Probability the BS is neglected and in disrepair (remote areas,
    #: Sec. 3.1's 25.5-hour outages).
    disrepair_probability: float


DEPLOYMENT_TRAITS: dict[DeploymentClass, DeploymentTraits] = {
    DeploymentClass.TRANSPORT_HUB: DeploymentTraits(0.95, 0.90, 0.85, 0.0),
    DeploymentClass.URBAN_CORE: DeploymentTraits(0.70, 0.75, 0.60, 0.0),
    DeploymentClass.URBAN: DeploymentTraits(0.45, 0.55, 0.40, 0.001),
    DeploymentClass.SUBURBAN: DeploymentTraits(0.25, 0.35, 0.20, 0.005),
    DeploymentClass.RURAL: DeploymentTraits(0.10, 0.20, 0.10, 0.02),
    DeploymentClass.REMOTE: DeploymentTraits(0.05, 0.10, 0.05, 0.15),
}

#: Relative per-attempt contention factor by RAT (Sec. 3.3): 3G is
#: comparatively idle because devices prefer 4G when available and 2G
#: out-covers 3G when it is not; 5G modules are immature.
_RAT_CONTENTION_FACTOR = {
    RAT.GSM: 1.00,
    RAT.UMTS: 0.45,
    RAT.LTE: 1.10,
    RAT.NR: 1.60,
}

#: Rational-rejection causes an overloaded BS answers with.
_OVERLOAD_CAUSES: tuple[str, ...] = (
    "INSUFFICIENT_RESOURCES",
    "CONGESTION",
    "ACCESS_BLOCK",
    "RRC_CONNECTION_REJECT_BY_NETWORK",
)


@dataclass
class BaseStation:
    """One cell site."""

    bs_id: int
    identity: CellIdentity
    isp: ISP
    supported_rats: frozenset[RAT]
    deployment: DeploymentClass
    #: Heavy-tailed per-BS failure multiplier; the Zipf ranking of Fig. 11
    #: arises from this together with traffic skew.
    failure_propensity: float = 1.0
    #: Long-neglected BS (remote regions) - very long outages.
    in_disrepair: bool = False
    #: Scales the effective neighbour density (< 1 under coordinated
    #: cross-ISP infrastructure sharing, Sec. 4.1's guideline).
    density_factor: float = 1.0
    #: Instantaneous load in [0, 1]; defaults to the deployment's typical.
    load: float = field(default=-1.0)
    _cause_sampler: CauseSampler = field(
        default=DEFAULT_CAUSE_SAMPLER, repr=False
    )
    _emm: EmmContext = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.supported_rats:
            raise ValueError("a BS must support at least one RAT")
        if self.failure_propensity <= 0:
            raise ValueError("failure propensity must be positive")
        traits = self.traits
        if self.load < 0:
            self.load = traits.load
        if not 0.0 < self.density_factor <= 1.0:
            raise ValueError("density factor must be within (0, 1]")
        # The BS-side EMM context captures how hostile this cell's
        # mobility management is; per-device EMM state lives device-side.
        self._emm = EmmContext(
            deployment_density=traits.density * self.density_factor
        )
        self._emm.state = EmmState.REGISTERED

    @property
    def traits(self) -> DeploymentTraits:
        return DEPLOYMENT_TRAITS[self.deployment]

    @property
    def deployment_density(self) -> float:
        return self.traits.density * self.density_factor

    def supports(self, rat: RAT) -> bool:
        return rat in self.supported_rats

    # -- bearer admission ------------------------------------------------------

    def admit_bearer(
        self,
        rat: RAT,
        signal_level: SignalLevel,
        rng: random.Random,
    ) -> str | None:
        """Negotiate one data bearer.

        Returns ``None`` on admission or a DataFailCause name on
        rejection.  The rejection mix reproduces the mechanisms the
        paper identifies: rational overload rejections (false positives
        to be filtered), EMM trouble in dense deployments, contention by
        RAT, and signal-flavoured failures in deep fades.
        """
        if not self.supports(rat):
            return "UNSUPPORTED_APN_IN_CURRENT_PLMN"
        if self.in_disrepair:
            return "NETWORK_FAILURE"
        # 1. Mobility-management trouble: an independent channel that
        #    scales with deployment density — the hub mechanism of
        #    Sec. 3.3 (EMM_ACCESS_BARRED, INVALID_EMM_STATE, ...).
        if rat in (RAT.LTE, RAT.NR):
            emm_cause = self._emm.check_bearer_request(rng)
            if emm_cause is not None:
                return emm_cause
        # 2. Rational rejection by an overloaded BS (a false positive
        #    for the study, but a real protocol event; Sec. 2.1).
        if rng.random() < self._overload_probability():
            return rng.choice(_OVERLOAD_CAUSES)
        # 3. Organic failure, scaled by contention, propensity and fade.
        if rng.random() < self.attempt_failure_probability(rat, signal_level):
            return self._cause_sampler.sample(
                rng,
                rat=rat,
                signal_level=signal_level,
                deployment_density=self.deployment_density,
            )
        return None

    def attempt_failure_probability(
        self, rat: RAT, signal_level: SignalLevel
    ) -> float:
        """Per-attempt organic failure probability for this BS."""
        base = 0.01 * self.failure_propensity
        base *= _RAT_CONTENTION_FACTOR[rat]
        base *= _LEVEL_FAILURE_FACTOR[signal_level]
        base *= 1.0 + 1.5 * self.traits.interference * self.density_factor
        return min(0.95, base)

    def _overload_probability(self) -> float:
        return min(0.30, 0.02 * self.load / max(1e-9, 1.0 - 0.7 * self.load))


#: Signal-level multiplier on organic failure odds.  Level 0 is by far
#: the most failure-prone (Fig. 15's monotone part); level 5 carries no
#: *intrinsic* penalty - its anomaly comes from hub density, not RSS.
_LEVEL_FAILURE_FACTOR = {
    SignalLevel.LEVEL_0: 6.0,
    SignalLevel.LEVEL_1: 2.5,
    SignalLevel.LEVEL_2: 1.6,
    SignalLevel.LEVEL_3: 1.0,
    SignalLevel.LEVEL_4: 0.7,
    SignalLevel.LEVEL_5: 0.6,
}


def make_identity(isp: ISP, bs_id: int, cdma: bool = False) -> CellIdentity:
    """Build a plausible cell identity for ``bs_id`` under ``isp``."""
    profile = profile_for(isp)
    if cdma:
        return CellIdentity(
            mcc=profile.mcc,
            mnc=profile.mnc,
            sid=1000 + bs_id % 8000,
            nid=bs_id % 256,
            bid=bs_id,
        )
    return CellIdentity(
        mcc=profile.mcc,
        mnc=profile.mnc,
        lac=1 + bs_id % 65_534,
        cid=bs_id,
    )
