"""Data-bearer setup negotiation and failure-cause sampling.

When a base station cannot admit a bearer, the negotiation response (or
its absence) determines the DataFailCause surfaced by the modem
(Sec. 2.1).  The :class:`CauseSampler` reproduces the paper's empirical
error-code mix: the top-10 codes of Table 2 cover 46.7% of all
Data_Setup_Error failures, and the remaining 53.3% spread over a long
tail of the 344-cause space.  Context multipliers skew the mix the way
the paper's root-cause analysis says it skews — EMM codes in dense
deployments, signal-flavoured codes in deep fades, GPRS registration on
legacy RATs, IRAT codes during handover.
"""

from __future__ import annotations

import random

from repro import quantities
from repro.core.errorcodes import ERROR_CODE_REGISTRY
from repro.core.signal import SignalLevel
from repro.radio.rat import RAT

#: Long-tail codes sharing the non-top-10 53.3% probability mass.
_TAIL_CODES: tuple[str, ...] = (
    "ACTIVATION_REJECT_GGSN",
    "ACTIVATION_REJECT_UNSPECIFIED",
    "NETWORK_FAILURE",
    "NAS_SIGNALLING",
    "LLC_SNDCP",
    "QOS_NOT_ACCEPTED",
    "NSAPI_IN_USE",
    "ESM_INFO_NOT_RECEIVED",
    "PDN_CONN_DOES_NOT_EXIST",
    "EMM_ACCESS_BARRED",
    "EMM_DETACHED",
    "EMM_ATTACH_FAILED",
    "EMM_T3417_EXPIRED",
    "LTE_NAS_SERVICE_REQUEST_FAILED",
    "ESM_FAILURE",
    "ESM_PROCEDURE_TIME_OUT",
    "RAB_FAILURE",
    "RRC_CONNECTION_TIMER_EXPIRED",
    "RRC_CONNECTION_LINK_FAILURE",
    "RRC_CONNECTION_RADIO_LINK_FAILURE",
    "RRC_CONNECTION_REESTABLISHMENT_FAILURE",
    "RRC_UPLINK_RADIO_LINK_FAILURE",
    "NAS_REQUEST_REJECTED_BY_NETWORK",
    "NETWORK_INITIATED_TERMINATION",
    "PDP_ACTIVATE_MAX_RETRY_FAILED",
    "PDP_DUPLICATE",
    "NO_GPRS_CONTEXT",
    "IMPLICITLY_DETACHED",
    "MIP_CONFIG_FAILURE",
    "VSNCP_TIMEOUT",
    "VSNCP_GEN_ERROR",
    "VSNCP_PDN_GATEWAY_UNREACHABLE",
    "IPV6_PREFIX_UNAVAILABLE",
    "UNKNOWN_PDP_CONTEXT",
    "PROTOCOL_ERRORS",
    "UE_RAT_CHANGE",
    "ERROR_UNSPECIFIED",
    "DRB_RELEASED_BY_RRC",
    "CONNECTION_RELEASED",
    "ESM_COLLISION_SCENARIOS",
)

#: Codes whose odds rise when signal is very weak.
_SIGNAL_FLAVOURED = frozenset(
    {"SIGNAL_LOST", "NO_SERVICE", "MAX_ACCESS_PROBE",
     "RRC_CONNECTION_LINK_FAILURE", "RRC_UPLINK_RADIO_LINK_FAILURE"}
)

#: Codes whose odds rise in dense (hub) deployments (Sec. 3.3).
_DENSITY_FLAVOURED = frozenset(
    {"EMM_ACCESS_BARRED", "INVALID_EMM_STATE", "EMM_T3417_EXPIRED",
     "LTE_NAS_SERVICE_REQUEST_FAILED"}
)

#: Codes tied to legacy packet registration (2G/3G).
_LEGACY_FLAVOURED = frozenset(
    {"GPRS_REGISTRATION_FAIL", "NO_GPRS_CONTEXT", "PPP_TIMEOUT",
     "NO_HYBRID_HDR_SERVICE"}
)

#: Codes tied to inter-RAT mobility.
_HANDOVER_FLAVOURED = frozenset(
    {"IRAT_HANDOVER_FAILED", "UNPREFERRED_RAT", "UE_RAT_CHANGE",
     "ESM_CONTEXT_TRANSFERRED_DUE_TO_IRAT"}
)


class CauseSampler:
    """Samples DataFailCause names matching the paper's empirical mix."""

    def __init__(self) -> None:
        weights: dict[str, float] = dict(
            quantities.TABLE2_ERROR_CODE_SHARES
        )
        tail_mass = 1.0 - quantities.TABLE2_TOP10_CUMULATIVE
        # The long tail decays gently: each non-top-10 cause stays well
        # below the rank-10 share (1.6%), as in Android field data.
        decay = 0.995
        raw = [decay**i for i in range(len(_TAIL_CODES))]
        total = sum(raw)
        for code, share in zip(_TAIL_CODES, raw):
            weights[code] = weights.get(code, 0.0) + tail_mass * share / total
        for code in weights:
            if code not in ERROR_CODE_REGISTRY:
                raise ValueError(f"sampler references unknown code {code}")
        self._base_weights = weights

    @property
    def base_weights(self) -> dict[str, float]:
        """Copy of the context-free sampling weights (sums to 1)."""
        return dict(self._base_weights)

    def sample(
        self,
        rng: random.Random,
        *,
        rat: RAT = RAT.LTE,
        signal_level: SignalLevel = SignalLevel.LEVEL_3,
        deployment_density: float = 0.2,
        during_handover: bool = False,
    ) -> str:
        """Draw one cause name given the failure's radio context."""
        weights = dict(self._base_weights)
        if signal_level <= SignalLevel.LEVEL_1:
            _boost(weights, _SIGNAL_FLAVOURED, 3.0)
        if deployment_density >= 0.6:
            _boost(weights, _DENSITY_FLAVOURED, 1.0 + 2.2 * deployment_density)
        if rat in (RAT.GSM, RAT.UMTS):
            _boost(weights, _LEGACY_FLAVOURED, 3.5)
        if during_handover:
            _boost(weights, _HANDOVER_FLAVOURED, 6.0)
        return _weighted_choice(weights, rng)


def _boost(weights: dict[str, float], names: frozenset[str],
           factor: float) -> None:
    for name in names:
        if name in weights:
            weights[name] *= factor


def _weighted_choice(weights: dict[str, float], rng: random.Random) -> str:
    total = sum(weights.values())
    roll = rng.random() * total
    cumulative = 0.0
    for name, weight in weights.items():
        cumulative += weight
        if roll < cumulative:
            return name
    return next(reversed(weights))


#: Shared sampler instance (stateless after construction).
DEFAULT_CAUSE_SAMPLER = CauseSampler()
