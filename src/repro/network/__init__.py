"""Cellular-network substrate: ISPs, base stations, EMM mobility
management, bearer admission, and the nationwide topology generator."""

from repro.network.isp import ISP, ISP_PROFILES, IspProfile
from repro.network.basestation import BaseStation, CellIdentity, DeploymentClass
from repro.network.emm import EmmState, EmmContext
from repro.network.topology import NationalTopology, TopologyConfig

__all__ = [
    "ISP",
    "ISP_PROFILES",
    "IspProfile",
    "BaseStation",
    "CellIdentity",
    "DeploymentClass",
    "EmmState",
    "EmmContext",
    "NationalTopology",
    "TopologyConfig",
]
