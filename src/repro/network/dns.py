"""DNS / ICMP probe endpoints.

Android-MOD's network-state prober (Sec. 2.2) distinguishes system-side
faults, DNS-service faults, and genuine network-side stalls by probing
three kinds of targets: the local loopback address, the device's
assigned DNS servers (ICMP), and the DNS resolution service itself (a
query for a dedicated test server's name).  This module provides the
endpoint objects those probes hit in simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Domain name of the study's dedicated test server, used for the probe
#: DNS queries (Sec. 2.2).
TEST_SERVER_DOMAIN = "probe.cellular-reliability.example"

#: Loopback address probed to rule out system-side faults.
LOOPBACK_ADDRESS = "127.0.0.1"


@dataclass
class DnsServer:
    """One DNS server assigned to the device.

    ``icmp_reachable`` models whether ICMP echo messages reach the
    server; ``service_available`` models whether the resolver answers
    queries.  The distinction matters: timeouts on queries *without*
    ICMP timeouts indicate a DNS-service false positive (Sec. 2.2).
    """

    address: str
    icmp_reachable: bool = True
    service_available: bool = True
    #: One-way network latency to the server, seconds.
    latency_s: float = 0.03

    def ping(self, timeout_s: float) -> tuple[bool, float]:
        """ICMP echo: (answered?, elapsed seconds)."""
        if not self.icmp_reachable:
            return False, timeout_s
        rtt = min(2.0 * self.latency_s, timeout_s)
        return 2.0 * self.latency_s <= timeout_s, rtt

    def resolve(self, domain: str, timeout_s: float) -> tuple[bool, float]:
        """DNS query for ``domain``: (answered?, elapsed seconds)."""
        if not self.icmp_reachable or not self.service_available:
            return False, timeout_s
        elapsed = min(2.0 * self.latency_s + 0.01, timeout_s)
        return elapsed < timeout_s, elapsed


def default_dns_servers() -> list[DnsServer]:
    """The two resolvers a Chinese carrier typically assigns."""
    return [DnsServer("114.114.114.114"), DnsServer("223.5.5.5")]
