"""EPS Mobility Management (EMM) for LTE/NR cells.

The paper traces the counter-intuitive level-5-RSS failure spike to
densely deployed BSes around public transport hubs: dense deployment
complicates LTE mobility management and produces failures tagged
``EMM_ACCESS_BARRED``, ``INVALID_EMM_STATE``, etc. (Sec. 3.3).  This
module implements a small EMM state machine whose misbehaviour scales
with the serving cell's *deployment density*, so that exact phenomenon
emerges mechanistically in the simulated trace.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field


class EmmState(enum.Enum):
    """The EMM states relevant to data-bearer setup (TS 24.301 subset)."""

    DEREGISTERED = "EMM-DEREGISTERED"
    REGISTERED_INITIATED = "EMM-REGISTERED-INITIATED"
    REGISTERED = "EMM-REGISTERED"
    TRACKING_AREA_UPDATING = "EMM-TRACKING-AREA-UPDATING"
    DEREGISTERED_INITIATED = "EMM-DEREGISTERED-INITIATED"


#: States from which a data-bearer (ESM) request is valid.
_BEARER_READY_STATES = frozenset({EmmState.REGISTERED})

#: EMM-flavoured DataFailCause names and their relative odds when dense
#: deployment breaks mobility management (Sec. 3.3 names the first two).
_EMM_FAILURE_CAUSES: tuple[tuple[str, float], ...] = (
    ("EMM_ACCESS_BARRED", 0.40),
    ("INVALID_EMM_STATE", 0.30),
    ("EMM_T3417_EXPIRED", 0.10),
    ("EMM_ATTACH_FAILED", 0.10),
    ("LTE_NAS_SERVICE_REQUEST_FAILED", 0.10),
)


@dataclass
class EmmContext:
    """Per-attachment EMM context between a device and an LTE/NR cell.

    ``deployment_density`` is the serving cell's normalized neighbour
    density in [0, 1]; transport-hub cells sit near 1.0.  Density drives
    two effects: access barring (control-channel overload) and spurious
    state churn (complicated mobility management).
    """

    deployment_density: float = 0.2
    state: EmmState = EmmState.DEREGISTERED
    #: Count of attach attempts rejected by access barring.
    barred_attempts: int = 0
    _history: list[EmmState] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.deployment_density <= 1.0:
            raise ValueError("deployment density must be within [0, 1]")

    # -- state transitions --------------------------------------------------

    def attach(self, rng: random.Random) -> str | None:
        """Attempt EMM attach; returns a DataFailCause name on failure."""
        if self.state is EmmState.REGISTERED:
            return None
        self._move(EmmState.REGISTERED_INITIATED)
        if rng.random() < self.barring_probability():
            self.barred_attempts += 1
            self._move(EmmState.DEREGISTERED)
            return "EMM_ACCESS_BARRED"
        self._move(EmmState.REGISTERED)
        return None

    def detach(self) -> None:
        self._move(EmmState.DEREGISTERED_INITIATED)
        self._move(EmmState.DEREGISTERED)

    def begin_tracking_area_update(self) -> None:
        if self.state is not EmmState.REGISTERED:
            raise ValueError("TAU requires EMM-REGISTERED")
        self._move(EmmState.TRACKING_AREA_UPDATING)

    def complete_tracking_area_update(self, rng: random.Random) -> str | None:
        """Finish a TAU; dense cells occasionally drop to DEREGISTERED."""
        if self.state is not EmmState.TRACKING_AREA_UPDATING:
            raise ValueError("no TAU in progress")
        if rng.random() < 0.5 * self.churn_probability():
            self._move(EmmState.DEREGISTERED)
            return "INVALID_EMM_STATE"
        self._move(EmmState.REGISTERED)
        return None

    # -- bearer-request hook --------------------------------------------------

    def check_bearer_request(self, rng: random.Random) -> str | None:
        """Validate that EMM state permits an ESM bearer request.

        Called by the BS admission path on every setup over LTE/NR.
        Returns ``None`` when the request may proceed, or an EMM-flavoured
        DataFailCause name when mobility management is in a bad state.
        Dense deployment raises the failure odds (the hub phenomenon).
        """
        if self.state not in _BEARER_READY_STATES:
            return "INVALID_EMM_STATE"
        if rng.random() < self.churn_probability():
            return _pick_weighted(_EMM_FAILURE_CAUSES, rng)
        return None

    # -- density-driven probabilities ------------------------------------------

    def barring_probability(self) -> float:
        """P(access barred) for one attach; grows superlinearly with
        density so hubs dominate."""
        return min(0.6, 0.01 + 0.5 * self.deployment_density**2)

    def churn_probability(self) -> float:
        """P(mobility-management-induced failure) per bearer request."""
        return min(0.5, 0.005 + 0.35 * self.deployment_density**2)

    # -- internals -----------------------------------------------------------

    def _move(self, state: EmmState) -> None:
        self._history.append(self.state)
        self.state = state

    @property
    def history(self) -> tuple[EmmState, ...]:
        """States visited before the current one (for diagnostics)."""
        return tuple(self._history)


def _pick_weighted(
    table: tuple[tuple[str, float], ...], rng: random.Random
) -> str:
    roll = rng.random()
    cumulative = 0.0
    for name, weight in table:
        cumulative += weight
        if roll < cumulative:
            return name
    return table[-1][0]
