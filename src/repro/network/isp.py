"""Mobile ISP profiles.

The study covers three anonymized Chinese ISPs (Sec. 3.3):

* **ISP-A** (China Mobile in the paper's mapping): largest BS share
  (44.8%), lowest median radio frequency, best coverage.
* **ISP-B** (China Telecom): 29.4% of BSes but the highest median radio
  frequency, hence smaller per-BS coverage and the worst user-side
  failure prevalence (27.1%).
* **ISP-C** (China Unicom): 25.8% of BSes, intermediate frequency,
  best prevalence (14.7%) helped by a smaller subscriber base.

The profiles encode the *causal* attributes the paper names — BS share,
relative frequency band, subscriber share — and the simulator lets the
failure statistics emerge from them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import quantities


class ISP(enum.Enum):
    """Anonymized ISP identifiers used throughout the paper."""

    A = "ISP-A"
    B = "ISP-B"
    C = "ISP-C"

    @property
    def label(self) -> str:
        return self.value


@dataclass(frozen=True)
class IspProfile:
    """Static attributes of one ISP's network."""

    isp: ISP
    #: Fraction of the nationwide BS population (Sec. 3.3).
    bs_share: float
    #: Fraction of the subscriber population served.
    subscriber_share: float
    #: Median downlink carrier frequency in MHz.  The paper orders the
    #: medians ISP-B > ISP-C > ISP-A and notes the bands nearly overlap.
    median_frequency_mhz: float
    #: Extra path-loss in dB relative to the lowest-frequency carrier;
    #: drives the coverage differences behind Figs. 12-13.
    frequency_penalty_db: float
    #: Mobile country code / network code used in cell identities.
    mcc: int
    mnc: int


#: The three ISPs with attributes consistent with Sec. 3.3.
ISP_PROFILES: dict[ISP, IspProfile] = {
    ISP.A: IspProfile(
        isp=ISP.A,
        bs_share=quantities.ISP_BS_SHARE["ISP-A"],
        subscriber_share=0.55,
        median_frequency_mhz=1_900.0,
        frequency_penalty_db=0.0,
        mcc=460,
        mnc=0,
    ),
    ISP.B: IspProfile(
        isp=ISP.B,
        bs_share=quantities.ISP_BS_SHARE["ISP-B"],
        subscriber_share=0.20,
        median_frequency_mhz=2_300.0,
        frequency_penalty_db=4.0,
        mcc=460,
        mnc=3,
    ),
    ISP.C: IspProfile(
        isp=ISP.C,
        bs_share=quantities.ISP_BS_SHARE["ISP-C"],
        subscriber_share=0.25,
        median_frequency_mhz=2_100.0,
        frequency_penalty_db=2.0,
        mcc=460,
        mnc=1,
    ),
}


def profile_for(isp: ISP) -> IspProfile:
    """The static profile of ``isp``."""
    return ISP_PROFILES[isp]
