"""Nationwide base-station topology generation.

Builds a scaled-down replica of the study's infrastructure landscape
(Sec. 3.3): 5.27M real BSes become ``n_base_stations`` simulated ones,
keeping the published marginals — ISP ownership shares (44.8 / 29.4 /
25.8%), per-RAT support shares (23.4 / 10.2 / 65.2 / 7.3%, overlapping),
a deployment-class mix from transport hubs to remote mountain cells, and
a heavy-tailed per-BS failure propensity that yields the Zipf-like
failure ranking of Fig. 11.
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass, field

from repro.network.basestation import (
    BaseStation,
    DeploymentClass,
    DEPLOYMENT_TRAITS,
    make_identity,
)
from repro.network.isp import ISP, ISP_PROFILES
from repro.radio.rat import RAT

#: RAT-support archetypes and their probabilities, chosen so the per-RAT
#: marginals match Sec. 3.3 (2G 23.4%, 3G 10.2%, 4G 65.2%, 5G 7.3%; the
#: 6.1% excess over 100% is multi-RAT cells).
_RAT_ARCHETYPES: tuple[tuple[frozenset[RAT], float], ...] = (
    (frozenset({RAT.NR}), 0.023),
    (frozenset({RAT.LTE, RAT.NR}), 0.050),
    (frozenset({RAT.GSM, RAT.LTE}), 0.008),
    (frozenset({RAT.GSM, RAT.UMTS}), 0.002),
    (frozenset({RAT.UMTS, RAT.LTE}), 0.001),
    (frozenset({RAT.GSM}), 0.224),
    (frozenset({RAT.UMTS}), 0.099),
    (frozenset({RAT.LTE}), 0.593),
)

#: Deployment-class mix of the BS population.
_DEPLOYMENT_MIX: tuple[tuple[DeploymentClass, float], ...] = (
    (DeploymentClass.TRANSPORT_HUB, 0.005),
    (DeploymentClass.URBAN_CORE, 0.070),
    (DeploymentClass.URBAN, 0.300),
    (DeploymentClass.SUBURBAN, 0.350),
    (DeploymentClass.RURAL, 0.220),
    (DeploymentClass.REMOTE, 0.055),
)


@dataclass(frozen=True)
class TopologyConfig:
    """Parameters of the nationwide topology replica."""

    n_base_stations: int = 5_000
    seed: int = 2020
    #: Log-normal sigma of the per-BS failure propensity; larger values
    #: produce a heavier Zipf tail in Fig. 11.
    propensity_sigma: float = 1.8
    #: Extra propensity multiplier for transport-hub cells.
    hub_propensity_factor: float = 3.0
    #: Fraction of CDMA-identified cells (footnote 3: SID/NID/BID).
    cdma_fraction: float = 0.03
    #: Model cross-ISP infrastructure sharing (Sec. 4.1): coordinated
    #: deployment thins the redundant dense cells around hubs and urban
    #: cores, cutting their effective neighbour density.
    infrastructure_sharing: bool = False
    #: Effective density multiplier for dense cells under sharing.
    sharing_density_factor: float = 0.55
    #: Override of the nationwide deployment-class mix: ``(class name,
    #: weight)`` pairs (class names from
    #: :class:`~repro.network.basestation.DeploymentClass`, weights
    #: need not sum to 1).  ``None`` keeps the paper's mix.  Scenario
    #: packs use this to model dense-hub flash crowds (stadium /
    #: transport-hub heavy populations) — see :mod:`repro.scenarios`.
    deployment_mix: tuple[tuple[str, float], ...] | None = None

    def __post_init__(self) -> None:
        if self.n_base_stations < len(_DEPLOYMENT_MIX):
            raise ValueError("too few base stations for the class mix")
        if self.deployment_mix is not None:
            valid = {cls.value for cls in DeploymentClass}
            normalized = []
            for entry in self.deployment_mix:
                name, weight = entry
                name = str(name).upper()
                if name not in valid:
                    raise ValueError(
                        f"unknown deployment class {name!r} "
                        f"(choose from {sorted(valid)})"
                    )
                weight = float(weight)
                if weight < 0:
                    raise ValueError(
                        f"deployment weight for {name} must be "
                        f">= 0, got {weight}"
                    )
                normalized.append((name, weight))
            if not normalized or sum(w for _, w in normalized) <= 0:
                raise ValueError(
                    "deployment_mix needs at least one positive weight"
                )
            object.__setattr__(self, "deployment_mix",
                               tuple(normalized))


class NationalTopology:
    """The simulated nationwide BS population plus sampling indexes."""

    def __init__(self, config: TopologyConfig | None = None) -> None:
        self.config = config or TopologyConfig()
        rng = random.Random(self.config.seed)
        self.base_stations: list[BaseStation] = []
        self._by_id: dict[int, BaseStation] = {}
        self._build(rng)
        self._pools = self._index_pools()

    # -- construction -----------------------------------------------------

    def _build(self, rng: random.Random) -> None:
        isps = list(ISP_PROFILES)
        isp_weights = [ISP_PROFILES[isp].bs_share for isp in isps]
        if self.config.deployment_mix is not None:
            classes = [DeploymentClass(name)
                       for name, _ in self.config.deployment_mix]
            class_weights = [w for _, w in self.config.deployment_mix]
        else:
            classes = [cls for cls, _ in _DEPLOYMENT_MIX]
            class_weights = [w for _, w in _DEPLOYMENT_MIX]
        archetypes = [rats for rats, _ in _RAT_ARCHETYPES]
        archetype_weights = [w for _, w in _RAT_ARCHETYPES]

        for bs_id in range(1, self.config.n_base_stations + 1):
            isp = rng.choices(isps, weights=isp_weights)[0]
            deployment = rng.choices(classes, weights=class_weights)[0]
            rats = rng.choices(archetypes, weights=archetype_weights)[0]
            if deployment is DeploymentClass.TRANSPORT_HUB:
                # Hub cells are modern capacity cells: guarantee LTE so
                # the dense-deployment EMM mechanics are exercised there.
                rats = rats | {RAT.LTE}
            propensity = rng.lognormvariate(0.0, self.config.propensity_sigma)
            if deployment is DeploymentClass.TRANSPORT_HUB:
                propensity *= self.config.hub_propensity_factor
            traits = DEPLOYMENT_TRAITS[deployment]
            in_disrepair = rng.random() < traits.disrepair_probability
            if in_disrepair:
                propensity *= 10.0
            cdma = rng.random() < self.config.cdma_fraction
            density_factor = 1.0
            if self.config.infrastructure_sharing and deployment in (
                DeploymentClass.TRANSPORT_HUB,
                DeploymentClass.URBAN_CORE,
            ):
                density_factor = self.config.sharing_density_factor
            station = BaseStation(
                bs_id=bs_id,
                identity=make_identity(isp, bs_id, cdma=cdma),
                isp=isp,
                supported_rats=frozenset(rats),
                deployment=deployment,
                failure_propensity=propensity,
                in_disrepair=in_disrepair,
                density_factor=density_factor,
            )
            self.base_stations.append(station)
            self._by_id[bs_id] = station

    def _index_pools(self) -> dict[tuple[ISP, DeploymentClass], "_BsPool"]:
        pools: dict[tuple[ISP, DeploymentClass], _BsPool] = {}
        keyfunc = lambda bs: (bs.isp, bs.deployment)  # noqa: E731
        ordered = sorted(self.base_stations, key=lambda bs: (bs.isp.value,
                                                             bs.deployment.value,
                                                             bs.bs_id))
        for key, group in itertools.groupby(ordered, key=keyfunc):
            pools[key] = _BsPool(list(group))
        return pools

    # -- lookups & sampling --------------------------------------------------

    def __len__(self) -> int:
        return len(self.base_stations)

    def get(self, bs_id: int) -> BaseStation:
        return self._by_id[bs_id]

    def sample_bs(
        self,
        rng: random.Random,
        isp: ISP,
        deployment: DeploymentClass,
        rat: RAT | None = None,
        weighted: bool = True,
    ) -> BaseStation:
        """Draw a BS in the given environment.

        With ``weighted`` (the default), sampling follows failure
        propensity — the right choice for assigning *failure episodes*,
        and the mechanism behind Fig. 11's skew.  ``weighted=False``
        draws uniformly, which is the right choice for placing ordinary
        traffic (organic sessions).  Falls back to any deployment class
        for the ISP when the exact pool is empty or lacks the RAT.
        """
        pool = self._pools.get((isp, deployment))
        if pool is not None:
            station = pool.sample(rng, rat, weighted=weighted)
            if station is not None:
                return station
        # Fallback: search the ISP's other pools, densest first.
        for cls, _ in _DEPLOYMENT_MIX:
            pool = self._pools.get((isp, cls))
            if pool is None:
                continue
            station = pool.sample(rng, rat, weighted=weighted)
            if station is not None:
                return station
        raise LookupError(
            f"no base station for {isp} supporting {rat}"
        )

    # -- marginal checks (used by tests and DESIGN validation) ---------------

    def isp_share(self) -> dict[ISP, float]:
        counts = {isp: 0 for isp in ISP}
        for bs in self.base_stations:
            counts[bs.isp] += 1
        n = len(self.base_stations)
        return {isp: counts[isp] / n for isp in ISP}

    def rat_support_share(self) -> dict[RAT, float]:
        counts = {rat: 0 for rat in RAT}
        for bs in self.base_stations:
            for rat in bs.supported_rats:
                counts[rat] += 1
        n = len(self.base_stations)
        return {rat: counts[rat] / n for rat in RAT}

    def deployment_share(self) -> dict[DeploymentClass, float]:
        counts = {cls: 0 for cls in DeploymentClass}
        for bs in self.base_stations:
            counts[bs.deployment] += 1
        n = len(self.base_stations)
        return {cls: counts[cls] / n for cls in DeploymentClass}


@dataclass
class _BsPool:
    """A propensity-weighted sampling pool over one (ISP, class) group."""

    stations: list[BaseStation]
    _cumulative: list[float] = field(init=False)

    def __post_init__(self) -> None:
        running = 0.0
        cumulative = []
        for bs in self.stations:
            running += bs.failure_propensity
            cumulative.append(running)
        self._cumulative = cumulative

    def sample(
        self, rng: random.Random, rat: RAT | None = None,
        attempts: int = 8, weighted: bool = True,
    ) -> BaseStation | None:
        """Propensity-weighted (or uniform) draw; when ``rat`` is given,
        retry a few times to find a supporting cell (None on miss)."""
        if not self.stations:
            return None
        total = self._cumulative[-1]
        for _ in range(attempts):
            if weighted:
                roll = rng.random() * total
                idx = bisect.bisect_left(self._cumulative, roll)
                idx = min(idx, len(self.stations) - 1)
            else:
                idx = rng.randrange(len(self.stations))
            station = self.stations[idx]
            if rat is None or station.supports(rat):
                return station
        if rat is not None:
            supporting = [bs for bs in self.stations if bs.supports(rat)]
            if supporting:
                return rng.choice(supporting)
        return None
