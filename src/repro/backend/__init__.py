"""Backend substrate: the centralized side of the study — ingestion of
the devices' compressed uploads and streaming aggregation over record
streams too large to hold in memory."""

from repro.backend.ingest import IngestionServer, ServiceUnavailable
from repro.backend.streaming import P2Quantile, StreamingStats

__all__ = ["IngestionServer", "P2Quantile", "ServiceUnavailable",
           "StreamingStats"]
