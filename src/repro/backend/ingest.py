"""Backend ingestion of device uploads.

Devices ship zlib-compressed JSON records through
:class:`repro.monitoring.uploader.UploadBatcher`; this server is the
receiving end: decompress, parse, validate, deduplicate (uploads may be
retried after connectivity loss), and keep streaming aggregates per
failure type — the "compressed and uploaded to our backend server for
centralized analysis" sentence of Sec. 2.3, made concrete.

Hardening for lossy transports (see :mod:`repro.chaos`):

* malformed payloads land in a bounded **quarantine** instead of being
  silently counted away, so corrupted-in-transit uploads stay
  inspectable;
* an ``available`` flag simulates transient backend outages — while
  down, :meth:`IngestionServer.receive` raises
  :class:`ServiceUnavailable` and the device spooler keeps the payload;
* :meth:`IngestionServer.checkpoint` / :meth:`IngestionServer.restore`
  snapshot the full dedup + aggregate state, so a "crashed" server can
  resume and absorb the ensuing retry storm without double-counting.

With a :class:`repro.store.SegmentStore` attached
(:meth:`IngestionServer.attach_store`), accepted records go to the
durable store *before* they enter the dedup set — a crash between the
two re-runs an idempotent append, never drops an acked record — and
checkpoints shrink to the dedup keys the store does not already prove
(``seen`` minus ``store.known_keys()``) plus the store description.
After a scrub reports unrecoverable identities,
:meth:`IngestionServer.forget_keys` drops them from the dedup set so
devices can re-upload exactly those records.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field

from repro.backend.streaming import P2Quantile, StreamingStats
from repro.dataset.records import FailureRecord, record_identity
from repro.obs import get_registry

#: Fields a record must carry to be accepted.
_REQUIRED_FIELDS = frozenset({
    "device_id", "failure_type", "start_time", "duration_s",
})

#: How many malformed payloads the quarantine retains for inspection.
QUARANTINE_CAPACITY = 256


class ServiceUnavailable(RuntimeError):
    """The backend is down; the upload was not received (no ack)."""


@dataclass
class IngestionServer:
    """Receives, validates, and aggregates device uploads."""

    #: In-memory records (legacy mode).  With a segment store attached
    #: this stays empty — the store owns the records.
    records: list[FailureRecord] = field(default_factory=list)
    #: Optional durable :class:`repro.store.SegmentStore`; attach with
    #: :meth:`attach_store`, never by assignment (the dedup set must
    #: absorb the store's known keys at the same moment).
    store: object | None = field(default=None, repr=False)
    accepted: int = 0
    duplicates: int = 0
    malformed: int = 0
    quarantined: int = 0
    #: Quarantine entries evicted once capacity was hit — forensic
    #: payloads lost to the bound, counted so the loss is explicit.
    quarantine_evicted: int = 0
    bytes_received: int = 0
    #: Whether the server answers at all (transient-outage simulation).
    available: bool = True
    #: Retained malformed payloads, oldest first, capped at
    #: :data:`QUARANTINE_CAPACITY` entries.
    quarantine: list[dict] = field(default_factory=list, repr=False)
    #: Per-failure-type duration statistics, streaming.
    duration_stats: dict[str, StreamingStats] = field(
        default_factory=dict
    )
    #: Streaming median of all failure durations.
    duration_median: P2Quantile = field(
        default_factory=lambda: P2Quantile(0.5)
    )
    _seen: set[str] = field(default_factory=set, repr=False)

    # -- the transport callable given to UploadBatcher -----------------------

    def receive(self, payload: bytes) -> None:
        """Accept one compressed upload (the UploadBatcher transport)."""
        if not self.available:
            get_registry().inc("ingest_unavailable_total")
            raise ServiceUnavailable("ingestion backend is down")
        self.bytes_received += len(payload)
        get_registry().inc("ingest_bytes_received_total", len(payload))
        try:
            data = json.loads(zlib.decompress(payload))
        except (zlib.error, json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine("undecodable", payload=payload)
            return
        self.ingest_record(data)

    def ingest_record(self, data: dict) -> None:
        """Validate and store one decoded record."""
        if not isinstance(data, dict) or not (
            _REQUIRED_FIELDS <= set(data)
        ):
            self._quarantine("missing-fields", data=data)
            return
        key = self._identity(data)
        if key in self._seen:
            self.duplicates += 1
            get_registry().inc("ingest_duplicates_total")
            return
        try:
            record = FailureRecord.from_dict(data)
        except TypeError:
            self._quarantine("schema-mismatch", data=data)
            return
        # The dedup key is recorded only after a successful parse: a
        # malformed-but-complete record must not poison the dedup set,
        # or a corrected retry would be miscounted as a duplicate.
        # With a store attached, durability comes first: the append
        # (WAL fsync) must succeed before the key enters the dedup
        # set, or a crash between the two would ack-then-drop.  The
        # append is idempotent, so the retry after a mid-append crash
        # is safe even when the WAL line did land.
        if self.store is not None:
            self.store.append(record.to_dict(), key=key)
            self._seen.add(key)
        else:
            self._seen.add(key)
            self.records.append(record)
        self.accepted += 1
        get_registry().inc("ingest_accepted_total")
        stats = self.duration_stats.setdefault(
            record.failure_type, StreamingStats()
        )
        stats.add(record.duration_s)
        self.duration_median.add(record.duration_s)

    # -- durable store --------------------------------------------------------

    def attach_store(self, store) -> None:
        """Make a :class:`~repro.store.SegmentStore` the record home.

        The store's known identities join the dedup set (replays of
        store-owned records dedup cleanly), and any in-memory records
        migrate into the store so there is exactly one owner.
        """
        self.store = store
        for record in self.records:
            data = record.to_dict()
            store.append(data, key=record_identity(data))
        self.records = []
        self._seen |= store.known_keys()

    def forget_keys(self, keys) -> int:
        """Drop identities from the dedup set (scrub ``lost_keys``).

        Returns how many were actually forgotten.  Devices retrying
        these records are accepted as new instead of miscounted as
        duplicates — the re-upload invitation after data loss.
        """
        dropped = self._seen & set(keys)
        self._seen -= dropped
        if dropped:
            get_registry().inc("ingest_keys_forgotten_total",
                               len(dropped))
        return len(dropped)

    # -- outage simulation ----------------------------------------------------

    def take_down(self) -> None:
        """Begin a transient outage; uploads raise until bring_up()."""
        self.available = False

    def bring_up(self) -> None:
        self.available = True

    # -- checkpoint / restore -------------------------------------------------

    def checkpoint(self) -> dict:
        """JSON-able snapshot of every ingest state that matters.

        The quarantine is diagnostic and deliberately not part of the
        snapshot; everything dedup or aggregation depends on is.  With
        a store attached the snapshot shrinks to the dedup keys the
        store cannot prove (its own keys are re-derived from the
        journal on restore) plus the store description — the
        checkpoint no longer grows with the record count.
        """
        seen = self._seen
        if self.store is not None:
            seen = seen - self.store.known_keys()
        snapshot = {
            "records": [record.to_dict() for record in self.records],
            "accepted": self.accepted,
            "duplicates": self.duplicates,
            "malformed": self.malformed,
            "quarantined": self.quarantined,
            "quarantine_evicted": self.quarantine_evicted,
            "bytes_received": self.bytes_received,
            "available": self.available,
            "seen": sorted(seen),
            "duration_stats": {
                failure_type: stats.to_dict()
                for failure_type, stats in self.duration_stats.items()
            },
            "duration_median": self.duration_median.to_dict(),
        }
        if self.store is not None:
            snapshot["store"] = self.store.describe()
        return snapshot

    @classmethod
    def restore(cls, snapshot: dict,
                store=None) -> "IngestionServer":
        """Rebuild a server from :meth:`checkpoint` output.

        Uploads that arrived after the snapshot are gone from state, but
        because the dedup set is part of it, devices may simply retry
        everything — replays of pre-snapshot records dedup cleanly.

        When the snapshot carries a store description (or ``store`` is
        passed), the segment store is reattached: its journal-proven
        identities rejoin the dedup set, so a WAL-fsynced record is
        never double-counted after a SIGKILL.
        """
        server = cls(
            records=[
                FailureRecord.from_dict(data)
                for data in snapshot["records"]
            ],
            accepted=int(snapshot["accepted"]),
            duplicates=int(snapshot["duplicates"]),
            malformed=int(snapshot["malformed"]),
            quarantined=int(snapshot.get("quarantined", 0)),
            quarantine_evicted=int(
                snapshot.get("quarantine_evicted", 0)
            ),
            bytes_received=int(snapshot["bytes_received"]),
            available=bool(snapshot.get("available", True)),
            duration_stats={
                failure_type: StreamingStats.from_dict(data)
                for failure_type, data
                in snapshot["duration_stats"].items()
            },
            duration_median=P2Quantile.from_dict(
                snapshot["duration_median"]
            ),
        )
        server._seen = set(snapshot["seen"])
        if store is None and "store" in snapshot:
            from repro.store import SegmentStore
            store = SegmentStore.from_description(snapshot["store"])
        if store is not None:
            server.attach_store(store)
        return server

    # -- queries -----------------------------------------------------------

    @property
    def accepted_keys(self) -> frozenset[str]:
        """Identities of every accepted record (for reconciliation)."""
        return frozenset(self._seen)

    def duration_share(self) -> dict[str, float]:
        """Per-type share of total failure duration (streaming)."""
        total = sum(s.total for s in self.duration_stats.values())
        if total == 0:
            return {}
        return {
            failure_type: stats.total / total
            for failure_type, stats in self.duration_stats.items()
        }

    def summary(self) -> dict[str, float]:
        return {
            "accepted": float(self.accepted),
            "duplicates": float(self.duplicates),
            "malformed": float(self.malformed),
            "quarantined": float(self.quarantined),
            "quarantine_evicted": float(self.quarantine_evicted),
            "bytes_received": float(self.bytes_received),
        }

    # -- internals -----------------------------------------------------------

    def _quarantine(
        self, reason: str, *, payload: bytes | None = None,
        data: dict | None = None,
    ) -> None:
        self.malformed += 1
        self.quarantined += 1
        get_registry().inc("ingest_quarantined_total", reason=reason)
        self.quarantine.append({
            "reason": reason, "payload": payload, "data": data,
        })
        # Bounded retention keeps the *newest* payloads: fresh
        # corruption is what an operator inspects first, and every
        # eviction is counted rather than silently discarded.
        while len(self.quarantine) > QUARANTINE_CAPACITY:
            self.quarantine.pop(0)
            self.quarantine_evicted += 1
            get_registry().inc("ingest_quarantine_evicted_total")

    @staticmethod
    def _identity(data: dict) -> str:
        """Content hash for retry deduplication."""
        return record_identity(data)
