"""Backend ingestion of device uploads.

Devices ship zlib-compressed JSON records through
:class:`repro.monitoring.uploader.UploadBatcher`; this server is the
receiving end: decompress, parse, validate, deduplicate (uploads may be
retried after connectivity loss), and keep streaming aggregates per
failure type — the "compressed and uploaded to our backend server for
centralized analysis" sentence of Sec. 2.3, made concrete.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass, field

from repro.backend.streaming import P2Quantile, StreamingStats
from repro.dataset.records import FailureRecord

#: Fields a record must carry to be accepted.
_REQUIRED_FIELDS = frozenset({
    "device_id", "failure_type", "start_time", "duration_s",
})


@dataclass
class IngestionServer:
    """Receives, validates, and aggregates device uploads."""

    records: list[FailureRecord] = field(default_factory=list)
    accepted: int = 0
    duplicates: int = 0
    malformed: int = 0
    bytes_received: int = 0
    #: Per-failure-type duration statistics, streaming.
    duration_stats: dict[str, StreamingStats] = field(
        default_factory=dict
    )
    #: Streaming median of all failure durations.
    duration_median: P2Quantile = field(
        default_factory=lambda: P2Quantile(0.5)
    )
    _seen: set[str] = field(default_factory=set, repr=False)

    # -- the transport callable given to UploadBatcher -----------------------

    def receive(self, payload: bytes) -> None:
        """Accept one compressed upload (the UploadBatcher transport)."""
        self.bytes_received += len(payload)
        try:
            data = json.loads(zlib.decompress(payload))
        except (zlib.error, json.JSONDecodeError, UnicodeDecodeError):
            self.malformed += 1
            return
        self.ingest_record(data)

    def ingest_record(self, data: dict) -> None:
        """Validate and store one decoded record."""
        if not isinstance(data, dict) or not (
            _REQUIRED_FIELDS <= set(data)
        ):
            self.malformed += 1
            return
        key = self._identity(data)
        if key in self._seen:
            self.duplicates += 1
            return
        self._seen.add(key)
        try:
            record = FailureRecord.from_dict(data)
        except TypeError:
            self.malformed += 1
            return
        self.records.append(record)
        self.accepted += 1
        stats = self.duration_stats.setdefault(
            record.failure_type, StreamingStats()
        )
        stats.add(record.duration_s)
        self.duration_median.add(record.duration_s)

    # -- queries -----------------------------------------------------------

    def duration_share(self) -> dict[str, float]:
        """Per-type share of total failure duration (streaming)."""
        total = sum(s.total for s in self.duration_stats.values())
        if total == 0:
            return {}
        return {
            failure_type: stats.total / total
            for failure_type, stats in self.duration_stats.items()
        }

    def summary(self) -> dict[str, float]:
        return {
            "accepted": float(self.accepted),
            "duplicates": float(self.duplicates),
            "malformed": float(self.malformed),
            "bytes_received": float(self.bytes_received),
        }

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _identity(data: dict) -> str:
        """Content hash for retry deduplication."""
        blob = json.dumps(
            {key: data[key] for key in sorted(data)},
            sort_keys=True, default=str,
        )
        return hashlib.sha256(blob.encode()).hexdigest()
