"""Streaming aggregation primitives.

The study's backend receives billions of records; headline statistics
(means, duration quantiles) must be computed in one pass and O(1)
memory.  Two classic estimators cover what the analysis needs:

* :class:`StreamingStats` — Welford's online algorithm for count /
  mean / variance / extremes;
* :class:`P2Quantile` — the P-squared algorithm (Jain & Chlamtac,
  1985): a five-marker parabolic estimator of an arbitrary quantile
  without storing observations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class StreamingStats:
    """One-pass count / mean / variance / min / max."""

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values) -> None:
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        return self.mean * self.count

    def to_dict(self) -> dict:
        """JSON-able snapshot (see :meth:`IngestionServer.checkpoint`)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self._m2,
            "minimum": self.minimum,
            "maximum": self.maximum,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StreamingStats":
        stats = cls(
            count=int(data["count"]),
            mean=float(data["mean"]),
            minimum=float(data["minimum"]),
            maximum=float(data["maximum"]),
        )
        stats._m2 = float(data["m2"])
        return stats

    def merge(self, other: "StreamingStats") -> "StreamingStats":
        """Combine two partitions (parallel aggregation)."""
        if other.count == 0:
            return self
        if self.count == 0:
            return other
        count = self.count + other.count
        delta = other.mean - self.mean
        merged = StreamingStats(
            count=count,
            mean=self.mean + delta * other.count / count,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )
        merged._m2 = (
            self._m2 + other._m2
            + delta**2 * self.count * other.count / count
        )
        return merged


class P2Quantile:
    """The P² single-quantile estimator (five markers, O(1) memory).

    Exact for the first five observations; afterwards the middle
    markers track the target quantile by parabolic (or linear)
    adjustment.  Accuracy on smooth distributions is typically within
    a percent or two of the exact order statistic.
    """

    def __init__(self, quantile: float) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be strictly inside (0, 1)")
        self.quantile = quantile
        self._initial: list[float] = []
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []
        self._increments: list[float] = []
        self.count = 0

    def add(self, value: float) -> None:
        self.count += 1
        if len(self._initial) < 5:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._start()
            return
        self._update(value)

    def value(self) -> float:
        """Current estimate of the target quantile."""
        if self.count == 0:
            raise ValueError("no observations")
        if self._heights:
            return self._heights[2]
        ordered = sorted(self._initial)
        index = min(len(ordered) - 1,
                    int(self.quantile * len(ordered)))
        return ordered[index]

    def to_dict(self) -> dict:
        """JSON-able snapshot of the full marker state."""
        return {
            "quantile": self.quantile,
            "count": self.count,
            "initial": list(self._initial),
            "heights": list(self._heights),
            "positions": list(self._positions),
            "desired": list(self._desired),
            "increments": list(self._increments),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "P2Quantile":
        sketch = cls(float(data["quantile"]))
        sketch.count = int(data["count"])
        sketch._initial = [float(v) for v in data["initial"]]
        sketch._heights = [float(v) for v in data["heights"]]
        sketch._positions = [float(v) for v in data["positions"]]
        sketch._desired = [float(v) for v in data["desired"]]
        sketch._increments = [float(v) for v in data["increments"]]
        return sketch

    # -- internals -----------------------------------------------------------

    def _start(self) -> None:
        q = self.quantile
        self._heights = sorted(self._initial)
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q,
                         3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def _update(self, value: float) -> None:
        heights = self._heights
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            self._positions[index] += 1.0
        for index in range(5):
            self._desired[index] += self._increments[index]
        # Adjust the three middle markers.
        for index in (1, 2, 3):
            drift = self._desired[index] - self._positions[index]
            right_gap = self._positions[index + 1] - self._positions[index]
            left_gap = self._positions[index - 1] - self._positions[index]
            if (drift >= 1.0 and right_gap > 1.0) or (
                drift <= -1.0 and left_gap < -1.0
            ):
                step = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if not (heights[index - 1] < candidate
                        < heights[index + 1]):
                    candidate = self._linear(index, step)
                heights[index] = candidate
                self._positions[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        numerator_left = (
            positions[index] - positions[index - 1] + step
        ) * (heights[index + 1] - heights[index]) / (
            positions[index + 1] - positions[index]
        )
        numerator_right = (
            positions[index + 1] - positions[index] - step
        ) * (heights[index] - heights[index - 1]) / (
            positions[index] - positions[index - 1]
        )
        return heights[index] + step * (
            numerator_left + numerator_right
        ) / (positions[index + 1] - positions[index - 1])

    def _linear(self, index: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        neighbour = index + int(step)
        return heights[index] + step * (
            heights[neighbour] - heights[index]
        ) / (positions[neighbour] - positions[index])
