"""Configuration for telemetry-pipeline fault injection.

One frozen block describes both sides of the lossy path: the transport
faults (drop / duplicate / reorder / corrupt / backend outages) and the
device-side spooler policy that must survive them (retry budget,
exponential backoff, spool bound).  A :class:`ChaosConfig` plugs into
:class:`repro.fleet.scenario.ScenarioConfig` so any fleet run can
execute under injected faults, seeded for paired-arm reproducibility
like the simulator's common-random-numbers design.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

_RATE_FIELDS = ("drop_rate", "duplicate_rate", "reorder_rate",
                "corrupt_rate", "wifi_availability")


@dataclass(frozen=True)
class ChaosConfig:
    """Fault-injection and recovery policy for one telemetry run."""

    enabled: bool = True
    #: Seeds every chaos RNG stream (transport faults, per-device WiFi
    #: availability, per-device backoff jitter).
    seed: int = 1337

    # -- transport faults ---------------------------------------------------
    #: Probability a payload is lost in transit (sender sees no ack).
    drop_rate: float = 0.0
    #: Probability a delivered payload arrives twice (dedup fodder).
    duplicate_rate: float = 0.0
    #: Probability a payload is held back and delivered after a later
    #: one (out-of-order arrival; acked immediately).
    reorder_rate: float = 0.0
    #: Probability a payload is delivered with mangled bytes (the
    #: backend quarantines it; the sender still sees an ack).
    corrupt_rate: float = 0.0
    #: ``(start_s, end_s)`` windows of total backend unavailability, in
    #: virtual study seconds.
    outages: tuple[tuple[float, float], ...] = ()

    # -- device spooler policy ----------------------------------------------
    max_attempts: int = 10
    base_backoff_s: float = 2.0
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 120.0
    jitter: float = 0.5
    #: Per-device spool bound (bytes); ``None`` disables shedding.
    max_spool_bytes: int | None = 4 * 1024 * 1024

    # -- pipeline schedule --------------------------------------------------
    #: Probability WiFi is available at any flush opportunity.
    wifi_availability: float = 0.35
    #: Upload cadence during the end-of-run drain phase (virtual s).
    drain_interval_s: float = 30.0
    #: Drain rounds before leftovers are reported as in-flight.
    max_drain_rounds: int = 400

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], "
                                 f"got {value!r}")
        object.__setattr__(
            self, "outages",
            tuple((float(start), float(end))
                  for start, end in self.outages),
        )
        for start, end in self.outages:
            if end <= start:
                raise ValueError(
                    f"outage window ({start}, {end}) is empty"
                )
        if self.max_attempts < 1:
            raise ValueError("need at least one send attempt")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff delays cannot be negative")
        if self.jitter < 0:
            raise ValueError("jitter cannot be negative")
        if self.drain_interval_s <= 0:
            raise ValueError("drain interval must be positive")

    def lossless(self) -> "ChaosConfig":
        """The same policy with every transport fault disabled."""
        return replace(
            self, drop_rate=0.0, duplicate_rate=0.0, reorder_rate=0.0,
            corrupt_rate=0.0, outages=(),
        )
