"""A fault-injecting transport between device spoolers and the backend.

Sits exactly where the network would: the
:class:`repro.monitoring.uploader.UploadBatcher` calls it like any
transport, and it forwards (or mangles, drops, duplicates, reorders,
or refuses) payloads to the real backend callable.

Fault draws come from seeded streams, so a chaos run is
bit-reproducible and two arms of a paired experiment see the same
fault sequence.  There are two stream disciplines:

* **per-sender** (:meth:`ChaosTransport.send` with a ``sender``, or a
  :meth:`ChaosTransport.for_sender` channel): each sender's payloads
  draw from ``(chaos seed, sender)``.  A device's fault fate then
  depends only on its own send sequence — not on how other devices'
  sends interleave — which is what lets sharded runs (one transport
  per shard) injure a given device's uploads identically regardless of
  worker count.  The telemetry pipeline uses this discipline.
* **shared** (calling the transport directly, or ``sender=None``): one
  RNG in arrival order across all senders — the historical behaviour,
  kept for direct users of the transport.  This was the one place a
  shared :class:`random.Random` crossed device boundaries; sharded
  execution is why it is no longer the pipeline default.

Fault semantics match real uplinks:

* **drop** — payload lost in transit; the sender gets no ack
  (:class:`PayloadDropped`) and will retry.
* **outage** — backend down for a configured window of virtual time;
  every send raises :class:`BackendUnavailable`.
* **duplicate** — payload delivered twice under one ack; the backend's
  dedup must absorb it.
* **reorder** — payload acked but held back, delivered only after a
  later payload (or at :meth:`ChaosTransport.flush_held`).
* **corrupt** — payload delivered with a broken header under a normal
  ack; the backend quarantines it and the record is lost unless
  another copy got through.  The pristine bytes are retained so the
  reconciler can classify the loss.
"""

from __future__ import annotations

import random

from repro.chaos.config import ChaosConfig
from repro.obs import get_registry


class ChaosTransportError(RuntimeError):
    """Base class for injected transport failures (the missing ack)."""


class PayloadDropped(ChaosTransportError):
    """The payload vanished in transit; no ack reaches the sender."""


class BackendUnavailable(ChaosTransportError):
    """The backend is inside an injected outage window."""


def mangle(payload: bytes) -> bytes:
    """Corrupt a compressed payload so decompression must fail."""
    if not payload:
        return b"\xff"
    # Flipping the first byte breaks the zlib header, guaranteeing the
    # backend sees ``zlib.error`` rather than a silently-wrong record.
    return bytes([payload[0] ^ 0xFF]) + payload[1:]


class ChaosTransport:
    """Wraps a backend callable with seeded fault injection."""

    def __init__(self, inner, config: ChaosConfig,
                 now: float = 0.0) -> None:
        self.inner = inner
        self.config = config
        #: Current virtual time; outage windows are judged against it.
        self.now = now
        #: The shared (arrival-order) fault stream, used when a send
        #: carries no sender identity.
        self.rng = random.Random(f"chaos-transport:{config.seed}")
        self._sender_rngs: dict[object, random.Random] = {}
        self.sends = 0
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.corrupted = 0
        self.outage_rejections = 0
        #: Pristine bytes of payloads whose delivery was corrupted.
        self.corrupted_payloads: list[bytes] = []
        self._held: list[bytes] = []

    # -- time ----------------------------------------------------------------

    def advance(self, now: float) -> None:
        """Move virtual time forward (never backward)."""
        if now > self.now:
            self.now = now

    def in_outage(self, now: float | None = None) -> bool:
        at = self.now if now is None else now
        return any(start <= at < end
                   for start, end in self.config.outages)

    # -- the transport protocol ----------------------------------------------

    def __call__(self, payload: bytes) -> None:
        """Send one payload; raising means the sender saw no ack."""
        self.send(payload)

    def send(self, payload: bytes, sender: object | None = None) -> None:
        """Send one payload, drawing faults from ``sender``'s stream.

        With ``sender=None`` the draws come from the shared
        arrival-order stream (legacy behaviour).
        """
        self.sends += 1
        registry = get_registry()
        if registry.enabled:
            registry.inc("chaos_transport_sends_total")
        if self.in_outage():
            self.outage_rejections += 1
            registry.inc("chaos_transport_faults_total", fault="outage")
            raise BackendUnavailable(
                f"backend outage at t={self.now:.0f}s"
            )
        rng = self._rng_for(sender)
        if rng.random() < self.config.drop_rate:
            self.dropped += 1
            registry.inc("chaos_transport_faults_total", fault="drop")
            raise PayloadDropped("payload lost in transit")
        if rng.random() < self.config.reorder_rate:
            self.reordered += 1
            registry.inc("chaos_transport_faults_total", fault="reorder")
            self._held.append(payload)
            return  # acked now, delivered after a later payload
        self._deliver(payload, rng)
        self._release_held()

    def for_sender(self, sender: object):
        """A transport callable bound to ``sender``'s fault stream.

        Hand this to an :class:`~repro.monitoring.uploader.UploadBatcher`
        so every flush of that device draws from its own stream.
        """
        def channel(payload: bytes) -> None:
            self.send(payload, sender=sender)

        return channel

    def flush_held(self) -> int:
        """Deliver any reorder-held payloads (end-of-run drain)."""
        return self._release_held()

    # -- queries -------------------------------------------------------------

    @property
    def held_payloads(self) -> tuple[bytes, ...]:
        """Acked payloads still in the reorder buffer (in flight)."""
        return tuple(self._held)

    def summary(self) -> dict[str, float]:
        return {
            "sends": float(self.sends),
            "delivered": float(self.delivered),
            "dropped": float(self.dropped),
            "duplicated": float(self.duplicated),
            "reordered": float(self.reordered),
            "corrupted": float(self.corrupted),
            "outage_rejections": float(self.outage_rejections),
        }

    # -- internals -----------------------------------------------------------

    def _rng_for(self, sender: object | None) -> random.Random:
        if sender is None:
            return self.rng
        rng = self._sender_rngs.get(sender)
        if rng is None:
            rng = random.Random(
                f"chaos-transport:{self.config.seed}:sender:{sender}"
            )
            self._sender_rngs[sender] = rng
        return rng

    def _release_held(self) -> int:
        """Deliver held payloads; re-hold the rest if the backend dies
        mid-way (they stay accounted as in flight, never lost)."""
        held, self._held = self._held, []
        registry = get_registry()
        for index, late in enumerate(held):
            try:
                self.inner(late)
            except Exception:
                self._held = held[index:] + self._held
                raise
            self.delivered += 1
            registry.inc("chaos_transport_delivered_total")
        return len(held)

    def _deliver(self, payload: bytes,
                 rng: random.Random | None = None) -> None:
        rng = rng or self.rng
        registry = get_registry()
        if rng.random() < self.config.corrupt_rate:
            self.corrupted += 1
            registry.inc("chaos_transport_faults_total", fault="corrupt")
            self.corrupted_payloads.append(payload)
            self.inner(mangle(payload))
            return
        self.inner(payload)
        self.delivered += 1
        registry.inc("chaos_transport_delivered_total")
        if rng.random() < self.config.duplicate_rate:
            self.duplicated += 1
            registry.inc("chaos_transport_faults_total",
                         fault="duplicate")
            self.inner(payload)
