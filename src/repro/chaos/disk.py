"""Disk I/O abstraction and seeded disk-fault injection.

The segment store (:mod:`repro.store`) routes every filesystem
mutation through a :class:`DiskIO` object: atomic whole-file writes
(temp + fsync + rename, the ``parallel/checkpoint.py`` discipline) and
fsynced journal appends.  :class:`DiskChaos` is the drop-in chaotic
implementation: a seeded fault stream that models the classic storage
failure modes —

* **torn write** — only a prefix of the data reaches the file that
  gets renamed into place (an fsync that lied, or power loss between
  page flushes);
* **bit flip** — one bit of the payload is silently inverted on its
  way to disk (media corruption, bad RAM on the write path);
* **ENOSPC** — the filesystem is full; the write raises before any
  byte lands;
* **crash in the rename window** — the temp file is fully written and
  fsynced but the process "dies" (:class:`SimulatedCrash`) before
  ``os.replace``, leaving an orphan temp file;
* **journal torn append / journal bit flip** — the same stories for
  the append-only journal: a partial line without its newline (crash
  mid-append), or a flipped bit inside an otherwise complete line.

Every injected fault is recorded in :attr:`DiskChaos.injected` with
its kind and target path, so :func:`repro.chaos.reconcile.reconcile_disk`
can demand afterwards that ``repro scrub`` explained all of them.
"""

from __future__ import annotations

import errno
import json
import os
import random
import tempfile
from collections import deque
from dataclasses import dataclass
from pathlib import Path

#: Fault kinds injected on whole-file (segment) writes.
SEGMENT_FAULTS = ("torn-write", "bit-flip", "enospc", "crash-rename")
#: Fault kinds injected on journal appends.
JOURNAL_FAULTS = ("journal-torn", "journal-flip")


class SimulatedCrash(RuntimeError):
    """The process "died" mid-operation (fault injection only).

    Raised *after* the injected partial state is on disk, so the
    caller observes exactly what a real crash at that instant would
    leave behind.  The store treats it like any I/O fault: state rolls
    back to the unsealed tail and the operation can be retried.
    """


class DiskIO:
    """Real filesystem operations, durability-first."""

    def write_atomic(self, path: str | Path, data: bytes) -> None:
        """Write ``data`` so readers see the old file or the new one."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=path.name + ".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def append_line(self, path: str | Path, line: bytes) -> None:
        """Append one journal line (newline added) and fsync.

        If the file ends in a torn line (a crash mid-append left no
        trailing newline), a newline is written first so the torn
        fragment terminates as its own — detectably corrupt — line
        instead of silently swallowing this append.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        torn = False
        try:
            if os.path.getsize(path) > 0:
                with open(path, "rb") as probe:
                    probe.seek(-1, os.SEEK_END)
                    torn = probe.read(1) != b"\n"
        except OSError:
            pass
        with open(path, "ab") as handle:
            if torn:
                handle.write(b"\n")
            handle.write(line + b"\n")
            handle.flush()
            os.fsync(handle.fileno())

    def read_bytes(self, path: str | Path) -> bytes:
        return Path(path).read_bytes()


@dataclass(frozen=True)
class DiskChaosConfig:
    """Per-operation fault probabilities (independent draws)."""

    seed: int = 0
    torn_write_rate: float = 0.0
    bit_flip_rate: float = 0.0
    enospc_rate: float = 0.0
    crash_rename_rate: float = 0.0
    journal_torn_rate: float = 0.0
    journal_flip_rate: float = 0.0

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "DiskChaosConfig":
        """Every fault kind at the same ``rate`` (the smoke's config)."""
        return cls(
            seed=seed,
            torn_write_rate=rate,
            bit_flip_rate=rate,
            enospc_rate=rate,
            crash_rename_rate=rate,
            journal_torn_rate=rate,
            journal_flip_rate=rate,
        )

    @property
    def enabled(self) -> bool:
        return any((
            self.torn_write_rate, self.bit_flip_rate, self.enospc_rate,
            self.crash_rename_rate, self.journal_torn_rate,
            self.journal_flip_rate,
        ))


class DiskChaos(DiskIO):
    """A :class:`DiskIO` that injects seeded storage faults.

    At most one fault fires per operation; which one is drawn from the
    per-kind rates in the config (or forced via :meth:`force_next` for
    deterministic tests).  Injected faults accumulate in
    :attr:`injected` as ``{"fault": kind, "path": str, ...}`` dicts —
    the ledger :func:`repro.chaos.reconcile.reconcile_disk` audits.
    """

    def __init__(self, config: DiskChaosConfig,
                 ledger: str | Path | None = None) -> None:
        self.config = config
        self.rng = random.Random(f"disk-chaos:{config.seed}")
        self.injected: list[dict] = []
        #: Optional on-disk fault ledger: every injected fault is
        #: appended (fsynced) the moment it fires, so the ledger
        #: survives even a SIGKILL and a later process can still
        #: reconcile scrub findings against it.
        self.ledger = Path(ledger) if ledger is not None else None
        self._forced: deque[str] = deque()

    @staticmethod
    def read_ledger(path: str | Path) -> list[dict]:
        """Load a fault ledger written by a (possibly dead) injector."""
        injected = []
        try:
            blob = Path(path).read_bytes()
        except FileNotFoundError:
            return injected
        for line in blob.splitlines():
            try:
                injected.append(json.loads(line.decode("utf-8")))
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue  # torn final line: the crash hit mid-append
        return injected

    def force_next(self, *kinds: str) -> None:
        """Queue fault kinds to fire on the next operations, in order.

        A queued kind only fires on an operation that supports it
        (segment kinds on :meth:`write_atomic`, journal kinds on
        :meth:`append_line`); it stays queued until one comes along.
        """
        for kind in kinds:
            if kind not in SEGMENT_FAULTS + JOURNAL_FAULTS:
                raise ValueError(f"unknown fault kind {kind!r}")
            self._forced.append(kind)

    # -- fault selection -----------------------------------------------------

    def _pick(self, candidates: tuple[str, ...],
              rates: dict[str, float]) -> str | None:
        if self._forced and self._forced[0] in candidates:
            return self._forced.popleft()
        for kind in candidates:
            if rates[kind] and self.rng.random() < rates[kind]:
                return kind
        return None

    def _record(self, fault: str, path: Path, **detail) -> dict:
        entry = {"fault": fault, "path": str(path), **detail}
        self.injected.append(entry)
        if self.ledger is not None:
            self.ledger.parent.mkdir(parents=True, exist_ok=True)
            with open(self.ledger, "ab") as handle:
                handle.write(json.dumps(entry, sort_keys=True)
                             .encode("utf-8") + b"\n")
                handle.flush()
                os.fsync(handle.fileno())
        return entry

    @staticmethod
    def _flip_bit(data: bytes, rng: random.Random) -> tuple[bytes, int]:
        position = rng.randrange(len(data) * 8)
        mutated = bytearray(data)
        mutated[position // 8] ^= 1 << (position % 8)
        return bytes(mutated), position

    # -- chaotic operations --------------------------------------------------

    def write_atomic(self, path: str | Path, data: bytes) -> None:
        path = Path(path)
        fault = self._pick(SEGMENT_FAULTS, {
            "torn-write": self.config.torn_write_rate,
            "bit-flip": self.config.bit_flip_rate,
            "enospc": self.config.enospc_rate,
            "crash-rename": self.config.crash_rename_rate,
        })
        if fault == "enospc":
            self._record("enospc", path)
            raise OSError(errno.ENOSPC, "no space left on device "
                                        "(injected)", str(path))
        if fault == "crash-rename":
            # Fully write and fsync the temp file, then "die" before
            # the rename: the orphan temp is what a real crash leaves.
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                            prefix=path.name + ".tmp")
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            self._record("crash-rename", path, temp=str(tmp_name))
            raise SimulatedCrash(f"crashed before renaming {tmp_name} "
                                 f"to {path}")
        if fault == "torn-write" and len(data) > 1:
            cut = self.rng.randrange(1, len(data))
            self._record("torn-write", path, kept_bytes=cut,
                         full_bytes=len(data))
            data = data[:cut]
        elif fault == "bit-flip" and data:
            data, position = self._flip_bit(data, self.rng)
            self._record("bit-flip", path, bit=position)
        super().write_atomic(path, data)

    def append_line(self, path: str | Path, line: bytes) -> None:
        path = Path(path)
        fault = self._pick(JOURNAL_FAULTS, {
            "journal-torn": self.config.journal_torn_rate,
            "journal-flip": self.config.journal_flip_rate,
        })
        if fault == "journal-torn" and len(line) > 1:
            cut = self.rng.randrange(1, len(line))
            self._record("journal-torn", path, kept_bytes=cut,
                         full_bytes=len(line))
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "ab") as handle:
                handle.write(line[:cut])  # no newline: torn mid-append
                handle.flush()
                os.fsync(handle.fileno())
            raise SimulatedCrash(f"crashed mid-append to {path}")
        if fault == "journal-flip" and line:
            line, position = self._flip_bit(line, self.rng)
            self._record("journal-flip", path, bit=position)
        super().append_line(path, line)

    def summary(self) -> dict[str, int]:
        """Injected-fault counts by kind."""
        counts: dict[str, int] = {}
        for entry in self.injected:
            counts[entry["fault"]] = counts.get(entry["fault"], 0) + 1
        return counts
