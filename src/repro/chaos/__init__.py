"""Chaos engineering for the telemetry pipeline (device -> backend).

The paper's backend ingested 2.32B failure events from 70M devices over
flaky cellular/WiFi links; this package makes the reproduction's upload
path earn the same robustness.  :class:`ChaosConfig` describes the
faults, :class:`ChaosTransport` injects them between the device spooler
and :class:`~repro.backend.ingest.IngestionServer`, and
:func:`reconcile` proves afterwards that every missing record is
explained by an explicit loss channel.
"""

from repro.chaos.config import ChaosConfig
from repro.chaos.disk import (
    DiskChaos,
    DiskChaosConfig,
    DiskIO,
    SimulatedCrash,
)
from repro.chaos.pipeline import TelemetryRunResult, run_telemetry_pipeline
from repro.chaos.reconcile import (
    DiskReconciliationReport,
    ReconciliationReport,
    reconcile,
    reconcile_disk,
)
from repro.chaos.transport import (
    BackendUnavailable,
    ChaosTransport,
    ChaosTransportError,
    PayloadDropped,
    mangle,
)

__all__ = [
    "BackendUnavailable",
    "ChaosConfig",
    "ChaosTransport",
    "ChaosTransportError",
    "DiskChaos",
    "DiskChaosConfig",
    "DiskIO",
    "DiskReconciliationReport",
    "PayloadDropped",
    "ReconciliationReport",
    "SimulatedCrash",
    "TelemetryRunResult",
    "mangle",
    "reconcile",
    "reconcile_disk",
    "run_telemetry_pipeline",
]
