"""Drive a dataset's failure records through the chaos telemetry path.

The lossless reproduction hands records straight from batcher to
backend; this module replays the same records the way 70M real devices
would have shipped them — one durable spooler per device, WiFi coming
and going, a fault-injecting transport in the middle, and a shared
ingestion server deduplicating retries — then reconciles both ends.

Every stochastic choice (WiFi availability, backoff jitter, transport
faults) is drawn from streams seeded by ``(chaos seed, device id,
purpose)``, mirroring the fleet simulator's common-random-numbers
pairing: two runs of the same scenario see the same chaos.  Transport
faults use per-sender streams (``ChaosTransport.for_sender``), so a
device's uploads meet the same drops/duplicates/corruption no matter
how its sends interleave with other devices' — the property that keeps
per-shard pipelines consistent under :mod:`repro.parallel` sharding.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.backend.ingest import IngestionServer
from repro.chaos.config import ChaosConfig
from repro.chaos.reconcile import ReconciliationReport, reconcile
from repro.chaos.transport import ChaosTransport
from repro.dataset.records import record_identity
from repro.dataset.store import Dataset
from repro.monitoring.uploader import UploadBatcher
from repro.obs import get_registry, span


@dataclass
class TelemetryRunResult:
    """Everything a chaos telemetry run produced."""

    report: ReconciliationReport
    server: IngestionServer
    transport: ChaosTransport
    n_devices: int
    drain_rounds: int

    def summary(self) -> dict:
        """JSON-able digest (stored in ``Dataset.metadata``)."""
        return {
            "reconciliation": self.report.to_dict(),
            "server": self.server.summary(),
            "n_devices": self.n_devices,
            "drain_rounds": self.drain_rounds,
        }


def _device_batcher(chaos: ChaosConfig, device_id: int,
                    transport: ChaosTransport) -> UploadBatcher:
    return UploadBatcher(
        transport=transport.for_sender(device_id),
        max_attempts=chaos.max_attempts,
        base_backoff_s=chaos.base_backoff_s,
        backoff_multiplier=chaos.backoff_multiplier,
        max_backoff_s=chaos.max_backoff_s,
        jitter=chaos.jitter,
        max_spool_bytes=chaos.max_spool_bytes,
        rng=random.Random(f"{chaos.seed}:{device_id}:backoff"),
    )


def run_telemetry_pipeline(
    dataset: Dataset,
    chaos: ChaosConfig,
    server: IngestionServer | None = None,
) -> TelemetryRunResult:
    """Ship every failure record through the lossy path; reconcile.

    Records are replayed in emission order (start time); each device
    spools its own records and gets a flush opportunity whenever it
    emits, with WiFi availability sampled per device.  After the last
    record a drain phase keeps flushing (WiFi up everywhere) until
    every spool is empty or the round budget runs out — whatever is
    still queued then is reported as in flight.
    """
    if server is None:
        server = IngestionServer()
    with span("chaos.pipeline"):
        return _run_pipeline(dataset, chaos, server)


def _run_pipeline(
    dataset: Dataset,
    chaos: ChaosConfig,
    server: IngestionServer,
) -> TelemetryRunResult:
    transport = ChaosTransport(server.receive, chaos)
    batchers: dict[int, UploadBatcher] = {}
    wifi_rngs: dict[int, random.Random] = {}
    emitted: set[str] = set()
    last_t = 0.0

    for record in sorted(dataset.failures,
                         key=lambda r: (r.start_time, r.device_id)):
        data = record.to_dict()
        emitted.add(record_identity(data))
        device_id = record.device_id
        batcher = batchers.get(device_id)
        if batcher is None:
            batcher = _device_batcher(chaos, device_id, transport)
            batchers[device_id] = batcher
            wifi_rngs[device_id] = random.Random(
                f"{chaos.seed}:{device_id}:wifi"
            )
        when = float(record.start_time)
        last_t = max(last_t, when)
        transport.advance(when)
        batcher.enqueue(data)
        wifi = (wifi_rngs[device_id].random()
                < chaos.wifi_availability)
        batcher.maybe_flush(wifi, now=when)

    # Drain: WiFi up everywhere; keep flushing past outages/backoff.
    when = last_t
    rounds = 0
    while rounds < chaos.max_drain_rounds and any(
        batcher.pending_bytes for batcher in batchers.values()
    ):
        when += chaos.drain_interval_s
        transport.advance(when)
        for batcher in batchers.values():
            if batcher.pending_bytes:
                batcher.maybe_flush(True, now=when)
        rounds += 1
    transport.flush_held()

    registry = get_registry()
    if registry.enabled:
        registry.inc("chaos_pipeline_records_total", len(emitted))
        registry.inc("chaos_pipeline_devices_total", len(batchers))
        # Drain rounds are shard-local under parallel execution (each
        # shard drains its own pipeline), hence a high-watermark gauge
        # rather than a counter.
        registry.gauge_set("chaos_pipeline_drain_rounds", rounds)

    report = reconcile(emitted, server, batchers.values(), transport)
    return TelemetryRunResult(
        report=report,
        server=server,
        transport=transport,
        n_devices=len(batchers),
        drain_rounds=rounds,
    )
