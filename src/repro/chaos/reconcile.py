"""End-to-end reconciliation: emitted records vs accepted records.

The closing argument of a chaos run.  Devices emitted a known set of
record identities; the backend accepted some subset; every missing
identity must be *explained* by an explicit loss channel — shed from a
bounded spool, dropped after the retry budget, quarantined after
corruption, or still in flight.  Anything else is an unexplained
discrepancy, i.e. a pipeline bug.
"""

from __future__ import annotations

import base64
import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.dataset.records import record_identity

if TYPE_CHECKING:  # pragma: no cover
    from repro.store import ScrubReport


@dataclass(frozen=True)
class ReconciliationReport:
    """Classified diff between emitted and accepted record sets."""

    #: Distinct record identities devices emitted.
    emitted: int
    #: Distinct identities the backend accepted.
    accepted: int
    #: Duplicate deliveries the backend absorbed (dedup hits).
    duplicates: int
    #: Losses by channel (distinct identities).
    shed: int
    budget_exhausted: int
    quarantined: int
    in_flight: int
    #: Missing identities no loss channel accounts for.
    unexplained: tuple[str, ...]
    #: attempts-before-success -> payload count across all devices.
    retry_histogram: dict = field(default_factory=dict)
    #: Transport-side fault counters (see ChaosTransport.summary).
    transport: dict = field(default_factory=dict)
    #: Payloads the server refused permanently (sender dropped them
    #: after an explicit rejection ack, e.g. frame too large).
    rejected: int = 0
    #: Payloads shed *server-side* from the admission queue after the
    #: ack (shed-oldest / fair-share overload policies).
    server_shed: int = 0
    #: Backpressure retry-after signals devices honoured (not a loss
    #: channel — the payloads stayed spooled — but overload forensics).
    retry_signals: int = 0

    @property
    def ok(self) -> bool:
        return not self.unexplained

    @property
    def explained_losses(self) -> int:
        return (self.shed + self.budget_exhausted + self.quarantined
                + self.in_flight + self.rejected + self.server_shed)

    def to_dict(self) -> dict:
        return {
            "emitted": self.emitted,
            "accepted": self.accepted,
            "duplicates": self.duplicates,
            "shed": self.shed,
            "budget_exhausted": self.budget_exhausted,
            "quarantined": self.quarantined,
            "in_flight": self.in_flight,
            "rejected": self.rejected,
            "server_shed": self.server_shed,
            "retry_signals": self.retry_signals,
            "unexplained": list(self.unexplained),
            "retry_histogram": {
                str(attempts): count
                for attempts, count in sorted(
                    self.retry_histogram.items()
                )
            },
            "transport": dict(self.transport),
        }

    def render(self) -> str:
        lines = [
            f"{'emitted':<22} {self.emitted:>10}",
            f"{'accepted':<22} {self.accepted:>10}",
            f"{'duplicates absorbed':<22} {self.duplicates:>10}",
            f"{'shed (spool bound)':<22} {self.shed:>10}",
            f"{'budget exhausted':<22} {self.budget_exhausted:>10}",
            f"{'quarantined':<22} {self.quarantined:>10}",
            f"{'in flight':<22} {self.in_flight:>10}",
            f"{'rejected (permanent)':<22} {self.rejected:>10}",
            f"{'shed (server queue)':<22} {self.server_shed:>10}",
            f"{'retry signals':<22} {self.retry_signals:>10}",
            f"{'UNEXPLAINED':<22} {len(self.unexplained):>10}",
        ]
        if self.retry_histogram:
            lines.append("retry histogram (attempts before ack):")
            for attempts, count in sorted(self.retry_histogram.items()):
                lines.append(f"  {attempts:>3} retries  {count:>8}")
        if self.transport:
            lines.append("transport: " + "  ".join(
                f"{name}={int(value)}"
                for name, value in sorted(self.transport.items())
            ))
        return "\n".join(lines)


@dataclass(frozen=True)
class DiskReconciliationReport:
    """Every injected disk fault matched to what scrub did about it."""

    #: Injected faults with their classification appended:
    #: ``{"fault", "path", ..., "classified_as"}``.
    faults: tuple[dict, ...]
    #: Faults no scrub finding accounts for (an injector/scrub bug).
    unexplained: tuple[dict, ...]
    #: Classification totals, e.g. {"quarantined": 2, "retained": 1}.
    by_class: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.unexplained

    def to_dict(self) -> dict:
        return {
            "faults": [dict(fault) for fault in self.faults],
            "unexplained": [dict(fault) for fault in self.unexplained],
            "by_class": dict(self.by_class),
        }

    def render(self) -> str:
        lines = [f"{len(self.faults)} injected disk faults"]
        for name, count in sorted(self.by_class.items()):
            lines.append(f"  {name:<24} {count:>6}")
        lines.append(f"  {'UNEXPLAINED':<24} {len(self.unexplained):>6}")
        for fault in self.unexplained:
            lines.append(f"    {fault['fault']} on {fault['path']}")
        return "\n".join(lines)


def reconcile_disk(injected: list[dict],
                   scrub: "ScrubReport") -> DiskReconciliationReport:
    """Classify every injected disk fault against a scrub report.

    ``injected`` is :attr:`repro.chaos.disk.DiskChaos.injected`;
    ``scrub`` is a :class:`repro.store.ScrubReport`.  Each fault must
    map to an explicit scrub outcome:

    * ``enospc`` → *retained*: the write never happened, the store
      kept the records in its tail (no scrub finding expected);
    * ``crash-rename`` → *temp-removed*: scrub deleted the orphan
      temp file (or it was already gone);
    * ``torn-write`` / ``bit-flip`` → *quarantined* (the damaged
      segment was caught by its digest) or *superseded* (the file was
      never committed, so its rows stayed tail/WAL-owned);
    * ``journal-torn`` → *journal-truncated*;
    * ``journal-flip`` → *journal-damage-detected* (damaged lines are
      CRC-skipped; a flipped commit line surfaces as an adopted or
      superseded orphan, a flipped WAL line only narrows recovery).

    Journal faults can merge (a torn line swallows the next append),
    so they are matched against the *aggregate* journal damage scrub
    found, not line-by-line.
    """
    temp_removed = {Path(p).name for p in scrub.temp_files_removed}
    quarantined = {f["segment"] for f in scrub.quarantined}
    adopted = {f["segment"] for f in scrub.adopted}
    superseded = set(scrub.superseded)
    journal_damage_seen = bool(
        scrub.journal_damaged_lines or scrub.journal_truncated_bytes
    )

    classified: list[dict] = []
    unexplained: list[dict] = []
    by_class: dict[str, int] = {}

    def settle(fault: dict, classification: str | None) -> None:
        entry = dict(fault)
        entry["classified_as"] = classification or "unexplained"
        classified.append(entry)
        if classification is None:
            unexplained.append(entry)
        else:
            by_class[classification] = by_class.get(classification, 0) + 1

    for fault in injected:
        kind = fault["fault"]
        name = Path(fault["path"]).name
        if kind == "enospc":
            settle(fault, "retained")
        elif kind == "crash-rename":
            temp_name = Path(fault.get("temp", "")).name
            if temp_name in temp_removed or not Path(
                fault.get("temp", "")
            ).exists():
                settle(fault, "temp-removed")
            else:
                settle(fault, None)
        elif kind in ("torn-write", "bit-flip"):
            if name in quarantined:
                settle(fault, "quarantined")
            elif name in superseded or name in adopted:
                # The damaged write was never committed (a later fault
                # killed the commit), so its rows stayed WAL-owned.
                settle(fault, "superseded")
            elif not Path(fault["path"]).exists():
                settle(fault, "overwritten")
            else:
                settle(fault, None)
        elif kind in ("journal-torn", "journal-flip"):
            if kind == "journal-torn" and scrub.journal_truncated_bytes:
                settle(fault, "journal-truncated")
            elif journal_damage_seen or adopted or superseded:
                settle(fault, "journal-damage-detected")
            else:
                settle(fault, None)
        else:
            settle(fault, None)

    return DiskReconciliationReport(
        faults=tuple(classified),
        unexplained=tuple(unexplained),
        by_class=by_class,
    )


def payload_key(payload: bytes) -> str | None:
    """Recover a record identity from pristine payload bytes."""
    try:
        data = json.loads(zlib.decompress(payload))
    except (zlib.error, json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(data, dict):
        return None
    return record_identity(data)


def service_shed_keys(service) -> set[str]:
    """Server-side admission-shed identities from ``service``.

    Accepts either a live object exposing ``shed_keys`` (an
    :class:`~repro.serve.admission.AdmissionQueue` or the
    :class:`~repro.serve.service.IngestService` wrapping one) or a
    drain-checkpoint ``dict`` — so reconciliation works identically
    against an in-process service and a resumed checkpoint.
    """
    if service is None:
        return set()
    if isinstance(service, dict):
        admission = service.get("admission", {})
        return set(admission.get("shed_keys",
                                 service.get("shed_keys", ())))
    return set(getattr(service, "shed_keys", ()))


def service_queued_keys(service) -> set[str]:
    """Identities acked but still inside the service's admission queue.

    These payloads are owned by the server and will be ingested (or
    carried across a drain checkpoint), so the reconciler classifies
    them as in flight, exactly like a client-side spool.
    """
    if service is None:
        return set()
    if isinstance(service, dict):
        keys = set()
        for entry in service.get("queue", ()):
            key = payload_key(base64.b64decode(entry["payload"]))
            if key is not None:
                keys.add(key)
        return keys
    return set(getattr(service, "queued_keys", ()))


def reconcile(emitted_keys, server, batchers,
              transport=None, service=None) -> ReconciliationReport:
    """Diff emitted identities against the backend's accepted set.

    ``batchers`` are the device-side spoolers (their shed / budget /
    rejected / pending accounting explains sender-side losses);
    ``transport`` is the optional
    :class:`~repro.chaos.transport.ChaosTransport` (corruption and
    reorder-hold explain path-side losses); ``service`` is the
    optional live ingest service (or its drain checkpoint), whose
    admission queue explains server-side shedding of already-acked
    payloads.
    """
    emitted = set(emitted_keys)
    accepted = set(server.accepted_keys)

    shed_keys: set[str] = set()
    budget_keys: set[str] = set()
    rejected_keys: set[str] = set()
    pending_keys: set[str] = set()
    retry_histogram: dict[int, int] = {}
    retry_signals = 0
    for batcher in batchers:
        shed_keys.update(batcher.shed_keys)
        budget_keys.update(batcher.budget_exhausted_keys)
        rejected_keys.update(getattr(batcher, "rejected_keys", ()))
        pending_keys.update(batcher.pending_keys)
        retry_signals += getattr(batcher, "retry_signals", 0)
        for attempts, count in batcher.retry_histogram.items():
            retry_histogram[attempts] = (
                retry_histogram.get(attempts, 0) + count
            )
    server_shed = service_shed_keys(service)
    pending_keys |= service_queued_keys(service)

    corrupted_keys: set[str] = set()
    held_keys: set[str] = set()
    transport_summary: dict = {}
    if transport is not None:
        for payload in transport.corrupted_payloads:
            key = payload_key(payload)
            if key is not None:
                corrupted_keys.add(key)
        for payload in transport.held_payloads:
            key = payload_key(payload)
            if key is not None:
                held_keys.add(key)
        transport_summary = transport.summary()

    missing = emitted - accepted
    shed = missing & shed_keys
    budget = (missing - shed) & budget_keys
    rejected = (missing - shed - budget) & rejected_keys
    explained = shed | budget | rejected
    queue_shed = (missing - explained) & server_shed
    explained |= queue_shed
    quarantined = (missing - explained) & corrupted_keys
    explained |= quarantined
    in_flight = (missing - explained) & (pending_keys | held_keys)
    unexplained = missing - explained - in_flight

    return ReconciliationReport(
        emitted=len(emitted),
        accepted=len(accepted & emitted),
        duplicates=server.duplicates,
        shed=len(shed),
        budget_exhausted=len(budget),
        quarantined=len(quarantined),
        in_flight=len(in_flight),
        rejected=len(rejected),
        server_shed=len(queue_shed),
        retry_signals=retry_signals,
        unexplained=tuple(sorted(unexplained)),
        retry_histogram=retry_histogram,
        transport=transport_summary,
    )
