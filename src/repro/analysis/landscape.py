"""Landscape analyses: per-model groups and cross-scenario sweeps.

Two landscapes live here:

* the Android-phone landscape of the paper (Sec. 3.2, Table 1,
  Figs. 2, 5-9): per-model prevalence/frequency and the 5G /
  Android-version group comparisons, including the footnote-4 *fair
  comparisons*;
* the **scenario landscape**: the cross-scenario comparison built by
  :func:`repro.scenarios.sweep.run_sweep` from each pack's exact
  ``metadata["analysis"]`` block — a markdown comparison table plus a
  per-scenario detail report (:func:`render_scenario_landscape`) and
  its JSON twin (:func:`scenario_landscape_dict`).

The scenario-landscape functions are pure folds over analysis blocks:
they never need the record lists, render deterministically (no
timestamps, sorted keys), and stay NaN-free for degenerate packs
(zero failures, zero transitions, missing metrics).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.columnar import analysis_summary
from repro.dataset.store import Dataset


@dataclass(frozen=True)
class ModelStats:
    """One model's row of the measured Table 1."""

    model: int
    n_devices: int
    prevalence: float
    frequency: float
    has_5g: bool
    android_version: str


@dataclass(frozen=True)
class GroupComparison:
    """Prevalence/frequency of two device groups (e.g. 5G vs non-5G)."""

    group_a: str
    group_b: str
    prevalence_a: float
    prevalence_b: float
    frequency_a: float
    frequency_b: float


def per_model_stats(dataset: Dataset) -> list[ModelStats]:
    """Recompute Table 1's measured columns per model."""
    devices_by_model = dataset.devices_by_model()
    failures_by_model: dict[int, int] = {}
    failing_devices_by_model: dict[int, set[int]] = {}
    for failure in dataset.failures:
        failures_by_model[failure.model] = (
            failures_by_model.get(failure.model, 0) + 1
        )
        failing_devices_by_model.setdefault(
            failure.model, set()
        ).add(failure.device_id)
    stats = []
    for model in sorted(devices_by_model):
        devices = devices_by_model[model]
        n = len(devices)
        failing = len(failing_devices_by_model.get(model, ()))
        stats.append(ModelStats(
            model=model,
            n_devices=n,
            prevalence=failing / n,
            frequency=failures_by_model.get(model, 0) / n,
            has_5g=devices[0].has_5g,
            android_version=devices[0].android_version,
        ))
    return stats


def _group_stats(dataset: Dataset, member) -> tuple[float, float]:
    """(prevalence, frequency) over devices where ``member(d)`` holds."""
    ids = {d.device_id for d in dataset.devices if member(d)}
    if not ids:
        raise ValueError("empty device group")
    failing: set[int] = set()
    count = 0
    for failure in dataset.failures:
        if failure.device_id in ids:
            count += 1
            failing.add(failure.device_id)
    return len(failing) / len(ids), count / len(ids)


def compare_5g(dataset: Dataset, fair: bool = False) -> GroupComparison:
    """5G vs non-5G models (Figs. 6-7).

    With ``fair=True``, the non-5G group is restricted to Android 10
    models, per the paper's footnote 4 (5G phones can only run 10).
    """
    prevalence_5g, frequency_5g = _group_stats(
        dataset, lambda d: d.has_5g
    )
    if fair:
        member = lambda d: not d.has_5g and d.android_version == "10.0"  # noqa: E731
    else:
        member = lambda d: not d.has_5g  # noqa: E731
    prevalence_non, frequency_non = _group_stats(dataset, member)
    return GroupComparison(
        group_a="5G",
        group_b="non-5G (Android 10)" if fair else "non-5G",
        prevalence_a=prevalence_5g,
        prevalence_b=prevalence_non,
        frequency_a=frequency_5g,
        frequency_b=frequency_non,
    )


def compare_android_versions(
    dataset: Dataset, fair: bool = False
) -> GroupComparison:
    """Android 10 vs Android 9 (Figs. 8-9).

    With ``fair=True``, the Android 10 group excludes 5G models, per
    the paper's footnote 4.
    """
    if fair:
        member10 = lambda d: d.android_version == "10.0" and not d.has_5g  # noqa: E731
    else:
        member10 = lambda d: d.android_version == "10.0"  # noqa: E731
    prevalence_10, frequency_10 = _group_stats(dataset, member10)
    prevalence_9, frequency_9 = _group_stats(
        dataset, lambda d: d.android_version == "9.0"
    )
    return GroupComparison(
        group_a="Android 10 (non-5G)" if fair else "Android 10",
        group_b="Android 9",
        prevalence_a=prevalence_10,
        prevalence_b=prevalence_9,
        frequency_a=frequency_10,
        frequency_b=frequency_9,
    )


# ---------------------------------------------------------------------------
# The scenario landscape (cross-scenario sweeps)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioRow:
    """One scenario's slice of the landscape report."""

    name: str
    block: dict
    summary: dict
    description: str = ""
    arm: str = "vanilla"
    engine: str = "serial"
    tags: tuple[str, ...] = ()
    #: Deterministic obs counters of the run ({} when metrics were
    #: off); only counters appear in the report — spans are wall-clock
    #: and excluded by design.
    counters: dict = field(default_factory=dict)
    #: Merged telemetry summary (None without a chaos block).
    telemetry: dict | None = None


def scenario_row(
    name: str,
    block: dict,
    *,
    description: str = "",
    arm: str = "vanilla",
    engine: str = "serial",
    tags: tuple[str, ...] = (),
    counters: dict | None = None,
    telemetry: dict | None = None,
) -> ScenarioRow:
    """Fold one pack's analysis block into a landscape row.

    The summary is derived here (pure integer arithmetic, division
    guarded inside :func:`~repro.analysis.columnar.analysis_summary`),
    so a pack with zero failures or zero transitions yields zeros —
    never NaN — and cannot poison the table.
    """
    return ScenarioRow(
        name=name,
        block=block,
        summary=analysis_summary(block),
        description=description,
        arm=arm,
        engine=engine,
        tags=tuple(tags),
        counters=dict(counters or {}),
        telemetry=telemetry,
    )


def _top_failure_type(block: dict) -> str:
    by_type = block.get("failures_by_type") or {}
    if not by_type:
        return "-"
    # Highest count wins; ties break alphabetically for determinism.
    return min(by_type, key=lambda k: (-by_type[k], k))


def comparison_table(rows: list[ScenarioRow]) -> str:
    """The cross-scenario comparison, as a markdown table.

    Rows keep their given (pack) order — a sweep is a designed
    sequence, not a ranking.
    """
    header = (
        "| scenario | arm | engine | devices | failures | prevalence "
        "| freq/device | mean dur (s) | transition fail | top type |"
    )
    rule = ("|---|---|---|---:|---:|---:|---:|---:|---:|---|")
    lines = [header, rule]
    for row in rows:
        summary = row.summary
        lines.append(
            f"| {row.name} | {row.arm} | {row.engine} "
            f"| {row.block['n_devices']} | {row.block['n_failures']} "
            f"| {summary['prevalence']:.4f} "
            f"| {summary['frequency']:.2f} "
            f"| {summary['mean_duration_s']:.1f} "
            f"| {summary['transition_failure_rate']:.2%} "
            f"| {_top_failure_type(row.block)} |"
        )
    return "\n".join(lines)


def _extremes(rows: list[ScenarioRow]) -> dict:
    """Min/max packs per headline metric (empty dict for no rows)."""
    if not rows:
        return {}
    result = {}
    for metric in ("prevalence", "frequency", "mean_duration_s",
                   "transition_failure_rate"):
        ordered = sorted(rows, key=lambda row: (row.summary[metric],
                                                row.name))
        result[metric] = {
            "min": {"scenario": ordered[0].name,
                    "value": ordered[0].summary[metric]},
            "max": {"scenario": ordered[-1].name,
                    "value": ordered[-1].summary[metric]},
        }
    return result


def render_scenario_landscape(
    rows: list[ScenarioRow],
    *,
    title: str = "Scenario landscape",
) -> str:
    """The full landscape report (markdown, deterministic)."""
    parts = [f"# {title}", "",
             f"{len(rows)} scenario(s) compared on exact streaming "
             "analysis aggregates.", "",
             comparison_table(rows), ""]
    extremes = _extremes(rows)
    if extremes:
        parts.append("## Spread")
        parts.append("")
        for metric, bounds in sorted(extremes.items()):
            parts.append(
                f"- **{metric}**: "
                f"{bounds['min']['value']:.4f} "
                f"({bounds['min']['scenario']}) to "
                f"{bounds['max']['value']:.4f} "
                f"({bounds['max']['scenario']})"
            )
        parts.append("")
    for row in rows:
        parts.append(f"## {row.name}")
        parts.append("")
        if row.description:
            parts.append(row.description)
            parts.append("")
        block = row.block
        parts.append(f"- devices: {block['n_devices']}, failures: "
                     f"{block['n_failures']}, transitions: "
                     f"{block['n_transitions']}")
        parts.append(f"- failing devices: {block['failing_devices']}, "
                     f"OOS devices: {block['oos_devices']}, worst "
                     f"single device: "
                     f"{block['max_failures_single_device']} failures")
        shares = row.summary.get("count_share_by_type") or {}
        if shares:
            mix = ", ".join(f"{ftype} {share:.1%}"
                            for ftype, share in sorted(shares.items()))
            parts.append(f"- failure mix: {mix}")
        else:
            parts.append("- failure mix: no failures recorded")
        by_isp = block.get("failures_by_isp") or {}
        if by_isp:
            isp_mix = ", ".join(f"{isp} {count}"
                                for isp, count in sorted(by_isp.items()))
            parts.append(f"- failures by ISP: {isp_mix}")
        if row.telemetry is not None:
            reconciliation = row.telemetry.get("reconciliation") or {}
            parts.append(
                "- telemetry (chaos): "
                f"devices {row.telemetry.get('n_devices', 0)}, "
                f"unexplained losses "
                f"{reconciliation.get('unexplained', 0)}"
            )
        if row.counters:
            interesting = {
                key: value for key, value in row.counters.items()
                if key.startswith(("fleet_failures_total",
                                   "fleet_episodes_total",
                                   "fleet_transitions_total"))
            }
            for key in sorted(interesting)[:8]:
                parts.append(f"- metric {key}: {interesting[key]}")
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"


def scenario_landscape_dict(rows: list[ScenarioRow]) -> dict:
    """The landscape as a JSON-serializable document."""
    return {
        "landscape": "scenario-sweep",
        "n_scenarios": len(rows),
        "extremes": _extremes(rows),
        "scenarios": [
            {
                "name": row.name,
                "description": row.description,
                "arm": row.arm,
                "engine": row.engine,
                "tags": list(row.tags),
                "analysis": row.block,
                "summary": row.summary,
                "counters": row.counters,
                "telemetry": row.telemetry,
            }
            for row in rows
        ],
    }
