"""The Android-phone landscape (Sec. 3.2, Table 1, Figs. 2, 5-9).

Per-model prevalence/frequency, and the 5G and Android-version group
comparisons — including the paper's footnote-4 *fair comparisons*
(5G vs non-5G restricted to Android 10 models; Android 9 vs 10
restricted to non-5G models).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.store import Dataset


@dataclass(frozen=True)
class ModelStats:
    """One model's row of the measured Table 1."""

    model: int
    n_devices: int
    prevalence: float
    frequency: float
    has_5g: bool
    android_version: str


@dataclass(frozen=True)
class GroupComparison:
    """Prevalence/frequency of two device groups (e.g. 5G vs non-5G)."""

    group_a: str
    group_b: str
    prevalence_a: float
    prevalence_b: float
    frequency_a: float
    frequency_b: float


def per_model_stats(dataset: Dataset) -> list[ModelStats]:
    """Recompute Table 1's measured columns per model."""
    devices_by_model = dataset.devices_by_model()
    failures_by_model: dict[int, int] = {}
    failing_devices_by_model: dict[int, set[int]] = {}
    for failure in dataset.failures:
        failures_by_model[failure.model] = (
            failures_by_model.get(failure.model, 0) + 1
        )
        failing_devices_by_model.setdefault(
            failure.model, set()
        ).add(failure.device_id)
    stats = []
    for model in sorted(devices_by_model):
        devices = devices_by_model[model]
        n = len(devices)
        failing = len(failing_devices_by_model.get(model, ()))
        stats.append(ModelStats(
            model=model,
            n_devices=n,
            prevalence=failing / n,
            frequency=failures_by_model.get(model, 0) / n,
            has_5g=devices[0].has_5g,
            android_version=devices[0].android_version,
        ))
    return stats


def _group_stats(dataset: Dataset, member) -> tuple[float, float]:
    """(prevalence, frequency) over devices where ``member(d)`` holds."""
    ids = {d.device_id for d in dataset.devices if member(d)}
    if not ids:
        raise ValueError("empty device group")
    failing: set[int] = set()
    count = 0
    for failure in dataset.failures:
        if failure.device_id in ids:
            count += 1
            failing.add(failure.device_id)
    return len(failing) / len(ids), count / len(ids)


def compare_5g(dataset: Dataset, fair: bool = False) -> GroupComparison:
    """5G vs non-5G models (Figs. 6-7).

    With ``fair=True``, the non-5G group is restricted to Android 10
    models, per the paper's footnote 4 (5G phones can only run 10).
    """
    prevalence_5g, frequency_5g = _group_stats(
        dataset, lambda d: d.has_5g
    )
    if fair:
        member = lambda d: not d.has_5g and d.android_version == "10.0"  # noqa: E731
    else:
        member = lambda d: not d.has_5g  # noqa: E731
    prevalence_non, frequency_non = _group_stats(dataset, member)
    return GroupComparison(
        group_a="5G",
        group_b="non-5G (Android 10)" if fair else "non-5G",
        prevalence_a=prevalence_5g,
        prevalence_b=prevalence_non,
        frequency_a=frequency_5g,
        frequency_b=frequency_non,
    )


def compare_android_versions(
    dataset: Dataset, fair: bool = False
) -> GroupComparison:
    """Android 10 vs Android 9 (Figs. 8-9).

    With ``fair=True``, the Android 10 group excludes 5G models, per
    the paper's footnote 4.
    """
    if fair:
        member10 = lambda d: d.android_version == "10.0" and not d.has_5g  # noqa: E731
    else:
        member10 = lambda d: d.android_version == "10.0"  # noqa: E731
    prevalence_10, frequency_10 = _group_stats(dataset, member10)
    prevalence_9, frequency_9 = _group_stats(
        dataset, lambda d: d.android_version == "9.0"
    )
    return GroupComparison(
        group_a="Android 10 (non-5G)" if fair else "Android 10",
        group_b="Android 9",
        prevalence_a=prevalence_10,
        prevalence_b=prevalence_9,
        frequency_a=frequency_10,
        frequency_b=frequency_9,
    )
