"""Data_Setup_Error decomposition by error code (Table 2, Sec. 3.2).

Ranks the DataFailCause codes attached to Data_Setup_Error failures
(false positives are already filtered upstream by Android-MOD) and
attributes each to its protocol layer, reproducing both Table 2 and the
prose observation that the causes span the physical, link, and network
layers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errorcodes import ERROR_CODE_REGISTRY, ProtocolLayer
from repro.core.events import FailureType
from repro.dataset.store import Dataset


@dataclass(frozen=True)
class ErrorCodeShare:
    """One row of the measured Table 2."""

    code: str
    description: str
    layer: ProtocolLayer
    count: int
    share: float


def error_code_decomposition(
    dataset: Dataset, top: int = 10
) -> list[ErrorCodeShare]:
    """The ``top`` most common Data_Setup_Error codes with shares."""
    counts: dict[str, int] = {}
    total = 0
    for failure in dataset.failures:
        if failure.failure_type != FailureType.DATA_SETUP_ERROR.value:
            continue
        total += 1
        if failure.error_code:
            counts[failure.error_code] = (
                counts.get(failure.error_code, 0) + 1
            )
    if total == 0:
        raise ValueError("dataset has no Data_Setup_Error failures")
    ranked = sorted(counts.items(), key=lambda kv: kv[1], reverse=True)
    rows = []
    for code, count in ranked[:top]:
        if code in ERROR_CODE_REGISTRY:
            cause = ERROR_CODE_REGISTRY.get(code)
            description = cause.description
            layer = cause.layer
        else:
            description = "(unregistered cause)"
            layer = ProtocolLayer.OTHER
        rows.append(ErrorCodeShare(
            code=code,
            description=description,
            layer=layer,
            count=count,
            share=count / total,
        ))
    return rows


def layer_decomposition(dataset: Dataset) -> dict[ProtocolLayer, float]:
    """Share of Data_Setup_Error failures by protocol layer."""
    counts: dict[ProtocolLayer, int] = {layer: 0 for layer in ProtocolLayer}
    total = 0
    for failure in dataset.failures:
        if failure.failure_type != FailureType.DATA_SETUP_ERROR.value:
            continue
        if not failure.error_code:
            continue
        if failure.error_code not in ERROR_CODE_REGISTRY:
            continue
        total += 1
        counts[ERROR_CODE_REGISTRY.get(failure.error_code).layer] += 1
    if total == 0:
        raise ValueError("dataset has no attributable setup errors")
    return {layer: count / total for layer, count in counts.items()}
