"""Paper-vs-measured scorecard.

Turns the EXPERIMENTS.md comparison into code: every published anchor
the reproduction targets is checked against the corresponding measured
value from a dataset (pair), producing a typed scorecard the benchmarks
render and assert on.

Checks come in two kinds:

* ``value`` checks — a measured number should fall inside a band
  around the paper's number (bands are deliberately generous: the
  reproduction target is shape, not absolute value);
* ``shape`` checks — an ordering or anomaly that must hold exactly
  (e.g. ISP-B worst, level-5 normalized prevalence above levels 1-4).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro import quantities
from repro.analysis import isp_bs, landscape, stats
from repro.analysis.evaluation import evaluate_ab
from repro.dataset.store import Dataset


@dataclass(frozen=True)
class AnchorCheck:
    """One paper anchor versus its measured counterpart."""

    name: str
    paper: str
    measured: str
    ok: bool
    kind: str  # "value" or "shape"


@dataclass(frozen=True)
class Scorecard:
    checks: tuple[AnchorCheck, ...]

    @property
    def passed(self) -> int:
        return sum(check.ok for check in self.checks)

    @property
    def total(self) -> int:
        return len(self.checks)

    @property
    def all_ok(self) -> bool:
        return self.passed == self.total

    def failures(self) -> list[AnchorCheck]:
        return [check for check in self.checks if not check.ok]

    def render(self) -> str:
        lines = [f"{'anchor':<42} {'paper':>14} {'measured':>14}  ok"]
        for check in self.checks:
            mark = "yes" if check.ok else "NO"
            lines.append(
                f"{check.name:<42} {check.paper:>14} "
                f"{check.measured:>14}  {mark}"
            )
        lines.append(f"-- {self.passed}/{self.total} anchors hold")
        return "\n".join(lines) + "\n"


def _value(name: str, paper: float, measured: float,
           rel_band: float, fmt: str = "{:.2f}") -> AnchorCheck:
    lo, hi = paper * (1 - rel_band), paper * (1 + rel_band)
    return AnchorCheck(
        name=name,
        paper=fmt.format(paper),
        measured=fmt.format(measured),
        ok=lo <= measured <= hi,
        kind="value",
    )


def _shape(name: str, description: str,
           condition: Callable[[], bool]) -> AnchorCheck:
    ok = bool(condition())
    return AnchorCheck(
        name=name,
        paper=description,
        measured="holds" if ok else "violated",
        ok=ok,
        kind="shape",
    )


def build_scorecard(
    vanilla: Dataset,
    patched: Dataset | None = None,
) -> Scorecard:
    """Check every targeted anchor against ``vanilla`` (and the A/B
    anchors against the pair when ``patched`` is given)."""
    checks: list[AnchorCheck] = []
    general = stats.compute_general_stats(vanilla)

    checks.append(_value(
        "frequency (failures/device)", quantities.AVG_FAILURES_PER_DEVICE,
        general.frequency, rel_band=0.35, fmt="{:.1f}",
    ))
    checks.append(_value(
        "headline-type share", quantities.HEADLINE_FAILURE_TYPE_SHARE,
        general.headline_type_share, rel_band=0.03, fmt="{:.3f}",
    ))
    checks.append(_value(
        "Data_Stall count share", quantities.DATA_STALL_COUNT_SHARE,
        general.count_share_by_type.get("DATA_STALL", 0.0),
        rel_band=0.25, fmt="{:.2f}",
    ))
    checks.append(_shape(
        "Data_Stall dominates duration",
        "94% of total duration",
        lambda: general.duration_share_by_type.get("DATA_STALL", 0.0)
        > 0.70,
    ))
    checks.append(_shape(
        "most phones report no OoS", ">= 95% without",
        lambda: general.fraction_devices_without_oos > 0.85,
    ))
    checks.append(_shape(
        "duration distribution skew", "mean >> median",
        lambda: general.mean_duration_s > 3 * general.median_duration_s,
    ))

    comparison = landscape.compare_5g(vanilla)
    checks.append(_shape(
        "5G phones fail more (Figs. 6-7)", "prevalence & frequency",
        lambda: comparison.prevalence_a > comparison.prevalence_b
        and comparison.frequency_a > comparison.frequency_b,
    ))
    versions = landscape.compare_android_versions(vanilla)
    checks.append(_shape(
        "Android 10 worse than 9 (Figs. 8-9)", "frequency ordering",
        lambda: versions.frequency_a > versions.frequency_b,
    ))

    isp = {s.isp: s for s in isp_bs.per_isp_stats(vanilla)}
    checks.append(_shape(
        "ISP ordering (Figs. 12-13)", "B > A > C prevalence",
        lambda: isp["ISP-B"].prevalence > isp["ISP-A"].prevalence
        > isp["ISP-C"].prevalence,
    ))

    series = isp_bs.normalized_prevalence_by_level(vanilla)
    checks.append(_shape(
        "RSS monotonicity (Fig. 15)", "levels 0-4 decreasing",
        lambda: series[0] > series[1] > series[2] > series[3]
        > series[4],
    ))
    checks.append(_shape(
        "level-5 anomaly (Fig. 15)", "level 5 above levels 1-4",
        lambda: series[5] > max(series[level] for level in (1, 2, 3, 4)),
    ))

    zipf = isp_bs.fit_zipf(isp_bs.bs_failure_ranking(vanilla))
    checks.append(_shape(
        "BS ranking is Zipf-like (Fig. 11)", "power-law fit, R2 > 0.75",
        lambda: zipf.r_squared > 0.75,
    ))

    if patched is not None:
        evaluation = evaluate_ab(vanilla, patched)
        checks.append(_value(
            "5G frequency reduction (Fig. 20)",
            quantities.EVAL_5G_FREQUENCY_REDUCTION,
            evaluation.frequency_reduction_5g, rel_band=0.35,
            fmt="{:.3f}",
        ))
        checks.append(_value(
            "stall duration reduction (Fig. 21)",
            quantities.EVAL_STALL_DURATION_REDUCTION,
            evaluation.stall_duration_reduction, rel_band=0.55,
            fmt="{:.3f}",
        ))
        checks.append(_value(
            "total duration reduction (Fig. 21)",
            quantities.EVAL_TOTAL_DURATION_REDUCTION,
            evaluation.total_duration_reduction, rel_band=0.55,
            fmt="{:.3f}",
        ))
        checks.append(_shape(
            "per-type frequency reductions (Sec. 4.3)", "all positive",
            lambda: all(delta.frequency_reduction > 0
                        for delta in evaluation.per_type.values()),
        ))
    return Scorecard(checks=tuple(checks))
