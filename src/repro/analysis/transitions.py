"""RAT-transition failure-likelihood analysis (Fig. 17).

For every RAT pair the paper plots a level-i -> level-j matrix of the
*increase* in failure likelihood caused by the transition.  We measure
it as ``P(failure | executed i->j transition) - P(failure | stayed at
the source state)``, with both probabilities estimated from the
transition-decision records the fleet collects.  The measured matrices
are also what the Stability-Compatible policy consumes via
:class:`repro.android.rat_policy.TransitionRiskTable`.

All estimators reduce the transition records through the cached
columnar view (:func:`repro.analysis.columnar.columnar`): group counts
and failure sums are weighted bincounts over packed (RAT, level) keys
instead of per-record Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.columnar import columnar
from repro.dataset.store import Dataset

#: The six panels of Fig. 17, in the paper's order.
FIG17_PANELS: tuple[tuple[str, str], ...] = (
    ("2G", "3G"),
    ("2G", "4G"),
    ("2G", "5G"),
    ("3G", "4G"),
    ("3G", "5G"),
    ("4G", "5G"),
)

_N_LEVELS = 6


@dataclass(frozen=True)
class TransitionMatrix:
    """One Fig. 17 panel: from_rat level-i -> to_rat level-j."""

    from_rat: str
    to_rat: str
    #: increase[i][j]; NaN where no transitions were observed.
    increase: np.ndarray
    #: Number of executed transitions per cell.
    samples: np.ndarray


def _grouped_rates(keys: np.ndarray, failed: np.ndarray,
                   size: int) -> tuple[np.ndarray, np.ndarray]:
    """(counts, mean-failure-rate) per packed key; rate is NaN unseen."""
    counts = np.bincount(keys, minlength=size)
    sums = np.bincount(keys, weights=failed.astype(float),
                       minlength=size)
    with np.errstate(invalid="ignore"):
        rates = np.where(counts > 0, sums / np.maximum(counts, 1),
                         np.nan)
    return counts, rates


def _baseline_rates(dataset: Dataset) -> dict[tuple[str, int], float]:
    """P(failure | stayed) per source (RAT, level)."""
    t = columnar(dataset).transitions
    if len(t) == 0:
        return {}
    stayed = ~t.executed
    keys = t.from_rat_codes[stayed] * _N_LEVELS + t.from_level[stayed]
    size = len(t.from_rats) * _N_LEVELS
    counts, rates = _grouped_rates(keys, t.failed_after[stayed], size)
    return {
        (t.from_rats[key // _N_LEVELS], int(key % _N_LEVELS)):
            float(rates[key])
        for key in np.flatnonzero(counts)
    }


def transition_increase_matrix(
    dataset: Dataset,
    from_rat: str,
    to_rat: str,
    min_samples: int = 5,
    global_baseline: bool = True,
) -> TransitionMatrix:
    """Measure one Fig. 17 panel from transition records.

    With ``global_baseline`` (the default), cells lacking a per-source
    baseline fall back to the average stay-failure rate.
    """
    baselines = _baseline_rates(dataset)
    fallback = (
        float(np.mean(list(baselines.values()))) if baselines else 0.0
    )
    t = columnar(dataset).transitions
    increase = np.full((_N_LEVELS, _N_LEVELS), np.nan)
    samples = np.zeros((_N_LEVELS, _N_LEVELS), dtype=int)
    from_code = (t.from_rats.index(from_rat)
                 if from_rat in t.from_rats else None)
    to_code = t.to_rats.index(to_rat) if to_rat in t.to_rats else None
    if len(t) and from_code is not None and to_code is not None:
        mask = (t.executed
                & (t.from_rat_codes == from_code)
                & (t.to_rat_codes == to_code))
        keys = t.from_level[mask] * _N_LEVELS + t.to_level[mask]
        counts, rates = _grouped_rates(keys, t.failed_after[mask],
                                       _N_LEVELS * _N_LEVELS)
        samples = counts.reshape(_N_LEVELS, _N_LEVELS).astype(int)
        for key in np.flatnonzero(counts >= min_samples):
            i, j = divmod(int(key), _N_LEVELS)
            baseline = baselines.get((from_rat, i))
            if baseline is None and global_baseline:
                baseline = fallback
            if baseline is None:
                continue
            increase[i][j] = float(rates[key]) - baseline
    return TransitionMatrix(
        from_rat=from_rat,
        to_rat=to_rat,
        increase=increase,
        samples=samples,
    )


def all_transition_matrices(
    dataset: Dataset, min_samples: int = 5
) -> dict[tuple[str, str], TransitionMatrix]:
    """All six Fig. 17 panels."""
    return {
        pair: transition_increase_matrix(
            dataset, pair[0], pair[1], min_samples=min_samples
        )
        for pair in FIG17_PANELS
    }


def undesirable_cells(
    matrix: TransitionMatrix, threshold: float = 0.15
) -> list[tuple[int, int, float]]:
    """Cells whose likelihood increase exceeds ``threshold`` — the
    transitions the paper says should be avoided (Sec. 4.2)."""
    cells = []
    for i in range(_N_LEVELS):
        for j in range(_N_LEVELS):
            value = matrix.increase[i][j]
            if not np.isnan(value) and value > threshold:
                cells.append((i, j, float(value)))
    return sorted(cells, key=lambda c: c[2], reverse=True)


def measured_level_risk(
    dataset: Dataset,
) -> dict[str, tuple[float, ...]]:
    """Per-(RAT, destination level) failure likelihood measured from
    executed transitions — the fitted input for a data-driven
    :class:`~repro.android.rat_policy.TransitionRiskTable`."""
    t = columnar(dataset).transitions
    rate_by_key: dict[tuple[str, int], float] = {}
    if len(t):
        keys = (t.to_rat_codes[t.executed] * _N_LEVELS
                + t.to_level[t.executed])
        size = len(t.to_rats) * _N_LEVELS
        counts, rates = _grouped_rates(
            keys, t.failed_after[t.executed], size
        )
        rate_by_key = {
            (t.to_rats[key // _N_LEVELS], int(key % _N_LEVELS)):
                float(rates[key])
            for key in np.flatnonzero(counts)
        }
    return {
        rat: tuple(
            rate_by_key.get((rat, level), float("nan"))
            for level in range(_N_LEVELS)
        )
        for rat in ("2G", "3G", "4G", "5G")
    }
