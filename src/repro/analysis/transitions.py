"""RAT-transition failure-likelihood analysis (Fig. 17).

For every RAT pair the paper plots a level-i -> level-j matrix of the
*increase* in failure likelihood caused by the transition.  We measure
it as ``P(failure | executed i->j transition) - P(failure | stayed at
the source state)``, with both probabilities estimated from the
transition-decision records the fleet collects.  The measured matrices
are also what the Stability-Compatible policy consumes via
:class:`repro.android.rat_policy.TransitionRiskTable`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.store import Dataset

#: The six panels of Fig. 17, in the paper's order.
FIG17_PANELS: tuple[tuple[str, str], ...] = (
    ("2G", "3G"),
    ("2G", "4G"),
    ("2G", "5G"),
    ("3G", "4G"),
    ("3G", "5G"),
    ("4G", "5G"),
)


@dataclass(frozen=True)
class TransitionMatrix:
    """One Fig. 17 panel: from_rat level-i -> to_rat level-j."""

    from_rat: str
    to_rat: str
    #: increase[i][j]; NaN where no transitions were observed.
    increase: np.ndarray
    #: Number of executed transitions per cell.
    samples: np.ndarray


def _baseline_rates(dataset: Dataset) -> dict[tuple[str, int], float]:
    """P(failure | stayed) per source (RAT, level)."""
    stayed: dict[tuple[str, int], list[int]] = {}
    for t in dataset.transitions:
        if not t.executed:
            key = (t.from_rat, t.from_level)
            stayed.setdefault(key, []).append(1 if t.failed_after else 0)
    return {
        key: float(np.mean(outcomes))
        for key, outcomes in stayed.items()
    }


def transition_increase_matrix(
    dataset: Dataset,
    from_rat: str,
    to_rat: str,
    min_samples: int = 5,
    global_baseline: bool = True,
) -> TransitionMatrix:
    """Measure one Fig. 17 panel from transition records.

    With ``global_baseline`` (the default), cells lacking a per-source
    baseline fall back to the average stay-failure rate.
    """
    baselines = _baseline_rates(dataset)
    fallback = (
        float(np.mean(list(baselines.values()))) if baselines else 0.0
    )
    outcomes: dict[tuple[int, int], list[int]] = {}
    for t in dataset.transitions:
        if not t.executed:
            continue
        if t.from_rat != from_rat or t.to_rat != to_rat:
            continue
        key = (t.from_level, t.to_level)
        outcomes.setdefault(key, []).append(1 if t.failed_after else 0)
    increase = np.full((6, 6), np.nan)
    samples = np.zeros((6, 6), dtype=int)
    for (i, j), observed in outcomes.items():
        samples[i][j] = len(observed)
        if len(observed) < min_samples:
            continue
        rate = float(np.mean(observed))
        baseline = baselines.get((from_rat, i))
        if baseline is None and global_baseline:
            baseline = fallback
        if baseline is None:
            continue
        increase[i][j] = rate - baseline
    return TransitionMatrix(
        from_rat=from_rat,
        to_rat=to_rat,
        increase=increase,
        samples=samples,
    )


def all_transition_matrices(
    dataset: Dataset, min_samples: int = 5
) -> dict[tuple[str, str], TransitionMatrix]:
    """All six Fig. 17 panels."""
    return {
        pair: transition_increase_matrix(
            dataset, pair[0], pair[1], min_samples=min_samples
        )
        for pair in FIG17_PANELS
    }


def undesirable_cells(
    matrix: TransitionMatrix, threshold: float = 0.15
) -> list[tuple[int, int, float]]:
    """Cells whose likelihood increase exceeds ``threshold`` — the
    transitions the paper says should be avoided (Sec. 4.2)."""
    cells = []
    for i in range(6):
        for j in range(6):
            value = matrix.increase[i][j]
            if not np.isnan(value) and value > threshold:
                cells.append((i, j, float(value)))
    return sorted(cells, key=lambda c: c[2], reverse=True)


def measured_level_risk(
    dataset: Dataset,
) -> dict[str, tuple[float, ...]]:
    """Per-(RAT, destination level) failure likelihood measured from
    executed transitions — the fitted input for a data-driven
    :class:`~repro.android.rat_policy.TransitionRiskTable`."""
    outcomes: dict[tuple[str, int], list[int]] = {}
    for t in dataset.transitions:
        if not t.executed:
            continue
        outcomes.setdefault(
            (t.to_rat, t.to_level), []
        ).append(1 if t.failed_after else 0)
    result: dict[str, list[float]] = {}
    for rat in ("2G", "3G", "4G", "5G"):
        row = []
        for level in range(6):
            observed = outcomes.get((rat, level))
            row.append(
                float(np.mean(observed)) if observed else float("nan")
            )
        result[rat] = row
    return {rat: tuple(row) for rat, row in result.items()}
