"""The ISP and base-station landscape (Sec. 3.3, Figs. 11-16).

* BS ranking by failure count and its Zipf fit (Fig. 11);
* per-ISP user prevalence and frequency (Figs. 12-13);
* per-RAT BS prevalence (Fig. 14);
* normalized prevalence by signal level (Fig. 15) and by RAT x level
  (Fig. 16) — "normalized" divides the device-level prevalence at a
  level by the mean connected time at that level, the paper's exposure
  correction.

The per-record reductions (rankings, distinct-device counts, exposure
totals) run over the cached columnar view
(:func:`repro.analysis.columnar.columnar`); only the small BS
inventory is still walked as objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.columnar import columnar, distinct_pair_counts
from repro.dataset.store import Dataset

#: RAT generation labels in display order.
RAT_LABELS = ("2G", "3G", "4G", "5G")

#: Signal levels span 0..5.
_N_LEVELS = 6


# ---------------------------------------------------------------------------
# Fig. 11 — BS ranking and Zipf fit
# ---------------------------------------------------------------------------


def bs_failure_ranking(dataset: Dataset) -> np.ndarray:
    """Failure counts per BS in descending order (Fig. 11's y-series)."""
    _, counts = np.unique(columnar(dataset).failures.bs_id,
                          return_counts=True)
    return np.sort(counts.astype(float))[::-1]


@dataclass(frozen=True)
class ZipfFit:
    """Least-squares fit of ``count = b / rank^a`` in log-log space."""

    a: float
    b: float
    r_squared: float


def fit_zipf(ranking: np.ndarray) -> ZipfFit:
    """Fit the Zipf parameters of a descending ranking (Fig. 11)."""
    if len(ranking) < 2:
        raise ValueError("need at least two ranked values")
    positive = ranking[ranking > 0]
    ranks = np.arange(1, len(positive) + 1, dtype=float)
    x = np.log(ranks)
    y = np.log(positive)
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    residual = float(np.sum((y - predicted) ** 2))
    total = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return ZipfFit(a=-slope, b=float(np.exp(intercept)),
                   r_squared=r_squared)


def top_bs_deployment_mix(
    dataset: Dataset, top_n: int = 100
) -> dict[str, float]:
    """Deployment-class mix of the ``top_n`` highest-failure BSes.

    Fig. 11's prose: the top-ranking cells are mostly located in
    crowded urban areas (hubs and urban cores), where interference and
    access load are worst.
    """
    if not dataset.base_stations:
        raise ValueError("dataset has no BS inventory")
    deployment_by_id = {
        bs.bs_id: bs.deployment for bs in dataset.base_stations
    }
    counts: dict[int, int] = {}
    for failure in dataset.failures:
        counts[failure.bs_id] = counts.get(failure.bs_id, 0) + 1
    ranked = sorted(counts, key=counts.get, reverse=True)[:top_n]
    if not ranked:
        raise ValueError("no failures recorded")
    mix: dict[str, int] = {}
    for bs_id in ranked:
        deployment = deployment_by_id.get(bs_id, "UNKNOWN")
        mix[deployment] = mix.get(deployment, 0) + 1
    return {deployment: count / len(ranked)
            for deployment, count in mix.items()}


def bs_failure_summary(dataset: Dataset) -> dict[str, float]:
    """Median / mean / max failures per *involved* BS (Fig. 11 prose)."""
    ranking = bs_failure_ranking(dataset)
    if len(ranking) == 0:
        raise ValueError("no failures recorded")
    return {
        "median": float(np.median(ranking)),
        "mean": float(np.mean(ranking)),
        "max": float(np.max(ranking)),
    }


# ---------------------------------------------------------------------------
# Figs. 12-13 — ISP discrepancy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IspStats:
    isp: str
    n_devices: int
    prevalence: float
    frequency: float


def per_isp_stats(dataset: Dataset) -> list[IspStats]:
    """User prevalence and frequency per ISP (Figs. 12-13)."""
    view = columnar(dataset)
    d, f = view.devices, view.failures
    device_counts = np.bincount(d.isp_codes, minlength=len(d.isps))
    failure_counts = np.bincount(f.isp_codes, minlength=len(f.isps))
    failing_counts = distinct_pair_counts(
        f.isp_codes, f.device_id, len(f.isps)
    )
    failures_by_isp = dict(zip(f.isps, failure_counts))
    failing_by_isp = dict(zip(f.isps, failing_counts))
    return [
        IspStats(
            isp=isp,
            n_devices=int(n),
            prevalence=int(failing_by_isp.get(isp, 0)) / int(n),
            frequency=int(failures_by_isp.get(isp, 0)) / int(n),
        )
        for isp, n in zip(d.isps, device_counts)
    ]


# ---------------------------------------------------------------------------
# Fig. 14 — per-RAT BS prevalence
# ---------------------------------------------------------------------------


def per_rat_bs_prevalence(dataset: Dataset) -> dict[str, float]:
    """Fraction of BSes supporting a RAT that saw >= 1 failure on it."""
    if not dataset.base_stations:
        raise ValueError("dataset has no BS inventory")
    supporting: dict[str, int] = {label: 0 for label in RAT_LABELS}
    for bs in dataset.base_stations:
        for label in bs.rats:
            supporting[label] += 1
    f = columnar(dataset).failures
    failed_counts = distinct_pair_counts(
        f.rat_codes, f.bs_id, len(f.rats)
    )
    failed_by_rat = dict(zip(f.rats, failed_counts))
    return {
        label: (int(failed_by_rat.get(label, 0)) / supporting[label]
                if supporting[label] else 0.0)
        for label in RAT_LABELS
    }


# ---------------------------------------------------------------------------
# Figs. 15-16 — normalized prevalence by signal level
# ---------------------------------------------------------------------------


def _exposure_by_level(dataset: Dataset) -> dict[int, float]:
    """Mean connected seconds per device at each signal level."""
    d = columnar(dataset).devices
    totals = np.bincount(d.exp_level, weights=d.exp_seconds,
                         minlength=_N_LEVELS)
    n = dataset.n_devices
    return {level: float(totals[level]) / n for level in range(_N_LEVELS)}


def _exposure_by_rat_level(dataset: Dataset) -> dict[tuple[str, int], float]:
    d = columnar(dataset).devices
    if len(d.exp_level) == 0:
        return {}
    keys = d.exp_rat_codes * _N_LEVELS + d.exp_level
    size = len(d.exp_rats) * _N_LEVELS
    totals = np.bincount(keys, weights=d.exp_seconds, minlength=size)
    seen = np.bincount(keys, minlength=size)
    n = dataset.n_devices
    return {
        (d.exp_rats[key // _N_LEVELS], int(key % _N_LEVELS)):
            float(totals[key]) / n
        for key in np.flatnonzero(seen)
    }


def prevalence_by_level(dataset: Dataset) -> dict[int, float]:
    """Plain prevalence: devices with >= 1 failure at each level."""
    f = columnar(dataset).failures
    failing = distinct_pair_counts(f.signal_level, f.device_id, _N_LEVELS)
    n = dataset.n_devices
    return {level: int(failing[level]) / n for level in range(_N_LEVELS)}


def normalized_prevalence_by_level(
    dataset: Dataset, time_unit_s: float = 3600.0
) -> dict[int, float]:
    """Fig. 15: prevalence divided by mean connected time per level.

    ``time_unit_s`` sets the exposure unit (hours by default) so the
    normalized values live on a readable scale.
    """
    prevalence = prevalence_by_level(dataset)
    exposure = _exposure_by_level(dataset)
    result = {}
    for level in range(_N_LEVELS):
        hours = exposure[level] / time_unit_s
        result[level] = prevalence[level] / hours if hours > 0 else 0.0
    return result


def normalized_prevalence_by_rat_level(
    dataset: Dataset,
    rats: tuple[str, ...] = ("4G", "5G"),
    time_unit_s: float = 3600.0,
) -> dict[str, dict[int, float]]:
    """Fig. 16: normalized prevalence per (RAT, level)."""
    f = columnar(dataset).failures
    failing: dict[tuple[str, int], int] = {}
    if len(f):
        keys = f.rat_codes * _N_LEVELS + f.signal_level
        counts = distinct_pair_counts(
            keys, f.device_id, len(f.rats) * _N_LEVELS
        )
        failing = {
            (f.rats[key // _N_LEVELS], int(key % _N_LEVELS)):
                int(counts[key])
            for key in np.flatnonzero(counts)
        }
    exposure = _exposure_by_rat_level(dataset)
    n = dataset.n_devices
    result: dict[str, dict[int, float]] = {rat: {} for rat in rats}
    for rat in rats:
        for level in range(_N_LEVELS):
            hours = exposure.get((rat, level), 0.0) / time_unit_s
            prevalence = failing.get((rat, level), 0) / n
            result[rat][level] = (
                prevalence / hours if hours > 0 else 0.0
            )
    return result
