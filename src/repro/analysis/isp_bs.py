"""The ISP and base-station landscape (Sec. 3.3, Figs. 11-16).

* BS ranking by failure count and its Zipf fit (Fig. 11);
* per-ISP user prevalence and frequency (Figs. 12-13);
* per-RAT BS prevalence (Fig. 14);
* normalized prevalence by signal level (Fig. 15) and by RAT x level
  (Fig. 16) — "normalized" divides the device-level prevalence at a
  level by the mean connected time at that level, the paper's exposure
  correction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.store import Dataset

#: RAT generation labels in display order.
RAT_LABELS = ("2G", "3G", "4G", "5G")


# ---------------------------------------------------------------------------
# Fig. 11 — BS ranking and Zipf fit
# ---------------------------------------------------------------------------


def bs_failure_ranking(dataset: Dataset) -> np.ndarray:
    """Failure counts per BS in descending order (Fig. 11's y-series)."""
    counts: dict[int, int] = {}
    for failure in dataset.failures:
        counts[failure.bs_id] = counts.get(failure.bs_id, 0) + 1
    return np.array(sorted(counts.values(), reverse=True), dtype=float)


@dataclass(frozen=True)
class ZipfFit:
    """Least-squares fit of ``count = b / rank^a`` in log-log space."""

    a: float
    b: float
    r_squared: float


def fit_zipf(ranking: np.ndarray) -> ZipfFit:
    """Fit the Zipf parameters of a descending ranking (Fig. 11)."""
    if len(ranking) < 2:
        raise ValueError("need at least two ranked values")
    positive = ranking[ranking > 0]
    ranks = np.arange(1, len(positive) + 1, dtype=float)
    x = np.log(ranks)
    y = np.log(positive)
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    residual = float(np.sum((y - predicted) ** 2))
    total = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return ZipfFit(a=-slope, b=float(np.exp(intercept)),
                   r_squared=r_squared)


def top_bs_deployment_mix(
    dataset: Dataset, top_n: int = 100
) -> dict[str, float]:
    """Deployment-class mix of the ``top_n`` highest-failure BSes.

    Fig. 11's prose: the top-ranking cells are mostly located in
    crowded urban areas (hubs and urban cores), where interference and
    access load are worst.
    """
    if not dataset.base_stations:
        raise ValueError("dataset has no BS inventory")
    deployment_by_id = {
        bs.bs_id: bs.deployment for bs in dataset.base_stations
    }
    counts: dict[int, int] = {}
    for failure in dataset.failures:
        counts[failure.bs_id] = counts.get(failure.bs_id, 0) + 1
    ranked = sorted(counts, key=counts.get, reverse=True)[:top_n]
    if not ranked:
        raise ValueError("no failures recorded")
    mix: dict[str, int] = {}
    for bs_id in ranked:
        deployment = deployment_by_id.get(bs_id, "UNKNOWN")
        mix[deployment] = mix.get(deployment, 0) + 1
    return {deployment: count / len(ranked)
            for deployment, count in mix.items()}


def bs_failure_summary(dataset: Dataset) -> dict[str, float]:
    """Median / mean / max failures per *involved* BS (Fig. 11 prose)."""
    ranking = bs_failure_ranking(dataset)
    if len(ranking) == 0:
        raise ValueError("no failures recorded")
    return {
        "median": float(np.median(ranking)),
        "mean": float(np.mean(ranking)),
        "max": float(np.max(ranking)),
    }


# ---------------------------------------------------------------------------
# Figs. 12-13 — ISP discrepancy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IspStats:
    isp: str
    n_devices: int
    prevalence: float
    frequency: float


def per_isp_stats(dataset: Dataset) -> list[IspStats]:
    """User prevalence and frequency per ISP (Figs. 12-13)."""
    devices_by_isp: dict[str, int] = {}
    for device in dataset.devices:
        devices_by_isp[device.isp] = devices_by_isp.get(device.isp, 0) + 1
    failing: dict[str, set[int]] = {}
    counts: dict[str, int] = {}
    for failure in dataset.failures:
        failing.setdefault(failure.isp, set()).add(failure.device_id)
        counts[failure.isp] = counts.get(failure.isp, 0) + 1
    return [
        IspStats(
            isp=isp,
            n_devices=n,
            prevalence=len(failing.get(isp, ())) / n,
            frequency=counts.get(isp, 0) / n,
        )
        for isp, n in sorted(devices_by_isp.items())
    ]


# ---------------------------------------------------------------------------
# Fig. 14 — per-RAT BS prevalence
# ---------------------------------------------------------------------------


def per_rat_bs_prevalence(dataset: Dataset) -> dict[str, float]:
    """Fraction of BSes supporting a RAT that saw >= 1 failure on it."""
    if not dataset.base_stations:
        raise ValueError("dataset has no BS inventory")
    supporting: dict[str, int] = {label: 0 for label in RAT_LABELS}
    for bs in dataset.base_stations:
        for label in bs.rats:
            supporting[label] += 1
    failed: dict[str, set[int]] = {label: set() for label in RAT_LABELS}
    for failure in dataset.failures:
        failed[failure.rat].add(failure.bs_id)
    return {
        label: (len(failed[label]) / supporting[label]
                if supporting[label] else 0.0)
        for label in RAT_LABELS
    }


# ---------------------------------------------------------------------------
# Figs. 15-16 — normalized prevalence by signal level
# ---------------------------------------------------------------------------


def _exposure_by_level(dataset: Dataset) -> dict[int, float]:
    """Mean connected seconds per device at each signal level."""
    totals = {level: 0.0 for level in range(6)}
    for device in dataset.devices:
        for (_rat, level), seconds in device.exposure_s.items():
            totals[level] += seconds
    n = dataset.n_devices
    return {level: total / n for level, total in totals.items()}


def _exposure_by_rat_level(dataset: Dataset) -> dict[tuple[str, int], float]:
    totals: dict[tuple[str, int], float] = {}
    for device in dataset.devices:
        for key, seconds in device.exposure_s.items():
            totals[key] = totals.get(key, 0.0) + seconds
    n = dataset.n_devices
    return {key: total / n for key, total in totals.items()}


def prevalence_by_level(dataset: Dataset) -> dict[int, float]:
    """Plain prevalence: devices with >= 1 failure at each level."""
    failing: dict[int, set[int]] = {level: set() for level in range(6)}
    for failure in dataset.failures:
        failing[failure.signal_level].add(failure.device_id)
    n = dataset.n_devices
    return {level: len(devices) / n for level, devices in failing.items()}


def normalized_prevalence_by_level(
    dataset: Dataset, time_unit_s: float = 3600.0
) -> dict[int, float]:
    """Fig. 15: prevalence divided by mean connected time per level.

    ``time_unit_s`` sets the exposure unit (hours by default) so the
    normalized values live on a readable scale.
    """
    prevalence = prevalence_by_level(dataset)
    exposure = _exposure_by_level(dataset)
    result = {}
    for level in range(6):
        hours = exposure[level] / time_unit_s
        result[level] = prevalence[level] / hours if hours > 0 else 0.0
    return result


def normalized_prevalence_by_rat_level(
    dataset: Dataset,
    rats: tuple[str, ...] = ("4G", "5G"),
    time_unit_s: float = 3600.0,
) -> dict[str, dict[int, float]]:
    """Fig. 16: normalized prevalence per (RAT, level)."""
    failing: dict[tuple[str, int], set[int]] = {}
    for failure in dataset.failures:
        if failure.rat in rats:
            failing.setdefault(
                (failure.rat, failure.signal_level), set()
            ).add(failure.device_id)
    exposure = _exposure_by_rat_level(dataset)
    n = dataset.n_devices
    result: dict[str, dict[int, float]] = {rat: {} for rat in rats}
    for rat in rats:
        for level in range(6):
            hours = exposure.get((rat, level), 0.0) / time_unit_s
            prevalence = len(failing.get((rat, level), ())) / n
            result[rat][level] = (
                prevalence / hours if hours > 0 else 0.0
            )
    return result
