"""General statistics of a study dataset (Sec. 3.1, Figs. 3-4, 10).

All quantities here mirror the paper's definitions:

* **prevalence** — fraction of devices with at least one failure;
* **frequency** — mean failures per device;
* duration statistics over all failures and per type;
* the failures-per-phone distribution (Fig. 3);
* the Data_Stall auto-recovery time distribution (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.android.recovery import AUTO_RECOVERED
from repro.core.events import FailureType
from repro.dataset.aggregate import cdf, fraction_below, safe_mean
from repro.dataset.store import Dataset

_HEADLINE = {
    FailureType.DATA_SETUP_ERROR.value,
    FailureType.OUT_OF_SERVICE.value,
    FailureType.DATA_STALL.value,
}


@dataclass(frozen=True)
class GeneralStats:
    """The Sec. 3.1 headline numbers for one dataset."""

    n_devices: int
    n_failures: int
    prevalence: float
    frequency: float
    mean_per_device_by_type: dict[str, float]
    max_failures_single_device: int
    fraction_devices_without_oos: float
    mean_duration_s: float
    median_duration_s: float
    max_duration_s: float
    fraction_under_30s: float
    headline_type_share: float
    duration_share_by_type: dict[str, float]
    count_share_by_type: dict[str, float]


def compute_general_stats(dataset: Dataset) -> GeneralStats:
    """Recompute every Sec. 3.1 statistic from the records."""
    if not dataset.devices:
        raise ValueError("dataset has no devices")
    n_devices = dataset.n_devices
    n_failures = dataset.n_failures
    per_device: dict[int, int] = {}
    oos_devices: set[int] = set()
    durations = np.empty(n_failures)
    type_counts: dict[str, int] = {}
    type_durations: dict[str, float] = {}
    for i, failure in enumerate(dataset.failures):
        per_device[failure.device_id] = (
            per_device.get(failure.device_id, 0) + 1
        )
        durations[i] = failure.duration_s
        type_counts[failure.failure_type] = (
            type_counts.get(failure.failure_type, 0) + 1
        )
        type_durations[failure.failure_type] = (
            type_durations.get(failure.failure_type, 0.0)
            + failure.duration_s
        )
        if failure.failure_type == FailureType.OUT_OF_SERVICE.value:
            oos_devices.add(failure.device_id)

    total_duration = float(durations.sum()) if n_failures else 0.0
    headline = sum(
        count for ftype, count in type_counts.items() if ftype in _HEADLINE
    )
    mean_by_type = {
        ftype: count / n_devices for ftype, count in type_counts.items()
    }
    return GeneralStats(
        n_devices=n_devices,
        n_failures=n_failures,
        prevalence=len(per_device) / n_devices,
        frequency=n_failures / n_devices,
        mean_per_device_by_type=mean_by_type,
        max_failures_single_device=max(per_device.values(), default=0),
        fraction_devices_without_oos=1.0 - len(oos_devices) / n_devices,
        mean_duration_s=safe_mean(durations),
        median_duration_s=(
            float(np.median(durations)) if n_failures else 0.0
        ),
        max_duration_s=float(durations.max()) if n_failures else 0.0,
        fraction_under_30s=(
            fraction_below(durations, 30.0) if n_failures else 0.0
        ),
        headline_type_share=headline / n_failures if n_failures else 0.0,
        duration_share_by_type={
            ftype: total / total_duration
            for ftype, total in type_durations.items()
        } if total_duration else {},
        count_share_by_type={
            ftype: count / n_failures
            for ftype, count in type_counts.items()
        } if n_failures else {},
    )


def failures_per_phone(dataset: Dataset) -> np.ndarray:
    """Failure counts per device, including zero-failure devices (Fig. 3)."""
    counts = {d.device_id: 0 for d in dataset.devices}
    for failure in dataset.failures:
        counts[failure.device_id] = counts.get(failure.device_id, 0) + 1
    return np.array(sorted(counts.values()), dtype=float)


def failures_per_phone_cdf(dataset: Dataset):
    """The CDF behind Fig. 3."""
    return cdf(failures_per_phone(dataset))


def duration_cdf(dataset: Dataset):
    """The CDF behind Fig. 4."""
    return cdf([f.duration_s for f in dataset.failures])


def stall_autofix_durations(dataset: Dataset) -> np.ndarray:
    """Durations of Data_Stall failures that fixed themselves (Fig. 10)."""
    values = [
        f.duration_s
        for f in dataset.failures
        if f.failure_type == FailureType.DATA_STALL.value
        and f.resolved_by == AUTO_RECOVERED
    ]
    return np.array(sorted(values), dtype=float)


def stall_autofix_cdf(dataset: Dataset):
    """The CDF behind Fig. 10."""
    return cdf(stall_autofix_durations(dataset))


def stage_fix_rate(dataset: Dataset, stage: int = 1) -> float:
    """Among stalls where recovery stage ``stage`` executed, the fraction
    it fixed (Sec. 3.2: 75% for the first stage)."""
    executed = 0
    fixed = 0
    for failure in dataset.failures:
        if failure.failure_type != FailureType.DATA_STALL.value:
            continue
        if failure.stages_executed >= stage:
            executed += 1
            if failure.resolved_by == stage:
                fixed += 1
    if executed == 0:
        raise ValueError(f"no stalls reached recovery stage {stage}")
    return fixed / executed
