"""General statistics of a study dataset (Sec. 3.1, Figs. 3-4, 10).

All quantities here mirror the paper's definitions:

* **prevalence** — fraction of devices with at least one failure;
* **frequency** — mean failures per device;
* duration statistics over all failures and per type;
* the failures-per-phone distribution (Fig. 3);
* the Data_Stall auto-recovery time distribution (Fig. 10).

Everything computes over the cached columnar view
(:func:`repro.analysis.columnar.columnar`), so the cost of walking the
record objects is paid once per dataset, not once per statistic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.android.recovery import AUTO_RECOVERED
from repro.analysis.columnar import columnar
from repro.core.events import FailureType
from repro.dataset.aggregate import cdf, fraction_below, safe_mean
from repro.dataset.store import Dataset

_HEADLINE = {
    FailureType.DATA_SETUP_ERROR.value,
    FailureType.OUT_OF_SERVICE.value,
    FailureType.DATA_STALL.value,
}


@dataclass(frozen=True)
class GeneralStats:
    """The Sec. 3.1 headline numbers for one dataset."""

    n_devices: int
    n_failures: int
    prevalence: float
    frequency: float
    mean_per_device_by_type: dict[str, float]
    max_failures_single_device: int
    fraction_devices_without_oos: float
    mean_duration_s: float
    median_duration_s: float
    max_duration_s: float
    fraction_under_30s: float
    headline_type_share: float
    duration_share_by_type: dict[str, float]
    count_share_by_type: dict[str, float]


def compute_general_stats(dataset: Dataset) -> GeneralStats:
    """Recompute every Sec. 3.1 statistic from the records."""
    if not dataset.devices:
        raise ValueError("dataset has no devices")
    view = columnar(dataset)
    f = view.failures
    n_devices = dataset.n_devices
    n_failures = len(f)
    durations = f.duration_s

    failing_ids, per_device = np.unique(f.device_id, return_counts=True)
    n_types = len(f.failure_types)
    type_counts = np.bincount(f.failure_type_codes, minlength=n_types)
    type_durations = np.bincount(f.failure_type_codes,
                                 weights=durations, minlength=n_types)
    oos_mask = f.type_mask(FailureType.OUT_OF_SERVICE.value)
    n_oos_devices = int(np.unique(f.device_id[oos_mask]).size)

    total_duration = float(durations.sum()) if n_failures else 0.0
    headline = sum(
        int(count)
        for ftype, count in zip(f.failure_types, type_counts)
        if ftype in _HEADLINE
    )
    mean_by_type = {
        ftype: int(count) / n_devices
        for ftype, count in zip(f.failure_types, type_counts)
    }
    return GeneralStats(
        n_devices=n_devices,
        n_failures=n_failures,
        prevalence=failing_ids.size / n_devices,
        frequency=n_failures / n_devices,
        mean_per_device_by_type=mean_by_type,
        max_failures_single_device=(
            int(per_device.max()) if per_device.size else 0
        ),
        fraction_devices_without_oos=1.0 - n_oos_devices / n_devices,
        mean_duration_s=safe_mean(durations),
        median_duration_s=(
            float(np.median(durations)) if n_failures else 0.0
        ),
        max_duration_s=float(durations.max()) if n_failures else 0.0,
        fraction_under_30s=(
            fraction_below(durations, 30.0) if n_failures else 0.0
        ),
        headline_type_share=headline / n_failures if n_failures else 0.0,
        duration_share_by_type={
            ftype: float(total) / total_duration
            for ftype, total in zip(f.failure_types, type_durations)
        } if total_duration else {},
        count_share_by_type={
            ftype: int(count) / n_failures
            for ftype, count in zip(f.failure_types, type_counts)
        } if n_failures else {},
    )


def failures_per_phone(dataset: Dataset) -> np.ndarray:
    """Failure counts per device, including zero-failure devices (Fig. 3)."""
    view = columnar(dataset)
    failing_ids, counts = np.unique(view.failures.device_id,
                                    return_counts=True)
    silent = np.setdiff1d(view.devices.device_id, failing_ids)
    return np.sort(np.concatenate([
        np.zeros(silent.size), counts.astype(float)
    ]))


def failures_per_phone_cdf(dataset: Dataset):
    """The CDF behind Fig. 3."""
    return cdf(failures_per_phone(dataset))


def duration_cdf(dataset: Dataset):
    """The CDF behind Fig. 4."""
    return cdf(columnar(dataset).failures.duration_s)


def stall_autofix_durations(dataset: Dataset) -> np.ndarray:
    """Durations of Data_Stall failures that fixed themselves (Fig. 10)."""
    f = columnar(dataset).failures
    mask = (f.type_mask(FailureType.DATA_STALL.value)
            & (f.resolved_by == AUTO_RECOVERED))
    return np.sort(f.duration_s[mask])


def stall_autofix_cdf(dataset: Dataset):
    """The CDF behind Fig. 10."""
    return cdf(stall_autofix_durations(dataset))


def stage_fix_rate(dataset: Dataset, stage: int = 1) -> float:
    """Among stalls where recovery stage ``stage`` executed, the fraction
    it fixed (Sec. 3.2: 75% for the first stage)."""
    f = columnar(dataset).failures
    reached = (f.type_mask(FailureType.DATA_STALL.value)
               & (f.stages_executed >= stage))
    executed = int(reached.sum())
    if executed == 0:
        raise ValueError(f"no stalls reached recovery stage {stage}")
    fixed = int((f.resolved_by[reached] == stage).sum())
    return fixed / executed
