"""A/B evaluation of the deployed enhancements (Sec. 4.3, Figs. 19-21).

Compares a vanilla-arm dataset against a patched-arm dataset of the
same scenario:

* Figs. 19-20 — prevalence / frequency of cellular failures on 5G
  phones, overall and per failure type;
* Fig. 21 — Data_Stall duration reduction, total-duration reduction,
  and the median duration of all failures before/after.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.events import FailureType
from repro.dataset.store import Dataset


@dataclass(frozen=True)
class TypeDelta:
    """Per-failure-type reduction on 5G phones (Fig. 19-20 prose)."""

    failure_type: str
    prevalence_reduction: float
    frequency_reduction: float


@dataclass(frozen=True)
class ABEvaluation:
    """Everything Sec. 4.3 reports."""

    #: 5G-phone overall reductions (Figs. 19-20).
    prevalence_reduction_5g: float
    frequency_reduction_5g: float
    per_type: dict[str, TypeDelta]
    #: Duration results (Fig. 21).
    stall_duration_reduction: float
    total_duration_reduction: float
    median_duration_before_s: float
    median_duration_after_s: float


def _five_g_stats(
    dataset: Dataset, failure_type: str | None = None
) -> tuple[float, float]:
    """(prevalence, frequency) over 5G devices, optionally per type."""
    ids = {d.device_id for d in dataset.devices if d.has_5g}
    if not ids:
        raise ValueError("dataset has no 5G devices")
    failing: set[int] = set()
    count = 0
    for failure in dataset.failures:
        if failure.device_id not in ids:
            continue
        if failure_type is not None and (
            failure.failure_type != failure_type
        ):
            continue
        count += 1
        failing.add(failure.device_id)
    return len(failing) / len(ids), count / len(ids)


def _durations(dataset: Dataset, failure_type: str | None = None):
    return np.array([
        f.duration_s for f in dataset.failures
        if failure_type is None or f.failure_type == failure_type
    ])


def evaluate_ab(vanilla: Dataset, patched: Dataset) -> ABEvaluation:
    """Compute the Sec. 4.3 evaluation from the two arms."""
    prevalence_v, frequency_v = _five_g_stats(vanilla)
    prevalence_p, frequency_p = _five_g_stats(patched)
    per_type: dict[str, TypeDelta] = {}
    for failure_type in (
        FailureType.DATA_SETUP_ERROR,
        FailureType.DATA_STALL,
        FailureType.OUT_OF_SERVICE,
    ):
        pv, fv = _five_g_stats(vanilla, failure_type.value)
        pp, fp = _five_g_stats(patched, failure_type.value)
        per_type[failure_type.value] = TypeDelta(
            failure_type=failure_type.value,
            prevalence_reduction=_reduction(pv, pp),
            frequency_reduction=_reduction(fv, fp),
        )
    stall_v = _durations(vanilla, FailureType.DATA_STALL.value)
    stall_p = _durations(patched, FailureType.DATA_STALL.value)
    all_v = _durations(vanilla)
    all_p = _durations(patched)
    return ABEvaluation(
        prevalence_reduction_5g=_reduction(prevalence_v, prevalence_p),
        frequency_reduction_5g=_reduction(frequency_v, frequency_p),
        per_type=per_type,
        stall_duration_reduction=_reduction(
            float(stall_v.mean()), float(stall_p.mean())
        ),
        total_duration_reduction=_reduction(
            float(all_v.sum()), float(all_p.sum())
        ),
        median_duration_before_s=float(np.median(all_v)),
        median_duration_after_s=float(np.median(all_p)),
    )


def _reduction(before: float, after: float) -> float:
    """Relative reduction; positive means the patched arm improved."""
    if before == 0:
        return 0.0
    return 1.0 - after / before
