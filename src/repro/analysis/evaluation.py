"""A/B evaluation of the deployed enhancements (Sec. 4.3, Figs. 19-21).

Compares a vanilla-arm dataset against a patched-arm dataset of the
same scenario:

* Figs. 19-20 — prevalence / frequency of cellular failures on 5G
  phones, overall and per failure type;
* Fig. 21 — Data_Stall duration reduction, total-duration reduction,
  and the median duration of all failures before/after.

Degenerate arms are legal inputs: an arm with no Data_Stall failures
(or no failures at all) yields zero-valued duration statistics rather
than NaN — small ablation scenarios and near-perfect patched arms both
hit these paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.columnar import columnar
from repro.core.events import FailureType
from repro.dataset.aggregate import safe_mean
from repro.dataset.store import Dataset


@dataclass(frozen=True)
class TypeDelta:
    """Per-failure-type reduction on 5G phones (Fig. 19-20 prose)."""

    failure_type: str
    prevalence_reduction: float
    frequency_reduction: float


@dataclass(frozen=True)
class ABEvaluation:
    """Everything Sec. 4.3 reports."""

    #: 5G-phone overall reductions (Figs. 19-20).
    prevalence_reduction_5g: float
    frequency_reduction_5g: float
    per_type: dict[str, TypeDelta]
    #: Duration results (Fig. 21).
    stall_duration_reduction: float
    total_duration_reduction: float
    median_duration_before_s: float
    median_duration_after_s: float


def _five_g_stats(
    dataset: Dataset, failure_type: str | None = None
) -> tuple[float, float]:
    """(prevalence, frequency) over 5G devices, optionally per type."""
    view = columnar(dataset)
    ids = np.unique(view.devices.device_id[view.devices.has_5g])
    if ids.size == 0:
        raise ValueError("dataset has no 5G devices")
    f = view.failures
    mask = np.isin(f.device_id, ids)
    if failure_type is not None:
        mask &= f.type_mask(failure_type)
    count = int(mask.sum())
    failing = int(np.unique(f.device_id[mask]).size)
    return failing / ids.size, count / ids.size


def _durations(dataset: Dataset,
               failure_type: str | None = None) -> np.ndarray:
    f = columnar(dataset).failures
    if failure_type is None:
        return f.duration_s
    return f.duration_s[f.type_mask(failure_type)]


def _median_or_zero(values: np.ndarray) -> float:
    return float(np.median(values)) if values.size else 0.0


def evaluate_ab(vanilla: Dataset, patched: Dataset) -> ABEvaluation:
    """Compute the Sec. 4.3 evaluation from the two arms."""
    prevalence_v, frequency_v = _five_g_stats(vanilla)
    prevalence_p, frequency_p = _five_g_stats(patched)
    per_type: dict[str, TypeDelta] = {}
    for failure_type in (
        FailureType.DATA_SETUP_ERROR,
        FailureType.DATA_STALL,
        FailureType.OUT_OF_SERVICE,
    ):
        pv, fv = _five_g_stats(vanilla, failure_type.value)
        pp, fp = _five_g_stats(patched, failure_type.value)
        per_type[failure_type.value] = TypeDelta(
            failure_type=failure_type.value,
            prevalence_reduction=_reduction(pv, pp),
            frequency_reduction=_reduction(fv, fp),
        )
    stall_v = _durations(vanilla, FailureType.DATA_STALL.value)
    stall_p = _durations(patched, FailureType.DATA_STALL.value)
    all_v = _durations(vanilla)
    all_p = _durations(patched)
    # safe_mean / _median_or_zero keep empty arms 0-valued: an arm with
    # no stalls (or no failures at all) must not poison the evaluation
    # with NaN, and _reduction already treats a zero baseline as "no
    # change to measure".
    return ABEvaluation(
        prevalence_reduction_5g=_reduction(prevalence_v, prevalence_p),
        frequency_reduction_5g=_reduction(frequency_v, frequency_p),
        per_type=per_type,
        stall_duration_reduction=_reduction(
            safe_mean(stall_v), safe_mean(stall_p)
        ),
        total_duration_reduction=_reduction(
            float(all_v.sum()), float(all_p.sum())
        ),
        median_duration_before_s=_median_or_zero(all_v),
        median_duration_after_s=_median_or_zero(all_p),
    )


def _reduction(before: float, after: float) -> float:
    """Relative reduction; positive means the patched arm improved."""
    if before == 0:
        return 0.0
    return 1.0 - after / before
