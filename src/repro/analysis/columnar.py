"""Columnar dataset views and streaming analysis partials.

Two pieces that together let the analysis layer scale past walking
Python-object record lists:

**The columnar view.**  :func:`columnar` turns a
:class:`~repro.dataset.store.Dataset` into typed numpy column arrays —
one array per record field, with string fields encoded as integer
codes over a sorted category table.  The view is cached on the dataset
instance and fingerprinted by the record-list lengths, so repeated
analyses over the same dataset (a full ``NationwideStudy.analyze`` runs
a dozen of them) pay the record walk once.  Appending records
invalidates the cache automatically; mutating a record *in place* does
not — call :func:`invalidate_columnar` after in-place edits.  The cache
never travels through pickle (``Dataset.__getstate__`` drops it), so
checkpoints and worker result pipes stay record-sized.

**The analysis partial.**  :class:`AnalysisPartial` is the per-shard
streaming aggregate of the study-level statistics: failure counts by
type / signal level / ISP, exact duration histograms (integer bucket
counts and scaled-integer sums, the same discipline as
:mod:`repro.obs`), distinct-failing-device counts, and the
failures-per-device count-of-counts distribution.  Every field merges
commutatively and associatively with integer arithmetic, and shards
partition the device population, so the merge of per-shard partials is
*byte-identical* to the partial of the serial run — the parent process
can report study-level statistics without materializing a single
record.  The JSON-able form lands in ``Dataset.metadata["analysis"]``
on every run (serial and sharded alike).
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field
from itertools import chain
from operator import attrgetter
from typing import TYPE_CHECKING

import numpy as np

from repro.obs import DURATION_BUCKETS_S, SUM_SCALE

if TYPE_CHECKING:  # pragma: no cover
    from repro.dataset.store import Dataset

#: ``resolved_by`` code for "no resolver recorded" (``None`` in the
#: record).  Distinct from every real resolver id (AUTO_RECOVERED=0,
#: USER_RESET=-1, UNRESOLVED=-2, stages 1-3).
RESOLVED_BY_NONE = -(1 << 30)

#: Signal levels span 0..5 everywhere in the reproduction.
N_SIGNAL_LEVELS = 6


class AnalysisMergeError(RuntimeError):
    """Analysis partials with incompatible shapes cannot be merged."""


def _encode(values: list) -> tuple[np.ndarray, tuple[str, ...]]:
    """Integer codes over the sorted category table of ``values``."""
    if not values:
        return np.zeros(0, dtype=np.int64), ()
    cats = sorted(set(values))
    lookup = {cat: code for code, cat in enumerate(cats)}
    codes = np.fromiter(map(lookup.__getitem__, values), np.int64,
                        len(values))
    return codes, tuple(cats)


def _rows(records: list, *attrs: str) -> np.ndarray:
    """``(len(records), len(attrs))`` float matrix of numeric fields.

    One C-level pass (``map`` over a multi-attribute ``attrgetter``)
    instead of one list comprehension per column — the difference
    between an O(fields) and an O(1) number of Python-loop walks over
    the record list.
    """
    n = len(records)
    flat = np.fromiter(
        chain.from_iterable(map(attrgetter(*attrs), records)),
        np.float64, n * len(attrs),
    )
    return flat.reshape(n, len(attrs))


@dataclass(frozen=True)
class FailureColumns:
    """Typed column arrays over ``dataset.failures``."""

    device_id: np.ndarray
    model: np.ndarray
    has_5g: np.ndarray
    duration_s: np.ndarray
    bs_id: np.ndarray
    signal_level: np.ndarray
    stages_executed: np.ndarray
    #: Resolver ids with ``None`` encoded as :data:`RESOLVED_BY_NONE`.
    resolved_by: np.ndarray
    failure_type_codes: np.ndarray
    failure_types: tuple[str, ...]
    isp_codes: np.ndarray
    isps: tuple[str, ...]
    rat_codes: np.ndarray
    rats: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.device_id)

    def type_code(self, failure_type: str) -> int | None:
        """The category code of ``failure_type``, or None if absent."""
        try:
            return self.failure_types.index(failure_type)
        except ValueError:
            return None

    def type_mask(self, failure_type: str) -> np.ndarray:
        code = self.type_code(failure_type)
        if code is None:
            return np.zeros(len(self), dtype=bool)
        return self.failure_type_codes == code


@dataclass(frozen=True)
class DeviceColumns:
    """Typed column arrays over ``dataset.devices``.

    Exposure dictionaries are flattened into parallel ``exp_*`` arrays
    (one row per ``(device, rat, level)`` entry, in device order) so
    exposure totals reduce to weighted bincounts.
    """

    device_id: np.ndarray
    model: np.ndarray
    has_5g: np.ndarray
    isp_codes: np.ndarray
    isps: tuple[str, ...]
    android_codes: np.ndarray
    android_versions: tuple[str, ...]
    exp_rat_codes: np.ndarray
    exp_rats: tuple[str, ...]
    exp_level: np.ndarray
    exp_seconds: np.ndarray

    def __len__(self) -> int:
        return len(self.device_id)


@dataclass(frozen=True)
class TransitionColumns:
    """Typed column arrays over ``dataset.transitions``."""

    device_id: np.ndarray
    from_rat_codes: np.ndarray
    from_rats: tuple[str, ...]
    from_level: np.ndarray
    to_rat_codes: np.ndarray
    to_rats: tuple[str, ...]
    to_level: np.ndarray
    executed: np.ndarray
    failed_after: np.ndarray

    def __len__(self) -> int:
        return len(self.device_id)


@dataclass(frozen=True)
class ColumnarView:
    """The cached columnar face of one dataset."""

    fingerprint: tuple[int, int, int, int]
    devices: DeviceColumns
    failures: FailureColumns
    transitions: TransitionColumns

    @staticmethod
    def build(dataset: "Dataset",
              fingerprint: tuple[int, int, int, int]) -> "ColumnarView":
        # The attrgetter sweeps allocate large temporary lists that trip
        # the generational collector several times per build; nothing
        # built here can form a reference cycle, so pause collection.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            return ColumnarView(
                fingerprint=fingerprint,
                devices=_build_devices(dataset.devices),
                failures=_build_failures(dataset.failures),
                transitions=_build_transitions(dataset.transitions),
            )
        finally:
            if gc_was_enabled:
                gc.enable()


def _build_failures(failures: list) -> FailureColumns:
    type_codes, types = _encode(
        list(map(attrgetter("failure_type"), failures))
    )
    isp_codes, isps = _encode(list(map(attrgetter("isp"), failures)))
    rat_codes, rats = _encode(list(map(attrgetter("rat"), failures)))
    numeric = _rows(failures, "device_id", "model", "has_5g",
                    "duration_s", "bs_id", "signal_level",
                    "stages_executed")
    resolved = list(map(attrgetter("resolved_by"), failures))
    resolved_by = np.fromiter(
        (RESOLVED_BY_NONE if r is None else r for r in resolved),
        np.int64, len(failures),
    )
    return FailureColumns(
        device_id=numeric[:, 0].astype(np.int64),
        model=numeric[:, 1].astype(np.int64),
        has_5g=numeric[:, 2].astype(bool),
        duration_s=numeric[:, 3].copy(),
        bs_id=numeric[:, 4].astype(np.int64),
        signal_level=numeric[:, 5].astype(np.int64),
        stages_executed=numeric[:, 6].astype(np.int64),
        resolved_by=resolved_by,
        failure_type_codes=type_codes,
        failure_types=types,
        isp_codes=isp_codes,
        isps=isps,
        rat_codes=rat_codes,
        rats=rats,
    )


def _build_devices(devices: list) -> DeviceColumns:
    isp_codes, isps = _encode(list(map(attrgetter("isp"), devices)))
    android_codes, versions = _encode(
        list(map(attrgetter("android_version"), devices))
    )
    exposure = [
        (rat, level, seconds)
        for device in devices
        for (rat, level), seconds in device.exposure_s.items()
    ]
    exp_rat_codes, exp_rats = _encode([row[0] for row in exposure])
    numeric = _rows(devices, "device_id", "model", "has_5g")
    return DeviceColumns(
        device_id=numeric[:, 0].astype(np.int64),
        model=numeric[:, 1].astype(np.int64),
        has_5g=numeric[:, 2].astype(bool),
        isp_codes=isp_codes,
        isps=isps,
        android_codes=android_codes,
        android_versions=versions,
        exp_rat_codes=exp_rat_codes,
        exp_rats=exp_rats,
        exp_level=np.fromiter((row[1] for row in exposure), np.int64,
                              len(exposure)),
        exp_seconds=np.fromiter((row[2] for row in exposure),
                                np.float64, len(exposure)),
    )


def _build_transitions(transitions: list) -> TransitionColumns:
    from_codes, from_rats = _encode(
        list(map(attrgetter("from_rat"), transitions))
    )
    to_codes, to_rats = _encode(
        list(map(attrgetter("to_rat"), transitions))
    )
    numeric = _rows(transitions, "device_id", "from_level", "to_level",
                    "executed", "failed_after")
    return TransitionColumns(
        device_id=numeric[:, 0].astype(np.int64),
        from_rat_codes=from_codes,
        from_rats=from_rats,
        from_level=numeric[:, 1].astype(np.int64),
        to_rat_codes=to_codes,
        to_rats=to_rats,
        to_level=numeric[:, 2].astype(np.int64),
        executed=numeric[:, 3].astype(bool),
        failed_after=numeric[:, 4].astype(bool),
    )


_CACHE_ATTR = "_columnar"


def columnar(dataset: "Dataset") -> ColumnarView:
    """The columnar view of ``dataset``, built once and cached.

    The cache key is the tuple of record-list lengths, so appending
    records (the only mutation the record pipeline performs) rebuilds
    the view on next access.  In-place edits of existing records are
    invisible to the fingerprint — call :func:`invalidate_columnar`
    after those.
    """
    fingerprint = (len(dataset.devices), len(dataset.base_stations),
                   len(dataset.failures), len(dataset.transitions))
    cached = dataset.__dict__.get(_CACHE_ATTR)
    if cached is not None and cached.fingerprint == fingerprint:
        return cached
    view = ColumnarView.build(dataset, fingerprint)
    dataset.__dict__[_CACHE_ATTR] = view
    return view


def invalidate_columnar(dataset: "Dataset") -> None:
    """Drop the cached view (needed after in-place record edits)."""
    dataset.__dict__.pop(_CACHE_ATTR, None)


def distinct_pair_counts(codes: np.ndarray, ids: np.ndarray,
                         n_codes: int) -> np.ndarray:
    """Distinct ``id`` count per code over parallel (code, id) arrays.

    The vectorized form of "how many distinct devices/BSes appear under
    each group" — packs each pair into one integer key, uniques, and
    bincounts the surviving codes.  ``ids`` must be non-negative.
    """
    if len(codes) == 0:
        return np.zeros(n_codes, dtype=np.int64)
    span = int(ids.max()) + 1
    keys = codes.astype(np.int64) * span + ids
    unique = np.unique(keys)
    return np.bincount(unique // span, minlength=n_codes)


# ---------------------------------------------------------------------------
# Streaming analysis partials
# ---------------------------------------------------------------------------


def _duration_bounds() -> list[float]:
    return [float(b) for b in DURATION_BUCKETS_S]


def _empty_hist() -> dict:
    return {
        "bounds": _duration_bounds(),
        "counts": [0] * (len(DURATION_BUCKETS_S) + 1),
        "count": 0,
        "sum_scaled": 0,
    }


def _hist_of(values: np.ndarray) -> dict:
    """Exact histogram of ``values`` over the duration buckets.

    Bucket ``i`` covers ``bounds[i-1] < v <= bounds[i]`` (the final
    slot is +Inf), and the value sum accumulates in scaled integers —
    both choices mirror :class:`repro.obs` histograms so per-shard
    merges are exact regardless of order.
    """
    hist = _empty_hist()
    if values.size == 0:
        return hist
    bounds = np.asarray(hist["bounds"])
    idx = np.searchsorted(bounds, values, side="left")
    counts = np.bincount(idx, minlength=len(bounds) + 1)
    hist["counts"] = [int(c) for c in counts]
    hist["count"] = int(values.size)
    hist["sum_scaled"] = int(
        np.rint(values * SUM_SCALE).astype(np.int64).sum()
    )
    return hist


def _merge_hists(a: dict, b: dict) -> dict:
    if list(a["bounds"]) != list(b["bounds"]):
        raise AnalysisMergeError(
            "duration histogram bucket bounds differ across partials"
        )
    return {
        "bounds": list(a["bounds"]),
        "counts": [x + y for x, y in zip(a["counts"], b["counts"])],
        "count": a["count"] + b["count"],
        "sum_scaled": a["sum_scaled"] + b["sum_scaled"],
    }


def _sum_dicts(a: dict, b: dict) -> dict:
    merged = dict(a)
    for key, value in b.items():
        merged[key] = merged.get(key, 0) + value
    return {key: merged[key] for key in sorted(merged)}


@dataclass
class AnalysisPartial:
    """Mergeable study-level aggregate of one dataset (or shard).

    Every field is either an integer count, a max, or a dict/histogram
    of integer counts, and shards partition the device population —
    so :meth:`merge` is commutative, associative, and *exact*: the
    merge of per-shard partials equals the serial run's partial,
    byte for byte in JSON form.
    """

    n_devices: int = 0
    n_failures: int = 0
    n_transitions: int = 0
    #: Distinct devices with >= 1 failure (shards are device-disjoint,
    #: so per-shard distinct counts sum exactly).
    failing_devices: int = 0
    #: Distinct devices with >= 1 OUT_OF_SERVICE failure.
    oos_devices: int = 0
    transitions_executed: int = 0
    transitions_failed_after: int = 0
    max_failures_single_device: int = 0
    failures_by_type: dict = field(default_factory=dict)
    #: Keys "0".."5", always all present.
    failures_by_level: dict = field(default_factory=dict)
    failures_by_isp: dict = field(default_factory=dict)
    failing_devices_by_isp: dict = field(default_factory=dict)
    #: Count-of-counts: ``{"k": number of devices with exactly k
    #: failures}`` for k >= 1 (zero-failure devices are implied by
    #: ``n_devices - failing_devices``).  This is the scalable form of
    #: per-device failure counts: it merges exactly and reconstructs
    #: prevalence, frequency, the max, and the Fig. 3 distribution.
    failures_per_device: dict = field(default_factory=dict)
    duration_hist: dict = field(default_factory=_empty_hist)
    duration_hist_by_type: dict = field(default_factory=dict)

    @classmethod
    def from_dataset(cls, dataset: "Dataset") -> "AnalysisPartial":
        """Compute the partial from a dataset's records (columnar)."""
        view = columnar(dataset)
        f = view.failures
        t = view.transitions

        failing_ids, per_device = np.unique(f.device_id,
                                            return_counts=True)
        count_values, count_freq = (
            np.unique(per_device, return_counts=True)
            if per_device.size else (np.array([], dtype=np.int64),) * 2
        )
        type_counts = np.bincount(f.failure_type_codes,
                                  minlength=len(f.failure_types))
        level_counts = np.bincount(f.signal_level,
                                   minlength=N_SIGNAL_LEVELS)
        isp_counts = np.bincount(f.isp_codes, minlength=len(f.isps))
        failing_by_isp = distinct_pair_counts(
            f.isp_codes, f.device_id, len(f.isps)
        )
        oos_mask = f.type_mask("OUT_OF_SERVICE")
        hist_by_type = {
            ftype: _hist_of(f.duration_s[f.failure_type_codes == code])
            for code, ftype in enumerate(f.failure_types)
        }
        executed = int(t.executed.sum()) if len(t) else 0
        failed_after = (
            int((t.executed & t.failed_after).sum()) if len(t) else 0
        )
        return cls(
            n_devices=len(view.devices),
            n_failures=len(f),
            n_transitions=len(t),
            failing_devices=int(failing_ids.size),
            oos_devices=int(np.unique(f.device_id[oos_mask]).size),
            transitions_executed=executed,
            transitions_failed_after=failed_after,
            max_failures_single_device=(
                int(per_device.max()) if per_device.size else 0
            ),
            failures_by_type={
                ftype: int(count)
                for ftype, count in zip(f.failure_types, type_counts)
            },
            failures_by_level={
                str(level): int(count)
                for level, count in enumerate(level_counts)
            },
            failures_by_isp={
                isp: int(count)
                for isp, count in zip(f.isps, isp_counts)
            },
            failing_devices_by_isp={
                isp: int(count)
                for isp, count in zip(f.isps, failing_by_isp)
            },
            failures_per_device={
                str(int(k)): int(n)
                for k, n in zip(count_values, count_freq)
            },
            duration_hist=_hist_of(f.duration_s),
            duration_hist_by_type=hist_by_type,
        )

    @classmethod
    def from_block(cls, block: dict) -> "AnalysisPartial":
        """Rehydrate from the JSON-able ``metadata["analysis"]`` form."""
        return cls(**{key: block[key] for key in _BLOCK_FIELDS})

    def merge(self, other: "AnalysisPartial") -> "AnalysisPartial":
        """The exact commutative merge of two partials."""
        hist_types = sorted(
            set(self.duration_hist_by_type) | set(other.duration_hist_by_type)
        )
        merged_type_hists = {}
        for ftype in hist_types:
            a = self.duration_hist_by_type.get(ftype)
            b = other.duration_hist_by_type.get(ftype)
            if a is None:
                merged_type_hists[ftype] = _merge_hists(_empty_hist(), b)
            elif b is None:
                merged_type_hists[ftype] = _merge_hists(a, _empty_hist())
            else:
                merged_type_hists[ftype] = _merge_hists(a, b)
        return AnalysisPartial(
            n_devices=self.n_devices + other.n_devices,
            n_failures=self.n_failures + other.n_failures,
            n_transitions=self.n_transitions + other.n_transitions,
            failing_devices=self.failing_devices + other.failing_devices,
            oos_devices=self.oos_devices + other.oos_devices,
            transitions_executed=(
                self.transitions_executed + other.transitions_executed
            ),
            transitions_failed_after=(
                self.transitions_failed_after
                + other.transitions_failed_after
            ),
            max_failures_single_device=max(
                self.max_failures_single_device,
                other.max_failures_single_device,
            ),
            failures_by_type=_sum_dicts(self.failures_by_type,
                                        other.failures_by_type),
            failures_by_level=_sum_dicts(self.failures_by_level,
                                         other.failures_by_level),
            failures_by_isp=_sum_dicts(self.failures_by_isp,
                                       other.failures_by_isp),
            failing_devices_by_isp=_sum_dicts(
                self.failing_devices_by_isp,
                other.failing_devices_by_isp,
            ),
            failures_per_device=_sum_dicts(self.failures_per_device,
                                           other.failures_per_device),
            duration_hist=_merge_hists(self.duration_hist,
                                       other.duration_hist),
            duration_hist_by_type=merged_type_hists,
        )

    def to_block(self) -> dict:
        """The JSON-able, deterministically ordered metadata block."""
        return {
            "duration_hist": dict(self.duration_hist),
            "duration_hist_by_type": {
                ftype: dict(self.duration_hist_by_type[ftype])
                for ftype in sorted(self.duration_hist_by_type)
            },
            "failing_devices": self.failing_devices,
            "failing_devices_by_isp": {
                k: self.failing_devices_by_isp[k]
                for k in sorted(self.failing_devices_by_isp)
            },
            "failures_by_isp": {
                k: self.failures_by_isp[k]
                for k in sorted(self.failures_by_isp)
            },
            "failures_by_level": {
                k: self.failures_by_level[k]
                for k in sorted(self.failures_by_level)
            },
            "failures_by_type": {
                k: self.failures_by_type[k]
                for k in sorted(self.failures_by_type)
            },
            "failures_per_device": {
                k: self.failures_per_device[k]
                for k in sorted(self.failures_per_device, key=int)
            },
            "max_failures_single_device": self.max_failures_single_device,
            "n_devices": self.n_devices,
            "n_failures": self.n_failures,
            "n_transitions": self.n_transitions,
            "oos_devices": self.oos_devices,
            "transitions_executed": self.transitions_executed,
            "transitions_failed_after": self.transitions_failed_after,
        }


_BLOCK_FIELDS = (
    "n_devices", "n_failures", "n_transitions", "failing_devices",
    "oos_devices", "transitions_executed", "transitions_failed_after",
    "max_failures_single_device", "failures_by_type",
    "failures_by_level", "failures_by_isp", "failing_devices_by_isp",
    "failures_per_device", "duration_hist", "duration_hist_by_type",
)


def compute_analysis_block(dataset: "Dataset") -> dict:
    """The ``metadata["analysis"]`` block of one dataset (or shard)."""
    return AnalysisPartial.from_dataset(dataset).to_block()


def merge_analysis_blocks(blocks: list[dict]) -> dict:
    """Fold per-shard analysis blocks into the run-level block.

    Commutative and exact: when the blocks cover disjoint device
    populations (shards always do), the result is byte-identical (in
    sorted JSON form) to :func:`compute_analysis_block` over the merged
    records.  For overlapping populations (the two arms of an A/B run)
    the distinct-device counters sum per block instead.
    """
    if not blocks:
        raise ValueError("nothing to merge")
    merged = AnalysisPartial.from_block(blocks[0])
    for block in blocks[1:]:
        merged = merged.merge(AnalysisPartial.from_block(block))
    return merged.to_block()


def analysis_summary(block: dict) -> dict:
    """Derived headline statistics of an analysis block.

    Pure arithmetic over the exact integer aggregates — the same
    numbers :func:`repro.analysis.stats.compute_general_stats` reports,
    available without any records in memory.
    """
    n_devices = block["n_devices"]
    n_failures = block["n_failures"]
    hist = block["duration_hist"]
    executed = block["transitions_executed"]
    return {
        "prevalence": (
            block["failing_devices"] / n_devices if n_devices else 0.0
        ),
        "frequency": n_failures / n_devices if n_devices else 0.0,
        "mean_duration_s": (
            hist["sum_scaled"] / SUM_SCALE / hist["count"]
            if hist["count"] else 0.0
        ),
        "total_duration_s": hist["sum_scaled"] / SUM_SCALE,
        "max_failures_single_device": block["max_failures_single_device"],
        "fraction_devices_without_oos": (
            1.0 - block["oos_devices"] / n_devices if n_devices else 1.0
        ),
        "transition_failure_rate": (
            block["transitions_failed_after"] / executed
            if executed else 0.0
        ),
        "count_share_by_type": {
            ftype: count / n_failures
            for ftype, count in sorted(block["failures_by_type"].items())
        } if n_failures else {},
    }
