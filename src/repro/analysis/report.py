"""Text renderers for every table and figure the benchmarks regenerate.

Each ``render_*`` function prints the same rows/series the paper
reports, as plain text tables, so a benchmark run reads like the
evaluation section.
"""

from __future__ import annotations

from io import StringIO

import numpy as np

from repro.analysis import decomposition, isp_bs, landscape, stats
from repro.analysis.evaluation import ABEvaluation
from repro.analysis.transitions import TransitionMatrix
from repro.dataset.store import Dataset


def render_table1(dataset: Dataset) -> str:
    """The measured Table 1 (per-model prevalence and frequency)."""
    rows = landscape.per_model_stats(dataset)
    out = StringIO()
    out.write("Model  Devices  5G   Version  Prevalence  Frequency\n")
    for row in rows:
        out.write(
            f"{row.model:>5}  {row.n_devices:>7}  "
            f"{'YES' if row.has_5g else '-':>3}  "
            f"{row.android_version:>7}  "
            f"{row.prevalence:>9.1%}  {row.frequency:>9.1f}\n"
        )
    return out.getvalue()


def render_table2(dataset: Dataset, top: int = 10) -> str:
    """The measured Table 2 (top error codes with shares)."""
    rows = decomposition.error_code_decomposition(dataset, top=top)
    out = StringIO()
    out.write("Error Code                      Layer     Pct\n")
    for row in rows:
        out.write(
            f"{row.code:<30}  {row.layer.value:<8}  {row.share:>5.1%}\n"
        )
    cumulative = sum(row.share for row in rows)
    out.write(f"{'cumulative':<30}  {'':<8}  {cumulative:>5.1%}\n")
    return out.getvalue()


def render_general_stats(dataset: Dataset) -> str:
    """The Sec. 3.1 headline numbers."""
    g = stats.compute_general_stats(dataset)
    lines = [
        f"devices: {g.n_devices}",
        f"failures: {g.n_failures}",
        f"prevalence: {g.prevalence:.1%}",
        f"frequency: {g.frequency:.1f} failures/device",
        f"mean duration: {g.mean_duration_s:.0f} s",
        f"median duration: {g.median_duration_s:.1f} s",
        f"max duration: {g.max_duration_s:.0f} s",
        f"failures under 30 s: {g.fraction_under_30s:.1%}",
        f"headline-type share: {g.headline_type_share:.1%}",
        "duration share by type: "
        + ", ".join(
            f"{ftype}={share:.1%}"
            for ftype, share in sorted(g.duration_share_by_type.items())
        ),
    ]
    return "\n".join(lines) + "\n"


def render_cdf(values, probabilities, points: int = 10,
               label: str = "value") -> str:
    """A sampled text rendering of a CDF series."""
    out = StringIO()
    out.write(f"{label:>12}  CDF\n")
    if len(values) == 0:
        return out.getvalue()
    indexes = np.unique(
        np.linspace(0, len(values) - 1, points).astype(int)
    )
    for i in indexes:
        out.write(f"{values[i]:>12.2f}  {probabilities[i]:.3f}\n")
    return out.getvalue()


def render_isp_stats(dataset: Dataset) -> str:
    """Figs. 12-13 as text."""
    out = StringIO()
    out.write("ISP     Devices  Prevalence  Frequency\n")
    for row in isp_bs.per_isp_stats(dataset):
        out.write(
            f"{row.isp:<6}  {row.n_devices:>7}  "
            f"{row.prevalence:>9.1%}  {row.frequency:>9.1f}\n"
        )
    return out.getvalue()


def render_level_series(series: dict[int, float],
                        label: str = "normalized prevalence") -> str:
    """Fig. 15/16-style per-level series."""
    out = StringIO()
    out.write(f"level  {label}\n")
    if not series:
        return out.getvalue()
    peak = max(series.values()) or 1.0
    for level in sorted(series):
        bar = "#" * int(40 * series[level] / peak)
        out.write(f"{level:>5}  {series[level]:>10.4f}  {bar}\n")
    return out.getvalue()


def render_transition_matrix(matrix: TransitionMatrix) -> str:
    """One Fig. 17 panel as a text heatmap."""
    out = StringIO()
    out.write(
        f"{matrix.from_rat} level-i -> {matrix.to_rat} level-j "
        "(failure-likelihood increase)\n"
    )
    out.write("i\\j " + "".join(f"{j:>8}" for j in range(6)) + "\n")
    for i in range(6):
        cells = []
        for j in range(6):
            value = matrix.increase[i][j]
            cells.append("     ---" if np.isnan(value)
                         else f"{value:>8.2f}")
        out.write(f"{i:>3} " + "".join(cells) + "\n")
    return out.getvalue()


def render_ab_evaluation(evaluation: ABEvaluation) -> str:
    """Figs. 19-21 as text."""
    lines = [
        "5G-phone prevalence reduction: "
        f"{evaluation.prevalence_reduction_5g:+.1%}",
        "5G-phone frequency reduction:  "
        f"{evaluation.frequency_reduction_5g:+.1%}",
    ]
    for failure_type, delta in sorted(evaluation.per_type.items()):
        lines.append(
            f"  {failure_type}: prevalence {delta.prevalence_reduction:+.1%}"
            f", frequency {delta.frequency_reduction:+.1%}"
        )
    lines += [
        "Data_Stall duration reduction: "
        f"{evaluation.stall_duration_reduction:+.1%}",
        "total duration reduction:      "
        f"{evaluation.total_duration_reduction:+.1%}",
        f"median duration: {evaluation.median_duration_before_s:.1f} s -> "
        f"{evaluation.median_duration_after_s:.1f} s",
    ]
    return "\n".join(lines) + "\n"
