"""The paper's analysis pipeline: general statistics (Sec. 3.1), the
Android-phone landscape (Sec. 3.2), error-code decomposition (Table 2),
the ISP/BS landscape (Sec. 3.3), RAT-transition matrices (Fig. 17), and
the A/B evaluation of the enhancements (Sec. 4.3).  Everything here is
computed from dataset records only — never copied from quantities."""

from repro.analysis.columnar import (
    AnalysisPartial,
    ColumnarView,
    analysis_summary,
    columnar,
    compute_analysis_block,
    invalidate_columnar,
    merge_analysis_blocks,
)
from repro.analysis.stats import GeneralStats, compute_general_stats
from repro.analysis.landscape import (
    ModelStats,
    compare_5g,
    compare_android_versions,
    per_model_stats,
)
from repro.analysis.decomposition import error_code_decomposition
from repro.analysis.isp_bs import (
    bs_failure_ranking,
    fit_zipf,
    normalized_prevalence_by_level,
    normalized_prevalence_by_rat_level,
    per_isp_stats,
    per_rat_bs_prevalence,
)
from repro.analysis.transitions import transition_increase_matrix
from repro.analysis.evaluation import ABEvaluation, evaluate_ab

__all__ = [
    "AnalysisPartial",
    "ColumnarView",
    "analysis_summary",
    "columnar",
    "compute_analysis_block",
    "invalidate_columnar",
    "merge_analysis_blocks",
    "GeneralStats",
    "compute_general_stats",
    "ModelStats",
    "per_model_stats",
    "compare_5g",
    "compare_android_versions",
    "error_code_decomposition",
    "bs_failure_ranking",
    "fit_zipf",
    "per_isp_stats",
    "per_rat_bs_prevalence",
    "normalized_prevalence_by_level",
    "normalized_prevalence_by_rat_level",
    "transition_increase_matrix",
    "ABEvaluation",
    "evaluate_ab",
]
