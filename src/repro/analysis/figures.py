"""SVG renderings of the paper's figures.

A small dependency-free SVG chart kit (bars, grouped bars, CDFs,
log-log scatter, heatmaps) plus :func:`render_paper_figures`, which
turns a study dataset (and optionally its patched-arm pair) into one
SVG file per reproducible figure.  The goal is inspectability: open
``figures/fig15_rss.svg`` next to the paper's Figure 15 and compare
shapes directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.analysis import isp_bs, landscape, stats, transitions
from repro.analysis.evaluation import evaluate_ab
from repro.dataset.store import Dataset

# ---------------------------------------------------------------------------
# SVG primitives
# ---------------------------------------------------------------------------

_FONT = "font-family='Helvetica,Arial,sans-serif'"
#: A colour-blind-safe pair for two-series charts.
SERIES_COLORS = ("#3b6fb6", "#d1703c", "#5a9e6f", "#8d6cab")
AXIS_COLOR = "#444444"
GRID_COLOR = "#dddddd"


def _escape(text: str) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


@dataclass
class SvgCanvas:
    """Accumulates SVG elements and serializes them."""

    width: int
    height: int
    _elements: list[str] = field(default_factory=list)

    def rect(self, x: float, y: float, w: float, h: float,
             fill: str, opacity: float = 1.0) -> None:
        self._elements.append(
            f"<rect x='{x:.1f}' y='{y:.1f}' width='{w:.1f}' "
            f"height='{h:.1f}' fill='{fill}' "
            f"fill-opacity='{opacity:.2f}'/>"
        )

    def line(self, x1: float, y1: float, x2: float, y2: float,
             stroke: str = AXIS_COLOR, width: float = 1.0) -> None:
        self._elements.append(
            f"<line x1='{x1:.1f}' y1='{y1:.1f}' x2='{x2:.1f}' "
            f"y2='{y2:.1f}' stroke='{stroke}' "
            f"stroke-width='{width:.1f}'/>"
        )

    def polyline(self, points: list[tuple[float, float]],
                 stroke: str, width: float = 1.5) -> None:
        path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self._elements.append(
            f"<polyline points='{path}' fill='none' stroke='{stroke}' "
            f"stroke-width='{width:.1f}'/>"
        )

    def text(self, x: float, y: float, content: str,
             size: int = 11, anchor: str = "start",
             color: str = "#222222") -> None:
        self._elements.append(
            f"<text x='{x:.1f}' y='{y:.1f}' font-size='{size}' "
            f"text-anchor='{anchor}' fill='{color}' {_FONT}>"
            f"{_escape(content)}</text>"
        )

    def to_svg(self) -> str:
        body = "\n".join(self._elements)
        return (
            f"<svg xmlns='http://www.w3.org/2000/svg' "
            f"width='{self.width}' height='{self.height}' "
            f"viewBox='0 0 {self.width} {self.height}'>\n"
            f"<rect width='{self.width}' height='{self.height}' "
            f"fill='white'/>\n{body}\n</svg>\n"
        )


@dataclass(frozen=True)
class _Frame:
    """The plot area inside a canvas, with data-space scaling."""

    left: float
    top: float
    right: float
    bottom: float
    x_min: float
    x_max: float
    y_min: float
    y_max: float
    log_x: bool = False
    log_y: bool = False

    def x(self, value: float) -> float:
        lo, hi = self.x_min, self.x_max
        if self.log_x:
            value, lo, hi = (math.log10(max(value, 1e-12)),
                             math.log10(max(lo, 1e-12)),
                             math.log10(max(hi, 1e-12)))
        span = (hi - lo) or 1.0
        return self.left + (value - lo) / span * (self.right - self.left)

    def y(self, value: float) -> float:
        lo, hi = self.y_min, self.y_max
        if self.log_y:
            value, lo, hi = (math.log10(max(value, 1e-12)),
                             math.log10(max(lo, 1e-12)),
                             math.log10(max(hi, 1e-12)))
        span = (hi - lo) or 1.0
        return self.bottom - (value - lo) / span * (self.bottom - self.top)


def _chart_scaffold(title: str, width: int = 520,
                    height: int = 320) -> tuple[SvgCanvas, _Frame]:
    canvas = SvgCanvas(width, height)
    canvas.text(width / 2, 22, title, size=14, anchor="middle")
    frame = _Frame(left=60, top=40, right=width - 20,
                   bottom=height - 45, x_min=0, x_max=1,
                   y_min=0, y_max=1)
    return canvas, frame


def _draw_axes(canvas: SvgCanvas, frame: _Frame,
               x_label: str, y_label: str) -> None:
    canvas.line(frame.left, frame.bottom, frame.right, frame.bottom)
    canvas.line(frame.left, frame.top, frame.left, frame.bottom)
    canvas.text((frame.left + frame.right) / 2,
                frame.bottom + 34, x_label, anchor="middle")
    canvas.text(14, (frame.top + frame.bottom) / 2, y_label,
                anchor="middle")


# ---------------------------------------------------------------------------
# Chart builders
# ---------------------------------------------------------------------------


def bar_chart(values: dict[str, float], title: str,
              y_label: str = "", percent: bool = False,
              color: str = SERIES_COLORS[0]) -> str:
    """A simple labelled bar chart."""
    if not values:
        raise ValueError("nothing to plot")
    canvas, frame = _chart_scaffold(title)
    peak = max(values.values()) or 1.0
    frame = _Frame(**{**frame.__dict__, "y_max": peak * 1.1})
    _draw_axes(canvas, frame, "", y_label)
    n = len(values)
    slot = (frame.right - frame.left) / n
    for index, (label, value) in enumerate(values.items()):
        x = frame.left + index * slot + slot * 0.15
        y = frame.y(value)
        canvas.rect(x, y, slot * 0.7, frame.bottom - y, fill=color)
        shown = f"{value:.1%}" if percent else f"{value:.3g}"
        canvas.text(x + slot * 0.35, y - 4, shown, size=9,
                    anchor="middle")
        canvas.text(x + slot * 0.35, frame.bottom + 14, str(label),
                    size=9, anchor="middle")
    return canvas.to_svg()


def grouped_bar_chart(groups: dict[str, dict[str, float]], title: str,
                      y_label: str = "", percent: bool = False) -> str:
    """Bars per category, one colour per series (Figs. 6-9, 12-13)."""
    if not groups:
        raise ValueError("nothing to plot")
    series = list(next(iter(groups.values())))
    canvas, frame = _chart_scaffold(title)
    peak = max(v for group in groups.values() for v in group.values())
    frame = _Frame(**{**frame.__dict__, "y_max": (peak or 1.0) * 1.15})
    _draw_axes(canvas, frame, "", y_label)
    n = len(groups)
    slot = (frame.right - frame.left) / n
    bar = slot * 0.7 / max(len(series), 1)
    for g_index, (label, group) in enumerate(groups.items()):
        base = frame.left + g_index * slot + slot * 0.15
        for s_index, name in enumerate(series):
            value = group[name]
            x = base + s_index * bar
            y = frame.y(value)
            canvas.rect(x, y, bar * 0.9, frame.bottom - y,
                        fill=SERIES_COLORS[s_index % len(SERIES_COLORS)])
            shown = f"{value:.1%}" if percent else f"{value:.3g}"
            canvas.text(x + bar * 0.45, y - 3, shown, size=8,
                        anchor="middle")
        canvas.text(base + slot * 0.35, frame.bottom + 14, label,
                    size=9, anchor="middle")
    for s_index, name in enumerate(series):
        x = frame.left + 10 + s_index * 120
        canvas.rect(x, 28, 10, 10,
                    fill=SERIES_COLORS[s_index % len(SERIES_COLORS)])
        canvas.text(x + 14, 37, name, size=9)
    return canvas.to_svg()


def cdf_chart(series: dict[str, tuple[np.ndarray, np.ndarray]],
              title: str, x_label: str, log_x: bool = False) -> str:
    """Empirical CDF curves (Figs. 3, 4, 10)."""
    if not series:
        raise ValueError("nothing to plot")
    canvas, frame = _chart_scaffold(title)
    x_max = max(float(xs[-1]) for xs, _ in series.values() if len(xs))
    x_min = 0.1 if log_x else 0.0
    frame = _Frame(**{**frame.__dict__, "x_min": x_min,
                      "x_max": x_max or 1.0, "log_x": log_x})
    _draw_axes(canvas, frame, x_label, "CDF")
    for fraction in (0.25, 0.5, 0.75, 1.0):
        y = frame.y(fraction)
        canvas.line(frame.left, y, frame.right, y, stroke=GRID_COLOR)
        canvas.text(frame.left - 6, y + 3, f"{fraction:.2f}", size=8,
                    anchor="end")
    for index, (label, (xs, ps)) in enumerate(series.items()):
        if len(xs) == 0:
            continue
        step = max(1, len(xs) // 300)
        points = [(frame.x(max(float(x), x_min)), frame.y(float(p)))
                  for x, p in zip(xs[::step], ps[::step])]
        color = SERIES_COLORS[index % len(SERIES_COLORS)]
        canvas.polyline(points, stroke=color)
        canvas.text(frame.left + 10, 40 + 14 * index, label, size=9,
                    color=color)
    return canvas.to_svg()


def loglog_scatter(values: np.ndarray, title: str, x_label: str,
                   y_label: str, fit_a: float | None = None,
                   fit_b: float | None = None) -> str:
    """Descending ranking on log-log axes with a Zipf fit (Fig. 11)."""
    positive = values[values > 0]
    if len(positive) < 2:
        raise ValueError("need at least two positive values")
    canvas, frame = _chart_scaffold(title)
    frame = _Frame(**{**frame.__dict__, "x_min": 1.0,
                      "x_max": float(len(positive)),
                      "y_min": max(float(positive[-1]), 0.5),
                      "y_max": float(positive[0]),
                      "log_x": True, "log_y": True})
    _draw_axes(canvas, frame, x_label, y_label)
    step = max(1, len(positive) // 400)
    points = [
        (frame.x(index + 1), frame.y(float(positive[index])))
        for index in range(0, len(positive), step)
    ]
    canvas.polyline(points, stroke=SERIES_COLORS[0])
    if fit_a is not None and fit_b is not None:
        fit_points = [
            (frame.x(rank), frame.y(fit_b / rank**fit_a))
            for rank in (1, 10, 100, len(positive))
            if fit_b / rank**fit_a > 0
        ]
        canvas.polyline(fit_points, stroke=SERIES_COLORS[1], width=1.0)
        canvas.text(frame.left + 10, 40,
                    f"fit: y = {fit_b:.1f} / rank^{fit_a:.2f}", size=9,
                    color=SERIES_COLORS[1])
    return canvas.to_svg()


def heatmap(matrix: np.ndarray, title: str, x_label: str,
            y_label: str) -> str:
    """A level-i x level-j increase heatmap (Fig. 17 panels)."""
    if matrix.shape != (6, 6):
        raise ValueError("expected a 6x6 level matrix")
    canvas = SvgCanvas(460, 420)
    canvas.text(230, 22, title, size=14, anchor="middle")
    cell = 52
    left, top = 70, 50
    finite = matrix[np.isfinite(matrix)]
    peak = float(np.nanmax(np.abs(finite))) if len(finite) else 1.0
    peak = peak or 1.0
    for i in range(6):
        for j in range(6):
            x = left + j * cell
            y = top + i * cell
            value = matrix[i][j]
            if np.isnan(value):
                canvas.rect(x, y, cell - 2, cell - 2, fill="#f2f2f2")
                canvas.text(x + cell / 2, y + cell / 2 + 4, "-",
                            size=10, anchor="middle", color="#aaaaaa")
                continue
            intensity = min(1.0, abs(value) / peak)
            fill = "#b03030" if value > 0 else "#3b6fb6"
            canvas.rect(x, y, cell - 2, cell - 2, fill=fill,
                        opacity=0.15 + 0.85 * intensity)
            canvas.text(x + cell / 2, y + cell / 2 + 4,
                        f"{value:+.2f}", size=9, anchor="middle")
    for level in range(6):
        canvas.text(left + level * cell + cell / 2, top - 8,
                    str(level), size=10, anchor="middle")
        canvas.text(left - 10, top + level * cell + cell / 2 + 4,
                    str(level), size=10, anchor="end")
    canvas.text(left + 3 * cell, top + 6 * cell + 28, x_label,
                size=11, anchor="middle")
    canvas.text(20, top + 3 * cell, y_label, size=11, anchor="middle")
    return canvas.to_svg()


# ---------------------------------------------------------------------------
# Paper-figure rendering
# ---------------------------------------------------------------------------


def render_paper_figures(
    vanilla: Dataset,
    patched: Dataset | None = None,
    out_dir: str | Path = "figures",
) -> list[Path]:
    """Render every reproducible figure of the paper to SVG files.

    Returns the list of written paths.  Figures 19-21 need the patched
    arm and are skipped when ``patched`` is None.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    def emit(name: str, svg: str) -> None:
        path = out / name
        path.write_text(svg)
        written.append(path)

    models = landscape.per_model_stats(vanilla)
    emit("fig02_prevalence_per_model.svg", bar_chart(
        {str(m.model): m.prevalence for m in models},
        "Fig. 2 - prevalence per model", percent=True,
    ))
    emit("fig05_frequency_per_model.svg", bar_chart(
        {str(m.model): m.frequency for m in models},
        "Fig. 5 - failures per device per model",
    ))
    emit("fig03_failures_per_phone.svg", cdf_chart(
        {"failures/phone": stats.failures_per_phone_cdf(vanilla)},
        "Fig. 3 - failures per phone (CDF)", "failures", log_x=True,
    ))
    emit("fig04_duration.svg", cdf_chart(
        {"all failures": stats.duration_cdf(vanilla)},
        "Fig. 4 - failure duration (CDF)", "seconds", log_x=True,
    ))
    comparison = landscape.compare_5g(vanilla)
    emit("fig06_07_5g.svg", grouped_bar_chart(
        {
            "prevalence": {"5G": comparison.prevalence_a,
                           "non-5G": comparison.prevalence_b},
            "frequency/50": {"5G": comparison.frequency_a / 50,
                             "non-5G": comparison.frequency_b / 50},
        },
        "Figs. 6-7 - 5G vs non-5G",
    ))
    versions = landscape.compare_android_versions(vanilla)
    emit("fig08_09_android.svg", grouped_bar_chart(
        {
            "prevalence": {"Android 10": versions.prevalence_a,
                           "Android 9": versions.prevalence_b},
            "frequency/50": {"Android 10": versions.frequency_a / 50,
                             "Android 9": versions.frequency_b / 50},
        },
        "Figs. 8-9 - Android 10 vs 9",
    ))
    emit("fig10_stall_autofix.svg", cdf_chart(
        {"auto-fixed stalls": stats.stall_autofix_cdf(vanilla)},
        "Fig. 10 - Data_Stall auto-fix time (CDF)", "seconds",
        log_x=True,
    ))
    ranking = isp_bs.bs_failure_ranking(vanilla)
    fit = isp_bs.fit_zipf(ranking)
    emit("fig11_bs_zipf.svg", loglog_scatter(
        ranking, "Fig. 11 - BS ranking by failures", "rank",
        "failures", fit_a=fit.a, fit_b=fit.b,
    ))
    isp_stats = isp_bs.per_isp_stats(vanilla)
    emit("fig12_13_isp.svg", grouped_bar_chart(
        {
            s.isp: {"prevalence": s.prevalence,
                    "frequency/100": s.frequency / 100}
            for s in isp_stats
        },
        "Figs. 12-13 - per-ISP prevalence and frequency",
    ))
    emit("fig14_rat.svg", bar_chart(
        isp_bs.per_rat_bs_prevalence(vanilla),
        "Fig. 14 - BS failure prevalence by RAT", percent=True,
        color=SERIES_COLORS[2],
    ))
    emit("fig15_rss.svg", bar_chart(
        {str(level): value for level, value in
         isp_bs.normalized_prevalence_by_level(vanilla).items()},
        "Fig. 15 - normalized prevalence by signal level",
    ))
    by_rat = isp_bs.normalized_prevalence_by_rat_level(vanilla)
    emit("fig16_rat_rss.svg", grouped_bar_chart(
        {str(level): {"4G": by_rat["4G"][level],
                      "5G": by_rat["5G"][level]}
         for level in range(6)},
        "Fig. 16 - normalized prevalence by RAT and level",
    ))
    for (from_rat, to_rat), matrix in (
        transitions.all_transition_matrices(vanilla).items()
    ):
        emit(f"fig17_{from_rat}_{to_rat}.svg".lower(), heatmap(
            matrix.increase,
            f"Fig. 17 - {from_rat} level-i to {to_rat} level-j",
            f"{to_rat} level j", f"{from_rat} level i",
        ))

    if patched is not None:
        evaluation = evaluate_ab(vanilla, patched)
        emit("fig19_20_rat_ab.svg", grouped_bar_chart(
            {
                failure_type: {
                    "prevalence cut": max(
                        0.0, delta.prevalence_reduction),
                    "frequency cut": max(
                        0.0, delta.frequency_reduction),
                }
                for failure_type, delta in evaluation.per_type.items()
            },
            "Figs. 19-20 - per-type reductions on 5G phones",
            percent=True,
        ))
        emit("fig21_durations.svg", bar_chart(
            {
                "stall duration cut": evaluation.stall_duration_reduction,
                "total duration cut": evaluation.total_duration_reduction,
            },
            "Fig. 21 - duration reductions (patched vs vanilla)",
            percent=True, color=SERIES_COLORS[1],
        ))
    return written
