"""Device-side socket transport for the live ingest service.

:class:`SocketTransport` is an :class:`~repro.monitoring.uploader.UploadBatcher`
transport callable: returning means *acked and owned by the server*;
raising means the payload stays spooled.  The exceptions carry the
server's advice as attributes the batcher understands:

* ``retry_after_s`` — fold this delay into the backoff gate
  (:class:`RetryAfter`, and :class:`ServeUnavailable` when the server
  hinted at its breaker timer);
* ``permanent`` — drop the payload with explicit accounting, retrying
  is futile (:class:`PayloadTooLarge`).

The connection is persistent and lazily (re)established, so a server
restart mid-run costs the client one :class:`ServeConnectionError`
per flush attempt until the service is back — which the batcher's
exponential backoff already paces.

It composes with :class:`~repro.chaos.transport.ChaosTransport` in
either direction; the overload harness wraps chaos *around* the socket
so injected faults and real socket behaviour stack.
"""

from __future__ import annotations

import socket

from repro.serve import protocol


class TransportSignal(RuntimeError):
    """Base class for non-ack outcomes of a socket send."""

    #: The batcher drops the payload when True (no retry can succeed).
    permanent = False
    #: Suggested delay before the next flush attempt (seconds).
    retry_after_s: float | None = None


class ServeConnectionError(TransportSignal):
    """Could not reach the service (down, restarting, or mid-crash)."""


class RetryAfter(TransportSignal):
    """Backpressure: the admission queue refused the payload."""

    def __init__(self, retry_after_s: float) -> None:
        super().__init__(f"server asked to retry in {retry_after_s:.3f}s")
        self.retry_after_s = retry_after_s


class ServeUnavailable(TransportSignal):
    """The service is draining or its circuit breaker is open."""

    def __init__(self, retry_after_s: float = 0.0) -> None:
        super().__init__("service unavailable")
        # A zero hint means "none given"; leave the batcher's own
        # backoff schedule in charge.
        self.retry_after_s = retry_after_s or None


class PayloadTooLarge(TransportSignal):
    """The frame exceeds the server's limit; never retryable."""

    permanent = True


class QueryError(TransportSignal):
    """The server rejected or failed the query itself (RESULT_ERROR)."""

    permanent = True


class SocketTransport:
    """A persistent framed-TCP channel to one ingest service."""

    def __init__(self, host: str, port: int, sender: int = 0,
                 timeout_s: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.sender = sender
        self.timeout_s = timeout_s
        self._sock: socket.socket | None = None
        # -- accounting --
        self.sends = 0
        self.acked = 0
        self.connect_failures = 0

    def __call__(self, payload: bytes) -> None:
        """Send one payload; returning means the server owns it."""
        self.sends += 1
        sock = self._connected()
        try:
            protocol.write_request(sock, payload, self.sender)
            status, retry_after_s = protocol.read_ack(sock)
        except (OSError, protocol.ProtocolError) as exc:
            # The ack never arrived: the send is indeterminate, which
            # the ack protocol resolves as "not acked, retry" — the
            # server's dedup absorbs the replay if it did land.
            self.close()
            raise ServeConnectionError(
                f"lost connection mid-send: {exc!r}"
            ) from None
        if status == protocol.ACK_OK:
            self.acked += 1
            return
        if status == protocol.ACK_RETRY_AFTER:
            raise RetryAfter(retry_after_s)
        if status == protocol.ACK_UNAVAILABLE:
            raise ServeUnavailable(retry_after_s)
        # ACK_TOO_LARGE: the server hangs up after this ack.
        self.close()
        raise PayloadTooLarge(
            f"payload of {len(payload)} bytes exceeds the server limit"
        )

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "SocketTransport":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- internals -----------------------------------------------------------

    def _connected(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
        except OSError as exc:
            self.connect_failures += 1
            raise ServeConnectionError(
                f"cannot reach {self.host}:{self.port}: {exc!r}"
            ) from None
        sock.settimeout(self.timeout_s)
        self._sock = sock
        return sock


class QueryClient(SocketTransport):
    """A framed-TCP client for the service's live query plane.

    Shares the persistent-connection discipline of
    :class:`SocketTransport` (lazy reconnect, one
    :class:`ServeConnectionError` per attempt while the service is
    down) but speaks QUERY/RESULT frames.  :meth:`query` returns the
    full response envelope — ``result`` (the analysis sub-block),
    ``watermark``, ``skipped_segments``, and ``cache`` counters — and
    maps the non-OK statuses onto the transport-signal hierarchy:
    :class:`RetryAfter` (plane shed the query),
    :class:`ServeUnavailable` (draining), :class:`QueryError`
    (unknown kind / engine fault; permanent).
    """

    def query(self, kind: str, options: dict | None = None) -> dict:
        """Run one query; returns the response envelope."""
        sock = self._connected()
        try:
            protocol.write_query(sock, kind, options)
            status, body = protocol.read_result(sock)
        except (OSError, protocol.ProtocolError) as exc:
            self.close()
            raise ServeConnectionError(
                f"lost connection mid-query: {exc!r}"
            ) from None
        if status == protocol.RESULT_OK:
            return body
        if status == protocol.RESULT_RETRY:
            raise RetryAfter(float(body.get("retry_after_s", 0.0)
                                   or 1.0))
        if status == protocol.RESULT_UNAVAILABLE:
            raise ServeUnavailable()
        raise QueryError(body.get("error", "query failed"))

    def stats(self) -> dict:
        return self.query("stats")

    def isp_bs(self) -> dict:
        return self.query("isp_bs")

    def transitions(self) -> dict:
        return self.query("transitions")

    def summary(self) -> dict:
        return self.query("summary")
