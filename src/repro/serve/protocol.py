"""Wire protocol between device uploaders and the live ingest service.

A deliberately tiny binary framing — the payloads themselves are the
zlib-compressed JSON records :class:`repro.monitoring.uploader.UploadBatcher`
already produces, so the service adds only what a socket needs:

* **request frame** — ``!IQ`` header (payload length, sender id)
  followed by the payload bytes.  The sender id lets the server apply
  per-device admission policy (fair share) without decompressing the
  payload on the accept path; ``0`` means anonymous.
* **ack frame** — ``!BI`` (status byte, argument).  The argument is
  the suggested retry delay in **milliseconds** for
  :data:`ACK_RETRY_AFTER` and zero otherwise.
* **query frame** — a 4-byte magic (``b"QRY"`` + a version byte)
  followed by ``!BI`` (query code, options length) and an optional
  JSON options blob.  The magic doubles as the frame discriminator:
  request frames start with their payload length, which
  :data:`MAX_FRAME_LIMIT` keeps strictly below the magic's integer
  value, so one 4-byte read tells the server which frame it is
  reading.  The version byte lets the wire format evolve without a
  second port — a server that does not speak the client's version
  answers with an explanatory :data:`RESULT_ERROR` instead of
  misparsing the stream.
* **result frame** — ``!BI`` (status byte, body length) followed by a
  JSON body: the query answer for :data:`RESULT_OK`, and a diagnostic
  object (``retry_after_s`` / ``error``) otherwise.

Ack semantics mirror the uploader's exception-based ack protocol:

* :data:`ACK_OK` — the payload is durably admitted; the server now owns
  it (it will be ingested, quarantined, or carried across a drain
  checkpoint — never silently lost).
* :data:`ACK_RETRY_AFTER` — backpressure: the admission queue refused
  the payload.  The sender keeps it spooled and folds the suggested
  delay into its backoff gate.
* :data:`ACK_UNAVAILABLE` — the service is draining or its downstream
  circuit breaker is open; retry later (no suggested delay).
* :data:`ACK_TOO_LARGE` — the frame exceeded the server's limit; the
  payload can never be accepted and the sender should drop it with
  explicit accounting (a *permanent* rejection).

Frame reads honour a deadline via socket timeouts — a sender that
stalls mid-frame (slow loris) hits :class:`FrameTimeout` server-side
and the connection is closed, never holding a handler thread hostage.
"""

from __future__ import annotations

import json
import socket
import struct

#: Request frame header: payload length (u32), sender id (u64).
REQUEST_HEADER = struct.Struct("!IQ")
#: Ack frame: status (u8), argument (u32; retry-after millis).
ACK_FRAME = struct.Struct("!BI")

#: Default cap on a single payload (bytes); frames declaring more are
#: refused with :data:`ACK_TOO_LARGE` and the connection is dropped.
MAX_FRAME_BYTES = 1 << 20

#: Hard ceiling on any configured frame limit.  Keeping every legal
#: payload length strictly below the query magic's integer value
#: (``b"QRY\\x01"`` is 0x51525901) makes the first four bytes of a
#: frame an unambiguous discriminator between request and query
#: frames.
MAX_FRAME_LIMIT = 1 << 30

ACK_OK = 0x00
ACK_RETRY_AFTER = 0x01
ACK_UNAVAILABLE = 0x02
ACK_TOO_LARGE = 0x03

ACK_NAMES = {
    ACK_OK: "ok",
    ACK_RETRY_AFTER: "retry-after",
    ACK_UNAVAILABLE: "unavailable",
    ACK_TOO_LARGE: "too-large",
}

# -- query plane (QUERY / RESULT frames) ------------------------------------

#: First three bytes of every query frame, any version.
QUERY_MAGIC = b"QRY"
#: Current query wire-format version (the magic's fourth byte).
QUERY_VERSION = 1

#: Query frame body after the magic: query code (u8), options length
#: (u32; a JSON object, ``{}`` encoded as zero bytes).
QUERY_HEADER = struct.Struct("!BI")
#: Result frame: status (u8), JSON body length (u32).
RESULT_HEADER = struct.Struct("!BI")

#: Cap on a result body — analysis blocks are small; anything larger
#: is a framing error, not a legitimate answer.
MAX_RESULT_BYTES = 1 << 24
#: Cap on a query options blob.
MAX_QUERY_OPTIONS_BYTES = 1 << 16

RESULT_OK = 0x00
#: The query work queue refused the request (shed / timed out); the
#: body carries ``retry_after_s``.
RESULT_RETRY = 0x01
#: The service is draining.
RESULT_UNAVAILABLE = 0x02
#: The request itself failed (unknown kind, unsupported version,
#: engine fault); the body carries ``error``.
RESULT_ERROR = 0x03

RESULT_NAMES = {
    RESULT_OK: "ok",
    RESULT_RETRY: "retry",
    RESULT_UNAVAILABLE: "unavailable",
    RESULT_ERROR: "error",
}

#: Wire codes for the supported query kinds.
QUERY_CODES = {
    "stats": 0x01,
    "isp_bs": 0x02,
    "transitions": 0x03,
    "summary": 0x04,
}
QUERY_KINDS = {code: kind for kind, code in QUERY_CODES.items()}


class ProtocolError(RuntimeError):
    """The byte stream violated the framing contract."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection (mid-frame or between frames)."""

    def __init__(self, message: str, *, clean: bool = False) -> None:
        super().__init__(message)
        #: True when the close fell exactly on a frame boundary.
        self.clean = clean


class FrameTimeout(ProtocolError):
    """The peer stalled past the read deadline mid-frame."""


class FrameTooLarge(ProtocolError):
    """A frame header declared a payload above the size limit."""

    def __init__(self, declared: int, limit: int) -> None:
        super().__init__(
            f"frame declares {declared} bytes, limit is {limit}"
        )
        self.declared = declared
        self.limit = limit


class UnsupportedQueryVersion(ProtocolError):
    """A query frame spoke a wire-format version we do not."""

    def __init__(self, version: int) -> None:
        super().__init__(
            f"query wire version {version} unsupported "
            f"(this end speaks {QUERY_VERSION})"
        )
        self.version = version


def recv_exact(sock: socket.socket, n: int, *,
               at_boundary: bool = False) -> bytes:
    """Read exactly ``n`` bytes or raise.

    ``at_boundary`` marks the read as the start of a frame, so an EOF
    with zero bytes buffered is a *clean* close (the peer simply hung
    up between frames) rather than a truncation.
    """
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except (socket.timeout, TimeoutError):
            raise FrameTimeout(
                f"peer stalled with {remaining} of {n} bytes unread"
            ) from None
        if not chunk:
            clean = at_boundary and not chunks
            raise ConnectionClosed(
                "peer closed the connection"
                + ("" if clean else " mid-frame"),
                clean=clean,
            )
        chunks.append(chunk)
        remaining -= len(chunk)
        at_boundary = False
    return b"".join(chunks)


def read_request(sock: socket.socket,
                 max_frame_bytes: int = MAX_FRAME_BYTES
                 ) -> tuple[int, bytes]:
    """Read one request frame; returns ``(sender_id, payload)``.

    The size check happens on the header alone, *before* any payload
    bytes are read, so an oversized frame costs the server 12 bytes of
    input — the body is never buffered.
    """
    header = recv_exact(sock, REQUEST_HEADER.size, at_boundary=True)
    length, sender = REQUEST_HEADER.unpack(header)
    if length > max_frame_bytes:
        raise FrameTooLarge(length, max_frame_bytes)
    payload = recv_exact(sock, length)
    return sender, payload


def write_request(sock: socket.socket, payload: bytes,
                  sender: int = 0) -> None:
    sock.sendall(REQUEST_HEADER.pack(len(payload), sender) + payload)


def read_ack(sock: socket.socket) -> tuple[int, float]:
    """Read one ack; returns ``(status, retry_after_s)``."""
    status, arg = ACK_FRAME.unpack(
        recv_exact(sock, ACK_FRAME.size, at_boundary=True)
    )
    if status not in ACK_NAMES:
        raise ProtocolError(f"unknown ack status {status:#x}")
    return status, arg / 1000.0


def write_ack(sock: socket.socket, status: int,
              retry_after_s: float = 0.0) -> None:
    millis = max(0, min(0xFFFFFFFF, int(round(retry_after_s * 1000))))
    sock.sendall(ACK_FRAME.pack(status, millis))


# -- query plane frames -----------------------------------------------------


def read_frame(sock: socket.socket,
               max_frame_bytes: int = MAX_FRAME_BYTES):
    """Read one frame of either kind off a server-side connection.

    Returns ``("ingest", sender_id, payload)`` for a request frame or
    ``("query", kind, options)`` for a query frame.  The first four
    bytes decide: request frames lead with their payload length, which
    is capped below the query magic's integer value, so the prefixes
    cannot collide.
    """
    prefix = recv_exact(sock, 4, at_boundary=True)
    if prefix[:3] == QUERY_MAGIC:
        version = prefix[3]
        if version != QUERY_VERSION:
            raise UnsupportedQueryVersion(version)
        code, options_len = QUERY_HEADER.unpack(
            recv_exact(sock, QUERY_HEADER.size)
        )
        if options_len > MAX_QUERY_OPTIONS_BYTES:
            raise FrameTooLarge(options_len, MAX_QUERY_OPTIONS_BYTES)
        options = {}
        if options_len:
            blob = recv_exact(sock, options_len)
            try:
                options = json.loads(blob.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise ProtocolError(
                    f"query options are not valid JSON: {exc}"
                ) from None
        kind = QUERY_KINDS.get(code)
        if kind is None:
            raise ProtocolError(f"unknown query code {code:#x}")
        return ("query", kind, options)
    rest = recv_exact(sock, REQUEST_HEADER.size - 4)
    length, sender = REQUEST_HEADER.unpack(prefix + rest)
    if length > max_frame_bytes:
        raise FrameTooLarge(length, max_frame_bytes)
    return ("ingest", sender, recv_exact(sock, length))


def write_query(sock: socket.socket, kind: str,
                options: dict | None = None) -> None:
    """Send one query frame (client side)."""
    code = QUERY_CODES.get(kind)
    if code is None:
        raise ValueError(
            f"unknown query kind {kind!r}; "
            f"expected one of {', '.join(sorted(QUERY_CODES))}"
        )
    blob = b""
    if options:
        blob = json.dumps(options, sort_keys=True).encode("utf-8")
    if len(blob) > MAX_QUERY_OPTIONS_BYTES:
        raise FrameTooLarge(len(blob), MAX_QUERY_OPTIONS_BYTES)
    sock.sendall(
        QUERY_MAGIC + bytes([QUERY_VERSION])
        + QUERY_HEADER.pack(code, len(blob)) + blob
    )


def read_result(sock: socket.socket) -> tuple[int, dict]:
    """Read one result frame; returns ``(status, body)``."""
    status, length = RESULT_HEADER.unpack(
        recv_exact(sock, RESULT_HEADER.size, at_boundary=True)
    )
    if status not in RESULT_NAMES:
        raise ProtocolError(f"unknown result status {status:#x}")
    if length > MAX_RESULT_BYTES:
        raise FrameTooLarge(length, MAX_RESULT_BYTES)
    body = {}
    if length:
        blob = recv_exact(sock, length)
        try:
            body = json.loads(blob.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ProtocolError(
                f"result body is not valid JSON: {exc}"
            ) from None
    return status, body


def write_result(sock: socket.socket, status: int,
                 body: dict | None = None) -> None:
    """Send one result frame (server side)."""
    blob = b""
    if body:
        blob = json.dumps(body, sort_keys=True).encode("utf-8")
    if len(blob) > MAX_RESULT_BYTES:
        raise FrameTooLarge(len(blob), MAX_RESULT_BYTES)
    sock.sendall(RESULT_HEADER.pack(status, len(blob)) + blob)
