"""Wire protocol between device uploaders and the live ingest service.

A deliberately tiny binary framing — the payloads themselves are the
zlib-compressed JSON records :class:`repro.monitoring.uploader.UploadBatcher`
already produces, so the service adds only what a socket needs:

* **request frame** — ``!IQ`` header (payload length, sender id)
  followed by the payload bytes.  The sender id lets the server apply
  per-device admission policy (fair share) without decompressing the
  payload on the accept path; ``0`` means anonymous.
* **ack frame** — ``!BI`` (status byte, argument).  The argument is
  the suggested retry delay in **milliseconds** for
  :data:`ACK_RETRY_AFTER` and zero otherwise.

Ack semantics mirror the uploader's exception-based ack protocol:

* :data:`ACK_OK` — the payload is durably admitted; the server now owns
  it (it will be ingested, quarantined, or carried across a drain
  checkpoint — never silently lost).
* :data:`ACK_RETRY_AFTER` — backpressure: the admission queue refused
  the payload.  The sender keeps it spooled and folds the suggested
  delay into its backoff gate.
* :data:`ACK_UNAVAILABLE` — the service is draining or its downstream
  circuit breaker is open; retry later (no suggested delay).
* :data:`ACK_TOO_LARGE` — the frame exceeded the server's limit; the
  payload can never be accepted and the sender should drop it with
  explicit accounting (a *permanent* rejection).

Frame reads honour a deadline via socket timeouts — a sender that
stalls mid-frame (slow loris) hits :class:`FrameTimeout` server-side
and the connection is closed, never holding a handler thread hostage.
"""

from __future__ import annotations

import socket
import struct

#: Request frame header: payload length (u32), sender id (u64).
REQUEST_HEADER = struct.Struct("!IQ")
#: Ack frame: status (u8), argument (u32; retry-after millis).
ACK_FRAME = struct.Struct("!BI")

#: Default cap on a single payload (bytes); frames declaring more are
#: refused with :data:`ACK_TOO_LARGE` and the connection is dropped.
MAX_FRAME_BYTES = 1 << 20

ACK_OK = 0x00
ACK_RETRY_AFTER = 0x01
ACK_UNAVAILABLE = 0x02
ACK_TOO_LARGE = 0x03

ACK_NAMES = {
    ACK_OK: "ok",
    ACK_RETRY_AFTER: "retry-after",
    ACK_UNAVAILABLE: "unavailable",
    ACK_TOO_LARGE: "too-large",
}


class ProtocolError(RuntimeError):
    """The byte stream violated the framing contract."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection (mid-frame or between frames)."""

    def __init__(self, message: str, *, clean: bool = False) -> None:
        super().__init__(message)
        #: True when the close fell exactly on a frame boundary.
        self.clean = clean


class FrameTimeout(ProtocolError):
    """The peer stalled past the read deadline mid-frame."""


class FrameTooLarge(ProtocolError):
    """A frame header declared a payload above the size limit."""

    def __init__(self, declared: int, limit: int) -> None:
        super().__init__(
            f"frame declares {declared} bytes, limit is {limit}"
        )
        self.declared = declared
        self.limit = limit


def recv_exact(sock: socket.socket, n: int, *,
               at_boundary: bool = False) -> bytes:
    """Read exactly ``n`` bytes or raise.

    ``at_boundary`` marks the read as the start of a frame, so an EOF
    with zero bytes buffered is a *clean* close (the peer simply hung
    up between frames) rather than a truncation.
    """
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except (socket.timeout, TimeoutError):
            raise FrameTimeout(
                f"peer stalled with {remaining} of {n} bytes unread"
            ) from None
        if not chunk:
            clean = at_boundary and not chunks
            raise ConnectionClosed(
                "peer closed the connection"
                + ("" if clean else " mid-frame"),
                clean=clean,
            )
        chunks.append(chunk)
        remaining -= len(chunk)
        at_boundary = False
    return b"".join(chunks)


def read_request(sock: socket.socket,
                 max_frame_bytes: int = MAX_FRAME_BYTES
                 ) -> tuple[int, bytes]:
    """Read one request frame; returns ``(sender_id, payload)``.

    The size check happens on the header alone, *before* any payload
    bytes are read, so an oversized frame costs the server 12 bytes of
    input — the body is never buffered.
    """
    header = recv_exact(sock, REQUEST_HEADER.size, at_boundary=True)
    length, sender = REQUEST_HEADER.unpack(header)
    if length > max_frame_bytes:
        raise FrameTooLarge(length, max_frame_bytes)
    payload = recv_exact(sock, length)
    return sender, payload


def write_request(sock: socket.socket, payload: bytes,
                  sender: int = 0) -> None:
    sock.sendall(REQUEST_HEADER.pack(len(payload), sender) + payload)


def read_ack(sock: socket.socket) -> tuple[int, float]:
    """Read one ack; returns ``(status, retry_after_s)``."""
    status, arg = ACK_FRAME.unpack(
        recv_exact(sock, ACK_FRAME.size, at_boundary=True)
    )
    if status not in ACK_NAMES:
        raise ProtocolError(f"unknown ack status {status:#x}")
    return status, arg / 1000.0


def write_ack(sock: socket.socket, status: int,
              retry_after_s: float = 0.0) -> None:
    millis = max(0, min(0xFFFFFFFF, int(round(retry_after_s * 1000))))
    sock.sendall(ACK_FRAME.pack(status, millis))
