"""Bounded admission queue with explicit overload policies.

The queue sits between the socket front end and the single ingest
worker.  Its one invariant: **an admitted payload is owned** — it is
either ingested, or shed *with its record identity accounted* so
:func:`repro.chaos.reconcile.reconcile` can classify the loss, or
carried across a drain checkpoint.  Nothing admitted ever vanishes.

Overload is a policy decision, made per offered payload while full:

* ``reject-newest`` — refuse the newcomer with a retry-after signal.
  Nothing already acked is lost; the sender keeps the payload spooled.
* ``shed-oldest`` — evict the oldest queued payload to admit the new
  one (freshest data is worth most — the same bias as the uploader's
  spool).  The evicted payload was already acked, so its identity goes
  into :attr:`AdmissionQueue.shed_keys` as an explicit server-side
  loss.
* ``fair-share`` — the queue looks for the sender hogging the largest
  share.  If the newcomer's own sender is the hog (or ties for it),
  the newcomer is rejected with retry-after; otherwise the hog's
  oldest payload is shed to make room.  Heavy producers throttle
  themselves; light producers keep flowing.

The suggested retry delay scales linearly with how far past capacity
demand is, between ``retry_after_s`` and ``4 * retry_after_s`` —
deterministic, so tests and paired runs see stable signals.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.chaos.reconcile import payload_key
from repro.obs import get_registry

POLICIES = ("reject-newest", "shed-oldest", "fair-share")


@dataclass(slots=True)
class QueuedPayload:
    """One admitted payload waiting for the ingest worker."""

    payload: bytes
    sender: int
    #: ``time.monotonic()`` at admission (queue-latency accounting);
    #: zero for payloads restored from a drain checkpoint.
    admitted_at: float = 0.0
    #: Downstream ingest attempts that faulted on this payload (the
    #: per-payload retry budget; transient outages do not count).
    attempts: int = 0


@dataclass
class Decision:
    """Outcome of one :meth:`AdmissionQueue.offer`."""

    admitted: bool
    #: Suggested client delay (seconds) when not admitted.
    retry_after_s: float = 0.0
    #: Payloads evicted to make room (already acked; accounted).
    shed: list[QueuedPayload] = field(default_factory=list)


class AdmissionQueue:
    """Bounded FIFO between the front end and the ingest worker.

    Thread-safe: handler threads :meth:`offer`, the ingest worker
    :meth:`pop` (blocking) and may :meth:`requeue_front` a payload the
    downstream refused.  ``requeue_front`` is exempt from the bound —
    the payload is already owned and must not be lost.
    """

    def __init__(self, capacity: int = 1024,
                 policy: str = "reject-newest",
                 retry_after_s: float = 5.0) -> None:
        if capacity < 1:
            raise ValueError("admission queue needs capacity >= 1")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown admission policy {policy!r}; "
                f"expected one of {', '.join(POLICIES)}"
            )
        if retry_after_s <= 0:
            raise ValueError("retry_after_s must be positive")
        self.capacity = capacity
        self.policy = policy
        self.retry_after_s = retry_after_s
        self._entries: deque[QueuedPayload] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        # -- accounting (all under the lock) --
        self.admitted = 0
        self.rejected = 0
        self.shed = 0
        self.shed_bytes = 0
        #: Record identities of shed payloads (server-side losses).
        self.shed_keys: list[str] = []
        #: Rejections since the queue was last below capacity — drives
        #: the escalating retry-after suggestion.
        self._pressure = 0
        self.depth_high_watermark = 0

    # -- front-end side ------------------------------------------------------

    def offer(self, payload: bytes, sender: int = 0,
              admitted_at: float = 0.0) -> Decision:
        """Try to admit one payload under the configured policy."""
        registry = get_registry()
        with self._lock:
            if len(self._entries) < self.capacity:
                self._pressure = 0
                return self._admit(payload, sender, admitted_at)
            if self.policy == "reject-newest":
                return self._reject(registry)
            if self.policy == "shed-oldest":
                victim = self._entries.popleft()
                self._account_shed(victim, registry)
                decision = self._admit(payload, sender, admitted_at)
                decision.shed.append(victim)
                return decision
            # fair-share: shed from the hog, unless the hog is us.
            hog = self._largest_sender()
            if hog == sender:
                return self._reject(registry)
            victim = self._pop_oldest_from(hog)
            self._account_shed(victim, registry)
            decision = self._admit(payload, sender, admitted_at)
            decision.shed.append(victim)
            return decision

    # -- worker side ---------------------------------------------------------

    def pop(self, timeout: float | None = None) -> QueuedPayload | None:
        """Blocking pop; ``None`` on timeout."""
        with self._not_empty:
            if not self._entries and not self._not_empty.wait_for(
                lambda: bool(self._entries), timeout=timeout
            ):
                return None
            return self._entries.popleft()

    def requeue_front(self, entry: QueuedPayload) -> None:
        """Put an owned payload back at the head (downstream refused)."""
        with self._not_empty:
            self._entries.appendleft(entry)
            self._not_empty.notify()

    def shed_entry(self, entry: QueuedPayload, policy: str) -> None:
        """Shed one owned payload that is *not* queued, with identity
        accounting (the worker's poison-quarantine path).

        ``policy`` labels the ``serve_shed_total`` increment so these
        losses stay distinguishable from overload sheds.
        """
        with self._lock:
            self._account_shed(entry, get_registry(), policy=policy)

    # -- drain / restore -----------------------------------------------------

    def drain_all(self) -> list[QueuedPayload]:
        """Take every queued payload (drain-to-checkpoint path)."""
        with self._lock:
            entries = list(self._entries)
            self._entries.clear()
            return entries

    def restore(self, payloads: list[tuple[bytes, int]]) -> None:
        """Refill from a checkpoint (bound-exempt: already owned)."""
        with self._not_empty:
            for payload, sender in payloads:
                self._entries.append(QueuedPayload(payload, sender))
            if self._entries:
                self._not_empty.notify_all()

    def restore_accounting(self, admission: dict) -> None:
        """Adopt checkpointed accounting across a drain/resume hop.

        The checkpoint's ``admission`` block carries the counters
        :meth:`summary` exported plus the shed identities; without
        them a resumed service would report pre-restart server-side
        sheds as unexplained losses during reconciliation.
        """
        with self._lock:
            self.admitted = int(admission.get("admitted",
                                              self.admitted))
            self.rejected = int(admission.get("rejected",
                                              self.rejected))
            self.shed = int(admission.get("shed", self.shed))
            self.shed_bytes = int(admission.get("shed_bytes",
                                                self.shed_bytes))
            self.depth_high_watermark = max(
                self.depth_high_watermark,
                int(admission.get("depth_high_watermark", 0)),
                len(self._entries),
            )
            self.shed_keys.extend(
                str(key) for key in admission.get("shed_keys", ())
            )

    def discard_remaining(self, policy: str = "drain-discard") -> int:
        """Shed everything still queued, identities accounted.

        The no-checkpoint drain path: the queue owns these payloads
        and has nowhere to carry them, so they become explicit
        server-side losses (``shed_keys``) instead of vanishing.
        Returns how many payloads were discarded.
        """
        registry = get_registry()
        with self._lock:
            victims = list(self._entries)
            self._entries.clear()
            for victim in victims:
                self._account_shed(victim, registry, policy=policy)
            return len(victims)

    # -- queries -------------------------------------------------------------

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._entries)

    def payload_keys(self) -> set[str]:
        """Record identities of everything currently queued."""
        with self._lock:
            payloads = [entry.payload for entry in self._entries]
        keys = set()
        for payload in payloads:
            key = payload_key(payload)
            if key is not None:
                keys.add(key)
        return keys

    def summary(self) -> dict[str, float]:
        with self._lock:
            return {
                "depth": float(len(self._entries)),
                "depth_high_watermark": float(self.depth_high_watermark),
                "admitted": float(self.admitted),
                "rejected": float(self.rejected),
                "shed": float(self.shed),
                "shed_bytes": float(self.shed_bytes),
            }

    # -- internals (call with the lock held) ---------------------------------

    def _admit(self, payload: bytes, sender: int,
               admitted_at: float) -> Decision:
        self._entries.append(QueuedPayload(payload, sender, admitted_at))
        self.admitted += 1
        depth = len(self._entries)
        if depth > self.depth_high_watermark:
            self.depth_high_watermark = depth
        registry = get_registry()
        if registry.enabled:
            registry.inc("serve_admitted_total")
            registry.gauge_set("serve_queue_depth", depth)
        self._not_empty.notify()
        return Decision(admitted=True)

    def _reject(self, registry) -> Decision:
        self.rejected += 1
        self._pressure += 1
        registry.inc("serve_rejected_total", policy=self.policy)
        # Escalate the suggestion with sustained pressure, capped at 4x.
        scale = 1.0 + min(3.0, self._pressure / self.capacity)
        return Decision(admitted=False,
                        retry_after_s=self.retry_after_s * scale)

    def _account_shed(self, victim: QueuedPayload, registry,
                      policy: str | None = None) -> None:
        self.shed += 1
        self.shed_bytes += len(victim.payload)
        registry.inc("serve_shed_total", policy=policy or self.policy)
        key = payload_key(victim.payload)
        if key is not None:
            self.shed_keys.append(key)

    def _largest_sender(self) -> int:
        counts: dict[int, int] = {}
        for entry in self._entries:
            counts[entry.sender] = counts.get(entry.sender, 0) + 1
        # Deterministic tie-break: smallest sender id among the hogs.
        top = max(counts.values())
        return min(s for s, c in counts.items() if c == top)

    def _pop_oldest_from(self, sender: int) -> QueuedPayload:
        for index, entry in enumerate(self._entries):
            if entry.sender == sender:
                del self._entries[index]
                return entry
        raise RuntimeError(
            f"no queued payload from sender {sender}"
        )  # pragma: no cover - guarded by _largest_sender
