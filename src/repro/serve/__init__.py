"""``repro.serve`` — the overload-resilient live ingest service.

Promotes the in-process :class:`repro.backend.ingest.IngestionServer`
to a long-lived TCP service in the probe-fleet → central-collection
shape of the paper's 70M-user platform: framed uploads with explicit
acks, a bounded admission queue with pluggable overload policies,
a circuit breaker around the ingest path, slow-loris read deadlines,
graceful drain to a resumable checkpoint, and a live **query plane**
(:mod:`repro.serve.query`) answering ``stats`` / ``isp_bs`` /
``transitions`` / ``summary`` over a snapshot-consistent fold while
ingest continues.  See ``docs/architecture.md`` ("Live ingest
service") for the design and ``docs/api.md`` for the protocol table.
"""

from repro.serve.admission import AdmissionQueue, Decision, POLICIES
from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitOpen,
)
from repro.serve.client import (
    PayloadTooLarge,
    QueryClient,
    QueryError,
    RetryAfter,
    ServeConnectionError,
    ServeUnavailable,
    SocketTransport,
    TransportSignal,
)
from repro.serve.protocol import (
    ACK_NAMES,
    ACK_OK,
    ACK_RETRY_AFTER,
    ACK_TOO_LARGE,
    ACK_UNAVAILABLE,
    MAX_FRAME_BYTES,
    QUERY_VERSION,
    RESULT_NAMES,
)
from repro.serve.query import (
    PartialCache,
    QUERY_KINDS,
    QueryEngine,
    QueryPlane,
    SegmentPartial,
)
from repro.serve.service import (
    CHECKPOINT_FORMAT,
    DrainResult,
    IngestService,
    ServeConfig,
)

__all__ = [
    "ACK_NAMES",
    "ACK_OK",
    "ACK_RETRY_AFTER",
    "ACK_TOO_LARGE",
    "ACK_UNAVAILABLE",
    "AdmissionQueue",
    "CHECKPOINT_FORMAT",
    "CLOSED",
    "CircuitBreaker",
    "CircuitOpen",
    "Decision",
    "DrainResult",
    "HALF_OPEN",
    "IngestService",
    "MAX_FRAME_BYTES",
    "OPEN",
    "POLICIES",
    "PartialCache",
    "PayloadTooLarge",
    "QUERY_KINDS",
    "QUERY_VERSION",
    "QueryClient",
    "QueryEngine",
    "QueryError",
    "QueryPlane",
    "RESULT_NAMES",
    "RetryAfter",
    "SegmentPartial",
    "ServeConfig",
    "ServeConnectionError",
    "ServeUnavailable",
    "SocketTransport",
    "TransportSignal",
]
