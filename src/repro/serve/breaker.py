"""Circuit breaker around the downstream ingest path.

Classic three-state breaker, sized for the one consumer it protects
(the single ingest worker thread):

* **closed** — requests flow; consecutive failures are counted and
  ``failure_threshold`` of them trip the breaker;
* **open** — requests are refused without touching the downstream
  (the front end answers ``ACK_UNAVAILABLE``); after
  ``reset_timeout_s`` the breaker half-opens;
* **half-open** — a limited number of probe requests are let through;
  one success closes the breaker, one failure re-opens it and re-arms
  the timer.

The clock is injectable so tests (and the deterministic overload
harness) can drive state transitions without sleeping.  Every
transition is counted in the obs registry
(``serve_breaker_transitions_total{from=...,to=...}``) and the current
state is exported as a gauge — high-watermark semantics, so a value of
1.0/2.0 in a merged snapshot means "the breaker opened/half-opened at
some point", which is exactly the forensic question.
"""

from __future__ import annotations

import threading
import time

from repro.obs import get_registry

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Gauge encoding (high-watermark: "ever reached this state or worse").
STATE_GAUGE = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


class CircuitOpen(RuntimeError):
    """The breaker is open; the downstream was not consulted."""


class CircuitBreaker:
    """Trips on repeated downstream faults; recovers via probes."""

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout_s: float = 30.0,
                 half_open_probes: int = 1,
                 clock=time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_probes = half_open_probes
        self.clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        # -- accounting --
        self.trips = 0
        self.recoveries = 0
        self.short_circuits = 0
        # Export the initial state so a breaker that never trips is
        # still visible (gauge present, at 0.0) in every snapshot.
        registry = get_registry()
        if registry.enabled:
            registry.gauge_set("serve_breaker_state",
                               STATE_GAUGE[CLOSED])

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """May one request proceed right now?

        In half-open state this *claims a probe slot*: callers that get
        ``True`` must report back via :meth:`record_success` /
        :meth:`record_failure`.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                self.short_circuits += 1
                get_registry().inc("serve_breaker_short_circuits_total")
                return False
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            self.short_circuits += 1
            get_registry().inc("serve_breaker_short_circuits_total")
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._probes_in_flight = 0
                self.recoveries += 1
                self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                # The probe failed: back to open, timer re-armed.
                self._probes_in_flight = 0
                self._opened_at = self.clock()
                self._transition(OPEN)
                return
            self._consecutive_failures += 1
            if (self._state == CLOSED
                    and self._consecutive_failures
                    >= self.failure_threshold):
                self.trips += 1
                self._opened_at = self.clock()
                get_registry().inc("serve_breaker_trips_total")
                self._transition(OPEN)

    def retry_in_s(self) -> float:
        """Seconds until the breaker half-opens (0 when not open)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(
                0.0,
                self._opened_at + self.reset_timeout_s - self.clock(),
            )

    def summary(self) -> dict[str, float]:
        with self._lock:
            self._maybe_half_open()
            return {
                "state": STATE_GAUGE[self._state],
                "trips": float(self.trips),
                "recoveries": float(self.recoveries),
                "short_circuits": float(self.short_circuits),
                "consecutive_failures": float(
                    self._consecutive_failures
                ),
            }

    # -- internals (call with the lock held) ---------------------------------

    def _maybe_half_open(self) -> None:
        if (self._state == OPEN
                and self.clock() - self._opened_at
                >= self.reset_timeout_s):
            self._transition(HALF_OPEN)

    def _transition(self, to_state: str) -> None:
        from_state = self._state
        if from_state == to_state:
            return
        self._state = to_state
        self._consecutive_failures = 0
        registry = get_registry()
        registry.inc("serve_breaker_transitions_total",
                     **{"from": from_state, "to": to_state})
        registry.gauge_set("serve_breaker_state",
                           STATE_GAUGE[to_state])
