"""The live query plane: streaming answers while ingest continues.

The service's other half.  Ingest makes the store grow; this module
answers ``stats`` / ``isp_bs`` / ``transitions`` / ``summary``
requests over it *live*, with three guarantees:

* **Exactness** — a query answer is byte-identical (in sorted-JSON
  form) to the offline ``analysis`` block computed over the same
  records.  The distinct-device counters make this non-trivial:
  :class:`~repro.analysis.columnar.AnalysisPartial` merges are exact
  only across device-disjoint populations, and one device's records
  spread across many segments.  :class:`SegmentPartial` therefore
  carries the per-device evidence (failure counts, OUT_OF_SERVICE
  membership, per-ISP device sets) alongside the plain partial; the
  fold merges the exactly-summable fields through ``AnalysisPartial``
  and re-derives the distinct-device fields from the merged evidence.
* **Snapshot consistency** — a fold runs over
  :meth:`~repro.store.SegmentStore.query_snapshot` (taken under the
  store's mutation guard), so it never observes a half-applied seal
  even though the ingest worker keeps appending underneath it.
* **Incrementality** — sealed segments are immutable, so their
  :class:`SegmentPartial` is cached keyed by the segment's committed
  sha256 digest.  A steady-state fold recomputes only the unsealed
  tail; cache entries whose digest left the live set (scrub
  quarantined the segment, or a re-seal superseded it) are invalidated
  with accounting.

The :class:`QueryPlane` puts a bounded work queue and a single worker
thread in front of the engine so query load degrades by *shedding
queries* (``RESULT_RETRY`` + ``query_shed_total``), never by starving
the ingest worker — the two planes share nothing but the store mutex,
which folds hold only for the snapshot copy.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace

from repro.obs import LATENCY_BUCKETS_S, get_registry

#: The queries the plane answers, in wire-code order.
QUERY_KINDS = ("stats", "isp_bs", "transitions", "summary")

#: Analysis-block fields each projection query returns.  ``summary``
#: is derived (see :func:`repro.analysis.columnar.analysis_summary`),
#: not a projection.
STATS_FIELDS = (
    "duration_hist", "duration_hist_by_type", "failing_devices",
    "failures_by_level", "failures_by_type", "failures_per_device",
    "max_failures_single_device", "n_devices", "n_failures",
    "oos_devices",
)
ISP_BS_FIELDS = ("failing_devices_by_isp", "failures_by_isp")
TRANSITIONS_FIELDS = (
    "n_transitions", "transitions_executed", "transitions_failed_after",
)


class QueryPlaneError(RuntimeError):
    """The query plane could not answer (bad kind, engine fault)."""


def _empty_partial():
    from repro.analysis.columnar import AnalysisPartial
    from repro.dataset.store import Dataset

    return AnalysisPartial.from_dataset(Dataset())


@dataclass(frozen=True)
class SegmentPartial:
    """One record batch reduced to exactly-mergeable evidence.

    ``partial`` holds the fields that sum exactly across *any* record
    partition (counts, count dicts, integer histograms).  The three
    evidence maps carry what the distinct-device fields need when the
    same device appears in several batches: merged folds union them
    and re-derive ``failing_devices`` / ``oos_devices`` /
    ``max_failures_single_device`` / ``failures_per_device`` /
    ``failing_devices_by_isp`` — making the whole fold exact without
    requiring device-disjoint batches.
    """

    partial: object
    #: device_id -> number of failures in this batch.
    device_failures: dict
    #: device_ids with >= 1 OUT_OF_SERVICE failure in this batch.
    oos_devices: frozenset
    #: isp -> frozenset of device_ids with >= 1 failure on that ISP.
    isp_devices: dict

    @classmethod
    def from_rows(cls, rows: list) -> "SegmentPartial":
        """Reduce raw record dicts (store rows) to a partial."""
        from repro.analysis.columnar import AnalysisPartial
        from repro.dataset.records import FailureRecord
        from repro.dataset.store import Dataset

        failures = [FailureRecord.from_dict(row) for row in rows]
        device_failures: dict = {}
        oos: set = set()
        isp_devices: dict = {}
        for record in failures:
            device = int(record.device_id)
            device_failures[device] = device_failures.get(device, 0) + 1
            if record.failure_type == "OUT_OF_SERVICE":
                oos.add(device)
            isp_devices.setdefault(record.isp, set()).add(device)
        return cls(
            partial=AnalysisPartial.from_dataset(
                Dataset(failures=failures)
            ),
            device_failures=device_failures,
            oos_devices=frozenset(oos),
            isp_devices={isp: frozenset(devices)
                         for isp, devices in isp_devices.items()},
        )


class _Fold:
    """Accumulates :class:`SegmentPartial` batches into one block."""

    def __init__(self) -> None:
        self.partial = _empty_partial()
        self.device_failures: dict = {}
        self.oos: set = set()
        self.isp_devices: dict = {}

    def add(self, batch: SegmentPartial) -> None:
        self.partial = self.partial.merge(batch.partial)
        for device, count in batch.device_failures.items():
            self.device_failures[device] = (
                self.device_failures.get(device, 0) + count
            )
        self.oos |= batch.oos_devices
        for isp, devices in batch.isp_devices.items():
            self.isp_devices.setdefault(isp, set()).update(devices)

    def block(self) -> dict:
        """The exact analysis block of everything added so far."""
        per_device = self.device_failures
        failures_per_device: dict = {}
        for count in per_device.values():
            key = str(count)
            failures_per_device[key] = (
                failures_per_device.get(key, 0) + 1
            )
        corrected = replace(
            self.partial,
            failing_devices=len(per_device),
            oos_devices=len(self.oos),
            max_failures_single_device=max(per_device.values(),
                                           default=0),
            failures_per_device=failures_per_device,
            failing_devices_by_isp={
                isp: len(devices)
                for isp, devices in self.isp_devices.items()
            },
        )
        return corrected.to_block()


class PartialCache:
    """Per-segment partials keyed by the committed sha256 digest.

    Sealed segments are immutable, so a digest fully identifies the
    batch — entries never go stale, they only become unreachable when
    their segment leaves the live set (quarantine or supersede), at
    which point :meth:`prune` drops them with accounting.  Accessed
    only from the query worker thread; no locking.
    """

    def __init__(self) -> None:
        self._entries: dict[str, SegmentPartial] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str) -> SegmentPartial | None:
        batch = self._entries.get(digest)
        if batch is None:
            self.misses += 1
        else:
            self.hits += 1
        return batch

    def put(self, digest: str, batch: SegmentPartial) -> None:
        self._entries[digest] = batch

    def prune(self, live_digests: set) -> int:
        """Evict entries for segments no longer live; returns count."""
        dead = [digest for digest in self._entries
                if digest not in live_digests]
        for digest in dead:
            del self._entries[digest]
        self.invalidations += len(dead)
        return len(dead)


@dataclass
class FoldResult:
    """One snapshot-consistent fold, with its provenance."""

    block: dict
    watermark: dict
    skipped: list = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0


class QueryEngine:
    """Folds analysis blocks over a live :class:`IngestionServer`.

    Store-backed servers fold sealed segments (through the
    :class:`PartialCache`) plus the WAL-owned tail; legacy in-memory
    servers fold ``server.records`` directly.  Single-threaded by
    contract: only the query worker calls :meth:`fold`.
    """

    def __init__(self, server) -> None:
        self.server = server
        self.cache = PartialCache()

    def fold(self) -> FoldResult:
        from repro.store.segment import SegmentCorruptError

        registry = get_registry()
        store = self.server.store
        if store is None:
            return self._fold_memory()
        snapshot = store.query_snapshot()
        hits_before = self.cache.hits
        misses_before = self.cache.misses
        pruned = self.cache.prune(
            {entry["sha256"] for entry in snapshot.live.values()}
        )
        if pruned and registry.enabled:
            registry.inc("query_cache_invalidations_total", pruned)
        fold = _Fold()
        skipped: list[dict] = []
        n_segments = 0
        for name in sorted(snapshot.live):
            entry = snapshot.live[name]
            batch = self.cache.get(entry["sha256"])
            if batch is None:
                try:
                    rows = store.read_segment(name, entry=entry)
                except SegmentCorruptError as exc:
                    registry.inc("query_segments_skipped_total")
                    skipped.append({"segment": name,
                                    "reason": exc.reason})
                    continue
                batch = SegmentPartial.from_rows(rows)
                self.cache.put(entry["sha256"], batch)
            fold.add(batch)
            n_segments += 1
        tail_rows = snapshot.tail_rows()
        if tail_rows:
            fold.add(SegmentPartial.from_rows(tail_rows))
        hits = self.cache.hits - hits_before
        misses = self.cache.misses - misses_before
        if registry.enabled:
            if hits:
                registry.inc("query_cache_hits_total", hits)
            if misses:
                registry.inc("query_cache_misses_total", misses)
        block = fold.block()
        return FoldResult(
            block=block,
            watermark={
                "mode": "store",
                "n_records": snapshot.n_records,
                "folded_records": block["n_failures"],
                "n_segments": n_segments,
                "n_tail": len(tail_rows),
            },
            skipped=skipped,
            cache_hits=hits,
            cache_misses=misses,
        )

    def _fold_memory(self) -> FoldResult:
        from repro.analysis.columnar import AnalysisPartial
        from repro.dataset.store import Dataset

        # list() takes a consistent prefix snapshot: the worker only
        # ever appends, so records beyond the copy are simply "after
        # the watermark".
        records = list(self.server.records)
        block = AnalysisPartial.from_dataset(
            Dataset(failures=records)
        ).to_block()
        return FoldResult(
            block=block,
            watermark={
                "mode": "memory",
                "n_records": len(records),
                "folded_records": block["n_failures"],
                "n_segments": 0,
                "n_tail": 0,
            },
        )

    def answer(self, kind: str) -> dict:
        """The full response envelope for one query kind."""
        from repro.analysis.columnar import analysis_summary

        if kind not in QUERY_KINDS:
            raise QueryPlaneError(
                f"unknown query kind {kind!r}; "
                f"expected one of {', '.join(QUERY_KINDS)}"
            )
        fold = self.fold()
        if kind == "stats":
            result = {key: fold.block[key] for key in STATS_FIELDS}
        elif kind == "isp_bs":
            result = {key: fold.block[key] for key in ISP_BS_FIELDS}
        elif kind == "transitions":
            result = {key: fold.block[key]
                      for key in TRANSITIONS_FIELDS}
        else:  # summary
            result = analysis_summary(fold.block)
        return {
            "query": kind,
            "watermark": fold.watermark,
            "result": result,
            "skipped_segments": fold.skipped,
            "cache": {"hits": fold.cache_hits,
                      "misses": fold.cache_misses},
        }


class _Ticket:
    """One queued query: the handler thread waits, the worker fills."""

    __slots__ = ("kind", "done", "status", "body", "abandoned",
                 "enqueued_at")

    def __init__(self, kind: str, enqueued_at: float) -> None:
        self.kind = kind
        self.done = threading.Event()
        self.status: int | None = None
        self.body: dict | None = None
        #: Set by the handler when it gave up waiting; the worker
        #: skips the fold instead of computing an answer nobody reads.
        self.abandoned = False
        self.enqueued_at = enqueued_at


class QueryPlane:
    """Bounded query-work queue + one worker, with shedding.

    Handler threads :meth:`submit` and wait on the returned ticket;
    ``None`` means the queue was full and the query was shed (the
    caller answers ``RESULT_RETRY``).  The single worker serializes
    folds, which keeps the :class:`PartialCache` lock-free and bounds
    the query plane's CPU share to one core regardless of client
    count.
    """

    def __init__(self, engine: QueryEngine, capacity: int = 16,
                 timeout_s: float = 10.0,
                 retry_after_s: float = 1.0) -> None:
        if capacity < 1:
            raise ValueError("query queue needs capacity >= 1")
        if timeout_s <= 0:
            raise ValueError("query timeout must be positive")
        self.engine = engine
        self.capacity = capacity
        self.timeout_s = timeout_s
        self.retry_after_s = retry_after_s
        self._pending: deque[_Ticket] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # -- accounting --
        self.answered = 0
        self.shed = 0
        self.errors = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("query plane already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._worker_loop, name="serve-query", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        with self._not_empty:
            self._not_empty.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- handler side --------------------------------------------------------

    def submit(self, kind: str) -> _Ticket | None:
        """Enqueue one query; ``None`` when shed (queue full)."""
        registry = get_registry()
        with self._lock:
            if len(self._pending) >= self.capacity:
                self.shed += 1
                registry.inc("query_shed_total", reason="queue-full")
                return None
            ticket = _Ticket(kind, time.monotonic())
            self._pending.append(ticket)
            if registry.enabled:
                registry.inc("query_requests_total", kind=kind)
                registry.gauge_set("query_queue_depth",
                                   len(self._pending))
            self._not_empty.notify()
            return ticket

    def wait(self, ticket: _Ticket) -> tuple[int, dict]:
        """Block until the ticket is answered or the wait times out."""
        from repro.serve import protocol

        if ticket.done.wait(self.timeout_s):
            return ticket.status, ticket.body
        ticket.abandoned = True
        with self._lock:
            self.shed += 1
        get_registry().inc("query_shed_total", reason="timeout")
        return (protocol.RESULT_RETRY,
                {"retry_after_s": self.retry_after_s})

    # -- the query worker ----------------------------------------------------

    def _worker_loop(self) -> None:
        from repro.serve import protocol

        registry = get_registry()
        while True:
            with self._not_empty:
                while not self._pending and not self._stop.is_set():
                    self._not_empty.wait(timeout=0.1)
                if self._stop.is_set() and not self._pending:
                    return
                ticket = self._pending.popleft()
            if ticket.abandoned:
                continue
            started = time.monotonic()
            try:
                envelope = self.engine.answer(ticket.kind)
                folded = time.monotonic()
                # Encoding here (not on the handler) keeps oversized /
                # unserializable results a worker-side error the
                # handler can still report cleanly.
                json.dumps(envelope)
                ticket.status = protocol.RESULT_OK
                ticket.body = envelope
            except Exception as exc:
                self.errors += 1
                registry.inc("query_errors_total")
                ticket.status = protocol.RESULT_ERROR
                ticket.body = {"error": f"{type(exc).__name__}: {exc}"}
                ticket.done.set()
                continue
            self.answered += 1
            if registry.enabled:
                encoded = time.monotonic()
                registry.observe("query_stage_seconds",
                                 started - ticket.enqueued_at,
                                 buckets=LATENCY_BUCKETS_S,
                                 stage="queue")
                registry.observe("query_stage_seconds",
                                 folded - started,
                                 buckets=LATENCY_BUCKETS_S,
                                 stage="fold")
                registry.observe("query_stage_seconds",
                                 encoded - folded,
                                 buckets=LATENCY_BUCKETS_S,
                                 stage="encode")
            ticket.done.set()
