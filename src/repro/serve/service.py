"""The long-lived socket ingest service.

``IngestService`` wraps one :class:`repro.backend.ingest.IngestionServer`
behind a threaded TCP front end and keeps its promises under overload:

* **accept thread** — accepts connections up to ``max_connections``;
  beyond that, newcomers are closed immediately (counted) rather than
  queued invisibly.
* **handler threads** (one per connection) — speak the
  :mod:`repro.serve.protocol` framing under a per-connection read
  deadline, so a stalled sender (slow loris) costs one timeout, not a
  thread forever.  Each complete frame is offered to the admission
  queue and acked ``OK`` / ``RETRY_AFTER`` / ``UNAVAILABLE`` /
  ``TOO_LARGE``.
* **one ingest worker thread** — drains the admission queue into
  ``IngestionServer.receive`` through a
  :class:`~repro.serve.breaker.CircuitBreaker`.  The
  :class:`IngestionServer` itself is single-threaded by construction:
  only this worker (and drain, after the worker has stopped) touches
  it.  A transient downstream fault requeues the payload at the head;
  a payload that keeps faulting exhausts its per-payload retry budget
  (``ingest_retry_limit``) and is quarantined *with identity
  accounting* — admitted payloads are owned and never dropped
  silently, and one poison payload cannot wedge the queue behind it.
* **one query worker thread** — answers ``stats`` / ``isp_bs`` /
  ``transitions`` / ``summary`` frames from a snapshot-consistent
  fold over the server's records (see :mod:`repro.serve.query`)
  while ingest continues; query load beyond ``query_queue_capacity``
  is shed with a retry signal instead of competing with ingest.
* **graceful drain** — :meth:`IngestService.stop` stops accepting,
  lets the worker flush the queue (bounded by ``drain_timeout_s``),
  then writes a checkpoint containing the ingestion state, the
  admission accounting (shed identities included), *and* any payloads
  still queued (e.g. the breaker was open through the whole drain
  window).  :meth:`IngestService.resume` restores all three, so a
  SIGTERM'd service picks up exactly where it stopped.  A drain
  *without* a checkpoint path sheds the leftovers explicitly
  (``serve_drain_discarded_total`` + ``shed_keys``) rather than
  letting them vanish.

Metric recording happens on handler threads and the worker thread
concurrently — run the service under a
:class:`repro.obs.ThreadSafeRegistry` (the ``repro serve`` CLI and the
overload harness both do).
"""

from __future__ import annotations

import base64
import json
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.backend.ingest import IngestionServer, ServiceUnavailable
from repro.obs import LATENCY_BUCKETS_S, get_registry
from repro.serve import protocol
from repro.serve.admission import AdmissionQueue
from repro.serve.breaker import OPEN, CircuitBreaker
from repro.serve.query import QueryEngine, QueryPlane

#: Drain-checkpoint format version (for forward-compatible readers).
CHECKPOINT_FORMAT = 1


@dataclass(frozen=True)
class ServeConfig:
    """Everything the service needs to run; one frozen block."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (the bound port is on the service).
    port: int = 0
    queue_capacity: int = 1024
    #: Admission policy: reject-newest | shed-oldest | fair-share.
    policy: str = "reject-newest"
    #: Base retry-after suggestion (seconds) for rejected offers.
    retry_after_s: float = 5.0
    #: Per-connection read deadline (slow-loris bound), seconds.
    read_deadline_s: float = 30.0
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    max_connections: int = 256
    #: Circuit breaker: consecutive downstream faults before tripping,
    #: and the open-state hold before a half-open probe.
    breaker_threshold: int = 5
    breaker_reset_s: float = 30.0
    #: How long :meth:`IngestService.stop` waits for the queue to
    #: drain before checkpointing whatever is left.
    drain_timeout_s: float = 30.0
    #: Root of the durable segment store (``repro.store``); ``None``
    #: keeps records in server memory (the legacy mode).
    store_dir: str | None = None
    #: Records per partition tail before it seals into a segment.
    store_seal_records: int = 512
    #: Disk-fault injection rate for the store's I/O (0 disables; see
    #: :class:`repro.chaos.DiskChaosConfig.uniform`).
    disk_chaos_rate: float = 0.0
    disk_chaos_seed: int = 0
    #: Bounded query-work queue (the query plane sheds beyond this).
    query_queue_capacity: int = 16
    #: How long a handler waits for its queued query before answering
    #: RESULT_RETRY (the query-side shed path).
    query_timeout_s: float = 10.0
    #: Faulting ingest attempts per payload before it is quarantined
    #: as poison (transient-outage faults are exempt).
    ingest_retry_limit: int = 5

    def __post_init__(self) -> None:
        if self.read_deadline_s <= 0:
            raise ValueError("read deadline must be positive")
        if not 1 <= self.max_frame_bytes <= protocol.MAX_FRAME_LIMIT:
            raise ValueError(
                "frame limit must be in [1, "
                f"{protocol.MAX_FRAME_LIMIT}] (the cap keeps request "
                "frames distinguishable from query frames)"
            )
        if self.max_connections < 1:
            raise ValueError("need at least one connection slot")
        if self.drain_timeout_s < 0:
            raise ValueError("drain timeout cannot be negative")
        if self.store_seal_records < 1:
            raise ValueError("store_seal_records must be >= 1")
        if not 0.0 <= self.disk_chaos_rate <= 1.0:
            raise ValueError("disk chaos rate must be in [0, 1]")
        if self.query_queue_capacity < 1:
            raise ValueError("query queue needs capacity >= 1")
        if self.query_timeout_s <= 0:
            raise ValueError("query timeout must be positive")
        if self.ingest_retry_limit < 1:
            raise ValueError("ingest retry limit must be >= 1")

    def build_store(self):
        """The configured :class:`~repro.store.SegmentStore`, or None."""
        if not self.store_dir:
            return None
        from repro.chaos.disk import DiskChaos, DiskChaosConfig
        from repro.store import SegmentStore

        io = None
        if self.disk_chaos_rate > 0:
            # The fault ledger lands next to the store data, fsynced
            # per fault, so a post-SIGKILL scrub can still reconcile
            # its findings against what was actually injected.
            io = DiskChaos(
                DiskChaosConfig.uniform(self.disk_chaos_rate,
                                        seed=self.disk_chaos_seed),
                ledger=Path(self.store_dir) / "chaos-ledger.jsonl",
            )
        return SegmentStore(
            self.store_dir,
            seal_records=self.store_seal_records,
            io=io,
        )


@dataclass
class DrainResult:
    """What :meth:`IngestService.stop` accomplished."""

    drained: bool
    #: Payloads still queued when the drain window closed (these went
    #: into the checkpoint, not into the void).
    leftover: int
    checkpoint_path: str | None = None
    summary: dict = field(default_factory=dict)


class IngestService:
    """A threaded TCP ingest front end over one IngestionServer."""

    def __init__(self, server: IngestionServer | None = None,
                 config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.server = server if server is not None else IngestionServer()
        # A configured store attaches here unless the server already
        # brought one (the resume path reattaches before we run).
        if self.server.store is None:
            store = self.config.build_store()
            if store is not None:
                self.server.attach_store(store)
        self.queue = AdmissionQueue(
            capacity=self.config.queue_capacity,
            policy=self.config.policy,
            retry_after_s=self.config.retry_after_s,
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            reset_timeout_s=self.config.breaker_reset_s,
        )
        self.query_plane = QueryPlane(
            QueryEngine(self.server),
            capacity=self.config.query_queue_capacity,
            timeout_s=self.config.query_timeout_s,
            retry_after_s=self.config.retry_after_s,
        )
        self.port: int | None = None
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._worker_thread: threading.Thread | None = None
        self._connections: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._draining = threading.Event()
        self._stop_worker = threading.Event()
        self._worker_idle = threading.Event()
        self._worker_idle.set()
        # -- accounting --
        self.connections_accepted = 0
        self.connections_refused = 0
        self.deadline_closes = 0
        self.oversized_frames = 0
        self.unavailable_acks = 0
        self.ingest_faults = 0
        #: Payloads quarantined after exhausting their retry budget.
        self.poisoned = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "IngestService":
        if self._listener is not None:
            raise RuntimeError("service already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(128)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._worker_thread = threading.Thread(
            target=self._worker_loop, name="serve-ingest", daemon=True
        )
        self._accept_thread.start()
        self._worker_thread.start()
        self.query_plane.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        if self.port is None:
            raise RuntimeError("service not started")
        return (self.config.host, self.port)

    def stop(self, checkpoint_path: str | os.PathLike | None = None,
             drain: bool = True) -> DrainResult:
        """Stop accepting, drain the queue, checkpoint, shut down.

        With ``drain=False`` (a simulated crash) the queue is *not*
        flushed and no checkpoint is written — clients recover by
        retrying against a restarted service, exactly as they would
        after a SIGKILL.
        """
        self._draining.set()
        if self._listener is not None:
            # shutdown() actually wakes a thread blocked in accept();
            # close() alone leaves it stuck until the next connection.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._close_silently(self._listener)
        deadline = time.monotonic() + (
            self.config.drain_timeout_s if drain else 0.0
        )
        while (drain and self.queue.depth
               and time.monotonic() < deadline):
            time.sleep(0.005)
        # Give the worker a moment to finish the in-hand payload.
        self._stop_worker.set()
        if self._worker_thread is not None:
            self._worker_thread.join(timeout=5.0)
        with self._conn_lock:
            pending_conns = list(self._connections)
        for conn in pending_conns:
            self._close_silently(conn)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        if drain and self.server.store is not None:
            # Seal every tail so the on-disk store is compact.  A
            # fault here is safe to absorb: the WAL already owns the
            # tail rows, so a failed seal only defers compaction.
            try:
                self.server.store.flush()
            except Exception:
                get_registry().inc("store_seal_failures_total",
                                   reason="drain-flush")
        self.query_plane.stop()
        leftover = self.queue.depth
        result = DrainResult(
            drained=(leftover == 0),
            leftover=leftover,
            summary=self.summary(),
        )
        registry = get_registry()
        if drain and checkpoint_path is not None:
            result.checkpoint_path = str(
                self.write_checkpoint(checkpoint_path)
            )
        elif drain and leftover:
            # No checkpoint to carry them: the queue still owns these
            # acked payloads, so they become explicit server-side
            # sheds (identity-accounted) rather than vanishing.
            discarded = self.queue.discard_remaining()
            registry.inc("serve_drain_discarded_total", discarded)
            result.summary = self.summary()
        if registry.enabled and drain:
            registry.inc("serve_drains_total")
            registry.gauge_set("serve_drain_leftover", leftover)
        return result

    # -- checkpoint / resume -------------------------------------------------

    def checkpoint(self) -> dict:
        """JSON-able snapshot: ingest state + owned-but-unprocessed
        payloads + admission accounting.

        Only call once the worker has stopped (``stop()`` does).
        """
        queued = self.queue.drain_all()
        return {
            "format": CHECKPOINT_FORMAT,
            "server": self.server.checkpoint(),
            "queue": [
                {
                    "payload": base64.b64encode(e.payload).decode(),
                    "sender": e.sender,
                }
                for e in queued
            ],
            "admission": {
                **self.queue.summary(),
                "shed_keys": list(self.queue.shed_keys),
            },
            "breaker": self.breaker.summary(),
        }

    def write_checkpoint(self, path: str | os.PathLike) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(json.dumps(self.checkpoint(), sort_keys=True))
        os.replace(tmp, target)
        return target

    @classmethod
    def resume(cls, path: str | os.PathLike,
               config: ServeConfig | None = None) -> "IngestService":
        """Rebuild a service from a drain checkpoint (not started)."""
        snapshot = json.loads(Path(path).read_text())
        # A store configured for this process wins (it may carry disk
        # chaos); otherwise the checkpoint's store description is
        # reattached, so the journal-proven records survive the hop.
        store = config.build_store() if config is not None else None
        service = cls(
            server=IngestionServer.restore(snapshot["server"],
                                           store=store),
            config=config,
        )
        service.queue.restore([
            (base64.b64decode(entry["payload"]), entry["sender"])
            for entry in snapshot["queue"]
        ])
        # The checkpoint's admission block (counters + shed
        # identities) survives the hop too — without it, pre-restart
        # server-side sheds would reconcile as unexplained losses.
        service.queue.restore_accounting(
            snapshot.get("admission") or {}
        )
        return service

    # -- reconciliation surface ----------------------------------------------

    @property
    def shed_keys(self) -> list[str]:
        """Identities shed from the admission queue (server losses)."""
        return list(self.queue.shed_keys)

    @property
    def queued_keys(self) -> set[str]:
        """Identities admitted but not yet ingested (in flight)."""
        return self.queue.payload_keys()

    def summary(self) -> dict:
        return {
            "connections_accepted": self.connections_accepted,
            "connections_refused": self.connections_refused,
            "deadline_closes": self.deadline_closes,
            "oversized_frames": self.oversized_frames,
            "unavailable_acks": self.unavailable_acks,
            "ingest_faults": self.ingest_faults,
            "poisoned": self.poisoned,
            "query": {
                "answered": self.query_plane.answered,
                "shed": self.query_plane.shed,
                "errors": self.query_plane.errors,
            },
            "admission": self.queue.summary(),
            "breaker": self.breaker.summary(),
            "server": self.server.summary(),
        }

    # -- accept / handler threads --------------------------------------------

    def _accept_loop(self) -> None:
        registry = get_registry()
        while not self._draining.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:  # listener closed: drain began
                return
            with self._conn_lock:
                active = len(self._connections)
                if active >= self.config.max_connections:
                    self.connections_refused += 1
                    registry.inc("serve_connections_refused_total")
                    self._close_silently(conn)
                    continue
                self._connections.add(conn)
                if registry.enabled:
                    # Level gauge (falls on disconnect); written under
                    # the connection lock so accept/close updates
                    # cannot land out of order.
                    registry.gauge_level("serve_connections_active",
                                         len(self._connections))
            self.connections_accepted += 1
            if registry.enabled:
                registry.inc("serve_connections_total")
            threading.Thread(
                target=self._handle_connection, args=(conn,),
                name="serve-conn", daemon=True,
            ).start()

    def _handle_connection(self, conn: socket.socket) -> None:
        registry = get_registry()
        conn.settimeout(self.config.read_deadline_s)
        try:
            # Runs until the peer hangs up or ``stop()`` force-closes
            # the socket — not until drain begins: a frame in flight
            # when the drain flag flips deserves the polite
            # UNAVAILABLE answer, not a reset.
            while True:
                try:
                    frame = protocol.read_frame(
                        conn, self.config.max_frame_bytes
                    )
                except protocol.FrameTimeout:
                    self.deadline_closes += 1
                    registry.inc("serve_conn_deadline_total")
                    return
                except protocol.FrameTooLarge:
                    self.oversized_frames += 1
                    registry.inc("serve_frames_rejected_total",
                                 reason="too-large")
                    # The stream beyond the header can't be trusted:
                    # ack the permanent rejection, then hang up.
                    protocol.write_ack(conn, protocol.ACK_TOO_LARGE)
                    return
                except protocol.UnsupportedQueryVersion as exc:
                    registry.inc("serve_frames_rejected_total",
                                 reason="query-version")
                    protocol.write_result(conn, protocol.RESULT_ERROR,
                                          {"error": str(exc)})
                    return
                except protocol.ConnectionClosed:
                    return
                except protocol.ProtocolError as exc:
                    # Malformed query body: the stream may be out of
                    # sync, so answer and hang up.
                    registry.inc("serve_frames_rejected_total",
                                 reason="malformed")
                    protocol.write_result(conn, protocol.RESULT_ERROR,
                                          {"error": str(exc)})
                    return
                registry.inc("serve_frames_total")
                if frame[0] == "query":
                    self._answer_query(conn, frame[1], registry)
                else:
                    self._answer_frame(conn, frame[1], frame[2],
                                       registry)
        except OSError:
            return  # peer reset / socket closed under us
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
                if registry.enabled:
                    registry.gauge_level("serve_connections_active",
                                         len(self._connections))
            self._close_silently(conn)

    def _answer_frame(self, conn, sender: int, payload: bytes,
                      registry) -> None:
        if self._draining.is_set():
            self.unavailable_acks += 1
            registry.inc("serve_unavailable_acks_total",
                         reason="draining")
            protocol.write_ack(conn, protocol.ACK_UNAVAILABLE)
            return
        if self.breaker.state == OPEN:
            # Downstream is tripped: refuse up front with the time
            # left on the breaker timer as the retry hint.
            self.unavailable_acks += 1
            registry.inc("serve_unavailable_acks_total",
                         reason="breaker")
            protocol.write_ack(conn, protocol.ACK_UNAVAILABLE,
                               self.breaker.retry_in_s())
            return
        decision = self.queue.offer(
            payload, sender, admitted_at=time.monotonic()
        )
        if decision.admitted:
            protocol.write_ack(conn, protocol.ACK_OK)
        else:
            protocol.write_ack(conn, protocol.ACK_RETRY_AFTER,
                               decision.retry_after_s)

    def _answer_query(self, conn, kind: str, registry) -> None:
        """Route one query through the bounded query plane."""
        if self._draining.is_set():
            registry.inc("query_unavailable_total", reason="draining")
            protocol.write_result(conn, protocol.RESULT_UNAVAILABLE,
                                  {"error": "service draining"})
            return
        ticket = self.query_plane.submit(kind)
        if ticket is None:
            protocol.write_result(
                conn, protocol.RESULT_RETRY,
                {"retry_after_s": self.query_plane.retry_after_s},
            )
            return
        status, body = self.query_plane.wait(ticket)
        protocol.write_result(conn, status, body)

    # -- the ingest worker ---------------------------------------------------

    def _worker_loop(self) -> None:
        registry = get_registry()
        while True:
            entry = self.queue.pop(timeout=0.02)
            if entry is None:
                self._worker_idle.set()
                if self._stop_worker.is_set():
                    return
                continue
            self._worker_idle.clear()
            if not self.breaker.allow():
                # Owned payload, tripped downstream: put it back and
                # wait out (a slice of) the breaker timer.
                self.queue.requeue_front(entry)
                if self._stop_worker.is_set():
                    return
                time.sleep(min(0.02, max(0.001,
                                         self.breaker.retry_in_s())))
                continue
            started = time.monotonic()
            try:
                self.server.receive(entry.payload)
            except ServiceUnavailable:
                # A transient downstream outage says nothing about the
                # payload itself, so it does not consume retry budget
                # — an outage longer than the budget must not turn
                # owned payloads into poison.
                self.ingest_faults += 1
                self.breaker.record_failure()
                registry.inc("serve_ingest_faults_total")
                self.queue.requeue_front(entry)
                if self._stop_worker.is_set():
                    return
                continue
            except Exception:
                self.ingest_faults += 1
                self.breaker.record_failure()
                registry.inc("serve_ingest_faults_total")
                entry.attempts += 1
                if entry.attempts >= self.config.ingest_retry_limit:
                    # Head-of-line poison: requeuing forever would
                    # wedge every payload behind this one.  Quarantine
                    # it with identity accounting so reconciliation
                    # classifies the loss as a server-side shed.
                    self.poisoned += 1
                    self.queue.shed_entry(entry, policy="poison")
                    registry.inc("serve_poison_quarantined_total")
                else:
                    self.queue.requeue_front(entry)
                if self._stop_worker.is_set():
                    return
                continue
            self.breaker.record_success()
            if registry.enabled:
                done = time.monotonic()
                registry.observe("serve_stage_seconds", done - started,
                                 buckets=LATENCY_BUCKETS_S,
                                 stage="ingest")
                if entry.admitted_at:
                    registry.observe("serve_stage_seconds",
                                     started - entry.admitted_at,
                                     buckets=LATENCY_BUCKETS_S,
                                     stage="queue")

    @staticmethod
    def _close_silently(sock: socket.socket) -> None:
        try:
            sock.close()
        except OSError:
            pass
