"""Overload and failure harness for the live ingest service.

Everything the soak smoke, the CI job, and the service tests need to
prove the acceptance story end to end:

* :func:`synthetic_records` — a deterministic record stream (no fleet
  simulation required; the service is the thing under test);
* :func:`drive_fleet` — one :class:`UploadBatcher` per device flushing
  through a :class:`~repro.serve.client.SocketTransport`, optionally
  with a :class:`~repro.chaos.transport.ChaosTransport` layered on
  top, in virtual time with a wall-clock-assisted drain;
* :func:`connection_storm` / :func:`stalled_clients` /
  :func:`malformed_flood` — the three classic abuse patterns, each
  returning what the server did about it;
* :func:`reconcile_fleet` — the closing reconciliation, service-aware
  (server-side queue shedding and queued-in-flight payloads are
  classified, not mysteries).

The harness talks to a *real* socket — in-process
:class:`~repro.serve.service.IngestService` for tests, or a
``repro serve`` subprocess for the kill/resume smoke — so slow-loris
deadlines, breaker unavailability, and drain acks are all exercised
through the same code path production traffic would take.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass, field

from repro.chaos.config import ChaosConfig
from repro.chaos.reconcile import ReconciliationReport, reconcile
from repro.chaos.transport import ChaosTransport
from repro.dataset.records import record_identity
from repro.monitoring.uploader import UploadBatcher
from repro.serve import protocol
from repro.serve.client import SocketTransport

FAILURE_TYPES = ("Data_Stall", "Out_of_Service", "Call_Drop")
ISPS = ("ISP-A", "ISP-B", "ISP-C")


def synthetic_records(n_devices: int, per_device: int,
                      seed: int = 2020) -> list[dict]:
    """A deterministic emission-ordered record stream."""
    rng = random.Random(f"serve-harness:{seed}")
    records = []
    for device_id in range(n_devices):
        for k in range(per_device):
            records.append({
                "device_id": device_id,
                "model": device_id % 7,
                "android_version": "10",
                "has_5g": bool(device_id % 3 == 0),
                "isp": ISPS[device_id % len(ISPS)],
                "failure_type": FAILURE_TYPES[k % len(FAILURE_TYPES)],
                "start_time": round(
                    k * 60.0 + rng.random() * 30.0, 3
                ),
                "duration_s": round(1.0 + rng.random() * 120.0, 3),
                "bs_id": rng.randrange(400),
                "rat": "4G",
                "signal_level": rng.randrange(6),
                "deployment": "urban",
                "error_code": None,
                "resolved_by": None,
                "stages_executed": 0,
                "post_transition": False,
                "arm": "vanilla",
            })
    records.sort(key=lambda r: (r["start_time"], r["device_id"]))
    return records


@dataclass
class FleetDrive:
    """Client-side state of one :func:`drive_fleet` run."""

    batchers: dict[int, UploadBatcher]
    transports: dict[int, SocketTransport]
    emitted: set[str]
    #: The ChaosTransport layer, when one was requested.
    chaos_transport: ChaosTransport | None = None
    flush_rounds: int = 0

    def close(self) -> None:
        for transport in self.transports.values():
            transport.close()

    @property
    def pending_payloads(self) -> int:
        return sum(b.pending_payloads for b in self.batchers.values())

    def summary(self) -> dict:
        totals: dict[str, float] = {}
        for batcher in self.batchers.values():
            for key, value in batcher.summary().items():
                totals[key] = totals.get(key, 0.0) + value
        return totals


def drive_fleet(records: list[dict], host: str, port: int,
                chaos: ChaosConfig | None = None,
                max_attempts: int = 50,
                max_spool_bytes: int | None = None,
                timeout_s: float = 10.0,
                drive: "FleetDrive | None" = None) -> FleetDrive:
    """Ship ``records`` through per-device spoolers over the socket.

    Emission order drives virtual time (each record's ``start_time``
    gates the backoff clock); every emission is a flush opportunity.
    Pass a previous run's ``drive`` to continue the same fleet against
    a restarted service (the kill/resume scenario) — spooled payloads
    and dedup identities carry over, only the sockets are fresh.
    """
    fresh = drive is None
    if fresh:
        drive = FleetDrive(batchers={}, transports={}, emitted=set())
        if chaos is not None and chaos.enabled:
            drive.chaos_transport = ChaosTransport(None, chaos)

    def channel(device_id: int):
        transport = SocketTransport(host, port, sender=device_id,
                                    timeout_s=timeout_s)
        drive.transports[device_id] = transport
        if drive.chaos_transport is None:
            return transport
        chaos_layer = drive.chaos_transport

        def send(payload: bytes) -> None:
            chaos_layer.inner = transport
            chaos_layer.send(payload, sender=device_id)

        return send

    if not fresh:
        # Continuing against a (possibly restarted) service: close the
        # old sockets and rebind every batcher to the new address.
        drive.close()
        drive.transports = {}
        for device_id, batcher in drive.batchers.items():
            batcher.transport = channel(device_id)

    seed = chaos.seed if chaos is not None else 0
    for data in records:
        device_id = int(data["device_id"])
        drive.emitted.add(record_identity(data))
        batcher = drive.batchers.get(device_id)
        if batcher is None:
            batcher = UploadBatcher(
                transport=channel(device_id),
                max_attempts=max_attempts,
                base_backoff_s=1.0,
                max_backoff_s=60.0,
                max_spool_bytes=max_spool_bytes,
                rng=random.Random(f"{seed}:{device_id}:backoff"),
            )
            drive.batchers[device_id] = batcher
        when = float(data["start_time"])
        if drive.chaos_transport is not None:
            drive.chaos_transport.advance(when)
        batcher.enqueue(data)
        batcher.maybe_flush(True, now=when)
    return drive


def drain_fleet(drive: FleetDrive, rounds: int = 200,
                virtual_step_s: float = 120.0,
                settle_s: float = 0.002) -> int:
    """Keep flushing until every spool is empty or the budget runs out.

    Virtual time advances ``virtual_step_s`` per round (outpacing any
    server retry-after or client backoff), while a tiny real sleep per
    round lets the server's worker thread actually drain its queue.
    Returns the number of rounds used.
    """
    base = max(
        (float(b.next_attempt_s) for b in drive.batchers.values()),
        default=0.0,
    )
    used = 0
    for used in range(1, rounds + 1):
        if not any(b.pending_payloads for b in drive.batchers.values()):
            used -= 1
            break
        now = base + used * virtual_step_s
        if drive.chaos_transport is not None:
            drive.chaos_transport.advance(now)
        for batcher in drive.batchers.values():
            if batcher.pending_payloads:
                batcher.maybe_flush(True, now=now)
        time.sleep(settle_s)
    if drive.chaos_transport is not None:
        try:
            drive.chaos_transport.flush_held()
        except Exception:
            pass  # held payloads stay accounted as in flight
    drive.flush_rounds += used
    return used


def reconcile_fleet(drive: FleetDrive, server,
                    service=None) -> ReconciliationReport:
    """Classify every emitted record against the backend's state."""
    return reconcile(
        drive.emitted, server, drive.batchers.values(),
        transport=drive.chaos_transport, service=service,
    )


# -- abuse patterns ----------------------------------------------------------


@dataclass
class StormResult:
    """What a :func:`connection_storm` observed."""

    connections: int = 0
    acks: dict[str, int] = field(default_factory=dict)
    connect_failures: int = 0
    dropped_connections: int = 0


def connection_storm(host: str, port: int, connections: int,
                     payloads_per_connection: int = 1,
                     payload: bytes = b"storm-junk",
                     timeout_s: float = 5.0) -> StormResult:
    """Open many short-lived connections, each firing junk payloads.

    The payloads are valid frames with undecodable bodies, so the
    server admits and quarantines them — pure load, no identity, no
    effect on fleet reconciliation.
    """
    result = StormResult()
    for _ in range(connections):
        try:
            sock = socket.create_connection((host, port),
                                            timeout=timeout_s)
        except OSError:
            result.connect_failures += 1
            continue
        result.connections += 1
        try:
            sock.settimeout(timeout_s)
            for _ in range(payloads_per_connection):
                protocol.write_request(sock, payload)
                status, _delay = protocol.read_ack(sock)
                name = protocol.ACK_NAMES[status]
                result.acks[name] = result.acks.get(name, 0) + 1
        except (OSError, protocol.ProtocolError):
            result.dropped_connections += 1
        finally:
            sock.close()
    return result


def stalled_clients(host: str, port: int, clients: int,
                    wait_s: float) -> int:
    """Open connections that stall mid-frame; count server closes.

    Sends half a request header then goes silent — the slow-loris
    pattern the per-connection read deadline exists for.  Returns how
    many of the stalled connections the server closed within
    ``wait_s``.
    """
    socks = []
    for _ in range(clients):
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
            sock.sendall(b"\x00\x00")  # 2 of the 12 header bytes
            socks.append(sock)
        except OSError:
            continue
    deadline = time.monotonic() + wait_s
    closed = 0
    for sock in socks:
        sock.settimeout(max(0.05, deadline - time.monotonic()))
        try:
            if sock.recv(1) == b"":
                closed += 1
        except (socket.timeout, TimeoutError):
            pass
        except OSError:
            closed += 1
        finally:
            sock.close()
    return closed


def malformed_flood(host: str, port: int, frames: int,
                    timeout_s: float = 5.0) -> dict[str, int]:
    """Fire undecodable payloads down one connection; tally the acks."""
    acks: dict[str, int] = {}
    with socket.create_connection((host, port),
                                  timeout=timeout_s) as sock:
        sock.settimeout(timeout_s)
        for index in range(frames):
            protocol.write_request(
                sock, b"malformed-%d" % index
            )
            status, _delay = protocol.read_ack(sock)
            name = protocol.ACK_NAMES[status]
            acks[name] = acks.get(name, 0) + 1
    return acks
