"""Sealed segment encoding: checksummed typed-array failure columns.

One segment file holds one batch of failure records from a single
``(time bucket, device bucket)`` partition, laid out column-first with
the :mod:`repro.analysis.columnar` discipline: numeric fields as
little-endian typed arrays, string fields as integer codes over a
sorted category table.  The container is self-verifying::

    repro-segment v1 <sha256-of-body>\\n      header line (ASCII)
    {json header}\\n\\x00                       schema + array offsets
    <raw little-endian column bytes>          concatenated arrays

The header-line digest covers the whole body (JSON header + arrays),
so a torn write, a flipped bit, or a truncation anywhere in the file
is detected by :func:`decode_segment` — which raises
:class:`SegmentCorruptError` with the failure mode, never returns
partial data.  Encoding and decoding are exact inverses on
``FailureRecord.to_dict()`` dicts: ints, floats (binary64, no text
round-trip), bools, strings and ``None`` all survive bit-for-bit, so
record identities (:func:`repro.dataset.records.record_identity`)
computed before sealing and after decoding agree.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.analysis.columnar import RESOLVED_BY_NONE, _encode

#: Bumped when the container layout changes incompatibly.
SEGMENT_VERSION = 1

_MAGIC = b"repro-segment"
_SEPARATOR = b"\n\x00"

#: Plain int64 columns.
_INT_FIELDS = ("device_id", "model", "bs_id", "signal_level",
               "stages_executed")
#: Binary64 columns (exact float round-trip).
_FLOAT_FIELDS = ("start_time", "duration_s")
#: Byte-wide boolean columns.
_BOOL_FIELDS = ("has_5g", "post_transition")
#: Category-coded string columns (never null).
_STR_FIELDS = ("android_version", "isp", "failure_type", "rat",
               "deployment", "arm")
#: Category-coded nullable columns (code -1 encodes ``None``).
_NULLABLE_STR_FIELDS = ("error_code",)


class SegmentCorruptError(RuntimeError):
    """A segment file failed verification; no partial data escapes."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def _encode_nullable(values: list) -> tuple[np.ndarray, list]:
    """Category codes with ``None`` mapped to -1, not a category."""
    present = sorted({v for v in values if v is not None})
    lookup = {cat: code for code, cat in enumerate(present)}
    codes = np.fromiter(
        (-1 if v is None else lookup[v] for v in values),
        np.int64, len(values),
    )
    return codes, present


def encode_segment(rows: list[dict], partition: tuple[int, int]) -> bytes:
    """Serialize failure-record dicts into one verifiable segment blob."""
    arrays: list[tuple[str, np.ndarray]] = []
    categories: dict[str, list] = {}
    n = len(rows)
    for name in _INT_FIELDS:
        arrays.append((name, np.fromiter(
            (int(row[name]) for row in rows), np.int64, n)))
    for name in _FLOAT_FIELDS:
        arrays.append((name, np.fromiter(
            (float(row[name]) for row in rows), np.float64, n)))
    for name in _BOOL_FIELDS:
        arrays.append((name, np.fromiter(
            (1 if row[name] else 0 for row in rows), np.uint8, n)))
    for name in _STR_FIELDS:
        codes, cats = _encode([row[name] for row in rows])
        arrays.append((name, codes))
        categories[name] = list(cats)
    for name in _NULLABLE_STR_FIELDS:
        codes, cats = _encode_nullable([row[name] for row in rows])
        arrays.append((name, codes))
        categories[name] = cats
    resolved = np.fromiter(
        (RESOLVED_BY_NONE if row["resolved_by"] is None
         else int(row["resolved_by"]) for row in rows),
        np.int64, n,
    )
    arrays.append(("resolved_by", resolved))

    blobs: list[bytes] = []
    layout: list[dict] = []
    offset = 0
    for name, array in arrays:
        raw = np.ascontiguousarray(array).astype(
            array.dtype.newbyteorder("<"), copy=False
        ).tobytes()
        layout.append({
            "name": name,
            "dtype": array.dtype.newbyteorder("<").str,
            "offset": offset,
            "nbytes": len(raw),
        })
        blobs.append(raw)
        offset += len(raw)
    header = {
        "version": SEGMENT_VERSION,
        "n_records": n,
        "partition": list(partition),
        "categories": categories,
        "columns": layout,
    }
    body = (json.dumps(header, sort_keys=True).encode("utf-8")
            + _SEPARATOR + b"".join(blobs))
    digest = hashlib.sha256(body).hexdigest()
    head = b"%s v%d %s\n" % (_MAGIC, SEGMENT_VERSION,
                             digest.encode("ascii"))
    return head + body


def segment_digest(blob: bytes) -> str:
    """The body digest a well-formed segment blob advertises."""
    newline = blob.find(b"\n")
    if newline < 0:
        raise SegmentCorruptError("no header line")
    return hashlib.sha256(blob[newline + 1:]).hexdigest()


def decode_segment(blob: bytes) -> tuple[list[dict], dict]:
    """Verify and decode one segment blob back into record dicts.

    Returns ``(rows, header)``.  Raises :class:`SegmentCorruptError`
    on any damage: bad magic, version skew, digest mismatch (torn
    write / bit flip / truncation), or a malformed header.
    """
    newline = blob.find(b"\n")
    head = blob[:newline].split() if newline >= 0 else []
    if newline < 0 or len(head) != 3 or head[0] != _MAGIC:
        raise SegmentCorruptError("bad segment header line")
    if head[1] != b"v%d" % SEGMENT_VERSION:
        raise SegmentCorruptError(
            f"unsupported segment version {head[1].decode('ascii', 'replace')}"
        )
    body = blob[newline + 1:]
    digest = hashlib.sha256(body).hexdigest()
    if digest != head[2].decode("ascii", "replace"):
        raise SegmentCorruptError(
            "digest mismatch (torn write, bit flip, or truncation)"
        )
    split = body.find(_SEPARATOR)
    if split < 0:
        raise SegmentCorruptError("missing header/array separator")
    try:
        header = json.loads(body[:split].decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SegmentCorruptError(f"unreadable header: {exc}") from exc
    arrays_blob = body[split + len(_SEPARATOR):]
    n = header["n_records"]
    columns: dict[str, np.ndarray] = {}
    for spec in header["columns"]:
        raw = arrays_blob[spec["offset"]:spec["offset"] + spec["nbytes"]]
        array = np.frombuffer(raw, dtype=np.dtype(spec["dtype"]))
        if len(array) != n:
            raise SegmentCorruptError(
                f"column {spec['name']} has {len(array)} values "
                f"for {n} records"
            )
        columns[spec["name"]] = array
    categories = header["categories"]

    rows: list[dict] = []
    for i in range(n):
        row: dict = {}
        for name in _INT_FIELDS:
            row[name] = int(columns[name][i])
        for name in _FLOAT_FIELDS:
            row[name] = float(columns[name][i])
        for name in _BOOL_FIELDS:
            row[name] = bool(columns[name][i])
        for name in _STR_FIELDS:
            row[name] = categories[name][int(columns[name][i])]
        for name in _NULLABLE_STR_FIELDS:
            code = int(columns[name][i])
            row[name] = None if code < 0 else categories[name][code]
        resolved = int(columns["resolved_by"][i])
        row["resolved_by"] = (None if resolved == RESOLVED_BY_NONE
                              else resolved)
        rows.append(row)
    return rows, header
