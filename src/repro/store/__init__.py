"""``repro.store`` — the durable partitioned segment store.

Ingested failure records are journaled (WAL), batched into
time/device-partitioned unsealed tails, and sealed into checksummed
columnar segments committed atomically under an append-only manifest
journal.  Queries fold streaming analysis partials over the sealed
segments plus the tail; damaged segments are skipped with accounting
and ``repro scrub`` classifies, quarantines, and repairs them.  See
``docs/architecture.md`` ("Durable storage") for the full contract.
"""

from repro.store.segment import (
    SEGMENT_VERSION,
    SegmentCorruptError,
    decode_segment,
    encode_segment,
    segment_digest,
)
from repro.store.store import (
    JOURNAL_VERSION,
    QueryResult,
    ScrubReport,
    SegmentStore,
    StoreError,
    StoreSnapshot,
)

__all__ = [
    "JOURNAL_VERSION",
    "QueryResult",
    "ScrubReport",
    "SEGMENT_VERSION",
    "SegmentCorruptError",
    "SegmentStore",
    "StoreError",
    "StoreSnapshot",
    "decode_segment",
    "encode_segment",
    "segment_digest",
]
