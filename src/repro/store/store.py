"""The durable partitioned segment store and its scrub/repair pass.

``SegmentStore`` is the crash-safe home of ingested failure records:

* **appends are journaled first** — every accepted record lands as a
  WAL line in ``journal.jsonl`` (fsynced) before the store owns it, so
  a SIGKILL at any instant loses nothing that was acknowledged;
* **sealing is atomic** — once a partition's unsealed tail reaches
  ``seal_records`` entries it is encoded into a checksummed columnar
  segment (:mod:`repro.store.segment`), written temp + fsync + rename,
  and *then* committed to the journal with its digest and record
  identities.  The tail is only cleared after the commit line is
  durable; any fault before that leaves the records in the tail (and
  in the WAL), never half-owned;
* **queries fold, never crash** — :meth:`SegmentStore.fold_analysis`
  folds :class:`~repro.analysis.columnar.AnalysisPartial` aggregates
  over live segments grouped by device bucket (buckets partition the
  device population, so the fold is byte-identical to computing over
  all records at once); corrupt segments are skipped *with
  accounting*, never silently;
* **scrub classifies and repairs** — :meth:`SegmentStore.scrub`
  verifies every live segment digest, quarantines damaged files,
  re-adopts valid orphans (a crash between rename and commit),
  removes leftover temp files, truncates a torn journal tail, and
  recovers quarantined records from their WAL lines back into the
  unsealed tail.  Every finding is classified; record identities that
  no channel can recover are reported as ``lost_keys`` so the ingest
  dedup layer can invite re-uploads.

The store is single-writer (the serve ingest worker); scrubbing a
store that another *process* is actively writing is not supported.
Within one process, concurrent readers are supported through
:meth:`SegmentStore.query_snapshot`: mutations and snapshots
serialize on an internal mutex, so a reader on another thread (the
serve query plane) folds over a frozen, consistent view while appends
continue.
"""

from __future__ import annotations

import errno as errno_module
import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.chaos.disk import DiskIO
from repro.dataset.records import FailureRecord, record_identity
from repro.obs import get_registry
from repro.store.segment import (
    SegmentCorruptError,
    decode_segment,
    encode_segment,
    segment_digest,
)

#: Bumped when the journal schema changes incompatibly.
JOURNAL_VERSION = 1

_JOURNAL = "journal.jsonl"
_CRC_BYTES = 16


class StoreError(RuntimeError):
    """The segment store could not complete an operation."""


def _line_crc(entry: dict) -> str:
    """Integrity tag of one journal entry (sans its own ``crc``)."""
    canonical = json.dumps(
        {k: v for k, v in entry.items() if k != "crc"}, sort_keys=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:_CRC_BYTES]


def _seal_entry(entry: dict) -> bytes:
    entry = dict(entry)
    entry["crc"] = _line_crc(entry)
    return json.dumps(entry, sort_keys=True).encode("utf-8")


@dataclass
class QueryResult:
    """One streaming fold over the store, damage accounted."""

    block: dict
    n_segments: int
    n_tail_records: int
    #: Segments that failed verification mid-query, with reasons —
    #: the fold continued without them (skip-with-accounting).
    skipped: list[dict] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.skipped


@dataclass(frozen=True)
class StoreSnapshot:
    """A consistent point-in-time view for concurrent readers.

    Sealed segments are immutable once committed, so the snapshot only
    copies *references*: the live commit-entry map, the tail row lists
    (records themselves are never mutated after append), and the owned
    identity count.  A reader folding over the snapshot sees exactly
    the store as of the snapshot instant no matter how far ingest has
    advanced since.
    """

    #: Segment name -> journal commit entry (immutable once written).
    live: dict
    #: Partition -> list of ``(key, data)`` tail rows, append order.
    tails: dict
    #: Identities the store owned at snapshot time (the watermark).
    n_records: int

    @property
    def n_tail_records(self) -> int:
        return sum(len(rows) for rows in self.tails.values())

    def tail_rows(self) -> list[dict]:
        """Tail records, partition-major, append order within."""
        return [data for partition in sorted(self.tails)
                for _key, data in self.tails[partition]]


@dataclass
class ScrubReport:
    """Everything one scrub pass found, classified."""

    root: str
    repair: bool
    #: Live segments whose files verified clean.
    segments_ok: int = 0
    #: Damaged live segments: {segment, reason, keys, recovered, lost}.
    quarantined: list[dict] = field(default_factory=list)
    #: Valid segment files with no journal commit (crash between
    #: rename and commit), re-adopted into the journal.
    adopted: list[dict] = field(default_factory=list)
    #: Orphan files whose records were already covered elsewhere.
    superseded: list[str] = field(default_factory=list)
    #: Leftover atomic-write temp files removed (crash-in-rename).
    temp_files_removed: list[str] = field(default_factory=list)
    #: Journal lines that failed their CRC (bit flip / merged tear).
    journal_damaged_lines: int = 0
    #: Bytes cut off a torn journal tail (crash mid-append).
    journal_truncated_bytes: int = 0
    #: Record identities recovered from WAL lines back into the tail.
    recovered_keys: tuple[str, ...] = ()
    #: Record identities no channel could recover — the dedup layer
    #: must forget these so devices can re-upload them.
    lost_keys: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        """No damage of any kind was found."""
        return not (self.quarantined or self.adopted or self.superseded
                    or self.temp_files_removed
                    or self.journal_damaged_lines
                    or self.journal_truncated_bytes)

    @property
    def ok(self) -> bool:
        """Every finding was classified and no records were lost."""
        return not self.lost_keys

    @classmethod
    def from_dict(cls, data: dict) -> "ScrubReport":
        """Rebuild a report from :meth:`to_dict` output (e.g. the
        ``repro scrub --json`` artifact, for offline reconciliation)."""
        return cls(
            root=data["root"],
            repair=bool(data["repair"]),
            segments_ok=int(data["segments_ok"]),
            quarantined=list(data["quarantined"]),
            adopted=list(data["adopted"]),
            superseded=list(data["superseded"]),
            temp_files_removed=list(data["temp_files_removed"]),
            journal_damaged_lines=int(data["journal_damaged_lines"]),
            journal_truncated_bytes=int(data["journal_truncated_bytes"]),
            recovered_keys=tuple(data["recovered_keys"]),
            lost_keys=tuple(data["lost_keys"]),
        )

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "repair": self.repair,
            "segments_ok": self.segments_ok,
            "quarantined": list(self.quarantined),
            "adopted": list(self.adopted),
            "superseded": list(self.superseded),
            "temp_files_removed": list(self.temp_files_removed),
            "journal_damaged_lines": self.journal_damaged_lines,
            "journal_truncated_bytes": self.journal_truncated_bytes,
            "recovered_keys": list(self.recovered_keys),
            "lost_keys": list(self.lost_keys),
        }

    def render(self) -> str:
        lines = [
            f"{'segments verified':<26} {self.segments_ok:>8}",
            f"{'quarantined':<26} {len(self.quarantined):>8}",
            f"{'orphans adopted':<26} {len(self.adopted):>8}",
            f"{'orphans superseded':<26} {len(self.superseded):>8}",
            f"{'temp files removed':<26} {len(self.temp_files_removed):>8}",
            f"{'journal lines damaged':<26} {self.journal_damaged_lines:>8}",
            f"{'journal bytes truncated':<26} "
            f"{self.journal_truncated_bytes:>8}",
            f"{'records recovered (WAL)':<26} "
            f"{len(self.recovered_keys):>8}",
            f"{'RECORDS LOST':<26} {len(self.lost_keys):>8}",
        ]
        for finding in self.quarantined:
            lines.append(f"  quarantined {finding['segment']}: "
                         f"{finding['reason']} "
                         f"(recovered {finding['recovered']}, "
                         f"lost {finding['lost']})")
        for finding in self.adopted:
            lines.append(f"  adopted {finding['segment']}: "
                         f"{finding['n_records']} records")
        return "\n".join(lines)


class SegmentStore:
    """One durable, partitioned, append-only failure-record store."""

    def __init__(self, root: str | Path, *, seal_records: int = 512,
                 time_bucket_s: float = 3600.0,
                 device_bucket: int = 1024,
                 wal: bool = True,
                 io: DiskIO | None = None) -> None:
        if seal_records < 1:
            raise StoreError("seal_records must be >= 1")
        if time_bucket_s <= 0 or device_bucket < 1:
            raise StoreError("partition bounds must be positive")
        self.root = Path(root)
        self.io = io if io is not None else DiskIO()
        self.seal_records = seal_records
        self.time_bucket_s = float(time_bucket_s)
        self.device_bucket = int(device_bucket)
        self.wal = wal
        #: Unsealed records per partition, append order preserved.
        self._tails: dict[tuple[int, int], list[tuple[str, dict]]] = {}
        #: Live commit entries by segment file name.
        self._live: dict[str, dict] = {}
        #: Every identity the store owns (sealed or tail).
        self._known: set[str] = set()
        self._seq = 0
        #: Journal damage observed while loading (scrub classifies it).
        self.journal_damage: list[dict] = []
        self._journal_good_bytes = 0
        #: Serializes mutations against :meth:`query_snapshot` readers.
        #: Reentrant because ``append`` seals under the same guard.
        self._mutex = threading.RLock()
        self._load_journal()

    # -- paths ---------------------------------------------------------------

    @property
    def journal_path(self) -> Path:
        return self.root / _JOURNAL

    @property
    def segments_dir(self) -> Path:
        return self.root / "segments"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    # -- descriptive ---------------------------------------------------------

    def describe(self) -> dict:
        """JSON-able config block for drain checkpoints."""
        return {
            "root": str(self.root),
            "seal_records": self.seal_records,
            "time_bucket_s": self.time_bucket_s,
            "device_bucket": self.device_bucket,
            "wal": self.wal,
        }

    @classmethod
    def from_description(cls, description: dict,
                         io: DiskIO | None = None) -> "SegmentStore":
        return cls(
            description["root"],
            seal_records=int(description.get("seal_records", 512)),
            time_bucket_s=float(description.get("time_bucket_s", 3600.0)),
            device_bucket=int(description.get("device_bucket", 1024)),
            wal=bool(description.get("wal", True)),
            io=io,
        )

    @property
    def n_segments(self) -> int:
        return len(self._live)

    @property
    def n_sealed_records(self) -> int:
        return sum(entry["n_records"] for entry in self._live.values())

    @property
    def n_tail_records(self) -> int:
        return sum(len(tail) for tail in self._tails.values())

    def known_keys(self) -> set[str]:
        """Every record identity the store currently owns."""
        return set(self._known)

    def tail_rows(self) -> list[dict]:
        """Unsealed records, partition-major, append order within."""
        return [data for partition in sorted(self._tails)
                for _key, data in self._tails[partition]]

    def summary(self) -> dict[str, int]:
        return {
            "segments": self.n_segments,
            "sealed_records": self.n_sealed_records,
            "tail_records": self.n_tail_records,
            "known_keys": len(self._known),
        }

    # -- journal loading -----------------------------------------------------

    def _iter_journal_lines(self):
        """Yield ``(entry | None, reason, raw)`` per physical line.

        Tolerant by construction: a line that is not valid JSON or
        fails its CRC yields ``(None, reason, raw)`` and the walk
        continues.  A final line without a newline (torn append) is
        reported with reason ``"torn-tail"`` and not parsed.
        ``_journal_good_bytes`` tracks the byte offset just past the
        last intact line, for tail truncation during scrub.
        """
        try:
            blob = self.io.read_bytes(self.journal_path)
        except FileNotFoundError:
            return
        except OSError as exc:
            raise StoreError(
                f"cannot read journal {self.journal_path}: {exc}"
            ) from exc
        offset = 0
        self._journal_good_bytes = 0
        while offset < len(blob):
            newline = blob.find(b"\n", offset)
            if newline < 0:
                yield None, "torn-tail", blob[offset:]
                return
            raw = blob[offset:newline]
            offset = newline + 1
            try:
                entry = json.loads(raw.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                self._journal_good_bytes = offset
                yield None, "undecodable", raw
                continue
            if (not isinstance(entry, dict)
                    or entry.get("crc") != _line_crc(entry)):
                self._journal_good_bytes = offset
                yield None, "crc-mismatch", raw
                continue
            self._journal_good_bytes = offset
            yield entry, None, raw

    def _load_journal(self) -> None:
        wal_rows: dict[str, dict] = {}
        quarantined: set[str] = set()
        for entry, reason, _raw in self._iter_journal_lines():
            if entry is None:
                self.journal_damage.append({"reason": reason})
                continue
            op = entry.get("op")
            if op == "wal":
                wal_rows[entry["key"]] = entry
            elif op == "commit":
                self._live[entry["segment"]] = entry
                quarantined.discard(entry["segment"])
                self._seq = max(self._seq, int(entry.get("seq", 0)) + 1)
            elif op == "quarantine":
                self._live.pop(entry["segment"], None)
                quarantined.add(entry["segment"])
        covered: set[str] = set()
        for entry in self._live.values():
            covered.update(entry["keys"])
        # WAL rows no live segment covers go back to the unsealed
        # tail — this is both normal tail restoration after a clean
        # restart and record recovery after a segment quarantine.
        for key, entry in wal_rows.items():
            if key in covered:
                continue
            partition = tuple(entry["partition"])
            self._tails.setdefault(partition, []).append(
                (key, entry["data"])
            )
        self._known = covered | {
            key for key in wal_rows if key not in covered
        }
        # Tail keys without WAL (wal=False stores) cannot be restored;
        # _known covers what the journal proves.

    # -- appends -------------------------------------------------------------

    def partition_of(self, data: dict) -> tuple[int, int]:
        return (
            int(float(data["start_time"]) // self.time_bucket_s),
            int(data["device_id"]) // self.device_bucket,
        )

    def append(self, data: dict, key: str | None = None) -> str:
        """Durably accept one failure-record dict; returns its key.

        Idempotent: re-appending an identity the store already owns is
        a no-op (the retry path after a mid-seal fault).  The WAL line
        is fsynced before the record joins the tail, so an accepted
        record survives a SIGKILL at any later instant.
        """
        with self._mutex:
            key = key if key is not None else record_identity(data)
            if key in self._known:
                return key
            partition = self.partition_of(data)
            if self.wal:
                entry = {
                    "op": "wal",
                    "key": key,
                    "partition": list(partition),
                    "data": data,
                }
                self.io.append_line(self.journal_path,
                                    _seal_entry(entry))
            tail = self._tails.setdefault(partition, [])
            tail.append((key, data))
            self._known.add(key)
            registry = get_registry()
            registry.inc("store_records_appended_total")
            if len(tail) >= self.seal_records:
                self.seal(partition)
            return key

    def seal(self, partition: tuple[int, int]) -> str | None:
        """Seal one partition's tail into a committed segment.

        Returns the new segment name, or ``None`` when the tail was
        empty or the filesystem refused the write (``OSError`` —
        ENOSPC and friends — is absorbed: the tail is retained, the
        failure counted, and a later seal retries).  Any other fault
        (e.g. a simulated crash) propagates with the tail intact.
        """
        with self._mutex:
            tail = self._tails.get(partition)
            if not tail:
                return None
            registry = get_registry()
            rows = [data for _key, data in tail]
            keys = [key for key, _data in tail]
            blob = encode_segment(rows, partition)
            digest = blob.split(b"\n", 1)[0].split()[-1].decode("ascii")
            # The seq is consumed per *attempt*, not per commit: a
            # retry after a failed write or a torn commit append must
            # never reuse the name an earlier — possibly fault-damaged
            # — attempt already wrote, or the overwrite would erase
            # the evidence scrub and reconciliation classify.  The
            # abandoned file stays behind as an orphan that scrub
            # adopts or supersedes.
            seq = self._seq
            self._seq += 1
            name = (f"seg-t{partition[0]}-d{partition[1]}"
                    f"-{seq:06d}.seg")
            try:
                self.io.write_atomic(self.segments_dir / name, blob)
            except OSError as exc:
                reason = (errno_module.errorcode.get(exc.errno,
                                                     "OSERROR")
                          if exc.errno else "OSERROR").lower()
                registry.inc("store_seal_failures_total", reason=reason)
                return None
            entry = {
                "op": "commit",
                "segment": name,
                "seq": seq,
                "sha256": digest,
                "n_records": len(rows),
                "partition": list(partition),
                "keys": keys,
            }
            self.io.append_line(self.journal_path, _seal_entry(entry))
            # Only now — digest durable in the journal — does the
            # store stop owning these rows in memory.
            self._live[name] = entry
            del self._tails[partition]
            registry.inc("store_segments_sealed_total")
            registry.inc("store_records_sealed_total", len(rows))
            registry.inc("store_bytes_written_total", len(blob))
            return name

    def flush(self) -> list[str]:
        """Seal every non-empty tail (drain path); returns new names."""
        with self._mutex:
            sealed = []
            for partition in sorted(self._tails):
                name = self.seal(partition)
                if name is not None:
                    sealed.append(name)
            return sealed

    def query_snapshot(self) -> StoreSnapshot:
        """A consistent view for a reader on another thread.

        Taken under the mutation guard, so a fold never observes a
        half-applied seal (tail cleared but segment not yet live) no
        matter how ingest interleaves.  Cheap: reference copies only.
        """
        with self._mutex:
            return StoreSnapshot(
                live=dict(self._live),
                tails={partition: list(rows)
                       for partition, rows in self._tails.items()},
                n_records=len(self._known),
            )

    # -- reads ---------------------------------------------------------------

    def read_segment(self, name: str,
                     entry: dict | None = None) -> list[dict]:
        """Decode one live segment; raises SegmentCorruptError on damage.

        ``entry`` lets a snapshot reader pass the commit entry it
        captured instead of consulting the live map (which may have
        moved on).
        """
        if entry is None:
            entry = self._live.get(name)
        if entry is None:
            raise StoreError(f"no live segment named {name}")
        try:
            blob = self.io.read_bytes(self.segments_dir / name)
        except FileNotFoundError:
            raise SegmentCorruptError("segment file missing") from None
        except OSError as exc:
            raise SegmentCorruptError(f"unreadable: {exc}") from exc
        rows, header = decode_segment(blob)
        if len(rows) != entry["n_records"]:
            raise SegmentCorruptError(
                f"segment holds {len(rows)} records, journal committed "
                f"{entry['n_records']}"
            )
        return rows

    def iter_rows(self, skipped: list[dict] | None = None):
        """Yield every owned record dict, sealed segments first.

        Corrupt segments are skipped; each skip appends
        ``{"segment", "reason"}`` to ``skipped`` when provided (and is
        always counted in the metrics registry).
        """
        registry = get_registry()
        for name in sorted(self._live):
            try:
                rows = self.read_segment(name)
            except SegmentCorruptError as exc:
                registry.inc("store_query_segments_skipped_total")
                if skipped is not None:
                    skipped.append({"segment": name,
                                    "reason": exc.reason})
                continue
            registry.inc("store_query_segments_total")
            yield from rows
        for partition in sorted(self._tails):
            for _key, data in self._tails[partition]:
                yield data

    def fold_analysis(self) -> QueryResult:
        """Fold AnalysisPartials over segments + tail, exactly.

        Segments are grouped by device bucket; buckets partition the
        device population, so merging per-bucket partials is exact
        (byte-identical to analyzing all records at once) even for the
        distinct-device counters.  Buckets are folded one at a time —
        a bucket's rows are decoded, reduced to an
        :class:`~repro.analysis.columnar.AnalysisPartial`, and
        discarded before the next bucket is read — so peak memory is
        bounded by the largest device bucket, not the whole store.
        Ingest may keep appending while this runs — the fold sees the
        store as of call time.
        """
        from repro.analysis.columnar import AnalysisPartial
        from repro.dataset.store import Dataset

        registry = get_registry()
        skipped: list[dict] = []
        # Metadata-only pass: group segment names and tail partitions
        # by device bucket; no payload is decoded yet.
        segment_buckets: dict[int, list[str]] = {}
        for name in sorted(self._live):
            bucket = int(self._live[name]["partition"][1])
            segment_buckets.setdefault(bucket, []).append(name)
        tail_buckets: dict[int, list[tuple[int, int]]] = {}
        for partition in sorted(self._tails):
            tail_buckets.setdefault(partition[1], []).append(partition)
        n_read = 0
        n_tail = 0
        partial = AnalysisPartial.from_dataset(Dataset())
        for bucket in sorted(set(segment_buckets) | set(tail_buckets)):
            rows: list[dict] = []
            for name in segment_buckets.get(bucket, ()):
                try:
                    segment_rows = self.read_segment(name)
                except SegmentCorruptError as exc:
                    registry.inc("store_query_segments_skipped_total")
                    skipped.append({"segment": name,
                                    "reason": exc.reason})
                    continue
                registry.inc("store_query_segments_total")
                rows.extend(segment_rows)
                n_read += 1
            for tail_partition in tail_buckets.get(bucket, ()):
                tail_rows = [data for _key, data
                             in self._tails[tail_partition]]
                n_tail += len(tail_rows)
                rows.extend(tail_rows)
            if not rows:
                continue
            failures = [FailureRecord.from_dict(row) for row in rows]
            partial = partial.merge(
                AnalysisPartial.from_dataset(Dataset(failures=failures))
            )
        return QueryResult(
            block=partial.to_block(),
            n_segments=n_read,
            n_tail_records=n_tail,
            skipped=skipped,
        )

    def dataset(self):
        """All owned records as a :class:`~repro.dataset.store.Dataset`.

        Corrupt segments are skipped with accounting in
        ``metadata["store"]["skipped_segments"]``.
        """
        from repro.dataset.store import Dataset

        skipped: list[dict] = []
        failures = [FailureRecord.from_dict(row)
                    for row in self.iter_rows(skipped)]
        return Dataset(failures=failures, metadata={
            "store": {
                "root": str(self.root),
                "segments": self.n_segments,
                "skipped_segments": skipped,
            },
        })

    # -- scrub / repair ------------------------------------------------------

    def scrub(self, repair: bool = True) -> ScrubReport:
        """Verify everything, classify all damage, repair what's possible.

        With ``repair=True`` (the default): damaged segments move to
        ``quarantine/``, their WAL-covered records return to the
        unsealed tail, valid orphan files are re-committed, leftover
        temp files are deleted, and a torn journal tail is truncated.
        With ``repair=False`` the same findings are reported but the
        store is left untouched (read-only audit).
        """
        with self._mutex:
            return self._scrub(repair)

    def _scrub(self, repair: bool) -> ScrubReport:
        registry = get_registry()
        report = ScrubReport(root=str(self.root), repair=repair)
        recovered: list[str] = []
        lost: list[str] = []

        # Re-walk the journal *now* rather than trusting load-time
        # state: ``append_line`` heals a torn tail (terminating the
        # fragment as its own CRC-failing line) and the store keeps
        # appending after load, so the load-time good-bytes offset can
        # sit far behind WAL/commit lines written since — truncating
        # to it would destroy acknowledged records.  One fresh walk
        # yields the WAL coverage map for recovery decisions, the
        # current damage census, and an up-to-date truncation offset
        # (``_iter_journal_lines`` advances ``_journal_good_bytes``
        # past every complete line; only a still-torn tail fragment
        # lies beyond it).
        wal_rows: dict[str, dict] = {}
        fresh_damage: list[dict] = []
        for entry, reason, _raw in self._iter_journal_lines():
            if entry is None:
                fresh_damage.append({"reason": reason})
                continue
            if entry.get("op") == "wal":
                wal_rows[entry["key"]] = entry
        torn = [d for d in fresh_damage if d["reason"] == "torn-tail"]
        report.journal_damaged_lines = len(fresh_damage) - len(torn)
        if torn:
            try:
                size = os.path.getsize(self.journal_path)
            except OSError:
                size = self._journal_good_bytes
            report.journal_truncated_bytes = max(
                0, size - self._journal_good_bytes
            )
            if repair and report.journal_truncated_bytes:
                with open(self.journal_path, "r+b") as handle:
                    handle.truncate(self._journal_good_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
                fresh_damage = [
                    d for d in fresh_damage if d not in torn
                ]
        self.journal_damage = fresh_damage
        registry.inc("scrub_journal_damaged_lines_total",
                     report.journal_damaged_lines)

        # Verify every live segment.
        for name in sorted(self._live):
            entry = self._live[name]
            registry.inc("scrub_segments_checked_total")
            try:
                rows = self.read_segment(name)
            except SegmentCorruptError as exc:
                finding = self._classify_damaged(
                    name, entry, exc.reason, wal_rows,
                    recovered, lost, repair,
                )
                report.quarantined.append(finding)
                registry.inc("scrub_segments_quarantined_total",
                             reason=exc.reason.split(" ")[0])
                continue
            del rows
            report.segments_ok += 1

        # Orphan segment files: valid data with no journal commit
        # (crash between rename and commit, or the commit line was
        # itself damaged).  Re-adopt unless already covered.
        report_adopted, report_superseded = self._scan_orphans(
            wal_rows, repair
        )
        report.adopted = report_adopted
        report.superseded = report_superseded
        for finding in report_adopted:
            registry.inc("scrub_segments_adopted_total")

        # Leftover atomic-write temp files (crash in the rename window).
        for directory in (self.segments_dir, self.root):
            if not directory.is_dir():
                continue
            for temp in sorted(directory.glob("*.tmp*")):
                report.temp_files_removed.append(str(temp))
                registry.inc("scrub_temp_files_removed_total")
                if repair:
                    try:
                        temp.unlink()
                    except OSError:
                        pass

        report.recovered_keys = tuple(recovered)
        report.lost_keys = tuple(lost)
        registry.inc("scrub_records_recovered_total", len(recovered))
        registry.inc("scrub_records_lost_total", len(lost))
        return report

    def _classify_damaged(self, name: str, entry: dict, reason: str,
                          wal_rows: dict, recovered: list[str],
                          lost: list[str], repair: bool) -> dict:
        """Quarantine one damaged live segment; recover via WAL."""
        keys = list(entry["keys"])
        recoverable = [k for k in keys if k in wal_rows]
        unrecoverable = [k for k in keys if k not in wal_rows]
        if repair:
            path = self.segments_dir / name
            if path.exists():
                self.quarantine_dir.mkdir(parents=True, exist_ok=True)
                try:
                    os.replace(path, self.quarantine_dir / name)
                except OSError:
                    pass
            quarantine_entry = {
                "op": "quarantine",
                "segment": name,
                "reason": reason,
                "keys": keys,
            }
            self.io.append_line(self.journal_path,
                                _seal_entry(quarantine_entry))
            self._live.pop(name, None)
            # WAL-covered records return to the unsealed tail; a later
            # flush reseals them into a fresh segment.
            for key in recoverable:
                wal = wal_rows[key]
                partition = tuple(wal["partition"])
                self._tails.setdefault(partition, []).append(
                    (key, wal["data"])
                )
            for key in unrecoverable:
                self._known.discard(key)
            recovered.extend(recoverable)
            lost.extend(unrecoverable)
        else:
            recovered.extend(recoverable)
            lost.extend(unrecoverable)
        return {
            "segment": name,
            "reason": reason,
            "keys": len(keys),
            "recovered": len(recoverable),
            "lost": len(unrecoverable),
        }

    def _scan_orphans(self, wal_rows: dict,
                      repair: bool) -> tuple[list[dict], list[str]]:
        adopted: list[dict] = []
        superseded: list[str] = []
        if not self.segments_dir.is_dir():
            return adopted, superseded
        for path in sorted(self.segments_dir.glob("seg-*.seg")):
            if path.name in self._live:
                continue
            try:
                rows, header = decode_segment(path.read_bytes())
            except SegmentCorruptError:
                # A corrupt orphan proves nothing was lost: its rows
                # were never committed, so they are still in the tail
                # or the WAL.  Quarantine the junk file.
                superseded.append(path.name)
                if repair:
                    self.quarantine_dir.mkdir(parents=True,
                                              exist_ok=True)
                    try:
                        os.replace(path, self.quarantine_dir / path.name)
                    except OSError:
                        pass
                continue
            keys = [record_identity(row) for row in rows]
            tail_keys = {key for tail in self._tails.values()
                         for key, _data in tail}
            live_keys: set[str] = set()
            for live in self._live.values():
                live_keys.update(live["keys"])
            in_live = [k for k in keys if k in live_keys]
            if len(in_live) == len(keys):
                # Every row already lives in a committed segment: a
                # stale duplicate, safe to delete.
                superseded.append(path.name)
                if repair:
                    try:
                        path.unlink()
                    except OSError:
                        pass
                continue
            if in_live:
                # Mixed live coverage: adopting would double-own the
                # committed rows.  Recover the uncommitted ones into
                # the tail (WAL line preferred, decoded row as the
                # fallback), then retire the file.
                superseded.append(path.name)
                if repair:
                    by_key = dict(zip(keys, rows))
                    for key in keys:
                        if key in live_keys or key in tail_keys:
                            continue
                        if key in wal_rows:
                            wal = wal_rows[key]
                            partition = tuple(wal["partition"])
                            row = wal["data"]
                        else:
                            row = by_key[key]
                            partition = self.partition_of(row)
                        self._tails.setdefault(partition, []).append(
                            (key, row)
                        )
                        self._known.add(key)
                    self.quarantine_dir.mkdir(parents=True,
                                              exist_ok=True)
                    try:
                        os.replace(path, self.quarantine_dir / path.name)
                    except OSError:
                        pass
                continue
            # No live coverage: this is the crash-between-rename-and-
            # commit window (or a damaged commit line).  Adopt the
            # file — the verified bytes already on disk — and drop the
            # tail copies its WAL lines restored, so the rows have
            # exactly one owner again.
            if repair:
                entry = {
                    "op": "commit",
                    "segment": path.name,
                    "seq": self._seq,
                    "sha256": segment_digest(path.read_bytes()),
                    "n_records": len(rows),
                    "partition": list(header.get(
                        "partition", self.partition_of(rows[0])
                    )),
                    "keys": keys,
                }
                self.io.append_line(self.journal_path,
                                    _seal_entry(entry))
                self._seq += 1
                self._live[path.name] = entry
                self._known.update(keys)
                keyset = set(keys)
                for partition in list(self._tails):
                    kept = [(k, d) for k, d in self._tails[partition]
                            if k not in keyset]
                    if kept:
                        self._tails[partition] = kept
                    else:
                        del self._tails[partition]
            adopted.append({
                "segment": path.name,
                "n_records": len(rows),
                "new_keys": len([k for k in keys
                                 if k not in tail_keys]),
            })
        return adopted, superseded
