"""The time-inhomogeneous Markov process (TIMP) enhancement (Sec. 4.2):
recovery-probability estimation from field data, the expected-recovery-
time formalization of Eq. (1), and the annealing search for optimal
probations."""

from repro.timp.model import RecoveryCdf, TimpModel
from repro.timp.expected_time import (
    expected_recovery_time,
    simulate_expected_recovery_time,
)
from repro.timp.annealing import AnnealingResult, optimize_probations

__all__ = [
    "RecoveryCdf",
    "TimpModel",
    "expected_recovery_time",
    "simulate_expected_recovery_time",
    "AnnealingResult",
    "optimize_probations",
]
