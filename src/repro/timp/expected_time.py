"""Expected overall recovery time — Eq. (1) of the paper.

For probations (Pro_0, Pro_1, Pro_2) with cumulative boundaries
``sigma_i = Pro_0 + ... + Pro_i``:

    T_i = integral_{sigma_{i-1}}^{sigma_i} P_{i->e}(t) dt
          + P_{i->i+1} * T_{i+1} + O_i,            i in {0, 1, 2}
    T_3 = integral_{sigma_2}^{t_m} P_{3->e}(t) dt + O_3
    T_recovery = T_0,  with O_0 = 0 and P_{i->i+1} = 1 - P_{i->e}(sigma_i).

We evaluate the integrals numerically over the fitted recovery CDF.
The module also provides a Monte-Carlo estimate of the *actual*
expected stall duration under a probation vector (simulating the full
mechanism via :func:`repro.android.recovery.resolve_stall`), used to
validate that minimizing Eq. (1) indeed shortens real recoveries.
"""

from __future__ import annotations

import random

import numpy as np

from repro.android.recovery import RecoveryPolicy, StageParameters, resolve_stall
from repro.timp.model import TimpModel

#: Trapezoid resolution bounds (points per integral).
_MIN_POINTS = 16
_MAX_POINTS = 2_048


def _integral(model: TimpModel, lower: float, upper: float) -> float:
    if upper <= lower:
        return 0.0
    points = min(_MAX_POINTS, max(_MIN_POINTS, int(upper - lower)))
    grid = np.linspace(lower, upper, points)
    values = model.recovery_cdf.batch(grid)
    return float(np.trapezoid(values, grid))


#: Default T_3 horizon for Eq. (1).  The paper integrates to t_m, "the
#: maximum duration of Data_Stall failures"; taken literally over a
#: field dataset t_m reaches tens of thousands of seconds and the T_3
#: term dwarfs everything (pushing the optimizer toward *longer*
#: probations).  Deployments bound the stall horizon the trigger is
#: designed for; 600 s covers >95% of stalls (Sec. 2.2's anchors).
DEFAULT_T_MAX_S = 600.0


def expected_recovery_time(
    model: TimpModel,
    probations_s: tuple[float, float, float],
    t_max: float | None = None,
) -> float:
    """T_recovery = T_0 per Eq. (1)."""
    if len(probations_s) != 3:
        raise ValueError("exactly three probations are required")
    if any(p < 0 for p in probations_s):
        raise ValueError("probations cannot be negative")
    sigma = np.cumsum(probations_s)  # sigma_0, sigma_1, sigma_2
    horizon = max(
        t_max if t_max is not None else DEFAULT_T_MAX_S,
        float(sigma[-1]) + 1.0,
    )
    # T_3: after the third operation only natural recovery remains.
    t_next = _integral(model, float(sigma[2]), horizon) + model.overhead(3)
    # Walk back T_2, T_1, T_0.
    for i in (2, 1, 0):
        lower = float(sigma[i - 1]) if i > 0 else 0.0
        upper = float(sigma[i])
        escalation = model.escalation_probability(upper)
        t_next = (
            _integral(model, lower, upper)
            + escalation * t_next
            + model.overhead(i)
        )
    return t_next


def mechanism_expected_duration(
    probations_s: tuple[float, float, float],
    naturals: np.ndarray,
    stage_overheads_s: tuple[float, float, float] = (2.0, 6.0, 15.0),
    stage_success_rates: tuple[float, float, float] = (0.60, 0.70, 0.80),
    annoyance_cost_s: tuple[float, float, float] = (8.0, 15.0, 25.0),
) -> float:
    """Exact expected stall duration under the three-stage mechanism.

    For each natural duration ``n`` the stage-success expectation has a
    closed form: stage k (reached with the product of earlier failure
    probabilities) ends the episode at its completion time with its
    success probability; otherwise the episode ends at ``n``.  The
    result is averaged over ``naturals`` — use
    :meth:`repro.timp.model.RecoveryCdf.sample_naturals` for a
    representative, deterministic sample.

    ``stage_success_rates`` default to *effective* field rates (the
    nominal per-stage rates deflated by the fraction of stalls a
    handset-side operation can fix at all).  ``annoyance_cost_s`` adds
    the user-experience penalty of firing a disruptive recovery
    operation — cleaning up connections, re-registering, or restarting
    the radio while the user might be mid-session.  It is what keeps
    the optimal trigger from collapsing to "fire immediately".
    """
    if len(probations_s) != 3:
        raise ValueError("exactly three probations are required")
    if any(p < 0 for p in probations_s):
        raise ValueError("probations cannot be negative")
    n = np.asarray(naturals, dtype=float)
    if n.size == 0:
        raise ValueError("need natural durations")
    expected = np.zeros_like(n)
    survivors = np.ones_like(n)  # P(episode still open), per natural
    t = 0.0
    for probation, overhead, success, annoyance in zip(
        probations_s, stage_overheads_s, stage_success_rates,
        annoyance_cost_s,
    ):
        window_end = t + probation
        # Naturals ending inside the window (or during the operation)
        # close the episode at n.
        ends_before_fix = n <= window_end + overhead
        expected += np.where(
            ends_before_fix, survivors * n, 0.0
        )
        survivors = np.where(ends_before_fix, 0.0, survivors)
        # The stage fires: annoyance accrues for every still-open
        # episode; success closes at the completion time.
        fix_time = window_end + overhead
        expected += survivors * annoyance
        expected += survivors * success * fix_time
        survivors = survivors * (1.0 - success)
        t = fix_time
    # After stage 3 the episode rides to its natural end.
    expected += survivors * n
    return float(expected.mean())


def simulate_expected_recovery_time(
    probations_s: tuple[float, float, float],
    natural_durations: np.ndarray,
    rng: random.Random,
    stage_overheads_s: tuple[float, float, float] = (2.0, 6.0, 15.0),
    stage_success_rates: tuple[float, float, float] = (0.75, 0.85, 0.95),
    samples: int = 2_000,
) -> float:
    """Monte-Carlo mean stall duration under a probation vector.

    Natural durations are bootstrap-resampled from the supplied
    (empirical) distribution and run through the real recovery engine.
    """
    if len(natural_durations) == 0:
        raise ValueError("need natural durations to resample")
    policy = RecoveryPolicy(
        probations_s=tuple(probations_s),
        stages=tuple(
            StageParameters(overhead_s=o, success_rate=s)
            for o, s in zip(stage_overheads_s, stage_success_rates)
        ),
    )
    durations = np.asarray(natural_durations, dtype=float)
    total = 0.0
    for _ in range(samples):
        natural = float(durations[rng.randrange(len(durations))])
        resolution = resolve_stall(policy, natural, rng)
        total += resolution.duration_s
    return total / samples
