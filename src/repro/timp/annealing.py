"""Simulated-annealing search for the optimal probations (Sec. 4.2).

The paper uses "the annealing algorithm" to find the global minimum of
T_recovery over (Pro_0, Pro_1, Pro_2); it lands on 21 s / 6 s / 16 s
with T_recovery = 27.8 s, versus 38 s for vanilla Android's 60/60/60.
This module implements the classic Kirkpatrick scheme with geometric
cooling and Gaussian moves, clamped to a probation box.
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable
from dataclasses import dataclass

from repro.timp.expected_time import (
    expected_recovery_time,
    mechanism_expected_duration,
)
from repro.timp.model import TimpModel

Vector = tuple[float, float, float]


@dataclass(frozen=True)
class AnnealingResult:
    """Outcome of one annealing run."""

    best_probations_s: Vector
    best_value: float
    #: Objective value of vanilla Android's 60/60/60 for comparison.
    default_value: float
    evaluations: int

    @property
    def improvement(self) -> float:
        """Relative T_recovery reduction vs. the vanilla trigger."""
        if self.default_value == 0:
            return 0.0
        return 1.0 - self.best_value / self.default_value


def anneal(
    objective: Callable[[Vector], float],
    rng: random.Random,
    initial: Vector = (30.0, 30.0, 30.0),
    bounds: tuple[float, float] = (1.0, 120.0),
    initial_temperature: float = 5.0,
    cooling: float = 0.995,
    steps: int = 4_000,
    step_scale: float = 6.0,
) -> tuple[Vector, float, int]:
    """Minimize ``objective`` over the probation box.

    Returns (best vector, best value, evaluations).
    """
    if not 0.0 < cooling < 1.0:
        raise ValueError("cooling must be within (0, 1)")
    lo, hi = bounds
    current = tuple(min(max(v, lo), hi) for v in initial)
    current_value = objective(current)
    best, best_value = current, current_value
    temperature = initial_temperature
    evaluations = 1
    for _ in range(steps):
        candidate = tuple(
            min(max(v + rng.gauss(0.0, step_scale), lo), hi)
            for v in current
        )
        value = objective(candidate)
        evaluations += 1
        delta = value - current_value
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            current, current_value = candidate, value
            if current_value < best_value:
                best, best_value = current, current_value
        temperature *= cooling
    return best, best_value, evaluations


def optimize_probations(
    model: TimpModel,
    rng: random.Random | None = None,
    steps: int = 4_000,
    bounds: tuple[float, float] = (1.0, 120.0),
    objective_kind: str = "mechanism",
    n_naturals: int = 4_000,
) -> AnnealingResult:
    """Find the T_recovery-minimizing probations for a fitted TIMP.

    ``objective_kind`` selects the target: ``"mechanism"`` (default)
    minimizes the exact expected stall duration of the staged mechanism
    over naturals drawn from the fitted CDF; ``"eq1"`` minimizes the
    paper's Eq. (1) as printed (with the bounded default horizon).
    """
    rng = rng or random.Random(42)
    cache: dict[Vector, float] = {}
    if objective_kind == "mechanism":
        naturals = model.recovery_cdf.sample_naturals(n_naturals)

        def evaluate(probations: Vector) -> float:
            return mechanism_expected_duration(probations, naturals)
    elif objective_kind == "eq1":
        def evaluate(probations: Vector) -> float:
            return expected_recovery_time(model, probations)
    else:
        raise ValueError(f"unknown objective: {objective_kind!r}")

    def objective(probations: Vector) -> float:
        key = tuple(round(p, 1) for p in probations)
        if key not in cache:
            cache[key] = evaluate(key)
        return cache[key]

    best, best_value, evaluations = anneal(
        objective, rng, steps=steps, bounds=bounds
    )
    default_value = objective((60.0, 60.0, 60.0))
    # Round to whole seconds, as deployed probations would be.
    rounded = tuple(float(round(p)) for p in best)
    rounded_value = objective(rounded)
    if rounded_value <= best_value:
        best, best_value = rounded, rounded_value
    return AnnealingResult(
        best_probations_s=best,
        best_value=best_value,
        default_value=default_value,
        evaluations=evaluations,
    )
