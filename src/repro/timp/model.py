"""The TIMP model of the Data_Stall recovery process (Fig. 18).

The process has five states: S0 (stall detected), S1/S2/S3 (executing
the three progressive recovery operations), and Se = S4 (recovered).
The paper's key observation is that the device's probability of
recovering *on its own* depends on the elapsed time t — a stationary
Markov chain cannot express that, hence the time-inhomogeneous variant.

Everything hinges on the recovery probability P_{i->e}(t), which we
estimate from field data with a Kaplan-Meier product-limit estimator:
stalls that auto-recovered yield exact event times; stalls ended by a
recovery stage or a user reset are right-censored at the intervention
time (the device *would* have recovered later, we just never saw when).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.android.recovery import AUTO_RECOVERED, USER_RESET
from repro.core.events import FailureType
from repro.dataset.store import Dataset


class RecoveryCdf:
    """P(natural recovery by elapsed time t), estimated Kaplan-Meier.

    Beyond the last observation the tail extrapolates exponentially
    with the mean hazard of the final observed decade, so the Eq. (1)
    integrals stay finite and well-behaved.
    """

    def __init__(
        self,
        event_times: np.ndarray,
        censor_times: np.ndarray,
    ) -> None:
        events = np.asarray(event_times, dtype=float)
        censors = np.asarray(censor_times, dtype=float)
        if len(events) == 0:
            raise ValueError("need at least one observed recovery")
        if (events < 0).any() or (censors < 0).any():
            raise ValueError("times cannot be negative")
        self._grid, self._survival = _kaplan_meier(events, censors)
        self._t_max = float(self._grid[-1]) if len(self._grid) else 0.0
        self._s_end = float(self._survival[-1]) if len(self._grid) else 1.0
        self._tail_hazard = self._estimate_tail_hazard()

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_dataset(cls, dataset: Dataset) -> "RecoveryCdf":
        """Estimate from a study dataset's Data_Stall records."""
        events = []
        censors = []
        for failure in dataset.failures:
            if failure.failure_type != FailureType.DATA_STALL.value:
                continue
            if failure.resolved_by == AUTO_RECOVERED:
                events.append(failure.duration_s)
            elif failure.resolved_by in (USER_RESET,) or (
                failure.resolved_by is not None and failure.resolved_by > 0
            ):
                censors.append(failure.duration_s)
            else:
                # Unresolved episodes ended naturally: exact events.
                events.append(failure.duration_s)
        return cls(np.array(events), np.array(censors))

    @classmethod
    def from_durations(cls, durations) -> "RecoveryCdf":
        """Estimate from fully observed (uncensored) natural durations."""
        return cls(np.asarray(durations, dtype=float), np.array([]))

    # -- evaluation -----------------------------------------------------------

    def __call__(self, t: float) -> float:
        """P(recovered by t)."""
        if t <= 0:
            return 0.0
        if self._t_max == 0.0:
            return 1.0
        if t >= self._t_max:
            survival = self._s_end * np.exp(
                -self._tail_hazard * (t - self._t_max)
            )
            return float(1.0 - survival)
        index = np.searchsorted(self._grid, t, side="right") - 1
        if index < 0:
            return 0.0
        return float(1.0 - self._survival[index])

    def batch(self, times: np.ndarray) -> np.ndarray:
        """Vectorized CDF evaluation."""
        t = np.asarray(times, dtype=float)
        if self._t_max == 0.0:
            return np.where(t > 0, 1.0, 0.0)
        result = np.zeros_like(t)
        inside = (t > 0) & (t < self._t_max)
        if inside.any():
            index = np.searchsorted(self._grid, t[inside], side="right") - 1
            survival = np.where(index >= 0, self._survival[index], 1.0)
            result[inside] = 1.0 - survival
        beyond = t >= self._t_max
        if beyond.any():
            survival = self._s_end * np.exp(
                -self._tail_hazard * (t[beyond] - self._t_max)
            )
            result[beyond] = 1.0 - survival
        return result

    @property
    def t_max(self) -> float:
        """The largest observed time (the paper's t_m)."""
        return self._t_max

    def sample_naturals(self, n: int) -> np.ndarray:
        """``n`` representative natural durations via inverse-CDF over a
        deterministic uniform grid (common random numbers, so annealing
        objectives built on them are smooth in the probations)."""
        if n <= 0:
            raise ValueError("n must be positive")
        uniforms = (np.arange(n) + 0.5) / n
        cdf_grid = 1.0 - self._survival
        samples = np.empty(n)
        inside = uniforms <= cdf_grid[-1]
        if inside.any():
            index = np.searchsorted(cdf_grid, uniforms[inside],
                                    side="left")
            index = np.minimum(index, len(self._grid) - 1)
            samples[inside] = self._grid[index]
        beyond = ~inside
        if beyond.any():
            # Invert the exponential tail: 1 - s_end*exp(-h*(t-tmax)) = u.
            survival = 1.0 - uniforms[beyond]
            samples[beyond] = self._t_max + (
                np.log(self._s_end / survival) / self._tail_hazard
            )
        return samples

    def quantile(self, q: float) -> float:
        """Smallest t with CDF(t) >= q (for reporting)."""
        if not 0.0 <= q < 1.0:
            raise ValueError("q must be within [0, 1)")
        lo, hi = 0.0, max(self._t_max, 1.0)
        while self(hi) < q:
            hi *= 2.0
            if hi > 1e9:
                raise RuntimeError("quantile out of range")
        for _ in range(80):
            mid = (lo + hi) / 2
            if self(mid) < q:
                lo = mid
            else:
                hi = mid
        return hi

    # -- internals -----------------------------------------------------------

    def _estimate_tail_hazard(self) -> float:
        if len(self._grid) < 2 or self._s_end <= 0:
            return 1e-3
        # Mean hazard over the last decade of observations.
        start = self._t_max / 10.0
        index = np.searchsorted(self._grid, start)
        index = min(index, len(self._grid) - 2)
        s_start = self._survival[index]
        span = self._t_max - self._grid[index]
        if span <= 0 or s_start <= self._s_end:
            return 1e-3
        return float(np.log(s_start / self._s_end) / span)


def _kaplan_meier(
    events: np.ndarray, censors: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Product-limit survival estimate.

    Returns (event-time grid, survival value at each grid point).
    """
    all_times = np.concatenate([events, censors])
    order = np.argsort(all_times, kind="stable")
    is_event = np.concatenate([
        np.ones(len(events), dtype=bool),
        np.zeros(len(censors), dtype=bool),
    ])[order]
    times = all_times[order]
    n = len(times)
    at_risk = n
    survival = 1.0
    grid: list[float] = []
    values: list[float] = []
    i = 0
    while i < n:
        t = times[i]
        deaths = 0
        removed = 0
        while i < n and times[i] == t:
            if is_event[i]:
                deaths += 1
            removed += 1
            i += 1
        if deaths and at_risk > 0:
            survival *= 1.0 - deaths / at_risk
            grid.append(float(t))
            values.append(survival)
        at_risk -= removed
    if not grid:
        raise ValueError("no recovery events to estimate from")
    return np.array(grid), np.array(values)


@dataclass(frozen=True)
class TimpModel:
    """The five-state TIMP of Fig. 18 around a fitted recovery CDF."""

    recovery_cdf: RecoveryCdf
    #: Operation overheads O_1..O_3 (O_0 = 0 by definition).
    stage_overheads_s: tuple[float, float, float] = (2.0, 6.0, 15.0)

    #: State labels, S0 through Se = S4.
    STATES = ("S0", "S1", "S2", "S3", "Se")

    def __post_init__(self) -> None:
        overheads = list(self.stage_overheads_s)
        if overheads != sorted(overheads):
            raise ValueError("overheads must be progressive (O1<O2<O3)")
        if any(o < 0 for o in overheads):
            raise ValueError("overheads cannot be negative")

    def recovery_probability(self, t: float) -> float:
        """P_{i->e}(t): probability of having auto-recovered by t."""
        return self.recovery_cdf(t)

    def escalation_probability(self, elapsed_until_next: float) -> float:
        """P_{i->i+1} = 1 - P_{i->e}(sigma Pro_i)."""
        return 1.0 - self.recovery_cdf(elapsed_until_next)

    def overhead(self, stage: int) -> float:
        """O_i; stage 0 has no operation (Sec. 4.2)."""
        if stage == 0:
            return 0.0
        return self.stage_overheads_s[stage - 1]
