"""Reproduction of *A Nationwide Study on Cellular Reliability:
Measurement, Analysis, and Enhancements* (SIGCOMM 2021).

The library rebuilds the paper's entire stack over simulated substrates:
the Android telephony mechanisms it studies (:mod:`repro.android`), the
Android-MOD monitoring infrastructure (:mod:`repro.monitoring`), the
radio / cellular-network / device-netstack substrates (:mod:`repro.radio`,
:mod:`repro.network`, :mod:`repro.netstack`), a calibrated nationwide
device fleet (:mod:`repro.fleet`), the full analysis pipeline
(:mod:`repro.analysis`), and the two deployed enhancements — the
Stability-Compatible RAT Transition policy and the TIMP-based flexible
Data_Stall recovery (:mod:`repro.timp`).

Quickstart::

    from repro import NationwideStudy, smoke_scenario

    study = NationwideStudy(scenario=smoke_scenario())
    result = study.run()
    print(result.render())
"""

from repro.chaos import (
    ChaosConfig,
    ReconciliationReport,
    run_telemetry_pipeline,
)
from repro.core.study import NationwideStudy, StudyResult, run_ab_evaluation
from repro.core.enhancements import FittedEnhancements, fit_enhancements
from repro.core.events import FailureType
from repro.fleet.scenario import (
    ScenarioConfig,
    default_scenario,
    full_scenario,
    smoke_scenario,
)
from repro.fleet.simulator import FleetSimulator
from repro.dataset.store import Dataset, load_dataset, save_dataset
from repro.analysis.evaluation import ABEvaluation, evaluate_ab
from repro.parallel import (
    ShardSpec,
    ShardStats,
    run_sharded,
    shard_bounds,
)

__version__ = "1.0.0"

__all__ = [
    "NationwideStudy",
    "StudyResult",
    "run_ab_evaluation",
    "FittedEnhancements",
    "fit_enhancements",
    "FailureType",
    "ChaosConfig",
    "ReconciliationReport",
    "run_telemetry_pipeline",
    "ScenarioConfig",
    "smoke_scenario",
    "default_scenario",
    "full_scenario",
    "FleetSimulator",
    "Dataset",
    "load_dataset",
    "save_dataset",
    "ABEvaluation",
    "evaluate_ab",
    "ShardSpec",
    "ShardStats",
    "run_sharded",
    "shard_bounds",
    "__version__",
]
