"""Android telephony substrate: the data-connection state machine,
DcTracker, ServiceState, the Data_Stall detector, the three-stage
recovery engine, RAT selection policies, and 4G/5G dual connectivity."""

from repro.android.state_machine import DataConnection, DataConnectionState
from repro.android.dc_tracker import DcTracker, SetupResult
from repro.android.service_state import ServiceState, ServiceStateTracker
from repro.android.data_stall import VanillaDataStallDetector
from repro.android.recovery import (
    RecoveryPolicy,
    StallResolution,
    VANILLA_RECOVERY_POLICY,
    resolve_stall,
)
from repro.android.rat_policy import (
    Android9Policy,
    Android10BlindPolicy,
    RatCandidate,
    StabilityCompatiblePolicy,
    TransitionRiskTable,
)
from repro.android.dual_connectivity import EnDcManager

__all__ = [
    "DataConnection",
    "DataConnectionState",
    "DcTracker",
    "SetupResult",
    "ServiceState",
    "ServiceStateTracker",
    "VanillaDataStallDetector",
    "RecoveryPolicy",
    "StallResolution",
    "VANILLA_RECOVERY_POLICY",
    "resolve_stall",
    "Android9Policy",
    "Android10BlindPolicy",
    "RatCandidate",
    "StabilityCompatiblePolicy",
    "TransitionRiskTable",
    "EnDcManager",
]
