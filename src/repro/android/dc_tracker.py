"""DcTracker: data-connection setup, retry, and Data_Setup_Error surfacing.

AOSP's ``DcTracker`` drives the state machine of Fig. 1: it issues setup
requests through the modem, walks Activating -> Retrying on failures with
a retry schedule, and reports ``Data_Setup_Error`` events (with the
radio-produced DataFailCause) to registered system services — but not to
user-space apps, which is why the paper needed Android-MOD to observe
them (Sec. 2.1).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.errorcodes import ERROR_CODE_REGISTRY
from repro.core.events import FailureEvent, FailureType
from repro.core.signal import SignalLevel
from repro.android.state_machine import DataConnection, DataConnectionState
from repro.radio.modem import Modem, ModemResponse
from repro.radio.rat import RAT
from repro.simtime import SimClock

#: Android's default data-retry delays, seconds (trimmed schedule).
DEFAULT_RETRY_DELAYS_S: tuple[float, ...] = (5.0, 10.0, 20.0, 40.0)


@dataclass(frozen=True)
class SetupResult:
    """Outcome of one setup campaign (initial attempt plus retries)."""

    success: bool
    attempts: int
    #: Data_Setup_Error events raised along the way, in order.
    failures: tuple[FailureEvent, ...]
    #: Total virtual seconds the campaign took.
    elapsed_s: float
    #: The final DataFailCause when the campaign failed for good.
    final_cause: str | None = None


DataSetupErrorListener = Callable[[FailureEvent], None]


@dataclass
class DcTracker:
    """Tracks and establishes data connections for one device."""

    clock: SimClock
    modem: Modem
    retry_delays_s: tuple[float, ...] = DEFAULT_RETRY_DELAYS_S
    connection: DataConnection = field(init=False)
    _listeners: list[DataSetupErrorListener] = field(
        default_factory=list, init=False
    )

    def __post_init__(self) -> None:
        self.connection = DataConnection(self.clock)

    def register_setup_error_listener(
        self, listener: DataSetupErrorListener
    ) -> None:
        """System services (e.g. Android-MOD's monitor) hook in here."""
        self._listeners.append(listener)

    # -- setup campaign ------------------------------------------------------

    def establish(
        self,
        base_station,
        rat: RAT,
        signal_level: SignalLevel,
        apn: str = "internet",
    ) -> SetupResult:
        """Run a full setup campaign against ``base_station``.

        The campaign issues an initial attempt and then follows the
        retry schedule, surfacing one Data_Setup_Error event per failed
        attempt.  Permanent causes stop the campaign immediately, as in
        AOSP.
        """
        start = self.clock.now()
        failures: list[FailureEvent] = []
        attempts = 0
        if self.connection.state is DataConnectionState.ACTIVE:
            self.teardown()
        schedule: tuple[float, ...] = (0.0,) + self.retry_delays_s
        final_cause: str | None = None
        for delay in schedule:
            if delay:
                self.clock.advance(delay)
            attempts += 1
            if self.connection.state is DataConnectionState.INACTIVE:
                self.connection.request_connect()
            elif self.connection.state is DataConnectionState.RETRYING:
                self.connection.retry()
            response = self.modem.setup_data_call(
                base_station, rat, signal_level
            )
            self.clock.advance(response.latency_s)
            if response.ok:
                self.connection.setup_succeeded()
                return SetupResult(
                    success=True,
                    attempts=attempts,
                    failures=tuple(failures),
                    elapsed_s=self.clock.now() - start,
                )
            final_cause = response.cause
            event = self._report_setup_error(
                response, rat, signal_level, apn, base_station
            )
            failures.append(event)
            if not ERROR_CODE_REGISTRY.retryable(response.cause):
                self.connection.setup_failed_permanent()
                break
            self.connection.setup_failed_retryable()
        else:
            # Retries exhausted.
            self.connection.give_up()
        return SetupResult(
            success=False,
            attempts=attempts,
            failures=tuple(failures),
            elapsed_s=self.clock.now() - start,
            final_cause=final_cause,
        )

    def teardown(self) -> None:
        """Tear an Active connection down to Inactive."""
        if self.connection.state is not DataConnectionState.ACTIVE:
            return
        self.connection.request_disconnect()
        self.modem.teardown_data_call()
        self.connection.disconnected()

    def cleanup_and_reconnect(
        self, base_station, rat: RAT, signal_level: SignalLevel
    ) -> SetupResult:
        """Stage-1 recovery operation: clean up and re-establish."""
        self.teardown()
        return self.establish(base_station, rat, signal_level)

    # -- internals -----------------------------------------------------------

    def _report_setup_error(
        self,
        response: ModemResponse,
        rat: RAT,
        signal_level: SignalLevel,
        apn: str,
        base_station,
    ) -> FailureEvent:
        now = self.clock.now()
        event = FailureEvent(
            failure_type=FailureType.DATA_SETUP_ERROR,
            start_time=now,
            error_code=response.cause,
            context={
                "rat": rat,
                "signal_level": signal_level,
                "apn": apn,
                "outcome": response.outcome.value,
                "bs_id": getattr(base_station, "bs_id", None),
            },
        )
        # Setup errors are instantaneous events: the retry machinery, not
        # the event, carries the time cost.
        event.close(now)
        for listener in self._listeners:
            listener(event)
        return event
