"""ServiceState and Out_of_Service detection.

Android's ``ServiceState`` reports whether the device is registered for
(data) service.  A device can hold an established connection yet be
unable to move cellular data; Android then marks the service state
``STATE_OUT_OF_SERVICE`` (Sec. 2.1).  The tracker below mirrors the AOSP
surface the paper instruments: state constants, listener registration,
and duration bookkeeping for Out_of_Service episodes.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.events import FailureEvent, FailureType
from repro.simtime import SimClock


class ServiceState(enum.Enum):
    """AOSP ServiceState registration states."""

    IN_SERVICE = "STATE_IN_SERVICE"
    OUT_OF_SERVICE = "STATE_OUT_OF_SERVICE"
    EMERGENCY_ONLY = "STATE_EMERGENCY_ONLY"
    POWER_OFF = "STATE_POWER_OFF"


ServiceStateListener = Callable[[ServiceState, ServiceState, float], None]


@dataclass
class ServiceStateTracker:
    """Tracks one device's service state over virtual time."""

    clock: SimClock
    state: ServiceState = ServiceState.IN_SERVICE
    _since: float = field(default=0.0, init=False)
    _listeners: list[ServiceStateListener] = field(
        default_factory=list, init=False
    )
    _open_outage: FailureEvent | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        self._since = self.clock.now()

    def add_listener(self, listener: ServiceStateListener) -> None:
        self._listeners.append(listener)

    def time_in_state(self) -> float:
        return self.clock.now() - self._since

    # -- transitions ---------------------------------------------------------

    def set_state(self, new_state: ServiceState) -> FailureEvent | None:
        """Move to ``new_state``; returns a closed Out_of_Service failure
        event when an outage episode just ended."""
        if new_state is self.state:
            return None
        old = self.state
        now = self.clock.now()
        self.state = new_state
        self._since = now
        for listener in self._listeners:
            listener(old, new_state, now)
        if new_state is ServiceState.OUT_OF_SERVICE:
            self._open_outage = FailureEvent(
                failure_type=FailureType.OUT_OF_SERVICE, start_time=now
            )
            return None
        if old is ServiceState.OUT_OF_SERVICE and self._open_outage:
            event = self._open_outage
            event.close(now)
            self._open_outage = None
            return event
        return None

    def begin_outage(self) -> None:
        """Convenience: enter OUT_OF_SERVICE."""
        self.set_state(ServiceState.OUT_OF_SERVICE)

    def end_outage(self) -> FailureEvent | None:
        """Convenience: return to IN_SERVICE, yielding the closed event."""
        return self.set_state(ServiceState.IN_SERVICE)

    def reregister(self) -> None:
        """Stage-2 recovery operation: re-register into the network.

        Modeled as a detach/attach cycle; the caller decides whether the
        network accepts (and therefore whether service resumes).
        """
        if self.state is ServiceState.POWER_OFF:
            raise RuntimeError("cannot re-register while the radio is off")
