"""The data-connection state machine (Fig. 1).

Android models the life cycle of a cellular data connection with five
states — Inactive, Activating, Retrying, Active, and Disconnecting — and
the paper's failure taxonomy hangs off this machine's transitions
(Sec. 2.1).  We reproduce it with explicit transition validation, state
timestamps, and listener hooks, mirroring AOSP's
``dataconnection/DataConnection.java`` at the granularity the paper uses.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass

from repro.obs import counter_key, get_registry
from repro.simtime import SimClock


class DataConnectionState(enum.Enum):
    """The five life-cycle states of Fig. 1."""

    INACTIVE = "Inactive"
    ACTIVATING = "Activating"
    RETRYING = "Retrying"
    ACTIVE = "Active"
    DISCONNECTING = "Disconnect"


_S = DataConnectionState

#: Legal transitions of the machine in Fig. 1.
_LEGAL_TRANSITIONS: frozenset[tuple[DataConnectionState,
                                    DataConnectionState]] = frozenset(
    {
        (_S.INACTIVE, _S.ACTIVATING),  # connect request
        (_S.ACTIVATING, _S.ACTIVE),  # setup succeeded
        (_S.ACTIVATING, _S.RETRYING),  # setup failed, will retry
        (_S.ACTIVATING, _S.INACTIVE),  # aborted / permanent failure
        (_S.RETRYING, _S.ACTIVATING),  # retry attempt
        (_S.RETRYING, _S.INACTIVE),  # retries exhausted
        (_S.ACTIVE, _S.DISCONNECTING),  # teardown requested
        (_S.ACTIVE, _S.RETRYING),  # connection lost, re-establishing
        (_S.DISCONNECTING, _S.INACTIVE),  # teardown complete
    }
)


#: Lazily-built counter keys for the legal (source, target) pairs.
_TRANSITION_KEYS: dict = {}


class IllegalTransitionError(RuntimeError):
    """Raised when a caller requests a transition Fig. 1 does not allow."""


@dataclass(frozen=True)
class TransitionRecord:
    """One observed state transition."""

    timestamp: float
    source: DataConnectionState
    target: DataConnectionState


TransitionListener = Callable[[TransitionRecord], None]


class DataConnection:
    """One cellular data connection's life-cycle machine."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._state = _S.INACTIVE
        self._entered_at = clock.now()
        self._listeners: list[TransitionListener] = []
        self._history: list[TransitionRecord] = []

    # -- observation -----------------------------------------------------

    @property
    def state(self) -> DataConnectionState:
        return self._state

    @property
    def entered_at(self) -> float:
        """When the current state was entered (virtual seconds)."""
        return self._entered_at

    def time_in_state(self) -> float:
        return self._clock.now() - self._entered_at

    @property
    def history(self) -> tuple[TransitionRecord, ...]:
        return tuple(self._history)

    @property
    def is_connected(self) -> bool:
        return self._state is _S.ACTIVE

    def add_listener(self, listener: TransitionListener) -> None:
        """Register a transition listener (Android-MOD hooks in here)."""
        self._listeners.append(listener)

    def remove_listener(self, listener: TransitionListener) -> None:
        self._listeners.remove(listener)

    # -- transitions -------------------------------------------------------

    def request_connect(self) -> None:
        self._move(_S.ACTIVATING)

    def setup_succeeded(self) -> None:
        self._move(_S.ACTIVE)

    def setup_failed_retryable(self) -> None:
        self._move(_S.RETRYING)

    def setup_failed_permanent(self) -> None:
        self._move(_S.INACTIVE)

    def retry(self) -> None:
        self._move(_S.ACTIVATING)

    def give_up(self) -> None:
        self._move(_S.INACTIVE)

    def connection_lost(self) -> None:
        self._move(_S.RETRYING)

    def request_disconnect(self) -> None:
        self._move(_S.DISCONNECTING)

    def disconnected(self) -> None:
        self._move(_S.INACTIVE)

    def can_move_to(self, target: DataConnectionState) -> bool:
        return (self._state, target) in _LEGAL_TRANSITIONS

    # -- internals -----------------------------------------------------------

    def _move(self, target: DataConnectionState) -> None:
        if not self.can_move_to(target):
            raise IllegalTransitionError(
                f"illegal transition {self._state.value} -> {target.value}"
            )
        record = TransitionRecord(
            timestamp=self._clock.now(), source=self._state, target=target
        )
        registry = get_registry()
        if registry.enabled:
            # Hottest metric site in the simulator (~6 per DC setup
            # episode): precomputed keys for the few legal transitions.
            key = _TRANSITION_KEYS.get((self._state, target))
            if key is None:
                key = counter_key("android_dc_transitions_total",
                                  source=self._state.value,
                                  target=target.value)
                _TRANSITION_KEYS[(self._state, target)] = key
            registry.inc_key(key)
        self._state = target
        self._entered_at = record.timestamp
        self._history.append(record)
        for listener in self._listeners:
            listener(record)
