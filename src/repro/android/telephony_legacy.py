"""Legacy telephony services: SMS and circuit-switched voice.

Under 1% of the failures the study recorded concern the traditional
short-message and voice-call services (Sec. 3.1) — e.g. the
``RIL_SMS_SEND_FAIL_RETRY`` tag.  Their enabling techniques have been
stable for ~20 years, so the models here are small, but they are real
services: an SMS send runs a submit/retry loop against the serving
cell's paging capacity, and a voice call runs a CS setup exchange.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.core.events import FailureEvent, FailureType
from repro.core.signal import SignalLevel
from repro.simtime import SimClock

#: The Android-visible SMS failure tag (Sec. 3.1).
SMS_SEND_FAIL_RETRY = "RIL_SMS_SEND_FAIL_RETRY"
SMS_SEND_FAIL_PERMANENT = "RIL_SMS_SEND_FAIL"

#: CS voice failure tags.
VOICE_SETUP_FAILED = "CS_CALL_SETUP_FAILED"
VOICE_NETWORK_CONGESTION = "CS_NETWORK_CONGESTION"


class SmsSendOutcome(enum.Enum):
    SENT = "SENT"
    RETRY_EXHAUSTED = "RETRY_EXHAUSTED"


@dataclass(frozen=True)
class SmsResult:
    outcome: SmsSendOutcome
    attempts: int
    #: Failure events surfaced along the way (one per failed submit).
    failures: tuple[FailureEvent, ...]


@dataclass
class SmsManager:
    """The submit/retry loop behind ``SmsManager.sendTextMessage``."""

    clock: SimClock
    rng: random.Random
    max_retries: int = 2
    retry_delay_s: float = 5.0
    _listeners: list = field(default_factory=list, init=False)

    def register_failure_listener(self, listener) -> None:
        self._listeners.append(listener)

    def send(self, signal_level: SignalLevel,
             submit_failure_rate: float | None = None,
             script: list[bool] | None = None) -> SmsResult:
        """Send one message; weak signal raises the submit failure odds.

        ``script`` forces per-attempt outcomes (True = the submit
        fails); once exhausted the stochastic rate takes over.  The
        fleet scheduler uses it to realize exactly the failures it
        scheduled through the real retry loop.
        """
        if submit_failure_rate is None:
            submit_failure_rate = _SMS_FAILURE_BY_LEVEL[signal_level]
        failures: list[FailureEvent] = []
        pending_script = list(script) if script else []
        for attempt in range(1, self.max_retries + 2):
            if pending_script:
                submit_fails = pending_script.pop(0)
            else:
                submit_fails = self.rng.random() < submit_failure_rate
            if not submit_fails:
                return SmsResult(SmsSendOutcome.SENT, attempt,
                                 tuple(failures))
            event = FailureEvent(
                failure_type=FailureType.SMS_FAILURE,
                start_time=self.clock.now(),
                error_code=SMS_SEND_FAIL_RETRY,
            )
            event.close(self.clock.now())
            failures.append(event)
            for listener in self._listeners:
                listener(event)
            self.clock.advance(self.retry_delay_s)
        return SmsResult(SmsSendOutcome.RETRY_EXHAUSTED,
                         self.max_retries + 1, tuple(failures))


class VoiceCallOutcome(enum.Enum):
    CONNECTED = "CONNECTED"
    SETUP_FAILED = "SETUP_FAILED"


@dataclass(frozen=True)
class VoiceCallResult:
    outcome: VoiceCallOutcome
    setup_time_s: float
    failure: FailureEvent | None


@dataclass
class VoiceCallManager:
    """Circuit-switched call setup (the other legacy failure source)."""

    clock: SimClock
    rng: random.Random
    _listeners: list = field(default_factory=list, init=False)

    def register_failure_listener(self, listener) -> None:
        self._listeners.append(listener)

    def place_call(self, signal_level: SignalLevel,
                   cell_load: float = 0.3,
                   force_failure: bool | None = None) -> VoiceCallResult:
        """Attempt a CS call; deep fades and loaded cells fail setup.

        ``force_failure`` overrides the stochastic outcome (used by the
        fleet scheduler to realize exactly the failures it scheduled).
        """
        if not 0.0 <= cell_load <= 1.0:
            raise ValueError("cell load must be within [0, 1]")
        setup_time = 1.5 + self.rng.uniform(0.0, 2.0)
        failure_rate = (
            _VOICE_FAILURE_BY_LEVEL[signal_level] + 0.05 * cell_load
        )
        self.clock.advance(setup_time)
        fails = (force_failure if force_failure is not None
                 else self.rng.random() < failure_rate)
        if fails:
            code = (VOICE_NETWORK_CONGESTION
                    if self.rng.random() < cell_load
                    else VOICE_SETUP_FAILED)
            event = FailureEvent(
                failure_type=FailureType.VOICE_FAILURE,
                start_time=self.clock.now(),
                error_code=code,
            )
            event.close(self.clock.now())
            for listener in self._listeners:
                listener(event)
            return VoiceCallResult(VoiceCallOutcome.SETUP_FAILED,
                                   setup_time, event)
        return VoiceCallResult(VoiceCallOutcome.CONNECTED, setup_time,
                               None)


_SMS_FAILURE_BY_LEVEL = {
    SignalLevel.LEVEL_0: 0.60,
    SignalLevel.LEVEL_1: 0.20,
    SignalLevel.LEVEL_2: 0.08,
    SignalLevel.LEVEL_3: 0.04,
    SignalLevel.LEVEL_4: 0.02,
    SignalLevel.LEVEL_5: 0.02,
}

_VOICE_FAILURE_BY_LEVEL = {
    SignalLevel.LEVEL_0: 0.50,
    SignalLevel.LEVEL_1: 0.15,
    SignalLevel.LEVEL_2: 0.06,
    SignalLevel.LEVEL_3: 0.03,
    SignalLevel.LEVEL_4: 0.02,
    SignalLevel.LEVEL_5: 0.02,
}
