"""The three-stage progressive Data_Stall recovery mechanism.

When a Data_Stall is detected, Android runs a progressive sequence of
recovery operations — (1) clean up and restart the current connection,
(2) re-register into the network, (3) restart the radio component — and
waits out a *probation* before each stage in case the problem already
fixed itself (Sec. 3.2).  Vanilla Android uses a fixed one-minute
probation everywhere; the paper's TIMP enhancement replaces the fixed
trigger with probations optimized from field data (Sec. 4.2).

The engine is parametric in the probation vector, so the vanilla
mechanism and the TIMP-based one are literally the same code with
different parameters — exactly how the deployed patch works.

Two entry points exist:

* :func:`resolve_stall` — a fast, pure resolver over a sampled episode
  (used by the fleet simulator where millions of episodes are needed);
* :class:`RecoveryEngine` — an integration-grade engine that drives a
  real :class:`~repro.netstack.stack.DeviceNetStack` fault through the
  actual detector, advancing a :class:`~repro.simtime.SimClock`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import quantities
from repro.android.data_stall import VanillaDataStallDetector
from repro.netstack.stack import DeviceNetStack
from repro.obs import (
    DURATION_BUCKETS_S,
    STAGE_COUNT_BUCKETS,
    get_registry,
)
from repro.simtime import SimClock

#: Identifier for "the stall cleared on its own" (no stage executed).
AUTO_RECOVERED = 0
#: Identifier for "the user manually reset the connection".
USER_RESET = -1
#: Identifier for "nothing worked; the stall outlived stage 3" — the
#: episode then ends at its natural duration.
UNRESOLVED = -2


@dataclass(frozen=True)
class StageParameters:
    """Cost and effectiveness of one recovery operation."""

    #: Seconds the operation takes to execute (the O_i of Eq. 1).
    overhead_s: float
    #: Probability the operation fixes the stall once executed.
    success_rate: float

    def __post_init__(self) -> None:
        if self.overhead_s < 0:
            raise ValueError("stage overhead cannot be negative")
        if not 0.0 <= self.success_rate <= 1.0:
            raise ValueError("success rate must be a probability")


@dataclass(frozen=True)
class RecoveryPolicy:
    """A complete configuration of the three-stage mechanism."""

    #: Probation before each stage (Pro_0, Pro_1, Pro_2), seconds.
    probations_s: tuple[float, float, float]
    #: The three stages: cleanup, re-register, radio restart.
    stages: tuple[StageParameters, StageParameters, StageParameters] = (
        StageParameters(overhead_s=2.0, success_rate=(
            quantities.STAGE1_RECOVERY_SUCCESS_RATE)),
        StageParameters(overhead_s=6.0, success_rate=0.85),
        StageParameters(overhead_s=15.0, success_rate=0.95),
    )

    def __post_init__(self) -> None:
        if len(self.probations_s) != 3:
            raise ValueError("exactly three probations are required")
        if any(p < 0 for p in self.probations_s):
            raise ValueError("probations cannot be negative")
        overheads = [s.overhead_s for s in self.stages]
        if not overheads == sorted(overheads):
            raise ValueError(
                "stage overheads must be progressive (O1 < O2 < O3)"
            )

    def with_probations(
        self, probations_s: tuple[float, float, float]
    ) -> "RecoveryPolicy":
        return RecoveryPolicy(probations_s=probations_s, stages=self.stages)


#: Vanilla Android: one-minute probation before every stage (Sec. 3.2).
VANILLA_RECOVERY_POLICY = RecoveryPolicy(
    probations_s=(
        quantities.VANILLA_PROBATION_S,
        quantities.VANILLA_PROBATION_S,
        quantities.VANILLA_PROBATION_S,
    )
)

#: The paper's TIMP-optimized probations: 21 s / 6 s / 16 s (Sec. 4.2).
TIMP_RECOVERY_POLICY = RecoveryPolicy(
    probations_s=quantities.TIMP_OPTIMAL_PROBATIONS_S
)


@dataclass(frozen=True)
class StallResolution:
    """How one Data_Stall episode ended."""

    #: Observed stall duration, detection to recovery, seconds.
    duration_s: float
    #: AUTO_RECOVERED, USER_RESET, UNRESOLVED, or the fixing stage (1-3).
    resolved_by: int
    #: Stages actually executed (0-3).
    stages_executed: int
    #: (time, label) milestones for diagnostics.
    timeline: tuple[tuple[float, str], ...] = ()

    @property
    def auto_recovered(self) -> bool:
        return self.resolved_by == AUTO_RECOVERED


#: Human-readable labels for the sentinel ``resolved_by`` values;
#: stages 1-3 render as ``stage1`` .. ``stage3``.
_RESOLVER_LABELS = {
    AUTO_RECOVERED: "auto",
    USER_RESET: "user_reset",
    UNRESOLVED: "unresolved",
}


def _record_resolution(registry, resolution: StallResolution) -> None:
    """Metrics for one resolved stall (virtual-time values, so the
    observations are deterministic and merge exactly across shards)."""
    label = _RESOLVER_LABELS.get(
        resolution.resolved_by, f"stage{resolution.resolved_by}"
    )
    registry.inc("android_stall_resolutions_total", resolved_by=label)
    if resolution.stages_executed:
        registry.inc("android_stall_stages_total",
                     resolution.stages_executed)
    registry.observe("android_stall_duration_s", resolution.duration_s,
                     buckets=DURATION_BUCKETS_S)
    registry.observe("android_stall_stages_executed",
                     float(resolution.stages_executed),
                     buckets=STAGE_COUNT_BUCKETS)
    for when, text in resolution.timeline:
        # "stage N started" milestones give the per-stage trigger
        # timing distribution (how long into the stall each recovery
        # stage fires — the quantity TIMP optimizes).
        if text.startswith("stage ") and text.endswith("started"):
            registry.observe("android_stall_stage_start_s", when,
                             buckets=DURATION_BUCKETS_S,
                             stage=text.split()[1])


def resolve_stall(
    policy: RecoveryPolicy,
    natural_fix_s: float,
    rng: random.Random,
    user_reset_s: float | None = None,
    user_reset_success_rate: float = 0.85,
    max_cycles: int = 25,
) -> StallResolution:
    """Resolve one stall episode under ``policy``.

    ``natural_fix_s`` is the (hidden) instant at which the underlying
    network problem would clear on its own; the natural-recovery process
    runs concurrently with the staged mechanism, which is what makes the
    trigger-timing optimization non-trivial (Sec. 4.2).  ``user_reset_s``
    is the instant an impatient user would manually reset the connection
    (None for a passive user).

    If all three stages fail, the connection is still stalled, so
    Android's detector trips again and the progressive cycle restarts
    (``max_cycles`` bounds this; afterwards the stall rides to its
    natural end).  Each cycle re-rolls the stage outcomes — the radio
    environment changes between attempts (e.g. re-registration may pick
    a different cell).
    """
    resolution = _resolve_stall(policy, natural_fix_s, rng,
                                user_reset_s, user_reset_success_rate,
                                max_cycles)
    registry = get_registry()
    if registry.enabled:
        _record_resolution(registry, resolution)
    return resolution


def _resolve_stall(
    policy: RecoveryPolicy,
    natural_fix_s: float,
    rng: random.Random,
    user_reset_s: float | None,
    user_reset_success_rate: float,
    max_cycles: int,
) -> StallResolution:
    """The un-instrumented resolver (see :func:`resolve_stall`)."""
    if natural_fix_s < 0:
        raise ValueError("natural fix time cannot be negative")
    timeline: list[tuple[float, str]] = [(0.0, "stall detected")]
    t = 0.0
    stages_executed = 0
    user_pending = user_reset_s

    for cycle in range(max_cycles):
        for index, (probation, stage) in enumerate(
            zip(policy.probations_s, policy.stages), start=1
        ):
            window_end = t + probation
            outcome = _wait_window(
                t, window_end, natural_fix_s, user_pending,
                rng, user_reset_success_rate, timeline,
            )
            if outcome is not None:
                return StallResolution(
                    duration_s=outcome[0],
                    resolved_by=outcome[1],
                    stages_executed=stages_executed,
                    timeline=tuple(timeline),
                )
            if user_pending is not None and user_pending <= window_end:
                user_pending = None  # the reset happened and failed
            t = window_end
            timeline.append((t, f"stage {index} started"))
            stages_executed += 1
            t += stage.overhead_s
            if natural_fix_s <= t:
                timeline.append(
                    (natural_fix_s, "auto recovered during stage")
                )
                return StallResolution(
                    duration_s=natural_fix_s,
                    resolved_by=AUTO_RECOVERED,
                    stages_executed=stages_executed,
                    timeline=tuple(timeline),
                )
            if rng.random() < stage.success_rate:
                timeline.append((t, f"stage {index} fixed the stall"))
                return StallResolution(
                    duration_s=t,
                    resolved_by=index,
                    stages_executed=stages_executed,
                    timeline=tuple(timeline),
                )
            timeline.append((t, f"stage {index} did not fix the stall"))
        if stages_executed and all(
            stage.success_rate == 0.0 for stage in policy.stages
        ):
            # Nothing the handset does can fix this stall; re-running
            # the cycle only burns time.
            break

    # Recovery gave up: the episode runs to its natural end (or until
    # a still-pending user reset lands).
    outcome = _wait_window(t, natural_fix_s, natural_fix_s, user_pending,
                           rng, user_reset_success_rate, timeline)
    if outcome is not None:
        return StallResolution(
            duration_s=outcome[0],
            resolved_by=outcome[1],
            stages_executed=stages_executed,
            timeline=tuple(timeline),
        )
    timeline.append((natural_fix_s, "recovered naturally"))
    return StallResolution(
        duration_s=natural_fix_s,
        resolved_by=UNRESOLVED,
        stages_executed=stages_executed,
        timeline=tuple(timeline),
    )


def _wait_window(
    start: float,
    end: float,
    natural_fix_s: float,
    user_reset_s: float | None,
    rng: random.Random,
    user_reset_success_rate: float,
    timeline: list[tuple[float, str]],
) -> tuple[float, int] | None:
    """Watch the window [start, end) for auto-recovery or a user reset.

    Returns (duration, resolver) if the episode ended, else None.
    """
    candidates: list[tuple[float, int]] = []
    if start <= natural_fix_s < end:
        candidates.append((natural_fix_s, AUTO_RECOVERED))
    if user_reset_s is not None and start <= user_reset_s < end:
        if rng.random() < user_reset_success_rate:
            candidates.append((user_reset_s, USER_RESET))
    if not candidates:
        return None
    when, who = min(candidates)
    label = "auto recovered" if who == AUTO_RECOVERED else "user reset"
    timeline.append((when, label))
    return when, who


class RecoveryEngine:
    """Integration-grade engine: drives a live netstack fault through the
    actual detector, advancing the shared clock.

    Slower than :func:`resolve_stall` but exercises the full component
    chain end to end; used by integration tests and examples.
    """

    def __init__(
        self,
        clock: SimClock,
        stack: DeviceNetStack,
        detector: VanillaDataStallDetector,
        policy: RecoveryPolicy,
        rng: random.Random,
        poll_interval_s: float = 1.0,
    ) -> None:
        self.clock = clock
        self.stack = stack
        self.detector = detector
        self.policy = policy
        self._rng = rng
        self._poll_interval_s = poll_interval_s

    def run(self) -> StallResolution:
        """Run the staged mechanism against the currently active fault."""
        start = self.clock.now()
        stages_executed = 0
        timeline: list[tuple[float, str]] = [(0.0, "stall detected")]
        for index, (probation, stage) in enumerate(
            zip(self.policy.probations_s, self.policy.stages), start=1
        ):
            if self._probation_cleared(probation):
                when = self.clock.now() - start
                timeline.append((when, "auto recovered"))
                return StallResolution(when, AUTO_RECOVERED,
                                       stages_executed, tuple(timeline))
            timeline.append((self.clock.now() - start,
                             f"stage {index} started"))
            stages_executed += 1
            self.clock.advance(stage.overhead_s)
            if self._rng.random() < stage.success_rate:
                self.stack.shorten_fault(self.clock.now())
                when = self.clock.now() - start
                timeline.append((when, f"stage {index} fixed the stall"))
                return StallResolution(when, index, stages_executed,
                                       tuple(timeline))
            timeline.append((self.clock.now() - start,
                             f"stage {index} did not fix the stall"))
        # Ride out the fault.
        while self.stack.fault_at(self.clock.now()) is not None:
            self.clock.advance(self._poll_interval_s)
        when = self.clock.now() - start
        timeline.append((when, "recovered naturally after stage 3"))
        return StallResolution(when, UNRESOLVED, stages_executed,
                               tuple(timeline))

    def _probation_cleared(self, probation_s: float) -> bool:
        """Wait out a probation; True if the fault cleared during it."""
        deadline = self.clock.now() + probation_s
        while self.clock.now() < deadline:
            if self.stack.fault_at(self.clock.now()) is None:
                return True
            self.clock.advance(min(self._poll_interval_s,
                                   deadline - self.clock.now()))
        return self.stack.fault_at(self.clock.now()) is None
