"""Inter-RAT handover (the procedure behind Fig. 17 and EN-DC).

A RAT transition is not an instantaneous re-label: the device runs a
3GPP-style procedure — measurement report, preparation (the target cell
admits the incoming bearer), then execution (detach from the source,
synchronize and attach to the target).  Each stage can fail, and failed
handovers surface as ``IRAT_HANDOVER_FAILED`` / ``UE_RAT_CHANGE``-class
Data_Setup_Errors (Table 2).  EN-DC (Sec. 4.2) shortcuts preparation
because the target's control-plane context already exists.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.android.dual_connectivity import EnDcManager
from repro.core.signal import SignalLevel
from repro.radio.rat import RAT


class HandoverStage(enum.Enum):
    """Where a handover attempt can end."""

    MEASUREMENT = "MEASUREMENT"
    PREPARATION = "PREPARATION"
    EXECUTION = "EXECUTION"
    COMPLETE = "COMPLETE"


@dataclass(frozen=True)
class HandoverResult:
    """Outcome of one inter-RAT handover attempt."""

    success: bool
    stage: HandoverStage
    #: DataFailCause name when the handover failed.
    cause: str | None
    #: Seconds the data plane was disturbed.
    disturbance_s: float

    def __post_init__(self) -> None:
        if self.success and self.cause is not None:
            raise ValueError("successful handover carries no cause")
        if not self.success and self.cause is None:
            raise ValueError("failed handover needs a cause")


#: Execution-stage synchronization failure odds by target signal level:
#: acquiring a level-0 target is the dominant failure mode (Fig. 17's
#: "common pattern": bad cells are level-0 destinations).
_SYNC_FAILURE_BY_TARGET_LEVEL = {
    SignalLevel.LEVEL_0: 0.30,
    SignalLevel.LEVEL_1: 0.08,
    SignalLevel.LEVEL_2: 0.04,
    SignalLevel.LEVEL_3: 0.02,
    SignalLevel.LEVEL_4: 0.01,
    SignalLevel.LEVEL_5: 0.01,
}

#: Measurement-report loss odds (source link already degraded).
_MEASUREMENT_FAILURE_BY_SOURCE_LEVEL = {
    SignalLevel.LEVEL_0: 0.10,
    SignalLevel.LEVEL_1: 0.03,
    SignalLevel.LEVEL_2: 0.01,
    SignalLevel.LEVEL_3: 0.005,
    SignalLevel.LEVEL_4: 0.003,
    SignalLevel.LEVEL_5: 0.003,
}

#: Data-plane disturbance per stage reached, seconds.
_DISTURBANCE_S = {
    HandoverStage.MEASUREMENT: 0.2,
    HandoverStage.PREPARATION: 1.0,
    HandoverStage.EXECUTION: 4.0,
    HandoverStage.COMPLETE: 4.0,
}

#: EN-DC shortcut: disturbance when the target context pre-exists.
_ENDC_DISTURBANCE_S = 0.5


class HandoverManager:
    """Runs inter-RAT handover procedures for one device."""

    def __init__(self, rng: random.Random,
                 endc: EnDcManager | None = None) -> None:
        self._rng = rng
        self.endc = endc
        self.attempts = 0
        self.failures = 0

    def execute(
        self,
        source_rat: RAT,
        source_level: SignalLevel,
        target_bs,
        target_rat: RAT,
        target_level: SignalLevel,
    ) -> HandoverResult:
        """Attempt a handover to ``target_bs`` over ``target_rat``.

        ``target_bs`` must expose ``admit_bearer(rat, level, rng)``
        (any :class:`~repro.network.basestation.BaseStation` or a
        scripted stand-in).
        """
        self.attempts += 1
        warm = self._warm_via_endc(target_rat)

        # Stage 1 — measurement report over the (degrading) source link.
        if not warm and self._rng.random() < (
            _MEASUREMENT_FAILURE_BY_SOURCE_LEVEL[source_level]
        ):
            return self._failed(HandoverStage.MEASUREMENT,
                                "RRC_UPLINK_DELIVERY_FAILED_DUE_TO_HANDOVER")

        # Stage 2 — preparation: the target admits the incoming bearer.
        if not warm:
            cause = target_bs.admit_bearer(target_rat, target_level,
                                           self._rng)
            if cause is not None:
                return self._failed(HandoverStage.PREPARATION, cause)

        # Stage 3 — execution: sync to the target cell.
        if self._rng.random() < _SYNC_FAILURE_BY_TARGET_LEVEL[target_level]:
            return self._failed(HandoverStage.EXECUTION,
                                "IRAT_HANDOVER_FAILED")

        disturbance = (_ENDC_DISTURBANCE_S if warm
                       else _DISTURBANCE_S[HandoverStage.COMPLETE])
        if warm and self.endc is not None:
            self.endc.swap()
        return HandoverResult(
            success=True,
            stage=HandoverStage.COMPLETE,
            cause=None,
            disturbance_s=disturbance,
        )

    # -- internals -----------------------------------------------------------

    def _warm_via_endc(self, target_rat: RAT) -> bool:
        return (
            self.endc is not None
            and self.endc.dual_connected
            and self.endc.slave is not None
            and self.endc.slave.rat is target_rat
        )

    def _failed(self, stage: HandoverStage, cause: str) -> HandoverResult:
        self.failures += 1
        return HandoverResult(
            success=False,
            stage=stage,
            cause=cause,
            disturbance_s=_DISTURBANCE_S[stage],
        )

    @property
    def failure_rate(self) -> float:
        if self.attempts == 0:
            return 0.0
        return self.failures / self.attempts
