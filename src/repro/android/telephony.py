"""TelephonyManager facade.

Android-MOD collects its in-situ context — current RAT, received signal
strength, APN, and the serving cell identity — through the public
TelephonyManager / ServiceState APIs (Sec. 2.2).  This facade holds the
live radio context of one device and answers those queries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.signal import SignalLevel
from repro.network.basestation import BaseStation, CellIdentity
from repro.radio.rat import RAT


@dataclass
class TelephonyManager:
    """Query surface over one device's current radio context."""

    current_rat: RAT | None = None
    signal_level: SignalLevel = SignalLevel.LEVEL_0
    apn: str = "internet"
    serving_bs: BaseStation | None = None

    # -- AOSP-shaped getters -------------------------------------------------

    def get_network_type(self) -> RAT | None:
        """Current radio access technology (None when detached)."""
        return self.current_rat

    def get_signal_strength(self) -> SignalLevel:
        return self.signal_level

    def get_apn(self) -> str:
        return self.apn

    def get_cell_identity(self) -> CellIdentity | None:
        return self.serving_bs.identity if self.serving_bs else None

    def get_network_operator(self) -> str | None:
        return self.serving_bs.isp.label if self.serving_bs else None

    # -- context updates (called by the connection manager) --------------------

    def attach(
        self, bs: BaseStation, rat: RAT, signal_level: SignalLevel
    ) -> None:
        if not bs.supports(rat):
            raise ValueError(f"BS {bs.bs_id} does not support {rat}")
        self.serving_bs = bs
        self.current_rat = rat
        self.signal_level = signal_level

    def update_signal(self, signal_level: SignalLevel) -> None:
        self.signal_level = signal_level

    def detach(self) -> None:
        self.serving_bs = None
        self.current_rat = None
        self.signal_level = SignalLevel.LEVEL_0
