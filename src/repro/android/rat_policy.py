"""RAT selection policies.

Android 10's policy blindly prefers 5G during RAT transition, chasing
peak bandwidth at the cost of stability (Sec. 3.2); the paper's
Stability-Compatible RAT Transition instead consults the empirically
measured failure-likelihood increase of each transition (Fig. 17) and
vetoes transitions that raise failure likelihood sharply without any
realistic data-rate benefit (Sec. 4.2).  All three policies the paper
discusses — Android 9 (no 5G), Android 10 (blind 5G), and the
enhancement — share one interface so the fleet simulator can swap them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.signal import SignalLevel
from repro.radio.rat import RAT, ALL_RATS
from repro.radio.throughput import transition_increases_rate


@dataclass(frozen=True)
class RatCandidate:
    """One attachable (RAT, signal level) option, optionally tied to a BS."""

    rat: RAT
    signal_level: SignalLevel
    bs_id: int | None = None


#: Default per-(RAT, level) failure-likelihood table in normalized-
#: prevalence units, shaped after Figs. 15-16: likelihood falls from
#: level 0 to level 4 and ticks back up at level 5 (the hub anomaly);
#: 5G rows sit above 4G (immature modules), 3G rows below (idle cells).
#: The (4G L4 -> 5G L0) anchor of Fig. 17f is 0.45 - 0.08 = 0.37.
DEFAULT_LEVEL_RISK: dict[RAT, tuple[float, ...]] = {
    RAT.GSM: (0.30, 0.18, 0.13, 0.10, 0.08, 0.10),
    RAT.UMTS: (0.22, 0.13, 0.09, 0.07, 0.05, 0.06),
    RAT.LTE: (0.32, 0.19, 0.14, 0.10, 0.08, 0.11),
    RAT.NR: (0.45, 0.26, 0.18, 0.13, 0.10, 0.14),
}


class TransitionRiskTable:
    """Failure-likelihood increase for RAT transitions (Fig. 17).

    Built either from the default shape above or fitted from a measured
    dataset via :meth:`from_level_risk` with analysis output.
    """

    def __init__(
        self, level_risk: dict[RAT, tuple[float, ...]] | None = None
    ) -> None:
        risk = level_risk or DEFAULT_LEVEL_RISK
        for rat in ALL_RATS:
            if rat not in risk or len(risk[rat]) != 6:
                raise ValueError(f"level risk table incomplete for {rat}")
        self._risk = {rat: tuple(values) for rat, values in risk.items()}

    @classmethod
    def from_level_risk(
        cls, level_risk: dict[RAT, tuple[float, ...]]
    ) -> "TransitionRiskTable":
        return cls(level_risk)

    def likelihood(self, rat: RAT, level: SignalLevel) -> float:
        """Failure likelihood (normalized prevalence) at (rat, level)."""
        return self._risk[rat][int(level)]

    def increase(
        self,
        from_rat: RAT,
        from_level: SignalLevel,
        to_rat: RAT,
        to_level: SignalLevel,
    ) -> float:
        """Increase in failure likelihood for the given transition.

        Positive values mean the transition makes failures more likely
        (the dark cells of Fig. 17).
        """
        return self.likelihood(to_rat, to_level) - self.likelihood(
            from_rat, from_level
        )


def _blind_preference_key(candidate: RatCandidate) -> tuple[int, int]:
    """Android 10's ordering: generation first, signal level second."""
    return (int(candidate.rat.generation), int(candidate.signal_level))


class Android10BlindPolicy:
    """Vanilla Android 10: 5G is blindly preferred (Sec. 3.2)."""

    name = "android-10-blind"
    supports_5g = True

    def select(
        self,
        current: RatCandidate | None,
        candidates: list[RatCandidate],
    ) -> RatCandidate:
        if not candidates:
            raise ValueError("no RAT candidates available")
        return max(candidates, key=_blind_preference_key)


class Android9Policy:
    """Android 9: no 5G support; otherwise newest-generation preference."""

    name = "android-9"
    supports_5g = False

    def select(
        self,
        current: RatCandidate | None,
        candidates: list[RatCandidate],
    ) -> RatCandidate:
        usable = [c for c in candidates if c.rat is not RAT.NR]
        if not usable:
            raise ValueError("no non-5G RAT candidates available")
        return max(usable, key=_blind_preference_key)


@dataclass
class StabilityCompatiblePolicy:
    """The paper's Stability-Compatible RAT Transition (Sec. 4.2).

    Walks candidates in Android 10's preference order but vetoes a
    transition when (a) its measured failure-likelihood increase exceeds
    ``veto_threshold`` and (b) the transition cannot realistically raise
    the data rate — the paper's "no side effect" condition, which in
    practice vetoes every ``* -> level-0`` upgrade.
    """

    risk_table: TransitionRiskTable = field(
        default_factory=TransitionRiskTable
    )
    veto_threshold: float = 0.15
    name: str = "stability-compatible"
    supports_5g: bool = True

    def vetoes(
        self, current: RatCandidate, candidate: RatCandidate
    ) -> bool:
        """Whether the transition current -> candidate is vetoed."""
        if candidate.rat is current.rat:
            return False
        increase = self.risk_table.increase(
            current.rat, current.signal_level,
            candidate.rat, candidate.signal_level,
        )
        if increase <= self.veto_threshold:
            return False
        return not transition_increases_rate(
            current.rat, current.signal_level,
            candidate.rat, candidate.signal_level,
        )

    def select(
        self,
        current: RatCandidate | None,
        candidates: list[RatCandidate],
    ) -> RatCandidate:
        if not candidates:
            raise ValueError("no RAT candidates available")
        ordered = sorted(candidates, key=_blind_preference_key, reverse=True)
        if current is None:
            # Initial attachment: avoid level-0 targets when possible.
            healthy = [c for c in ordered
                       if c.signal_level > SignalLevel.LEVEL_0]
            return (healthy or ordered)[0]
        for candidate in ordered:
            if not self.vetoes(current, candidate):
                return candidate
        # Every move is vetoed: stay where we are.
        return current


def policy_for_android_version(version: str):
    """The vanilla policy a given Android version ships (Sec. 3.2)."""
    if version.startswith("9"):
        return Android9Policy()
    return Android10BlindPolicy()


_VETO_TABLE_CACHE: dict[tuple[int, float], "object"] = {}


def stability_veto_table(
    policy: StabilityCompatiblePolicy | None = None,
):
    """The policy's veto decisions as a dense boolean lookup table.

    Shape ``(4, 6, 4, 6)`` numpy bool, indexed
    ``[current_rat_code, current_level, candidate_rat_code,
    candidate_level]`` with codes from :func:`repro.radio.rat.rat_code`.
    Built by exhaustively calling :meth:`StabilityCompatiblePolicy.vetoes`
    over all 576 combinations, so the batch engine's table-driven
    selection can never drift from the scalar policy.  Cached per
    (risk-table identity, threshold).
    """
    import numpy as np

    policy = policy or StabilityCompatiblePolicy()
    key = (id(policy.risk_table), policy.veto_threshold)
    cached = _VETO_TABLE_CACHE.get(key)
    if cached is not None:
        return cached
    table = np.zeros((4, 6, 4, 6), dtype=bool)
    for cur_code, cur_rat in enumerate(ALL_RATS):
        for cur_level in range(6):
            current = RatCandidate(cur_rat, SignalLevel(cur_level))
            for cand_code, cand_rat in enumerate(ALL_RATS):
                for cand_level in range(6):
                    table[cur_code, cur_level, cand_code, cand_level] = (
                        policy.vetoes(
                            current,
                            RatCandidate(cand_rat, SignalLevel(cand_level)),
                        )
                    )
    table.setflags(write=False)
    _VETO_TABLE_CACHE[key] = table
    return table
