"""Android 11 (the Sec. 6 forward-compatibility check).

The paper's measurement window closed before Android 11 shipped, but
the authors examined its source and found the same reliability
problems: the aggressive RAT transition policy and the lagging
Data_Stall recovery both survive into Android 11.  This module encodes
that finding so the enhancement evaluation can be replayed against an
"Android 11" baseline: the policy is the blind-5G policy under a new
name, and the recovery trigger is still the fixed one-minute probation.
"""

from __future__ import annotations

from repro.android.rat_policy import Android10BlindPolicy
from repro.android.recovery import VANILLA_RECOVERY_POLICY, RecoveryPolicy


class Android11Policy(Android10BlindPolicy):
    """Android 11's RAT selection: still blindly 5G-first (Sec. 6)."""

    name = "android-11-blind"


#: Android 11 keeps the one-minute Data_Stall probations (Sec. 6).
ANDROID_11_RECOVERY_POLICY: RecoveryPolicy = VANILLA_RECOVERY_POLICY


def android11_inherits_the_problems() -> dict[str, bool]:
    """The two Sec. 6 findings, checkable in code."""
    from repro.android.rat_policy import RatCandidate
    from repro.core.signal import SignalLevel
    from repro.radio.rat import RAT

    policy = Android11Policy()
    chosen = policy.select(
        RatCandidate(RAT.LTE, SignalLevel.LEVEL_4),
        [RatCandidate(RAT.LTE, SignalLevel.LEVEL_4),
         RatCandidate(RAT.NR, SignalLevel.LEVEL_0)],
    )
    return {
        "aggressive_rat_transition": chosen.rat is RAT.NR,
        "lagging_stall_recovery": (
            ANDROID_11_RECOVERY_POLICY.probations_s == (60.0, 60.0, 60.0)
        ),
    }
