"""Vanilla Android Data_Stall detection.

Android suspects a Data_Stall when the kernel counted more than 10
outbound TCP segments and not a single inbound segment during the last
minute (Sec. 2.1).  The detector polls at a fixed cadence — which is why
vanilla Android cannot measure stall durations better than to the
minute, the gap Android-MOD's prober closes (Sec. 2.2).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro import quantities
from repro.core.events import FailureEvent, FailureType
from repro.netstack.tcp_counters import TcpSegmentCounters
from repro.simtime import SimClock

DataStallListener = Callable[[FailureEvent], None]


@dataclass
class VanillaDataStallDetector:
    """The fixed-window Data_Stall heuristic of vanilla Android."""

    clock: SimClock
    counters: TcpSegmentCounters
    outbound_threshold: int = quantities.DATA_STALL_OUTBOUND_THRESHOLD
    _listeners: list[DataStallListener] = field(
        default_factory=list, init=False
    )
    #: The stall currently being tracked, if any.
    _open_stall: FailureEvent | None = field(default=None, init=False)

    def add_listener(self, listener: DataStallListener) -> None:
        """Both system services and user-space apps may listen (Sec. 2.1)."""
        self._listeners.append(listener)

    @property
    def stall_suspected(self) -> bool:
        return self._open_stall is not None

    def check(self) -> FailureEvent | None:
        """Evaluate the heuristic now.

        Returns a new (open) Data_Stall event the first time the rule
        trips, and the closed event once the stall clears; ``None``
        otherwise.
        """
        now = self.clock.now()
        outbound = self.counters.outbound_in_window(now)
        inbound = self.counters.inbound_in_window(now)
        stalled = outbound > self.outbound_threshold and inbound == 0
        if stalled and self._open_stall is None:
            event = FailureEvent(
                failure_type=FailureType.DATA_STALL,
                start_time=now,
                context={"outbound": outbound, "inbound": inbound},
            )
            self._open_stall = event
            for listener in self._listeners:
                listener(event)
            return event
        if not stalled and self._open_stall is not None:
            event = self._open_stall
            event.close(now)
            self._open_stall = None
            return event
        return None

    def reset(self) -> None:
        """Forget any open stall (connection was cleaned up)."""
        self._open_stall = None
