"""4G/5G dual connectivity (EN-DC, 3GPP TS 37.340).

The enhancement integrates EN-DC on compatible devices (all four 5G
models of Table 1): the device holds *control-plane* connections to a 4G
BS and a 5G BS simultaneously; the master connection also carries
data-plane traffic while the slave does not.  When a RAT transition is
decided, promoting the pre-established slave is much faster than a cold
transition, shortening the disturbance window (Sec. 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.radio.rat import RAT

#: Seconds a cold (non-EN-DC) RAT transition disturbs the data plane.
COLD_TRANSITION_DISTURBANCE_S = 4.0
#: Seconds an EN-DC master/slave swap disturbs the data plane.
ENDC_TRANSITION_DISTURBANCE_S = 0.5
#: Failure probability of a cold transition's control procedure.
COLD_TRANSITION_FAILURE_RATE = 0.05
#: Failure probability of an EN-DC promotion (contexts pre-established).
ENDC_TRANSITION_FAILURE_RATE = 0.01


@dataclass(frozen=True)
class ControlPlaneLink:
    """One control-plane attachment of the EN-DC pair."""

    rat: RAT
    bs_id: int

    def __post_init__(self) -> None:
        if self.rat not in (RAT.LTE, RAT.NR):
            raise ValueError("EN-DC links must be LTE or NR")


@dataclass
class EnDcManager:
    """Manages the master/slave EN-DC pair for one device."""

    master: ControlPlaneLink | None = None
    slave: ControlPlaneLink | None = None
    #: Count of master/slave swaps performed.
    swap_count: int = field(default=0)

    @property
    def dual_connected(self) -> bool:
        return self.master is not None and self.slave is not None

    @property
    def data_plane_rat(self) -> RAT | None:
        """Only the master carries data-plane packets (Sec. 4.2)."""
        return self.master.rat if self.master else None

    def attach_master(self, link: ControlPlaneLink) -> None:
        if self.slave is not None and self.slave.rat is link.rat:
            raise ValueError("master and slave must use different RATs")
        self.master = link

    def attach_slave(self, link: ControlPlaneLink) -> None:
        if self.master is None:
            raise ValueError("attach a master before a slave")
        if link.rat is self.master.rat:
            raise ValueError("master and slave must use different RATs")
        self.slave = link

    def detach_slave(self) -> None:
        self.slave = None

    def swap(self) -> float:
        """Promote the slave to master; returns disturbance seconds."""
        if not self.dual_connected:
            raise RuntimeError("cannot swap without a dual connection")
        self.master, self.slave = self.slave, self.master
        self.swap_count += 1
        return ENDC_TRANSITION_DISTURBANCE_S

    def transition_cost(self, target_rat: RAT) -> tuple[float, float]:
        """(disturbance seconds, failure probability) for moving the data
        plane to ``target_rat``.

        EN-DC prices apply when the target is the pre-established slave;
        anything else is a cold transition.
        """
        if (
            self.dual_connected
            and self.slave is not None
            and self.slave.rat is target_rat
        ):
            return ENDC_TRANSITION_DISTURBANCE_S, ENDC_TRANSITION_FAILURE_RATE
        return COLD_TRANSITION_DISTURBANCE_S, COLD_TRANSITION_FAILURE_RATE
