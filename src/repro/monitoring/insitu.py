"""In-situ context capture (Sec. 2.2).

Upon a failure, Android-MOD records the radio- and BS-related context the
vanilla system omits: current RAT, received signal strength, APN, and the
BS identity (MCC/MNC/LAC/CID, or SID/NID/BID for CDMA cells), plus the
protocol error code for Data_Setup_Error events.  All of it is available
through TelephonyManager / ServiceState APIs — no root required.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.android.telephony import TelephonyManager
from repro.core.events import FailureEvent


@dataclass
class InSituCollector:
    """Snapshots device radio context into failure events."""

    telephony: TelephonyManager

    def snapshot(self) -> dict[str, object]:
        """The context dictionary recorded with every failure."""
        identity = self.telephony.get_cell_identity()
        return {
            "rat": self.telephony.get_network_type(),
            "signal_level": self.telephony.get_signal_strength(),
            "apn": self.telephony.get_apn(),
            "operator": self.telephony.get_network_operator(),
            "bs_identity": identity.as_string() if identity else None,
            "bs_id": (
                self.telephony.serving_bs.bs_id
                if self.telephony.serving_bs
                else None
            ),
        }

    def annotate(self, event: FailureEvent) -> FailureEvent:
        """Merge the in-situ snapshot into ``event`` (event wins on
        conflicts so radio context captured at failure time persists)."""
        snapshot = self.snapshot()
        snapshot.update(event.context)
        event.context = snapshot
        return event
