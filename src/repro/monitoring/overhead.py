"""Client-side overhead accounting (Sec. 2.2 / 4.3).

Android-MOD is dormant outside failure episodes; its cost is therefore
accounted *within* failure durations: CPU time spent capturing and
probing, memory for in-flight event state, storage for buffered records,
and network bytes for probes plus uploads.  The paper's envelope on a
low-end phone: <2% CPU (within failure windows), <40 KB memory, <100 KB
storage, <100 KB network per month; worst case (40k+ failures/month)
<8% CPU, <2 MB memory, <20 MB storage, ~20 MB network per month.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import quantities

#: Modelled unit costs.
CPU_SECONDS_PER_EVENT = 0.010  # capture + serialize one event
CPU_SECONDS_PER_PROBE_ROUND = 0.002
MEMORY_BYTES_PER_OPEN_EVENT = 2_048
MEMORY_BASELINE_BYTES = 24 * 1024
STORAGE_BYTES_PER_RECORD = 220  # compressed record on flash


@dataclass
class OverheadAccountant:
    """Accumulates Android-MOD's client-side resource costs."""

    cpu_seconds: float = 0.0
    #: Total wall seconds of failure episodes monitored (the CPU
    #: utilization denominator per the paper's accounting).
    failure_seconds: float = 0.0
    peak_open_events: int = 0
    _open_events: int = field(default=0, init=False)
    storage_bytes: int = 0
    network_bytes: int = 0
    months_observed: float = 1.0

    # -- event lifecycle -----------------------------------------------------

    def event_opened(self) -> None:
        self._open_events += 1
        self.peak_open_events = max(self.peak_open_events, self._open_events)

    def event_closed(self, duration_s: float, probe_rounds: int = 0,
                     probe_bytes: int = 0) -> None:
        if self._open_events <= 0:
            raise RuntimeError("no open event to close")
        self._open_events -= 1
        self.failure_seconds += max(duration_s, 1.0)
        self.cpu_seconds += (
            CPU_SECONDS_PER_EVENT
            + CPU_SECONDS_PER_PROBE_ROUND * probe_rounds
        )
        self.storage_bytes += STORAGE_BYTES_PER_RECORD
        self.network_bytes += probe_bytes

    def uploaded(self, payload_bytes: int) -> None:
        self.network_bytes += payload_bytes
        # Uploaded records leave local storage.
        self.storage_bytes = max(0, self.storage_bytes - payload_bytes)

    # -- derived metrics -------------------------------------------------------

    @property
    def cpu_utilization(self) -> float:
        """CPU share *within failure durations* (the paper's metric)."""
        if self.failure_seconds == 0:
            return 0.0
        return self.cpu_seconds / self.failure_seconds

    @property
    def memory_bytes(self) -> int:
        return (
            MEMORY_BASELINE_BYTES
            + MEMORY_BYTES_PER_OPEN_EVENT * self.peak_open_events
        )

    @property
    def network_bytes_per_month(self) -> float:
        return self.network_bytes / max(self.months_observed, 1e-9)

    def within_envelope(self, worst_case: bool = False) -> bool:
        """Check the measured overhead against the paper's envelope."""
        bound = (
            quantities.OVERHEAD_WORST_CASE
            if worst_case
            else quantities.OVERHEAD_TYPICAL
        )
        return (
            self.cpu_utilization <= bound["cpu_utilization"]
            and self.memory_bytes <= bound["memory_bytes"]
            and self.storage_bytes <= bound["storage_bytes"]
            and self.network_bytes_per_month
            <= bound["network_bytes_per_month"]
        )

    def summary(self) -> dict[str, float]:
        return {
            "cpu_utilization": self.cpu_utilization,
            "memory_bytes": float(self.memory_bytes),
            "storage_bytes": float(self.storage_bytes),
            "network_bytes_per_month": self.network_bytes_per_month,
        }
