"""Android-MOD: the continuous monitoring infrastructure (Sec. 2.2) —
instrumented failure listeners with false-positive filtering, in-situ
context capture, the network-state prober, overhead accounting, and
WiFi-gated upload batching."""

from repro.monitoring.listener import CellularMonitorService, DeviceFlags
from repro.monitoring.insitu import InSituCollector
from repro.monitoring.prober import NetworkStateProber, StallMeasurement
from repro.monitoring.overhead import OverheadAccountant
from repro.monitoring.uploader import UploadBatcher

__all__ = [
    "CellularMonitorService",
    "DeviceFlags",
    "InSituCollector",
    "NetworkStateProber",
    "StallMeasurement",
    "OverheadAccountant",
    "UploadBatcher",
]
