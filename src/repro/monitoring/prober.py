"""The network-state prober (Sec. 2.2).

Vanilla Android's Data_Stall detector has one-minute granularity and no
way to tell a genuine network stall from a broken firewall or a dead DNS
service.  Android-MOD fixes both with active probing: on a suspected
stall it simultaneously sends an ICMP message to 127.0.0.1, plus an ICMP
message and a DNS query (for the study's test-server domain) to each
assigned DNS server.

Verdict logic, verbatim from the paper:

* loopback ICMP times out (1 s)           -> system-side false positive;
* all DNS queries time out (5 s) *and*
  ICMP to the DNS servers also times out  -> genuine network-side stall;
* DNS queries time out but DNS-server
  ICMP succeeds                           -> DNS-service false positive;
* nothing times out                       -> the stall is over.

A probe round costs at most five seconds, so measured durations carry at
most five seconds of error (vs. up to a minute for vanilla Android).
Past 1200 s of stall the timeouts back off multiplicatively (x2) to
bound overhead, and once a timeout would exceed one minute the prober
reverts to vanilla Android's estimation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import quantities
from repro.core.events import ProbeVerdict
from repro.netstack.stack import DeviceNetStack
from repro.network.dns import TEST_SERVER_DOMAIN
from repro.simtime import SimClock


@dataclass(frozen=True)
class ProbeRound:
    """Result of one simultaneous probe volley."""

    verdict: ProbeVerdict
    elapsed_s: float
    icmp_timeout_s: float
    dns_timeout_s: float


@dataclass(frozen=True)
class StallMeasurement:
    """Final duration measurement for one suspected Data_Stall."""

    duration_s: float
    verdict: ProbeVerdict
    rounds: int
    #: True when the prober fell back to vanilla minute-granularity
    #: estimation (timeouts exceeded one minute, Sec. 2.2).
    reverted_to_vanilla: bool
    #: Total probe bytes sent (for overhead accounting).
    probe_bytes: int


#: Approximate bytes per probe volley: one loopback ICMP plus an ICMP
#: echo and a DNS query per server (~64 + n*(64 + 80)).
_BYTES_PER_ROUND_BASE = 64
_BYTES_PER_SERVER = 64 + 80


class NetworkStateProber:
    """Measures a Data_Stall's duration and classifies its nature."""

    def __init__(
        self,
        clock: SimClock,
        icmp_timeout_s: float = quantities.PROBE_ICMP_TIMEOUT_S,
        dns_timeout_s: float = quantities.PROBE_DNS_TIMEOUT_S,
        backoff_threshold_s: float = quantities.PROBE_BACKOFF_THRESHOLD_S,
        backoff_factor: float = quantities.PROBE_BACKOFF_FACTOR,
        max_timeout_s: float = quantities.PROBE_MAX_TIMEOUT_S,
    ) -> None:
        if icmp_timeout_s <= 0 or dns_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        self.clock = clock
        self.base_icmp_timeout_s = icmp_timeout_s
        self.base_dns_timeout_s = dns_timeout_s
        self.backoff_threshold_s = backoff_threshold_s
        self.backoff_factor = backoff_factor
        self.max_timeout_s = max_timeout_s

    # -- one volley --------------------------------------------------------

    def probe_once(
        self,
        stack: DeviceNetStack,
        icmp_timeout_s: float,
        dns_timeout_s: float,
    ) -> ProbeRound:
        """Send one simultaneous volley and classify the outcome."""
        now = self.clock.now()
        loopback_ok, loopback_elapsed = stack.ping_loopback(
            now, icmp_timeout_s
        )
        icmp_results = []
        dns_results = []
        for server in stack.dns_servers:
            icmp_results.append(
                stack.ping_dns_server(server, now, icmp_timeout_s)
            )
            dns_results.append(
                stack.resolve(server, TEST_SERVER_DOMAIN, now, dns_timeout_s)
            )
        # The volley is simultaneous: elapsed is the max of the branches.
        elapsed = max(
            [loopback_elapsed]
            + [e for _, e in icmp_results]
            + [e for _, e in dns_results]
        )
        if not loopback_ok:
            verdict = ProbeVerdict.SYSTEM_SIDE_FAULT
        elif all(not ok for ok, _ in dns_results):
            if any(ok for ok, _ in icmp_results):
                verdict = ProbeVerdict.DNS_SERVICE_FAULT
            else:
                verdict = ProbeVerdict.NETWORK_SIDE_STALL
        else:
            verdict = ProbeVerdict.RECOVERED
        return ProbeRound(
            verdict=verdict,
            elapsed_s=elapsed,
            icmp_timeout_s=icmp_timeout_s,
            dns_timeout_s=dns_timeout_s,
        )

    # -- full measurement ------------------------------------------------------

    def measure(self, stack: DeviceNetStack) -> StallMeasurement:
        """Probe until the stall ends or is classified as a false positive.

        Advances the shared clock by each round's elapsed time; the
        returned duration is the sum of all probing rounds since the
        suspected stall began, per the paper's accounting.
        """
        start = self.clock.now()
        icmp_timeout = self.base_icmp_timeout_s
        dns_timeout = self.base_dns_timeout_s
        rounds = 0
        bytes_sent = 0
        while True:
            if (
                icmp_timeout > self.max_timeout_s
                or dns_timeout > self.max_timeout_s
            ):
                # Revert to vanilla estimation: minute granularity.
                duration = self._vanilla_estimate(stack, start)
                return StallMeasurement(
                    duration_s=duration,
                    verdict=ProbeVerdict.NETWORK_SIDE_STALL,
                    rounds=rounds,
                    reverted_to_vanilla=True,
                    probe_bytes=bytes_sent,
                )
            result = self.probe_once(stack, icmp_timeout, dns_timeout)
            rounds += 1
            bytes_sent += (
                _BYTES_PER_ROUND_BASE
                + _BYTES_PER_SERVER * len(stack.dns_servers)
            )
            self.clock.advance(result.elapsed_s)
            if result.verdict is not ProbeVerdict.NETWORK_SIDE_STALL:
                return StallMeasurement(
                    duration_s=self.clock.now() - start,
                    verdict=result.verdict,
                    rounds=rounds,
                    reverted_to_vanilla=False,
                    probe_bytes=bytes_sent,
                )
            if self.clock.now() - start > self.backoff_threshold_s:
                icmp_timeout *= self.backoff_factor
                dns_timeout *= self.backoff_factor

    def _vanilla_estimate(self, stack: DeviceNetStack, start: float) -> float:
        """Fall back to Android's one-minute detection cadence."""
        while stack.fault_at(self.clock.now()) is not None:
            self.clock.advance(quantities.DATA_STALL_WINDOW_S)
        return self.clock.now() - start
