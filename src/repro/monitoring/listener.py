"""The instrumented monitoring service (Sec. 2.2).

Android-MOD registers a monitoring service as an event listener on the
cellular connection-management services so *all* failure events are
captured in real time — including the ones vanilla Android never exposes
to user space.  On the way in it rules out false positives:

* connection disruption by an incoming voice call,
* service suspension due to insufficient account balance,
* manual disconnection of the network,
* rational setup rejections from overloaded BSes (via the error code),
* system-side / DNS-service stall verdicts from the prober.

True failures are annotated with in-situ context and handed to a sink
(the dataset uploader).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.errorcodes import ERROR_CODE_REGISTRY
from repro.core.events import (
    FailureEvent,
    FailureType,
    FalsePositiveReason,
    ProbeVerdict,
)
from repro.monitoring.insitu import InSituCollector

EventSink = Callable[[FailureEvent], None]


@dataclass
class DeviceFlags:
    """Device-side conditions the false-positive filters consult."""

    in_voice_call: bool = False
    balance_exhausted: bool = False
    data_manually_disabled: bool = False


@dataclass
class CellularMonitorService:
    """Android-MOD's monitoring service for one device."""

    insitu: InSituCollector
    sink: EventSink
    flags: DeviceFlags = field(default_factory=DeviceFlags)
    #: Counters for accounting and tests.
    captured: int = 0
    filtered: int = 0

    # -- listener entry points (registered on the system services) -----------

    def on_failure_event(self, event: FailureEvent) -> None:
        """Generic entry point for any failure event."""
        reason = self._classify_false_positive(event)
        if reason is not None:
            event.false_positive = reason
            self.filtered += 1
            return
        self.insitu.annotate(event)
        self.captured += 1
        self.sink(event)

    def on_data_setup_error(self, event: FailureEvent) -> None:
        self.on_failure_event(event)

    def on_out_of_service(
        self, old_state, new_state, timestamp: float
    ) -> None:
        """ServiceState listener shim; real events arrive via
        :meth:`on_failure_event` when the episode closes."""

    def on_stall_verdict(
        self, event: FailureEvent, verdict: ProbeVerdict
    ) -> None:
        """Apply the prober's verdict to a suspected Data_Stall."""
        if verdict is ProbeVerdict.SYSTEM_SIDE_FAULT:
            event.false_positive = FalsePositiveReason.SYSTEM_SIDE
        elif verdict is ProbeVerdict.DNS_SERVICE_FAULT:
            event.false_positive = (
                FalsePositiveReason.DNS_SERVICE_UNAVAILABLE
            )
        if event.false_positive is None:
            self.on_failure_event(event)
        else:
            self.filtered += 1

    # -- filters -----------------------------------------------------------

    def _classify_false_positive(
        self, event: FailureEvent
    ) -> FalsePositiveReason | None:
        if event.false_positive is not None:
            return event.false_positive
        if self.flags.in_voice_call:
            return FalsePositiveReason.INCOMING_VOICE_CALL
        if self.flags.balance_exhausted:
            return FalsePositiveReason.INSUFFICIENT_BALANCE
        if self.flags.data_manually_disabled:
            return FalsePositiveReason.MANUAL_DISCONNECT
        if (
            event.failure_type is FailureType.DATA_SETUP_ERROR
            and event.error_code is not None
            and event.error_code in ERROR_CODE_REGISTRY
            and ERROR_CODE_REGISTRY.get(event.error_code).rational_rejection
        ):
            return FalsePositiveReason.BS_OVERLOAD_REJECTION
        return None
