"""WiFi-gated, compressed upload batching with a durable spool (Sec. 2.2).

Recorded data are compressed and uploaded to the backend; heavy
producers (devices with tens of thousands of failures a month) only
upload when WiFi connectivity is available so cellular overhead stays
negligible — the aggregate across 70M devices stayed under 500 KB/s.

The batcher is a *spooler*: every payload stays queued until the
transport acknowledges it (returns without raising), so a flush that
dies mid-way neither loses nor double-counts records.  Failed sends are
retried under exponential backoff with jitter and a per-payload retry
budget; a bounded spool sheds oldest-first with explicit accounting.
Chaos transports (:mod:`repro.chaos`) exercise every one of these
paths.
"""

from __future__ import annotations

import json
import random
import zlib
from collections import deque
from dataclasses import dataclass, field

from repro.dataset.records import record_identity
from repro.obs import get_registry

#: A device uploads over cellular only below this backlog (bytes);
#: larger backlogs wait for WiFi.
CELLULAR_BACKLOG_LIMIT_BYTES = 256 * 1024


@dataclass(slots=True)
class SpooledPayload:
    """One compressed record waiting in the device spool."""

    payload: bytes
    #: Content identity of the record (for end-to-end reconciliation);
    #: ``None`` for payloads enqueued without a record dict.
    key: str | None
    #: Monotonic enqueue sequence number (spool is oldest-first).
    seq: int
    #: Send attempts so far (successful ack ends the payload's life).
    attempts: int = 0


@dataclass
class UploadBatcher:
    """Buffers serialized records and flushes them opportunistically.

    The ack protocol is exception-based: ``transport(payload)``
    returning means *acknowledged*; any exception means the payload was
    not durably received and must stay spooled.  Per-payload accounting
    is exception-safe — a transport failure mid-flush leaves already
    acked payloads counted exactly once and unacked ones queued.
    """

    #: Callable receiving compressed payload bytes; the "backend".
    transport: object = None
    #: Per-payload send budget; once exhausted the payload is dropped
    #: (accounted in ``budget_exhausted_*``).
    max_attempts: int = 8
    #: Exponential backoff after a failed flush: first delay, growth
    #: factor, cap, and fractional jitter.
    base_backoff_s: float = 2.0
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 300.0
    jitter: float = 0.5
    #: Spool bound in bytes; ``None`` means unbounded.  When exceeded,
    #: the *oldest* payloads are shed (freshest data is worth most).
    max_spool_bytes: int | None = None
    #: Jitter source; inject a seeded stream for paired-arm runs.
    rng: random.Random = field(
        default_factory=lambda: random.Random(0x5B001)
    )

    # -- accounting ---------------------------------------------------------
    pending_bytes: int = field(default=0, init=False)
    uploaded_bytes: int = field(default=0, init=False)
    #: Flush calls that uploaded at least one payload.
    uploads: int = field(default=0, init=False)
    acked_payloads: int = field(default=0, init=False)
    failed_sends: int = field(default=0, init=False)
    #: Failed sends whose payload stayed queued for another try.
    retries: int = field(default=0, init=False)
    shed_payloads: int = field(default=0, init=False)
    shed_bytes: int = field(default=0, init=False)
    budget_exhausted_payloads: int = field(default=0, init=False)
    budget_exhausted_bytes: int = field(default=0, init=False)
    #: Payloads the server refused *permanently* (e.g. frame too
    #: large); retrying is futile, so they are dropped on the spot.
    rejected_payloads: int = field(default=0, init=False)
    rejected_bytes: int = field(default=0, init=False)
    #: Backpressure signals honoured (server said RETRY_AFTER and the
    #: suggested delay was folded into the backoff gate).
    retry_signals: int = field(default=0, init=False)
    #: Record identities of shed / budget-dropped / rejected payloads,
    #: for the reconciliation report.
    shed_keys: list = field(default_factory=list, init=False)
    budget_exhausted_keys: list = field(default_factory=list, init=False)
    rejected_keys: list = field(default_factory=list, init=False)
    #: attempts-before-success -> payload count (0 = first try).
    retry_histogram: dict = field(default_factory=dict, init=False)
    #: Earliest time the next flush attempt is allowed (backoff gate;
    #: inert for callers that never pass ``now``).
    next_attempt_s: float = field(default=0.0, init=False)
    last_error: str | None = field(default=None, init=False)

    _pending: deque = field(default_factory=deque, init=False,
                            repr=False)
    _backoff_s: float = field(default=0.0, init=False, repr=False)
    _seq: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one send attempt")
        self._backoff_s = self.base_backoff_s

    # -- enqueue -------------------------------------------------------------

    def enqueue(self, record: dict) -> int:
        """Serialize, compress, and spool one record; returns its size."""
        payload = zlib.compress(
            json.dumps(record, sort_keys=True, default=str).encode()
        )
        key = record_identity(record) if isinstance(record, dict) else None
        return self.enqueue_payload(payload, key=key)

    def enqueue_payload(self, payload: bytes,
                        key: str | None = None) -> int:
        """Spool an already-compressed payload; returns its size."""
        self._seq += 1
        self._pending.append(SpooledPayload(payload, key, self._seq))
        self.pending_bytes += len(payload)
        self._shed_overflow()
        return len(payload)

    # -- flush ---------------------------------------------------------------

    def cellular_permitted(self) -> bool:
        """Sec. 2.2 gate: cellular uploads allowed at or below the
        backlog limit; strictly larger backlogs wait for WiFi."""
        return self.pending_bytes <= CELLULAR_BACKLOG_LIMIT_BYTES

    def maybe_flush(self, wifi_available: bool,
                    now: float | None = None) -> int:
        """Flush the spool if policy allows; returns bytes acked.

        ``now`` (virtual seconds) engages the backoff gate; omit it for
        legacy immediate-retry behaviour.
        """
        if not self._pending:
            return 0
        if not wifi_available and not self.cellular_permitted():
            return 0
        if now is not None and now < self.next_attempt_s:
            return 0
        flushed = 0
        acked = 0
        failed = False
        retried = False
        rejected = 0
        suggested_delay_s: float | None = None
        while self._pending:
            entry = self._pending[0]
            entry.attempts += 1
            try:
                if self.transport is not None:
                    self.transport(entry.payload)
            except Exception as exc:  # a nack: keep or drop, never lose
                self.failed_sends += 1
                self.last_error = repr(exc)
                if getattr(exc, "permanent", False):
                    # The server will never accept this payload (e.g.
                    # frame too large): drop it with accounting and
                    # keep flushing — the rest of the spool is fine.
                    self._drop_head_rejected()
                    rejected += 1
                    continue
                delay = getattr(exc, "retry_after_s", None)
                if delay is not None:
                    # Explicit backpressure: honour the server's
                    # suggested delay through the backoff gate.
                    self.retry_signals += 1
                    suggested_delay_s = float(delay)
                if entry.attempts >= self.max_attempts:
                    self._drop_head_over_budget()
                else:
                    self.retries += 1
                    retried = True
                failed = True
                break
            self._pending.popleft()
            self.pending_bytes -= len(entry.payload)
            flushed += len(entry.payload)
            self.acked_payloads += 1
            acked += 1
            prior = entry.attempts - 1
            self.retry_histogram[prior] = (
                self.retry_histogram.get(prior, 0) + 1
            )
        registry = get_registry()
        if registry.enabled:
            if acked:
                registry.inc("uploader_acked_total", acked)
                registry.inc("uploader_uploaded_bytes_total", flushed)
            if failed:
                registry.inc("uploader_failed_sends_total")
            if retried:
                registry.inc("uploader_retries_total")
            if rejected:
                registry.inc("uploader_failed_sends_total", rejected)
            if suggested_delay_s is not None:
                registry.inc("uploader_retry_signals_total")
        if flushed:
            self.uploaded_bytes += flushed
            self.uploads += 1
        if failed:
            self._arm_backoff(now, suggested_delay_s)
        else:
            self._backoff_s = self.base_backoff_s
            self.next_attempt_s = 0.0
        return flushed

    # -- queries -------------------------------------------------------------

    @property
    def pending_payloads(self) -> int:
        return len(self._pending)

    @property
    def pending_keys(self) -> list[str]:
        """Identities still spooled (in-flight for reconciliation)."""
        return [entry.key for entry in self._pending
                if entry.key is not None]

    def summary(self) -> dict[str, float]:
        return {
            "pending_payloads": float(len(self._pending)),
            "pending_bytes": float(self.pending_bytes),
            "uploaded_bytes": float(self.uploaded_bytes),
            "uploads": float(self.uploads),
            "acked_payloads": float(self.acked_payloads),
            "failed_sends": float(self.failed_sends),
            "retries": float(self.retries),
            "shed_payloads": float(self.shed_payloads),
            "shed_bytes": float(self.shed_bytes),
            "budget_exhausted_payloads": float(
                self.budget_exhausted_payloads
            ),
            "budget_exhausted_bytes": float(self.budget_exhausted_bytes),
            "rejected_payloads": float(self.rejected_payloads),
            "rejected_bytes": float(self.rejected_bytes),
            "retry_signals": float(self.retry_signals),
        }

    # -- internals -----------------------------------------------------------

    def _shed_overflow(self) -> None:
        if self.max_spool_bytes is None:
            return
        # Keep at least the newest payload even if it alone overflows.
        while (self.pending_bytes > self.max_spool_bytes
               and len(self._pending) > 1):
            oldest = self._pending.popleft()
            self.pending_bytes -= len(oldest.payload)
            self.shed_payloads += 1
            self.shed_bytes += len(oldest.payload)
            registry = get_registry()
            registry.inc("uploader_shed_total")
            registry.inc("uploader_shed_bytes_total",
                         len(oldest.payload))
            if oldest.key is not None:
                self.shed_keys.append(oldest.key)

    def _drop_head_over_budget(self) -> None:
        entry = self._pending.popleft()
        self.pending_bytes -= len(entry.payload)
        self.budget_exhausted_payloads += 1
        self.budget_exhausted_bytes += len(entry.payload)
        registry = get_registry()
        registry.inc("uploader_budget_exhausted_total")
        registry.inc("uploader_budget_exhausted_bytes_total",
                     len(entry.payload))
        if entry.key is not None:
            self.budget_exhausted_keys.append(entry.key)

    def _drop_head_rejected(self) -> None:
        entry = self._pending.popleft()
        self.pending_bytes -= len(entry.payload)
        self.rejected_payloads += 1
        self.rejected_bytes += len(entry.payload)
        registry = get_registry()
        registry.inc("uploader_rejected_total")
        registry.inc("uploader_rejected_bytes_total",
                     len(entry.payload))
        if entry.key is not None:
            self.rejected_keys.append(entry.key)

    def _arm_backoff(self, now: float | None,
                     suggested_delay_s: float | None = None) -> None:
        delay = self._backoff_s * (1.0 + self.jitter * self.rng.random())
        if suggested_delay_s is not None and suggested_delay_s > delay:
            # Server-directed backpressure overrides a shorter local
            # draw; the exponential schedule still advances beneath it.
            delay = suggested_delay_s
        self.next_attempt_s = (0.0 if now is None else now) + delay
        self._backoff_s = min(self.max_backoff_s,
                              self._backoff_s * self.backoff_multiplier)
