"""WiFi-gated, compressed upload batching (Sec. 2.2).

Recorded data are compressed and uploaded to the backend; heavy
producers (devices with tens of thousands of failures a month) only
upload when WiFi connectivity is available so cellular overhead stays
negligible — the aggregate across 70M devices stayed under 500 KB/s.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field

#: A device uploads over cellular only below this backlog (bytes);
#: larger backlogs wait for WiFi.
CELLULAR_BACKLOG_LIMIT_BYTES = 256 * 1024


@dataclass
class UploadBatcher:
    """Buffers serialized records and flushes them opportunistically."""

    #: Callable receiving compressed payload bytes; the "backend".
    transport: object = None
    _pending: list[bytes] = field(default_factory=list, init=False)
    pending_bytes: int = 0
    uploaded_bytes: int = 0
    uploads: int = 0

    def enqueue(self, record: dict) -> int:
        """Serialize, compress, and buffer one record; returns its size."""
        payload = zlib.compress(
            json.dumps(record, sort_keys=True, default=str).encode()
        )
        self._pending.append(payload)
        self.pending_bytes += len(payload)
        return len(payload)

    def maybe_flush(self, wifi_available: bool) -> int:
        """Flush the buffer if policy allows; returns bytes uploaded.

        Small backlogs may ride cellular; big ones wait for WiFi.
        """
        if not self._pending:
            return 0
        if not wifi_available and (
            self.pending_bytes > CELLULAR_BACKLOG_LIMIT_BYTES
        ):
            return 0
        flushed = self.pending_bytes
        if self.transport is not None:
            for payload in self._pending:
                self.transport(payload)
        self._pending.clear()
        self.pending_bytes = 0
        self.uploaded_bytes += flushed
        self.uploads += 1
        return flushed
