"""Passive stall monitoring (the Sec. 6 alternative).

The paper's prober is *active*: it injects ICMP/DNS traffic, which
bounds measurement error at five seconds but perturbs the network.
Sec. 6 discusses passive alternatives in the style of Hui et al. (2013)
and Wang et al. (2019): watch the existing packet flow and infer stall
boundaries from inter-arrival gaps, at zero network overhead but with
error bounded only by the application's own traffic cadence.

This module implements that alternative over the same kernel-counter
substrate, so active and passive measurement can be compared on
identical episodes (see ``benchmarks/test_ablation_passive.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netstack.stack import DeviceNetStack
from repro.simtime import SimClock


@dataclass(frozen=True)
class PassiveMeasurement:
    """One passively measured stall."""

    duration_s: float
    #: Seconds between the stall's true end and the first observed
    #: inbound packet — the passive method's measurement error.
    detection_lag_s: float
    #: Probe bytes injected: always zero, the method's selling point.
    probe_bytes: int = 0


class PassiveStallMonitor:
    """Measures stall durations from ambient traffic only.

    The monitor never sends anything: it watches the inbound stream and
    declares the stall over at the first inbound segment after the
    outage.  Its error therefore equals the gap until the application
    happens to receive data — typically several seconds and unbounded
    in quiet periods, versus the active prober's hard 5 s bound.
    """

    def __init__(self, clock: SimClock, poll_interval_s: float = 1.0,
                 max_wait_s: float = 7_200.0) -> None:
        if poll_interval_s <= 0:
            raise ValueError("poll interval must be positive")
        self.clock = clock
        self.poll_interval_s = poll_interval_s
        self.max_wait_s = max_wait_s

    def measure(self, stack: DeviceNetStack,
                traffic_gap_s: float) -> PassiveMeasurement:
        """Measure the currently active stall.

        ``traffic_gap_s`` is the application's inter-arrival gap: after
        the network recovers, the next inbound packet arrives that much
        later, and only then does the passive monitor notice.
        """
        if traffic_gap_s < 0:
            raise ValueError("traffic gap cannot be negative")
        start = self.clock.now()
        fault = stack.fault_at(start)
        if fault is None:
            return PassiveMeasurement(duration_s=0.0, detection_lag_s=0.0)
        deadline = start + self.max_wait_s
        while self.clock.now() < deadline:
            if stack.fault_at(self.clock.now()) is None:
                break
            self.clock.advance(self.poll_interval_s)
        true_end = self.clock.now()
        # The first inbound segment after recovery lands one traffic
        # gap later; until then the stall still looks open.
        self.clock.advance(traffic_gap_s)
        return PassiveMeasurement(
            duration_s=self.clock.now() - start,
            detection_lag_s=self.clock.now() - true_end,
        )
