"""Published quantities from the paper, centralized.

Every number the paper reports in its tables, figures, and prose lives here,
under a name that says where it came from.  Two kinds of consumers exist:

* the :mod:`repro.fleet` generators, which use these values as *generative
  parameters* so that a synthetic nationwide trace reproduces the published
  marginals, and
* the benchmark harness, which uses them as *calibration targets* to compare
  measured-vs-paper shapes (recorded in EXPERIMENTS.md).

Nothing in :mod:`repro.analysis` reads this module: analysis results are
always recomputed from event records, never copied from here.
"""

from __future__ import annotations

from dataclasses import dataclass

# --------------------------------------------------------------------------
# Section 3.1 — general statistics
# --------------------------------------------------------------------------

#: Total opt-in users in the measurement study (Sec. 2.3).
TOTAL_USERS = 70_965_549

#: Total recorded cellular failures (Sec. 3.1).
TOTAL_FAILURES = 2_315_314_213

#: Devices that experienced at least one failure (Sec. 3.1).
DEVICES_WITH_FAILURES = 16_183_145

#: Base stations involved in the study (Sec. 3.1).
TOTAL_BASE_STATIONS = 5_273_972

#: Number of mobile ISPs covered.
TOTAL_ISPS = 3

#: Number of distinct phone models (Table 1).
TOTAL_PHONE_MODELS = 34

#: Average fraction of devices with >= 1 failure, across models (Sec. 3.1).
AVG_PREVALENCE = 0.23

#: Average failures per device over the 8-month study (Sec. 3.1).
AVG_FAILURES_PER_DEVICE = 33.0

#: Mean counts per device by failure type (Fig. 3 prose).
AVG_DATA_SETUP_ERRORS_PER_DEVICE = 16.0
AVG_DATA_STALLS_PER_DEVICE = 14.0
AVG_OUT_OF_SERVICE_PER_DEVICE = 3.0

#: Maximum failures observed on a single phone (Fig. 3 prose).
MAX_FAILURES_SINGLE_PHONE = 198_228

#: Maximum Out_of_Service events on a single phone (Sec. 3.1).
MAX_OUT_OF_SERVICE_SINGLE_PHONE = 102_696

#: Fraction of phones with no Out_of_Service events (Sec. 3.1).
FRACTION_PHONES_WITHOUT_OOS = 0.95

#: Average failure duration in seconds (Fig. 4 prose: 188 s = 3.1 min).
AVG_FAILURE_DURATION_S = 188.0

#: Fraction of failures shorter than 30 seconds (Fig. 4 prose).
FRACTION_FAILURES_UNDER_30S = 0.708

#: Longest observed failure, in seconds (25.5 hours).
MAX_FAILURE_DURATION_S = 91_770.0

#: Share of the three headline failure types among all failures (Sec. 3.1).
HEADLINE_FAILURE_TYPE_SHARE = 0.99

#: Data_Stall's share of total failure *duration* (Sec. 3.1).
DATA_STALL_DURATION_SHARE = 0.94

#: Data_Stall's share of total failure *count* (Sec. 3.2, "~40%").
DATA_STALL_COUNT_SHARE = 0.40

#: Study length in months (Jan.-Aug. 2020).
STUDY_MONTHS = 8

# --------------------------------------------------------------------------
# Table 1 — the 34 phone models
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PhoneModelRow:
    """One row of Table 1, ordered low-end to high-end."""

    model: int
    cpu_ghz: float
    memory_gb: int
    storage_gb: int
    has_5g: bool
    android_version: str  # "9.0" or "10.0"
    user_share: float  # fraction of the fleet (column "Users")
    prevalence: float  # fraction of devices with >= 1 failure
    frequency: float  # mean failures per device


#: Table 1 verbatim.  ``user_share``/``prevalence`` are fractions, not %.
TABLE1: tuple[PhoneModelRow, ...] = (
    PhoneModelRow(1, 1.80, 2, 16, False, "10.0", 0.0271, 0.2800, 35.9),
    PhoneModelRow(2, 1.95, 2, 16, False, "9.0", 0.0302, 0.1300, 23.8),
    PhoneModelRow(3, 2.00, 2, 16, False, "9.0", 0.0731, 0.1000, 13.8),
    PhoneModelRow(4, 2.00, 3, 32, False, "9.0", 0.0390, 0.1900, 22.4),
    PhoneModelRow(5, 2.00, 3, 32, False, "9.0", 0.0285, 0.2100, 28.2),
    PhoneModelRow(6, 2.00, 3, 32, False, "10.0", 0.0433, 0.0400, 5.3),
    PhoneModelRow(7, 2.00, 3, 32, False, "10.0", 0.0144, 0.0500, 6.4),
    PhoneModelRow(8, 2.00, 3, 32, False, "9.0", 0.0407, 0.0015, 2.3),
    PhoneModelRow(9, 2.00, 3, 32, False, "10.0", 0.0547, 0.0200, 2.6),
    PhoneModelRow(10, 2.20, 4, 32, False, "9.0", 0.0578, 0.2700, 36.8),
    PhoneModelRow(11, 1.80, 4, 64, False, "10.0", 0.0118, 0.2500, 28.5),
    PhoneModelRow(12, 2.00, 4, 64, False, "10.0", 0.0144, 0.3300, 43.5),
    PhoneModelRow(13, 2.05, 6, 64, False, "10.0", 0.0539, 0.2600, 18.7),
    PhoneModelRow(14, 2.20, 6, 64, False, "9.0", 0.0298, 0.1500, 17.9),
    PhoneModelRow(15, 2.20, 4, 128, False, "10.0", 0.0398, 0.2500, 26.7),
    PhoneModelRow(16, 2.20, 4, 128, False, "10.0", 0.0302, 0.1900, 28.0),
    PhoneModelRow(17, 2.20, 6, 64, False, "10.0", 0.0109, 0.2800, 48.4),
    PhoneModelRow(18, 2.20, 6, 64, False, "10.0", 0.0026, 0.1300, 38.8),
    PhoneModelRow(19, 2.20, 6, 64, False, "10.0", 0.0131, 0.2400, 44.8),
    PhoneModelRow(20, 2.20, 6, 64, False, "10.0", 0.0057, 0.2100, 33.0),
    PhoneModelRow(21, 2.20, 6, 64, False, "10.0", 0.0280, 0.3600, 46.6),
    PhoneModelRow(22, 2.20, 6, 128, False, "9.0", 0.0044, 0.3800, 61.1),
    PhoneModelRow(23, 2.40, 6, 64, True, "10.0", 0.0084, 0.4400, 49.6),
    PhoneModelRow(24, 2.40, 6, 128, True, "10.0", 0.0325, 0.3700, 38.0),
    PhoneModelRow(25, 2.45, 6, 64, False, "9.0", 0.0499, 0.1400, 19.6),
    PhoneModelRow(26, 2.45, 6, 64, False, "9.0", 0.0215, 0.1700, 24.6),
    PhoneModelRow(27, 2.80, 6, 64, False, "10.0", 0.0184, 0.2200, 54.2),
    PhoneModelRow(28, 2.80, 6, 64, False, "10.0", 0.0714, 0.2800, 58.1),
    PhoneModelRow(29, 2.80, 6, 64, False, "10.0", 0.0131, 0.3000, 65.1),
    PhoneModelRow(30, 2.80, 6, 128, False, "10.0", 0.0101, 0.3000, 90.2),
    PhoneModelRow(31, 2.84, 6, 64, False, "10.0", 0.0188, 0.2800, 61.7),
    PhoneModelRow(32, 2.84, 6, 64, False, "10.0", 0.0363, 0.2900, 57.8),
    PhoneModelRow(33, 2.84, 8, 128, True, "10.0", 0.0478, 0.3200, 70.9),
    PhoneModelRow(34, 2.84, 8, 256, True, "10.0", 0.0184, 0.2500, 79.3),
)

#: Models shipped with a 5G modem (Table 1).
FIVE_G_MODELS = tuple(row.model for row in TABLE1 if row.has_5g)

# --------------------------------------------------------------------------
# Table 2 — top-10 Data_Setup_Error codes
# --------------------------------------------------------------------------

#: Error-code name -> share of all Data_Setup_Error failures (Table 2).
TABLE2_ERROR_CODE_SHARES: dict[str, float] = {
    "GPRS_REGISTRATION_FAIL": 0.128,
    "SIGNAL_LOST": 0.072,
    "NO_SERVICE": 0.065,
    "INVALID_EMM_STATE": 0.049,
    "UNPREFERRED_RAT": 0.043,
    "PPP_TIMEOUT": 0.035,
    "NO_HYBRID_HDR_SERVICE": 0.022,
    "PDP_LOWERLAYER_ERROR": 0.019,
    "MAX_ACCESS_PROBE": 0.018,
    "IRAT_HANDOVER_FAILED": 0.016,
}

#: The top-10 codes jointly cover 46.7% of Data_Setup_Error failures.
TABLE2_TOP10_CUMULATIVE = 0.467

#: Total data-fail causes defined by Android (Sec. 2.2 / 3.2).
TOTAL_ERROR_CODES = 344

# --------------------------------------------------------------------------
# Section 3.2 — Data_Stall behaviour and recovery
# --------------------------------------------------------------------------

#: Fraction of Data_Stall failures auto-fixed within 10 s (Fig. 10 prose).
STALL_AUTOFIX_10S_FRACTION = 0.60

#: Fraction of Data_Stall failures lasting under 300 s (Sec. 2.2, ">80%").
STALL_UNDER_300S_FRACTION = 0.80

#: Fraction of Data_Stall failures lasting over 1200 s (Sec. 2.2, "<10%").
STALL_OVER_1200S_FRACTION = 0.10

#: Success rate of the first (lightweight) recovery stage once executed.
STAGE1_RECOVERY_SUCCESS_RATE = 0.75

#: Vanilla Android probation before each recovery stage, seconds.
VANILLA_PROBATION_S = 60.0

#: Typical user tolerance before a manual connection reset, seconds.
USER_MANUAL_RESET_S = 30.0

#: Android's Data_Stall rule: >10 outbound TCP segments and 0 inbound
#: within the last minute.
DATA_STALL_OUTBOUND_THRESHOLD = 10
DATA_STALL_WINDOW_S = 60.0

# --------------------------------------------------------------------------
# Section 3.3 — ISP and base-station landscape
# --------------------------------------------------------------------------

#: Fraction of BSes owned by each ISP (Sec. 3.3).
ISP_BS_SHARE = {"ISP-A": 0.448, "ISP-B": 0.294, "ISP-C": 0.258}

#: Per-ISP user failure prevalence (Fig. 12 prose).
ISP_PREVALENCE = {"ISP-A": 0.201, "ISP-B": 0.271, "ISP-C": 0.147}

#: Fraction of BSes supporting each RAT generation (sums to > 1; multi-RAT).
RAT_BS_SUPPORT_SHARE = {"2G": 0.234, "3G": 0.102, "4G": 0.652, "5G": 0.073}

#: Zipf fit of the BS ranking by failure count (Fig. 11): y = b / rank^a.
BS_ZIPF_A = 0.82
BS_ZIPF_B = 17.12

#: BS failure-count distribution anchors (Fig. 11 prose).
BS_FAILURES_MEDIAN = 1
BS_FAILURES_MEAN = 444
BS_FAILURES_MAX = 8_941_860

#: Fig. 17f: prevalence increase when switching 4G level-4 -> 5G level-0.
TRANSITION_4G_L4_TO_5G_L0_INCREASE = 0.37

# --------------------------------------------------------------------------
# Section 4 — enhancements and their evaluation
# --------------------------------------------------------------------------

#: TIMP-optimized probations, seconds (Sec. 4.2).
TIMP_OPTIMAL_PROBATIONS_S = (21.0, 6.0, 16.0)

#: Expected recovery time under TIMP-optimal probations (Sec. 4.2).
TIMP_EXPECTED_RECOVERY_S = 27.8

#: Expected recovery time under vanilla 60/60/60 probations (Sec. 4.2).
VANILLA_EXPECTED_RECOVERY_S = 38.0

#: Evaluation deltas on participant 5G phones (Figs. 19-20 prose).
EVAL_5G_PREVALENCE_REDUCTION = 0.10
EVAL_5G_FREQUENCY_REDUCTION = 0.403

#: Per-failure-type (prevalence, frequency) reductions on 5G phones.
#: Data_Setup_Error prevalence moved the "wrong" way (-7% reduction means
#: a 7% increase), attributed to statistical fluctuation in the paper.
EVAL_PER_TYPE_REDUCTION = {
    "DATA_SETUP_ERROR": (-0.07, 0.2572),
    "DATA_STALL": (0.1345, 0.424),
    "OUT_OF_SERVICE": (0.05, 0.5026),
}

#: TIMP deployment: Data_Stall duration reduction, all-failure duration
#: reduction, and median duration before/after (Fig. 21 prose).
EVAL_STALL_DURATION_REDUCTION = 0.38
EVAL_TOTAL_DURATION_REDUCTION = 0.36
EVAL_MEDIAN_DURATION_BEFORE_S = 6.0
EVAL_MEDIAN_DURATION_AFTER_S = 2.0

#: Fraction of the 70M users who opted in to the patched system.
PATCHED_OPT_IN_FRACTION = 0.40

# --------------------------------------------------------------------------
# Section 2.2 — monitoring overhead envelope (low-end phone)
# --------------------------------------------------------------------------

#: Typical-case overhead bounds for Android-MOD on a low-end phone.
OVERHEAD_TYPICAL = {
    "cpu_utilization": 0.02,
    "memory_bytes": 40 * 1024,
    "storage_bytes": 100 * 1024,
    "network_bytes_per_month": 100 * 1024,
}

#: Worst-case overhead bounds (devices with 40k+ failures per month).
OVERHEAD_WORST_CASE = {
    "cpu_utilization": 0.08,
    "memory_bytes": 2 * 1024 * 1024,
    "storage_bytes": 20 * 1024 * 1024,
    "network_bytes_per_month": 20 * 1024 * 1024,
}

#: Prober timeouts (Sec. 2.2).
PROBE_ICMP_TIMEOUT_S = 1.0
PROBE_DNS_TIMEOUT_S = 5.0
PROBE_BACKOFF_THRESHOLD_S = 1200.0
PROBE_BACKOFF_FACTOR = 2.0
PROBE_MAX_TIMEOUT_S = 60.0
