"""Command-line interface.

::

    python -m repro study   [--devices N] [--seed S] [--workers W]
                            [--shards K] [--checkpoint-dir DIR] [--resume]
                            [--save PATH]
    python -m repro ab      [--devices N] [--seed S] [--workers W] [...]
    python -m repro timp    [--devices N] [--seed S] [--workers W] [...]
    python -m repro analyze PATH
    python -m repro serve   [--host H] [--port P] [--queue-capacity N]
                            [--policy P] [--checkpoint PATH] [--resume]
                            [--store-dir DIR] [--seal-records N]
                            [--disk-chaos RATE]
    python -m repro query   HOST:PORT {stats,isp_bs,transitions,summary}
                            [--json] [--timeout S]
    python -m repro scrub   DIR [--no-repair] [--json PATH] [--strict]
    python -m repro sweep   PACKS... --out DIR [--resume]
                            [--workers W] [--shards K]

``study`` runs the measurement study and prints the Sec. 3 report;
``ab`` runs the paired enhancement evaluation (Sec. 4.3); ``timp`` fits
the recovery CDF and anneals the probations (Sec. 4.2); ``analyze``
re-runs the analysis over a saved dataset.  ``--workers W`` (W >= 2)
shards the fleet across worker processes via :mod:`repro.parallel`;
results are identical to the default sequential run.  With
``--checkpoint-dir`` every completed shard is spooled to disk, and a
killed run restarted with ``--resume`` picks up from the completed
shards instead of simulating from zero; ``--shards K`` sets the
checkpoint/retry granularity independently of worker count.
``--analysis-out PATH`` writes the run's streaming analysis block
(``metadata["analysis"]``) plus its derived summary as JSON.

``serve`` runs the long-lived socket ingest service
(:mod:`repro.serve`): it prints ``serving on HOST:PORT`` once bound
and, on SIGTERM/SIGINT, drains the admission queue, writes the
``--checkpoint`` snapshot, and exits zero; ``--resume`` restores a
previous drain checkpoint (dedup state, aggregates, and any payloads
that were still queued).  With ``--store-dir`` accepted records live
in a durable WAL-backed segment store (:mod:`repro.store`) instead of
server memory, and the drain checkpoint shrinks to the unsealed tail;
``scrub`` verifies such a store's checksums, quarantines damaged
segments, repairs from the journal, and reports anything
unrecoverable.

``query`` asks a *running* service for a live analysis answer over
everything ingested so far (:mod:`repro.serve.query`): ``stats``,
``isp_bs``, ``transitions``, or the derived ``summary``.  The answer
is a snapshot-consistent fold — byte-identical to what ``analyze``
would report over the same drained dataset — stamped with a watermark
saying exactly how many records it covers.  ``--json`` prints the raw
response envelope (sorted keys) instead of the human rendering.

``sweep`` runs a list of scenario packs (files or directories of
``*.yaml``/``*.yml``/``*.json``; see :mod:`repro.scenarios` and
``docs/scenarios.md``) through the checkpointed shard supervisor —
one fingerprint-keyed run per pack — and renders the cross-scenario
comparison table plus the landscape report into ``--out``.  Every
pack is validated *before* the first simulation starts; a broken pack
exits with status 2 and the full key path of the problem.  With
``--resume``, packs already completed in ``--out`` are skipped
byte-identically and the in-flight pack continues from its shard
checkpoints.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path

from repro.analysis.columnar import (
    analysis_summary,
    compute_analysis_block,
    merge_analysis_blocks,
)
from repro.analysis.report import render_ab_evaluation
from repro.core.enhancements import fit_recovery_trigger
from repro.core.study import NationwideStudy, run_ab_evaluation
from repro.dataset.store import load_dataset, save_dataset
from repro.fleet.scenario import (
    ENGINE_BATCH,
    ENGINE_SERIAL,
    ScenarioConfig,
)
from repro.fleet.simulator import FleetSimulator
from repro.network.topology import TopologyConfig
from repro.obs import merge_snapshots
from repro.obs.export import (
    dataset_metrics_snapshot,
    write_metrics_json,
    write_metrics_prometheus,
)


def _scenario(args: argparse.Namespace) -> ScenarioConfig:
    return ScenarioConfig(
        n_devices=args.devices,
        seed=args.seed,
        metrics=_metrics_enabled(args),
        engine=getattr(args, "engine", ENGINE_SERIAL),
        topology=TopologyConfig(
            n_base_stations=max(400, args.devices // 2),
            seed=args.seed + 1,
        ),
    )


def _metrics_enabled(args: argparse.Namespace) -> bool:
    return bool(getattr(args, "metrics_out", None)
                or getattr(args, "prom_out", None))


def _export_metrics(args: argparse.Namespace, *datasets) -> None:
    """Write the run's metrics snapshot(s) to the requested files.

    Multiple datasets (the two arms of an ``ab`` run) merge into one
    run-level snapshot — the merge is commutative, so this is exact.
    """
    if not _metrics_enabled(args):
        return
    snapshot = merge_snapshots(
        [dataset_metrics_snapshot(dataset) for dataset in datasets]
    )
    if args.metrics_out:
        path = write_metrics_json(args.metrics_out, snapshot)
        print(f"metrics written to {path}")
    if args.prom_out:
        path = write_metrics_prometheus(args.prom_out, snapshot)
        print(f"prometheus metrics written to {path}")


def _export_analysis(args: argparse.Namespace, *datasets) -> None:
    """Write the merged analysis block (plus derived summary) as JSON.

    Multiple datasets (the two arms of an ``ab`` run) merge exactly;
    datasets saved before the streaming-analysis era get their block
    recomputed from records.
    """
    if not getattr(args, "analysis_out", None):
        return
    merged = merge_analysis_blocks([
        dataset.metadata.get("analysis")
        or compute_analysis_block(dataset)
        for dataset in datasets
    ])
    payload = {"analysis": merged, "summary": analysis_summary(merged)}
    target = Path(args.analysis_out)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True)
                      + "\n")
    print(f"analysis written to {target}")


def _positive_int(text: str) -> int:
    """Argparse type: an integer >= 1, rejected with a clear message."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (>= 1), got {value}"
        )
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--devices", type=_positive_int, default=2_000,
                        help="fleet size (default 2000)")
    parser.add_argument("--seed", type=int, default=2020,
                        help="scenario seed (default 2020)")
    parser.add_argument("--engine", choices=(ENGINE_SERIAL, ENGINE_BATCH),
                        default=ENGINE_SERIAL,
                        help="simulation engine: 'serial' walks the "
                             "per-device state machines, 'batch' "
                             "advances whole shards with vectorized "
                             "array draws (~20x faster, different RNG "
                             "streams; see docs/scaling.md)")
    parser.add_argument("--workers", type=_positive_int, default=None,
                        help="shard the fleet across N worker "
                             "processes (default: sequential; "
                             "records are identical either way)")
    parser.add_argument("--shards", type=_positive_int, default=None,
                        help="partition granularity (default: one "
                             "shard per worker); more shards mean "
                             "finer checkpoints and retries at "
                             "identical output")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="spool completed shards to DIR so a "
                             "killed run can be resumed")
    parser.add_argument("--resume", action="store_true",
                        help="reload completed shards from "
                             "--checkpoint-dir instead of re-running "
                             "them (requires --checkpoint-dir)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="enable the observability layer and write "
                             "the metrics snapshot as JSON to PATH")
    parser.add_argument("--prom-out", default=None, metavar="PATH",
                        help="enable the observability layer and write "
                             "the metrics snapshot in Prometheus text "
                             "format to PATH")
    parser.add_argument("--analysis-out", default=None, metavar="PATH",
                        help="write the run's streaming analysis block "
                             "(exact study-level aggregates plus a "
                             "derived summary) as JSON to PATH")


def cmd_study(args: argparse.Namespace) -> int:
    scenario = _scenario(args)
    study = NationwideStudy(scenario=scenario)
    dataset = FleetSimulator(scenario.vanilla()).run(
        workers=args.workers,
        n_shards=args.shards,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )
    result = study.analyze(dataset)
    print(result.render())
    execution = dataset.metadata.get("execution")
    if execution:
        print(f"[execution] mode={execution['mode']} "
              f"workers={execution['workers']} "
              f"wall={execution['wall_s']:.1f}s "
              f"({execution['devices_per_s']:.0f} devices/s)")
        resumed = execution.get("resumed_shards", [])
        if execution.get("retries") or resumed:
            print(f"[resilience] retries={execution.get('retries', 0)} "
                  f"reran={execution.get('reran_shards', [])} "
                  f"resumed {len(resumed)}/{execution['n_shards']} "
                  "shards from checkpoint")
    _export_metrics(args, dataset)
    _export_analysis(args, dataset)
    if args.save:
        save_dataset(dataset, args.save)
        print(f"dataset saved to {args.save}")
    return 0


def cmd_ab(args: argparse.Namespace) -> int:
    vanilla, patched, evaluation = run_ab_evaluation(
        _scenario(args), workers=args.workers, n_shards=args.shards,
        checkpoint_dir=args.checkpoint_dir, resume=args.resume,
    )
    print(render_ab_evaluation(evaluation))
    _export_metrics(args, vanilla, patched)
    _export_analysis(args, vanilla, patched)
    return 0


def cmd_timp(args: argparse.Namespace) -> int:
    dataset = FleetSimulator(_scenario(args).vanilla()).run(
        workers=args.workers,
        n_shards=args.shards,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )
    policy, result = fit_recovery_trigger(
        dataset, rng=random.Random(args.seed)
    )
    p0, p1, p2 = policy.probations_s
    print(f"annealed probations: {p0:.0f} / {p1:.0f} / {p2:.0f} s "
          "(paper: 21 / 6 / 16)")
    print(f"objective: {result.best_value:.1f} s vs "
          f"{result.default_value:.1f} s for vanilla 60/60/60 "
          f"({result.improvement:.0%} better)")
    _export_metrics(args, dataset)
    _export_analysis(args, dataset)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.obs import ThreadSafeRegistry, use_registry
    from repro.serve import IngestService, ServeConfig

    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2
    config = ServeConfig(
        host=args.host,
        port=args.port,
        queue_capacity=args.queue_capacity,
        policy=args.policy,
        retry_after_s=args.retry_after,
        read_deadline_s=args.read_deadline,
        max_frame_bytes=args.max_frame_bytes,
        max_connections=args.max_connections,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset,
        drain_timeout_s=args.drain_timeout,
        store_dir=args.store_dir,
        store_seal_records=args.seal_records,
        disk_chaos_rate=args.disk_chaos,
        disk_chaos_seed=args.disk_chaos_seed,
    )
    # Handler/worker threads record concurrently: the lock-free
    # registry the simulators use is not safe here.
    registry = ThreadSafeRegistry()
    stop = threading.Event()

    def request_stop(_signum, _frame) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, request_stop)
    signal.signal(signal.SIGINT, request_stop)
    with use_registry(registry):
        if args.resume and Path(args.checkpoint).exists():
            service = IngestService.resume(args.checkpoint, config)
            print(f"resumed from {args.checkpoint} "
                  f"(accepted={service.server.accepted} "
                  f"queued={service.queue.depth})", flush=True)
        else:
            service = IngestService(config=config)
        service.start()
        host, port = service.address
        print(f"serving on {host}:{port}", flush=True)
        stop.wait()
        print("draining...", flush=True)
        result = service.stop(checkpoint_path=args.checkpoint)
        server = service.server
        print(f"drained={result.drained} leftover={result.leftover} "
              f"accepted={server.accepted} "
              f"duplicates={server.duplicates} "
              f"quarantined={server.quarantined}", flush=True)
        if server.store is not None:
            stats = server.store.summary()
            print(f"store segments={stats['segments']} "
                  f"sealed={stats['sealed_records']} "
                  f"tail={stats['tail_records']}", flush=True)
            if args.analysis_out:
                query = server.store.fold_analysis()
                payload = {
                    "analysis": query.block,
                    "summary": analysis_summary(query.block),
                    "skipped_segments": query.skipped,
                }
                Path(args.analysis_out).write_text(
                    json.dumps(payload, indent=2, sort_keys=True) + "\n"
                )
                print(f"analysis written to {args.analysis_out}",
                      flush=True)
        if result.checkpoint_path:
            print(f"checkpoint written to {result.checkpoint_path}",
                  flush=True)
        if args.metrics_out:
            path = write_metrics_json(args.metrics_out,
                                      registry.snapshot())
            print(f"metrics written to {path}", flush=True)
        if args.prom_out:
            path = write_metrics_prometheus(args.prom_out,
                                            registry.snapshot())
            print(f"prometheus metrics written to {path}", flush=True)
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """Ask a running ingest service for a live analysis answer."""
    from repro.serve import QueryClient, TransportSignal

    host, _, port_text = args.address.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not host or not 0 < port < 65536:
        print(f"expected HOST:PORT, got {args.address!r}",
              file=sys.stderr)
        return 2
    try:
        with QueryClient(host, port, timeout_s=args.timeout) as client:
            envelope = client.query(args.kind)
    except TransportSignal as exc:
        print(f"query failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(envelope, indent=2, sort_keys=True))
        return 0
    watermark = envelope.get("watermark", {})
    print(f"{args.kind} @ {watermark.get('n_records', '?')} records "
          f"({watermark.get('mode', '?')} mode)")
    if envelope.get("skipped_segments"):
        print(f"note: {envelope['skipped_segments']} corrupt "
              "segment(s) skipped; answer is a lower bound",
              file=sys.stderr)
    result = envelope.get("result", {})
    for key in sorted(result):
        value = result[key]
        if isinstance(value, dict):
            print(f"  {key}:")
            for sub in sorted(value):
                print(f"    {sub}: {value[sub]}")
        else:
            print(f"  {key}: {value}")
    return 0


def cmd_scrub(args: argparse.Namespace) -> int:
    """Verify a segment store, classify damage, repair what's possible."""
    from repro.store import SegmentStore

    store = SegmentStore(args.dir)
    report = store.scrub(repair=not args.no_repair)
    if not args.no_repair:
        # Reseal records recovered into the tail so the repaired store
        # is compact again (the WAL already guarantees durability).
        store.flush()
    print(report.render())
    if report.lost_keys:
        print(f"note: {len(report.lost_keys)} record(s) are "
              "unrecoverable; forget their identities at the ingest "
              "layer so devices re-upload them", file=sys.stderr)
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True)
            + "\n"
        )
        print(f"scrub report written to {args.json}")
    if args.strict and not report.ok:
        return 1
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        PackError,
        load_pack,
        resolve_pack_paths,
        run_sweep,
    )

    # Validate every pack up front: a typo in pack 5 must surface
    # before pack 1 burns a single simulated device.
    try:
        paths = resolve_pack_paths(args.packs)
        packs = [load_pack(path) for path in paths]
    except PackError as exc:
        print(f"pack error: {exc}", file=sys.stderr)
        return 2
    print(f"sweep: {len(packs)} pack(s) validated "
          f"({', '.join(pack.name for pack in packs)})", flush=True)

    def say(message: str) -> None:
        print(message, flush=True)

    try:
        result = run_sweep(
            packs, args.out,
            workers=args.workers, shards=args.shards,
            resume=args.resume, progress=say,
        )
    except PackError as exc:
        print(f"pack error: {exc}", file=sys.stderr)
        return 2
    print()
    print(result.table)
    print()
    print(f"sweep complete: {len(result.ran)} ran, "
          f"{len(result.skipped)} skipped; report at "
          f"{result.report_md_path}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.path)
    print(NationwideStudy.analyze(dataset).render())
    _export_analysis(args, dataset)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the SIGCOMM 2021 nationwide "
                    "cellular-reliability study.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    study = commands.add_parser("study", help="run the measurement study")
    _add_common(study)
    study.add_argument("--save", help="write the dataset here "
                                      "(gzip JSON-lines)")
    study.set_defaults(handler=cmd_study)

    ab = commands.add_parser("ab", help="run the A/B enhancement "
                                        "evaluation")
    _add_common(ab)
    ab.set_defaults(handler=cmd_ab)

    timp = commands.add_parser("timp", help="fit and optimize the TIMP "
                                            "recovery trigger")
    _add_common(timp)
    timp.set_defaults(handler=cmd_timp)

    serve = commands.add_parser(
        "serve", help="run the live socket ingest service"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port; 0 picks an ephemeral port "
                            "(printed once bound)")
    serve.add_argument("--queue-capacity", type=_positive_int,
                       default=1024,
                       help="admission queue bound (default 1024)")
    serve.add_argument("--policy", default="reject-newest",
                       choices=("reject-newest", "shed-oldest",
                                "fair-share"),
                       help="overload policy once the queue is full")
    serve.add_argument("--retry-after", type=float, default=5.0,
                       metavar="S",
                       help="base retry-after suggestion on "
                            "backpressure acks (default 5s)")
    serve.add_argument("--read-deadline", type=float, default=30.0,
                       metavar="S",
                       help="per-connection read deadline "
                            "(slow-loris bound, default 30s)")
    serve.add_argument("--max-frame-bytes", type=_positive_int,
                       default=1 << 20,
                       help="largest accepted payload (default 1MiB)")
    serve.add_argument("--max-connections", type=_positive_int,
                       default=256,
                       help="concurrent connection cap (default 256)")
    serve.add_argument("--breaker-threshold", type=_positive_int,
                       default=5,
                       help="consecutive ingest faults that trip the "
                            "circuit breaker (default 5)")
    serve.add_argument("--breaker-reset", type=float, default=30.0,
                       metavar="S",
                       help="open-state hold before a half-open "
                            "probe (default 30s)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="S",
                       help="max wait for the queue to flush on "
                            "SIGTERM (default 30s)")
    serve.add_argument("--store-dir", default=None, metavar="DIR",
                       help="persist accepted records in a durable "
                            "segment store rooted at DIR (WAL + "
                            "checksummed sealed segments; see "
                            "'repro scrub')")
    serve.add_argument("--seal-records", type=_positive_int,
                       default=512,
                       help="records per partition tail before it "
                            "seals into a segment (default 512)")
    serve.add_argument("--disk-chaos", type=float, default=0.0,
                       metavar="RATE",
                       help="inject disk faults (torn writes, bit "
                            "flips, ENOSPC, crash-in-rename) into "
                            "store I/O at RATE per operation "
                            "(default 0: disabled)")
    serve.add_argument("--disk-chaos-seed", type=int, default=0,
                       help="deterministic seed for --disk-chaos")
    serve.add_argument("--analysis-out", default=None, metavar="PATH",
                       help="with --store-dir: write the store's "
                            "folded analysis block as JSON after the "
                            "drain")
    serve.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="write the drain checkpoint here on "
                            "SIGTERM")
    serve.add_argument("--resume", action="store_true",
                       help="restore state from --checkpoint before "
                            "serving")
    serve.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the service metrics snapshot as "
                            "JSON on exit")
    serve.add_argument("--prom-out", default=None, metavar="PATH",
                       help="write the service metrics in Prometheus "
                            "text format on exit")
    serve.set_defaults(handler=cmd_serve)

    query = commands.add_parser(
        "query", help="query a running ingest service live"
    )
    query.add_argument("address", metavar="HOST:PORT",
                       help="address the service printed at startup "
                            "('serving on HOST:PORT')")
    query.add_argument("kind",
                       choices=("stats", "isp_bs", "transitions",
                                "summary"),
                       help="which analysis answer to fetch")
    query.add_argument("--json", action="store_true",
                       help="print the raw response envelope as "
                            "sorted JSON instead of the human "
                            "rendering")
    query.add_argument("--timeout", type=float, default=10.0,
                       metavar="S",
                       help="socket connect/read timeout "
                            "(default 10s)")
    query.set_defaults(handler=cmd_query)

    scrub = commands.add_parser(
        "scrub", help="verify and repair a durable segment store"
    )
    scrub.add_argument("dir", help="segment store root directory")
    scrub.add_argument("--no-repair", action="store_true",
                       help="report findings without touching the "
                            "store (read-only audit)")
    scrub.add_argument("--json", default=None, metavar="PATH",
                       help="write the scrub report as JSON to PATH")
    scrub.add_argument("--strict", action="store_true",
                       help="exit non-zero if any record identity "
                            "was unrecoverable")
    scrub.set_defaults(handler=cmd_scrub)

    sweep = commands.add_parser(
        "sweep", help="run scenario packs and render the landscape"
    )
    sweep.add_argument("packs", nargs="+", metavar="PACK",
                       help="pack files, or directories whose "
                            "*.yaml/*.yml/*.json packs run in sorted "
                            "order (see packs/ and docs/scenarios.md)")
    sweep.add_argument("--out", required=True, metavar="DIR",
                       help="sweep output directory: per-pack results "
                            "and checkpoints under DIR/packs/, the "
                            "landscape report at DIR/landscape.md")
    sweep.add_argument("--resume", action="store_true",
                       help="skip packs already completed in --out "
                            "(byte-identical reuse) and resume the "
                            "in-flight pack from its shard "
                            "checkpoints")
    sweep.add_argument("--workers", type=_positive_int, default=None,
                       help="default worker count per pack (a pack's "
                            "run.workers overrides it)")
    sweep.add_argument("--shards", type=_positive_int, default=None,
                       help="default shard count per pack (a pack's "
                            "run.shards overrides it)")
    sweep.set_defaults(handler=cmd_sweep)

    analyze = commands.add_parser("analyze",
                                  help="analyze a saved dataset")
    analyze.add_argument("path")
    analyze.add_argument("--analysis-out", default=None, metavar="PATH",
                        help="write the dataset's analysis block "
                             "(recomputed if the file predates it) "
                             "as JSON to PATH")
    analyze.set_defaults(handler=cmd_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if (getattr(args, "resume", False)
            and hasattr(args, "checkpoint_dir")
            and not args.checkpoint_dir):
        parser.error("--resume requires --checkpoint-dir")
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
