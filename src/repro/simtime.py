"""Virtual time for the simulated world.

Every component in this library that needs "now" receives a
:class:`SimClock` instead of reading the wall clock, so a whole nationwide
study is deterministic and runs as fast as the CPU allows.  The clock is
deliberately minimal: a monotonically non-decreasing float of seconds since
the start of the simulated measurement period.
"""

from __future__ import annotations


class SimClock:
    """A monotonic virtual clock measured in seconds.

    >>> clock = SimClock()
    >>> clock.now()
    0.0
    >>> clock.advance(1.5)
    >>> clock.now()
    1.5
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before t=0")
        self._now = float(start)

    def now(self) -> float:
        """Return the current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError("time cannot go backwards")
        self._now += seconds

    def advance_to(self, timestamp: float) -> None:
        """Jump to an absolute timestamp at or after the current time."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot rewind clock from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.3f}s)"


SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86_400.0
#: An average month, used for converting the 8-month study span.
SECONDS_PER_MONTH = 30.44 * SECONDS_PER_DAY
