"""Radio-layer substrate: RATs, signal propagation, the modem command
surface that generates DataFailCause codes, and a data-rate model."""

from repro.radio.rat import RAT, Generation
from repro.radio.propagation import PropagationModel
from repro.radio.modem import Modem, ModemResponse, SetupOutcome
from repro.radio.throughput import expected_data_rate_mbps

__all__ = [
    "RAT",
    "Generation",
    "PropagationModel",
    "Modem",
    "ModemResponse",
    "SetupOutcome",
    "expected_data_rate_mbps",
]
