"""Expected data rate by RAT and signal level.

The Stability-Compatible RAT Transition argument (Sec. 4.2) relies on one
empirical fact: a 5G connection at level-0 signal almost always provides a
*lower* data rate than the 4G connection it replaced (>95% of trials in
the paper's benchmark on four 5G phones).  This module provides a simple
Shannon-flavoured rate model whose shape delivers that fact: peak rates
follow the generation (10 Gbps-class NR down to 2G EDGE-class), scaled by
a per-level spectral-efficiency factor that collapses at level 0.
"""

from __future__ import annotations

import random

from repro.core.signal import SignalLevel
from repro.radio.rat import RAT

#: Peak achievable rate (Mbps) at excellent signal, by RAT (Sec. 1 quotes
#: 10 Gbps for 5G and ~100x less for 4G).
_PEAK_RATE_MBPS = {
    RAT.GSM: 0.3,
    RAT.UMTS: 8.0,
    RAT.LTE: 100.0,
    RAT.NR: 10_000.0,
}

#: Fraction of peak rate available at each signal level.  The level-0
#: entry is the load-bearing one: with essentially no usable signal the
#: achievable rate collapses regardless of the RAT's nominal peak.
_LEVEL_EFFICIENCY = {
    SignalLevel.LEVEL_0: 0.0005,
    SignalLevel.LEVEL_1: 0.05,
    SignalLevel.LEVEL_2: 0.15,
    SignalLevel.LEVEL_3: 0.35,
    SignalLevel.LEVEL_4: 0.65,
    SignalLevel.LEVEL_5: 1.0,
}


def expected_data_rate_mbps(rat: RAT, level: SignalLevel) -> float:
    """Mean achievable downlink rate for ``rat`` at ``level``."""
    return _PEAK_RATE_MBPS[rat] * _LEVEL_EFFICIENCY[level]


def sample_data_rate_mbps(
    rat: RAT, level: SignalLevel, rng: random.Random
) -> float:
    """One noisy rate measurement (log-uniform factor of ~2 around mean)."""
    mean = expected_data_rate_mbps(rat, level)
    return mean * (2.0 ** rng.uniform(-1.0, 1.0))


def transition_increases_rate(
    from_rat: RAT,
    from_level: SignalLevel,
    to_rat: RAT,
    to_level: SignalLevel,
) -> bool:
    """Whether a RAT transition is expected to raise the data rate.

    This is the check the stability-compatible policy uses to argue a
    veto has no data-rate side effect (Sec. 4.2).
    """
    return expected_data_rate_mbps(to_rat, to_level) > expected_data_rate_mbps(
        from_rat, from_level
    )
