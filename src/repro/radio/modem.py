"""The modem / radio-interface-layer (RIL) command surface.

Android's telephony stack never sees the network directly: every data-call
setup, teardown, re-registration, or radio restart goes through modem
commands, and every failure surfaces as a ``DataFailCause`` error code
derived either from the network's response to the setup negotiation or
from the return value of the command itself (Sec. 2.1).  This module
reproduces that boundary.

The modem is deliberately network-agnostic: it talks to any object with an
``admit_bearer(rat, signal_level, rng)`` method (our
:class:`repro.network.basestation.BaseStation`), so the Android substrate
above it can be unit-tested against scripted stand-ins.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.core.errorcodes import ERROR_CODE_REGISTRY
from repro.core.signal import SignalLevel
from repro.radio.rat import RAT


class SetupOutcome(enum.Enum):
    """High-level result of a data-call setup attempt."""

    SUCCESS = "SUCCESS"
    #: The network answered the negotiation with a rejection.
    REJECTED = "REJECTED"
    #: The negotiation received no (timely) answer.
    TIMEOUT = "TIMEOUT"
    #: The modem itself failed before reaching the network.
    MODEM_ERROR = "MODEM_ERROR"


@dataclass(frozen=True)
class ModemResponse:
    """What a modem command returns to the telephony stack."""

    outcome: SetupOutcome
    #: DataFailCause name when the outcome is not SUCCESS.
    cause: str | None = None
    #: Virtual seconds the command took.
    latency_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.outcome is SetupOutcome.SUCCESS

    def __post_init__(self) -> None:
        if self.ok and self.cause is not None:
            raise ValueError("successful response cannot carry a cause")
        if not self.ok:
            if self.cause is None:
                raise ValueError("failed response must carry a cause")
            if self.cause not in ERROR_CODE_REGISTRY:
                raise ValueError(f"unknown DataFailCause: {self.cause}")


#: Causes raised by the modem itself (not the network), with relative odds.
_MODEM_INTERNAL_CAUSES: tuple[tuple[str, float], ...] = (
    ("MODEM_RESTART", 0.35),
    ("INVALID_CONNECTION_ID", 0.20),
    ("INTERFACE_IN_USE", 0.20),
    ("ACCESS_ATTEMPT_ALREADY_IN_PROGRESS", 0.15),
    ("THERMAL_EMERGENCY", 0.10),
)

#: Baseline setup-negotiation latency in seconds by RAT; 5G NR control
#: procedures complete faster.
_SETUP_LATENCY_S = {
    RAT.GSM: 2.5,
    RAT.UMTS: 1.8,
    RAT.LTE: 0.6,
    RAT.NR: 0.3,
}


class Modem:
    """A device's cellular modem.

    Parameters
    ----------
    supported_rats:
        RATs this modem can use (5G phones include :data:`RAT.NR`).
    rng:
        Deterministic randomness source for latency jitter and
        modem-internal failures.
    internal_error_rate:
        Probability that a setup command fails inside the modem before
        any network negotiation happens.
    """

    def __init__(
        self,
        supported_rats: frozenset[RAT] | set[RAT],
        rng: random.Random,
        internal_error_rate: float = 0.002,
        deep_fade_timeout_rate: float = 0.5,
    ) -> None:
        if not supported_rats:
            raise ValueError("a modem must support at least one RAT")
        self.supported_rats = frozenset(supported_rats)
        self._rng = rng
        self._internal_error_rate = internal_error_rate
        self._deep_fade_timeout_rate = deep_fade_timeout_rate
        self.radio_on = True
        #: Count of radio restarts (stage-3 recovery operations).
        self.restart_count = 0

    # -- commands ----------------------------------------------------------

    def setup_data_call(
        self,
        base_station,
        rat: RAT,
        signal_level: SignalLevel,
    ) -> ModemResponse:
        """Negotiate a data bearer with ``base_station`` over ``rat``.

        ``base_station`` must expose ``admit_bearer(rat, signal_level,
        rng) -> str | None`` returning ``None`` on admission or a
        DataFailCause name on rejection.
        """
        latency = self._latency(rat)
        if not self.radio_on:
            return ModemResponse(
                SetupOutcome.MODEM_ERROR, "RADIO_POWER_OFF", latency
            )
        if rat not in self.supported_rats:
            return ModemResponse(
                SetupOutcome.MODEM_ERROR, "FEATURE_NOT_SUPP", latency
            )
        if self._rng.random() < self._internal_error_rate:
            cause = self._pick_internal_cause()
            return ModemResponse(SetupOutcome.MODEM_ERROR, cause, latency)
        if signal_level is SignalLevel.LEVEL_0:
            # Deep fade: the negotiation request may never be answered.
            if self._rng.random() < self._deep_fade_timeout_rate:
                return ModemResponse(
                    SetupOutcome.TIMEOUT, "SIGNAL_LOST", latency + 1.0
                )
        cause = base_station.admit_bearer(rat, signal_level, self._rng)
        if cause is None:
            return ModemResponse(SetupOutcome.SUCCESS, None, latency)
        return ModemResponse(SetupOutcome.REJECTED, cause, latency)

    def teardown_data_call(self) -> ModemResponse:
        """Release the current bearer (always succeeds locally)."""
        return ModemResponse(SetupOutcome.SUCCESS, None, 0.1)

    def restart_radio(self) -> float:
        """Power-cycle the radio (stage-3 recovery).  Returns seconds."""
        self.restart_count += 1
        self.radio_on = True
        return 12.0 + self._rng.uniform(0.0, 6.0)

    def power_off(self) -> None:
        self.radio_on = False

    def power_on(self) -> None:
        self.radio_on = True

    # -- internals -----------------------------------------------------------

    def _latency(self, rat: RAT) -> float:
        base = _SETUP_LATENCY_S[rat]
        return base * self._rng.uniform(0.8, 1.6)

    def _pick_internal_cause(self) -> str:
        roll = self._rng.random()
        cumulative = 0.0
        for name, weight in _MODEM_INTERNAL_CAUSES:
            cumulative += weight
            if roll < cumulative:
                return name
        return _MODEM_INTERNAL_CAUSES[-1][0]
