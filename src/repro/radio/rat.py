"""Radio access technologies (RATs) and their generations.

The study spans 2G through 5G base stations (Sec. 3.3).  We model one
canonical RAT per generation — GSM, UMTS, LTE, NR — which matches the
granularity of every figure in the paper (all RAT-keyed results are by
generation, e.g. "4G" in Figs. 14-17).
"""

from __future__ import annotations

import enum


class Generation(enum.IntEnum):
    """Cellular generation, ordered so comparisons mean newer/older."""

    G2 = 2
    G3 = 3
    G4 = 4
    G5 = 5

    @property
    def label(self) -> str:
        """The paper's display label, e.g. ``"4G"``."""
        return f"{int(self)}G"


class RAT(enum.Enum):
    """Canonical radio access technology per generation."""

    GSM = "GSM"  # 2G
    UMTS = "UMTS"  # 3G
    LTE = "LTE"  # 4G
    NR = "NR"  # 5G

    @property
    def generation(self) -> Generation:
        return _GENERATION[self]

    @property
    def label(self) -> str:
        """Display label used in tables/figures (``2G``..``5G``)."""
        return self.generation.label

    @classmethod
    def from_generation(cls, generation: Generation) -> "RAT":
        return _BY_GENERATION[generation]

    @classmethod
    def from_label(cls, label: str) -> "RAT":
        """Parse a ``"4G"``-style label."""
        for rat, gen in _GENERATION.items():
            if gen.label == label:
                return rat
        raise ValueError(f"unknown RAT label: {label!r}")


_GENERATION: dict[RAT, Generation] = {
    RAT.GSM: Generation.G2,
    RAT.UMTS: Generation.G3,
    RAT.LTE: Generation.G4,
    RAT.NR: Generation.G5,
}

_BY_GENERATION: dict[Generation, RAT] = {
    gen: rat for rat, gen in _GENERATION.items()
}

#: All RATs from oldest to newest generation.
ALL_RATS: tuple[RAT, ...] = (RAT.GSM, RAT.UMTS, RAT.LTE, RAT.NR)

# ---------------------------------------------------------------------------
# Integer coding (batch engine support)
# ---------------------------------------------------------------------------
#
# The vectorized fleet engine (:mod:`repro.fleet.batch`) carries RATs as
# small integer codes inside numpy arrays.  The canonical coding is the
# index into :data:`ALL_RATS` — generation order, so "newest candidate"
# comparisons are plain integer maxima, and the code-sorted label table
# coincides with the ``sorted(set(...))`` category tables the columnar
# layer builds (labels "2G" < "3G" < "4G" < "5G").

#: RAT -> integer code (index into :data:`ALL_RATS`).
RAT_CODES: dict[RAT, int] = {rat: code for code, rat in enumerate(ALL_RATS)}

#: Display labels by code: ``("2G", "3G", "4G", "5G")``.
RAT_LABELS: tuple[str, ...] = tuple(rat.label for rat in ALL_RATS)

#: Generation numbers by code: ``(2, 3, 4, 5)``.
RAT_GENERATIONS: tuple[int, ...] = tuple(
    int(rat.generation) for rat in ALL_RATS
)


def rat_code(rat: RAT) -> int:
    """The canonical integer code of ``rat`` (generation order)."""
    return RAT_CODES[rat]


def rat_from_code(code: int) -> RAT:
    """Invert :func:`rat_code`."""
    return ALL_RATS[code]
