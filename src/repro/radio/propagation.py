"""Signal propagation: distance + environment -> dBm -> Android level.

A log-distance path-loss model with log-normal shadowing is the standard
first-order model for cellular coverage.  It only needs to be right in
*shape*: RSS falls off with distance, higher frequencies (ISP-B's bands,
5G NR) attenuate faster, and devices parked next to a densely-deployed
hub BS see level-5 signal.  Those are exactly the properties the paper's
ISP/RSS findings rest on (Sec. 3.3).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

import numpy as np

from repro.core.signal import SignalLevel, dbm_to_level, level_bounds
from repro.radio.rat import ALL_RATS, RAT

#: Reference transmit power at 1 m, dBm, by RAT.  NR cells are typically
#: deployed at lower effective range for the same power budget.
_TX_POWER_DBM = {
    RAT.GSM: -20.0,
    RAT.UMTS: -24.0,
    RAT.LTE: -28.0,
    RAT.NR: -30.0,
}

#: Path-loss exponents by RAT; mmWave-adjacent NR decays fastest.
_PATH_LOSS_EXPONENT = {
    RAT.GSM: 2.6,
    RAT.UMTS: 2.9,
    RAT.LTE: 3.0,
    RAT.NR: 3.4,
}


@dataclass(frozen=True)
class PropagationModel:
    """Log-distance path loss with log-normal shadowing.

    ``frequency_penalty_db`` shifts the whole curve down for carriers on
    higher frequency bands (the paper attributes ISP-B's worse coverage
    to its higher radio frequency, Sec. 3.3).
    """

    shadowing_sigma_db: float = 6.0
    frequency_penalty_db: float = 0.0

    def rss_dbm(
        self,
        rat: RAT,
        distance_m: float,
        rng: random.Random | None = None,
    ) -> float:
        """Mean (or shadowed, when ``rng`` given) RSS at ``distance_m``."""
        if distance_m <= 0:
            raise ValueError("distance must be positive")
        exponent = _PATH_LOSS_EXPONENT[rat]
        path_loss_db = 10.0 * exponent * math.log10(max(distance_m, 1.0))
        rss = _TX_POWER_DBM[rat] - path_loss_db - self.frequency_penalty_db
        if rng is not None and self.shadowing_sigma_db > 0:
            rss += rng.gauss(0.0, self.shadowing_sigma_db)
        return rss

    def signal_level(
        self,
        rat: RAT,
        distance_m: float,
        rng: random.Random | None = None,
    ) -> SignalLevel:
        """Android signal level at ``distance_m`` from the BS."""
        return dbm_to_level(rat, self.rss_dbm(rat, distance_m, rng))

    def coverage_radius_m(self, rat: RAT, min_dbm: float = -110.0) -> float:
        """Distance at which mean RSS drops to ``min_dbm`` (no shadowing)."""
        exponent = _PATH_LOSS_EXPONENT[rat]
        tx = _TX_POWER_DBM[rat] - self.frequency_penalty_db
        return 10.0 ** ((tx - min_dbm) / (10.0 * exponent))

    # -- batch (vectorized) API ---------------------------------------------

    def rss_dbm_batch(
        self,
        rat_codes: np.ndarray,
        distance_m: np.ndarray,
        shadowing_z: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`rss_dbm` over parallel arrays.

        ``rat_codes`` are :func:`repro.radio.rat.rat_code` integers;
        ``shadowing_z`` (optional) are standard-normal draws scaled by
        ``shadowing_sigma_db`` — the batch engine supplies its own
        counter-based normals instead of a stateful ``random.Random``.
        """
        distance = np.asarray(distance_m, dtype=np.float64)
        if np.any(distance <= 0):
            raise ValueError("distance must be positive")
        codes = np.asarray(rat_codes, dtype=np.int64)
        path_loss_db = (10.0 * _EXPONENT_BY_CODE[codes]
                        * np.log10(np.maximum(distance, 1.0)))
        rss = (_TX_POWER_BY_CODE[codes] - path_loss_db
               - self.frequency_penalty_db)
        if shadowing_z is not None and self.shadowing_sigma_db > 0:
            rss = rss + self.shadowing_sigma_db * np.asarray(
                shadowing_z, dtype=np.float64
            )
        return rss

    def signal_level_batch(
        self,
        rat_codes: np.ndarray,
        distance_m: np.ndarray,
        shadowing_z: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`signal_level`; returns int64 levels 0..5."""
        return dbm_to_level_batch(
            rat_codes, self.rss_dbm_batch(rat_codes, distance_m,
                                          shadowing_z)
        )


#: Per-code constant tables for the batch API (index = rat_code).
_TX_POWER_BY_CODE = np.array(
    [_TX_POWER_DBM[rat] for rat in ALL_RATS], dtype=np.float64
)
_EXPONENT_BY_CODE = np.array(
    [_PATH_LOSS_EXPONENT[rat] for rat in ALL_RATS], dtype=np.float64
)
#: Level thresholds stacked by rat code, shape (4, 5).
_LEVEL_BOUNDS_BY_CODE = np.array(
    [level_bounds(rat) for rat in ALL_RATS], dtype=np.float64
)


def dbm_to_level_batch(rat_codes: np.ndarray,
                       dbm: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.core.signal.dbm_to_level`.

    Counts, per element, how many of the RAT's ascending thresholds the
    reading meets — identical to the scalar loop, one comparison matrix
    instead of a Python loop per reading.
    """
    codes = np.asarray(rat_codes, dtype=np.int64)
    values = np.asarray(dbm, dtype=np.float64)
    bounds = _LEVEL_BOUNDS_BY_CODE[codes]
    return (values[..., None] >= bounds).sum(axis=-1).astype(np.int64)
