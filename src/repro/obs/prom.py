"""Prometheus text exposition for registry snapshots.

:func:`to_prometheus` renders a snapshot in the Prometheus text format
(v0.0.4): counters and gauges as-is, histograms with the conventional
cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` series, and span
timings as a ``repro_span_seconds`` summary (plus a
``repro_span_seconds_max`` gauge, which the exposition format has no
native slot for).  Floats are rendered with ``repr`` so they survive a
parse round-trip bit-exact.

:func:`parse_prometheus` inverts the rendering for *our own output*
(it is a scrape-format reader for snapshots, not a general Prometheus
client) — it exists so tests can assert the exposition loses nothing.
"""

from __future__ import annotations

from repro.obs.registry import SUM_SCALE, empty_snapshot, split_key


def _fmt(value) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        raise TypeError("bool is not a metric value")
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _family(key: str) -> str:
    return key.partition("{")[0]


def _with_label(key: str, label: str, value: str) -> str:
    """Append one label to an exported key string."""
    name, items = split_key(key)
    items = items + ((label, value),)
    inner = ",".join(f'{k}="{v}"' for k, v in items)
    return f"{name}{{{inner}}}"


def to_prometheus(snapshot: dict) -> str:
    """Render a snapshot (full or deterministic) as Prometheus text."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def declare(family: str, kind: str) -> None:
        if family not in seen_types:
            seen_types.add(family)
            lines.append(f"# TYPE {family} {kind}")

    for key, value in snapshot.get("counters", {}).items():
        declare(_family(key), "counter")
        lines.append(f"{key} {_fmt(int(value))}")

    for key, value in snapshot.get("gauges", {}).items():
        declare(_family(key), "gauge")
        lines.append(f"{key} {_fmt(float(value))}")

    for key, data in snapshot.get("histograms", {}).items():
        name, items = split_key(key)
        declare(name, "histogram")
        cumulative = 0
        for bound, count in zip(data["bounds"], data["counts"]):
            cumulative += count
            bucket = _with_label(f"{name}_bucket" + key[len(name):],
                                 "le", _fmt(float(bound)))
            lines.append(f"{bucket} {cumulative}")
        bucket = _with_label(f"{name}_bucket" + key[len(name):],
                             "le", "+Inf")
        lines.append(f"{bucket} {data['count']}")
        suffix = key[len(name):]
        lines.append(f"{name}_sum{suffix} {_fmt(float(data['sum']))}")
        lines.append(f"{name}_count{suffix} {data['count']}")

    spans = snapshot.get("spans", {})
    if spans:
        declare("repro_span_seconds", "summary")
        declare("repro_span_seconds_max", "gauge")
        for path, stats in spans.items():
            label = f'{{span="{path}"}}'
            lines.append(
                f"repro_span_seconds_count{label} {stats['count']}"
            )
            lines.append(
                f"repro_span_seconds_sum{label} "
                f"{_fmt(float(stats['total_s']))}"
            )
            lines.append(
                f"repro_span_seconds_max{label} "
                f"{_fmt(float(stats['max_s']))}"
            )
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict:
    """Parse :func:`to_prometheus` output back into a snapshot dict.

    Histogram ``sum_scaled`` is reconstructed from the exposed float
    sum — exact, because the float was itself derived from the scaled
    integer and ``repr`` round-trips doubles.
    """
    kinds: dict[str, str] = {}
    samples: list[tuple[str, str]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            family, kind = line[len("# TYPE "):].rsplit(" ", 1)
            kinds[family] = kind
            continue
        if line.startswith("#"):
            continue
        metric, _, value = line.rpartition(" ")
        samples.append((metric, value))

    snapshot = empty_snapshot()
    spans: dict[str, dict] = {}
    # family -> exported histogram key -> ordered (le, cumulative)
    buckets: dict[str, list[tuple[str, int]]] = {}
    hist_meta: dict[str, dict] = {}

    for metric, value in samples:
        name, items = split_key(metric)
        if name == "repro_span_seconds_count":
            path = dict(items)["span"]
            spans.setdefault(path, {})["count"] = int(value)
            continue
        if name == "repro_span_seconds_sum":
            path = dict(items)["span"]
            spans.setdefault(path, {})["total_s"] = float(value)
            continue
        if name == "repro_span_seconds_max":
            path = dict(items)["span"]
            spans.setdefault(path, {})["max_s"] = float(value)
            continue
        for suffix, role in (("_bucket", "bucket"), ("_sum", "sum"),
                             ("_count", "count")):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and kinds.get(base) == "histogram":
                rest = tuple(kv for kv in items if kv[0] != "le")
                inner = ",".join(f'{k}="{v}"' for k, v in rest)
                key = f"{base}{{{inner}}}" if inner else base
                if role == "bucket":
                    le = dict(items)["le"]
                    buckets.setdefault(key, []).append((le, int(value)))
                else:
                    hist_meta.setdefault(key, {})[role] = value
                break
        else:
            if kinds.get(name) == "counter":
                snapshot["counters"][metric] = int(value)
            elif kinds.get(name) == "gauge":
                snapshot["gauges"][metric] = float(value)
            else:
                raise ValueError(f"undeclared metric {metric!r}")

    for key, series in buckets.items():
        bounds = [float(le) for le, _ in series if le != "+Inf"]
        cumulative = [count for _, count in series]
        counts = [cumulative[0]] + [
            b - a for a, b in zip(cumulative, cumulative[1:])
        ]
        total = float(hist_meta[key]["sum"])
        snapshot["histograms"][key] = {
            "bounds": bounds,
            "counts": counts,
            "count": int(hist_meta[key]["count"]),
            "sum_scaled": int(round(total * SUM_SCALE)),
            "sum": total,
        }
    if spans:
        snapshot["spans"] = dict(sorted(spans.items()))
    return snapshot
