"""The metrics registry: counters, gauges, histograms, phase spans.

Zero-dependency observability primitives for the whole reproduction,
designed around one hard requirement: **a sharded run's metrics must
merge into exactly the serial run's** (the same discipline
``repro.parallel.merge`` applies to records).  That shapes every type:

* **counters** are integers incremented by integers — integer addition
  is exact, commutative, and associative, so per-shard counts sum to
  the serial count no matter the merge order;
* **gauges** are high-watermark values (``gauge_set`` keeps the max) —
  ``max`` is commutative and associative where "last write wins" is
  neither;
* **histograms** have *fixed bucket boundaries* chosen at first
  observation and enforced on merge, with integer bucket counts and a
  value sum accumulated in **scaled integer micro-units**
  (:data:`SUM_SCALE`) — float addition is order-sensitive in the last
  ulp, which would break byte-identity between a serial run (one
  accumulation order) and a sharded run (per-shard sums then a merge);
* **spans** (``with registry.span("simulate.device")``) nest via a
  path stack and aggregate wall-clock timings per path.  Span timings
  are *deliberately excluded* from the deterministic snapshot — wall
  time differs run to run — and surface in
  ``Dataset.metadata["execution"]["spans"]`` instead.

The default registry is :data:`NULL_REGISTRY`, a no-op whose methods
cost one attribute lookup and a ``pass`` — instrumentation stays in
the hot paths permanently and costs nothing until a run opts in
(``ScenarioConfig(metrics=True)`` / CLI ``--metrics-out``).
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left

#: Histogram value sums are accumulated as ``int(round(v * SUM_SCALE))``
#: so shard merges are exact (micro-unit resolution).
SUM_SCALE = 10**6

#: Default bucket bounds (seconds) for failure / stall durations.  The
#: paper's durations span sub-minute stalls to multi-hour outages.
DURATION_BUCKETS_S = (
    1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0,
    1200.0, 3600.0, 7200.0, 21600.0, 86400.0,
)

#: Bucket bounds for per-device event counts.
EVENT_COUNT_BUCKETS = (
    0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
)

#: Bucket bounds for recovery stages executed per stall episode.
STAGE_COUNT_BUCKETS = (0.0, 1.0, 2.0, 3.0, 5.0, 10.0, 25.0, 75.0)

#: Bucket bounds (seconds) for service-side stage latencies (queue
#: wait, ingest) — sub-millisecond to the drain-timeout scale.
LATENCY_BUCKETS_S = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0,
)


def _label_key(name: str, labels: dict) -> tuple:
    """Internal dict key: cheap tuple, no string building on hot paths."""
    if not labels:
        return (name, ())
    return (name, tuple(sorted(labels.items())))


def counter_key(name: str, **labels) -> tuple:
    """Precompute a counter key for :meth:`MetricsRegistry.inc_key`.

    Hot call sites (per state-machine transition, per failure record)
    build their keys once at module scope or in a small cache instead
    of paying kwargs + sort on every increment.
    """
    return _label_key(name, labels)


def render_key(name: str, label_items: tuple) -> str:
    """The canonical exported key: ``name`` or ``name{k="v",...}``."""
    if not label_items:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in label_items)
    return f"{name}{{{inner}}}"


def split_key(key: str) -> tuple[str, tuple]:
    """Invert :func:`render_key` (labels as a sorted item tuple)."""
    if "{" not in key:
        return key, ()
    name, _, rest = key.partition("{")
    body = rest.rstrip("}")
    items = []
    for part in body.split(","):
        label, _, value = part.partition("=")
        items.append((label, value.strip('"')))
    return name, tuple(items)


class _Histogram:
    """Fixed-boundary histogram with exact (integer) accumulation."""

    __slots__ = ("bounds", "bounds_source", "counts", "count",
                 "sum_scaled")

    def __init__(self, bounds: tuple) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(
                "histogram bounds must be strictly increasing"
            )
        # The object callers passed, kept for an identity fast path:
        # re-observing with the same module-level bucket constant skips
        # the per-call bounds comparison entirely.
        self.bounds_source = bounds
        self.bounds = tuple(float(b) for b in bounds)
        # counts[i] observes bounds[i-1] < v <= bounds[i]; the final
        # slot is the +Inf bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum_scaled = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum_scaled += int(round(value * SUM_SCALE))

    def observe_many(self, values) -> None:
        """Bulk :meth:`observe` over an array of values.

        Exactly equivalent to observing each value in turn —
        ``searchsorted(side="left")`` is ``bisect_left`` and
        ``np.rint`` rounds half-to-even like :func:`round` — but one
        vector pass instead of a Python loop per value.  Used by the
        batch fleet engine (:mod:`repro.fleet.batch`).
        """
        import numpy as np

        arr = np.asarray(values, dtype=np.float64)
        if not arr.size:
            return
        slots = np.searchsorted(self.bounds, arr, side="left")
        for slot, n in zip(*np.unique(slots, return_counts=True)):
            self.counts[slot] += int(n)
        self.count += arr.size
        self.sum_scaled += int(
            np.rint(arr * SUM_SCALE).astype(np.int64).sum()
        )

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum_scaled": self.sum_scaled,
            "sum": self.sum_scaled / SUM_SCALE,
        }


class _Span:
    """One live span; aggregates into the registry on exit."""

    __slots__ = ("_registry", "_name", "_path", "_started")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Span":
        stack = self._registry._span_stack
        stack.append(self._name)
        self._path = "/".join(stack)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._started
        self._registry._span_stack.pop()
        spans = self._registry._spans
        stats = spans.get(self._path)
        if stats is None:
            spans[self._path] = [1, elapsed, elapsed]
        else:
            stats[0] += 1
            stats[1] += elapsed
            if elapsed > stats[2]:
                stats[2] = elapsed
        return False


class _NullSpan:
    """A reusable, reentrant no-op span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def empty_snapshot() -> dict:
    return {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}}


class NullRegistry:
    """The default registry: every operation is a no-op.

    Kept deliberately method-compatible with :class:`MetricsRegistry`
    so instrumented code never branches; ``enabled`` lets per-record
    loops skip label construction entirely when it matters.
    """

    enabled = False

    def inc(self, name: str, amount: int = 1, **labels) -> None:
        pass

    def inc_key(self, key: tuple, amount: int = 1) -> None:
        pass

    def gauge_set(self, name: str, value: float, **labels) -> None:
        pass

    def gauge_level(self, name: str, value: float, **labels) -> None:
        pass

    def observe(self, name: str, value: float, buckets=None,
                **labels) -> None:
        pass

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def snapshot(self) -> dict:
        return empty_snapshot()

    def deterministic_snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def span_timings(self) -> dict:
        return {}


#: The process-wide default (see :mod:`repro.obs` for the context API).
NULL_REGISTRY = NullRegistry()


class MetricsRegistry:
    """A live registry collecting counters, gauges, histograms, spans."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[tuple, int] = {}
        self._gauges: dict[tuple, float] = {}
        self._histograms: dict[tuple, _Histogram] = {}
        self._spans: dict[str, list] = {}
        self._span_stack: list[str] = []

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, amount: int = 1, **labels) -> None:
        """Add ``amount`` (a non-negative integer) to a counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        amount = int(amount)
        key = _label_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + amount

    def inc_key(self, key: tuple, amount: int = 1) -> None:
        """Fast-path increment by a :func:`counter_key` tuple."""
        self._counters[key] = self._counters.get(key, 0) + amount

    def gauge_set(self, name: str, value: float, **labels) -> None:
        """Record a gauge observation (high-watermark: max wins)."""
        value = float(value)
        key = _label_key(name, labels)
        current = self._gauges.get(key)
        if current is None or value > current:
            self._gauges[key] = value

    def gauge_level(self, name: str, value: float, **labels) -> None:
        """Record a point-in-time *level* gauge (last write wins).

        For quantities that genuinely fall — active connections, queue
        occupancy after a drain.  Snapshot merges still take the max
        (the highest concurrent level across shards), which is the
        only associative reading of "current level" a merge can have;
        within one registry the exported value is the latest write,
        not the peak.
        """
        self._gauges[_label_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, buckets=None,
                **labels) -> None:
        """Add one observation to a fixed-boundary histogram.

        ``buckets`` fixes the boundaries on first use; later calls may
        omit it but must not disagree (exact shard merges depend on
        every registry using identical bounds for a given metric).
        """
        key = _label_key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = _Histogram(buckets or DURATION_BUCKETS_S)
            self._histograms[key] = histogram
        elif (buckets is not None
              and buckets is not histogram.bounds_source
              and tuple(float(b) for b in buckets) != histogram.bounds):
            raise ValueError(
                f"histogram {render_key(*key)} bounds changed mid-run"
            )
        histogram.observe(float(value))

    def get_histogram(self, name: str, buckets=None, **labels):
        """The live histogram object, for tight observation loops.

        Creates it on first use (like :meth:`observe`); callers then
        call ``.observe(value)`` directly, skipping key construction
        per observation.
        """
        key = _label_key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = _Histogram(buckets or DURATION_BUCKETS_S)
            self._histograms[key] = histogram
        return histogram

    def span(self, name: str) -> _Span:
        """A context manager timing one phase; nests via the path stack."""
        return _Span(self, name)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> dict:
        """The full JSON-able snapshot (spans included)."""
        return {
            "counters": {
                render_key(*key): value
                for key, value in sorted(self._counters.items())
            },
            "gauges": {
                render_key(*key): value
                for key, value in sorted(self._gauges.items())
            },
            "histograms": {
                render_key(*key): histogram.to_dict()
                for key, histogram in sorted(self._histograms.items())
            },
            "spans": self.span_timings(),
        }

    def deterministic_snapshot(self) -> dict:
        """The shard-merge-exact part (no wall-clock span timings).

        This is what lands in ``Dataset.metadata["metrics"]`` and what
        the byte-identity guarantee covers.
        """
        snapshot = self.snapshot()
        del snapshot["spans"]
        return snapshot

    def span_timings(self) -> dict:
        """Aggregated span timings: path -> count / total_s / max_s."""
        return {
            path: {"count": stats[0], "total_s": stats[1],
                   "max_s": stats[2]}
            for path, stats in sorted(self._spans.items())
        }


class ThreadSafeRegistry(MetricsRegistry):
    """A :class:`MetricsRegistry` safe for concurrent recorders.

    The base registry's read-modify-write updates race under free
    threading; single-threaded hot loops (the simulator) keep the
    lock-free base class, while multi-threaded recorders — the live
    ingest service's handler/worker threads — use this variant.  Spans
    stay thread-*unaware* (the path stack is meaningless across
    threads), so only the counter/gauge/histogram surface is locked.
    """

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()

    def inc(self, name: str, amount: int = 1, **labels) -> None:
        with self._lock:
            super().inc(name, amount, **labels)

    def inc_key(self, key: tuple, amount: int = 1) -> None:
        with self._lock:
            super().inc_key(key, amount)

    def gauge_set(self, name: str, value: float, **labels) -> None:
        with self._lock:
            super().gauge_set(name, value, **labels)

    def gauge_level(self, name: str, value: float, **labels) -> None:
        with self._lock:
            super().gauge_level(name, value, **labels)

    def observe(self, name: str, value: float, buckets=None,
                **labels) -> None:
        with self._lock:
            super().observe(name, value, buckets, **labels)

    def snapshot(self) -> dict:
        with self._lock:
            return super().snapshot()


# ---------------------------------------------------------------------------
# snapshot merging
# ---------------------------------------------------------------------------


class MetricsMergeError(ValueError):
    """Snapshots disagree structurally (e.g. histogram bounds)."""


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Fold snapshots into one, commutatively and associatively.

    Counters and histogram bucket counts / scaled sums are integer
    sums; gauges take the max; span aggregates sum counts and totals
    and take the max of maxima.  Histograms with mismatched bounds
    raise :class:`MetricsMergeError` — silently mixing bucketings
    would produce a histogram that describes neither run.
    """
    merged = empty_snapshot()
    for snapshot in snapshots:
        for key, value in snapshot.get("counters", {}).items():
            merged["counters"][key] = (
                merged["counters"].get(key, 0) + value
            )
        for key, value in snapshot.get("gauges", {}).items():
            current = merged["gauges"].get(key)
            if current is None or value > current:
                merged["gauges"][key] = value
        for key, data in snapshot.get("histograms", {}).items():
            current = merged["histograms"].get(key)
            if current is None:
                merged["histograms"][key] = {
                    "bounds": list(data["bounds"]),
                    "counts": list(data["counts"]),
                    "count": data["count"],
                    "sum_scaled": data["sum_scaled"],
                    "sum": data["sum_scaled"] / SUM_SCALE,
                }
                continue
            if list(data["bounds"]) != current["bounds"]:
                raise MetricsMergeError(
                    f"histogram {key} bucket bounds differ across "
                    "snapshots"
                )
            current["counts"] = [
                a + b for a, b in zip(current["counts"], data["counts"])
            ]
            current["count"] += data["count"]
            current["sum_scaled"] += data["sum_scaled"]
            current["sum"] = current["sum_scaled"] / SUM_SCALE
        for path, stats in snapshot.get("spans", {}).items():
            current = merged["spans"].get(path)
            if current is None:
                merged["spans"][path] = dict(stats)
            else:
                current["count"] += stats["count"]
                current["total_s"] += stats["total_s"]
                current["max_s"] = max(current["max_s"], stats["max_s"])
    # Canonical key order, so equal content serializes identically.
    return {
        section: dict(sorted(values.items()))
        for section, values in merged.items()
    }


def deterministic_view(snapshot: dict) -> dict:
    """The merge-exact sections of a snapshot (drops span timings)."""
    return {
        section: snapshot.get(section, {})
        for section in ("counters", "gauges", "histograms")
    }
