"""``repro.obs`` — unified observability: metrics registry + phase spans.

Usage::

    from repro.obs import MetricsRegistry, use_registry, span

    registry = MetricsRegistry()
    with use_registry(registry):
        with span("simulate.device"):
            ...  # instrumented code records into ``registry``
    snapshot = registry.snapshot()

Instrumented modules call :func:`get_registry` (or the module-level
:func:`span` / :func:`inc` helpers) and get the process-wide current
registry — a no-op :class:`~repro.obs.registry.NullRegistry` unless a
caller opted in with :func:`use_registry`.  The engine activates one
registry per worker process, ships snapshots back through the result
pipe, and merges them with :func:`merge_snapshots`; see
``docs/observability.md`` for the metric catalog and guarantees.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.registry import (
    DURATION_BUCKETS_S,
    EVENT_COUNT_BUCKETS,
    LATENCY_BUCKETS_S,
    NULL_REGISTRY,
    STAGE_COUNT_BUCKETS,
    SUM_SCALE,
    MetricsMergeError,
    MetricsRegistry,
    NullRegistry,
    ThreadSafeRegistry,
    counter_key,
    deterministic_view,
    empty_snapshot,
    merge_snapshots,
)

__all__ = [
    "DURATION_BUCKETS_S",
    "EVENT_COUNT_BUCKETS",
    "LATENCY_BUCKETS_S",
    "STAGE_COUNT_BUCKETS",
    "SUM_SCALE",
    "MetricsMergeError",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "ThreadSafeRegistry",
    "counter_key",
    "deterministic_view",
    "empty_snapshot",
    "get_registry",
    "inc",
    "merge_snapshots",
    "span",
    "use_registry",
]

_current = NULL_REGISTRY


def get_registry():
    """The registry active in this process (the no-op one by default)."""
    return _current


@contextmanager
def use_registry(registry):
    """Activate ``registry`` for the duration of the block.

    ``use_registry(None)`` is a pass-through: the current registry
    (usually the no-op default) stays active.  The previous registry is
    always restored on exit, even on exceptions, so nested activations
    compose.
    """
    global _current
    if registry is None:
        yield _current
        return
    previous = _current
    _current = registry
    try:
        yield registry
    finally:
        _current = previous


def span(name: str):
    """Time a phase against the current registry (no-op by default)."""
    return _current.span(name)


def inc(name: str, amount: int = 1, **labels) -> None:
    """Increment a counter on the current registry (no-op by default)."""
    _current.inc(name, amount, **labels)
