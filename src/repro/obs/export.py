"""Snapshot export helpers shared by the CLI and benchmarks."""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.prom import to_prometheus


def dataset_metrics_snapshot(dataset) -> dict:
    """Reassemble the full snapshot recorded on a dataset.

    The deterministic sections live in ``metadata["metrics"]``; the
    wall-clock span timings live in ``metadata["execution"]["spans"]``
    (they are excluded from the byte-identity guarantee).  Returns an
    empty snapshot if the run had metrics disabled.
    """
    metrics = dataset.metadata.get("metrics") or {}
    execution = dataset.metadata.get("execution") or {}
    return {
        "counters": dict(metrics.get("counters", {})),
        "gauges": dict(metrics.get("gauges", {})),
        "histograms": dict(metrics.get("histograms", {})),
        "spans": dict(execution.get("spans", {})),
    }


def write_metrics_json(path, snapshot: dict) -> Path:
    """Write a snapshot as indented JSON; returns the path written."""
    target = Path(path)
    target.write_text(json.dumps(snapshot, indent=2, sort_keys=True)
                      + "\n")
    return target


def write_metrics_prometheus(path, snapshot: dict) -> Path:
    """Write a snapshot in Prometheus text format."""
    target = Path(path)
    target.write_text(to_prometheus(snapshot))
    return target
