"""Kernel-style TCP segment counters.

Android's Data_Stall heuristic reads statistics the Linux kernel keeps in
its network stack: a stall is suspected when more than 10 outbound TCP
segments but not a single inbound segment were seen during the last
minute (Sec. 2.1).  This module reproduces that observable: a sliding
window of timestamped segment events with O(1) amortized queries.
"""

from __future__ import annotations

from collections import deque


class TcpSegmentCounters:
    """Sliding-window counters of outbound/inbound TCP segments."""

    def __init__(self, window_s: float = 60.0) -> None:
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.window_s = window_s
        self._outbound: deque[float] = deque()
        self._inbound: deque[float] = deque()

    def record_outbound(self, timestamp: float, count: int = 1) -> None:
        """Record ``count`` outbound segments at ``timestamp``."""
        self._record(self._outbound, timestamp, count)

    def record_inbound(self, timestamp: float, count: int = 1) -> None:
        """Record ``count`` inbound segments at ``timestamp``."""
        self._record(self._inbound, timestamp, count)

    def outbound_in_window(self, now: float) -> int:
        """Outbound segments seen within the last window."""
        self._expire(self._outbound, now)
        return len(self._outbound)

    def inbound_in_window(self, now: float) -> int:
        """Inbound segments seen within the last window."""
        self._expire(self._inbound, now)
        return len(self._inbound)

    def reset(self) -> None:
        """Drop all recorded segments (connection cleanup)."""
        self._outbound.clear()
        self._inbound.clear()

    # -- internals ---------------------------------------------------------

    def _record(self, store: deque[float], timestamp: float,
                count: int) -> None:
        if count < 1:
            raise ValueError("count must be at least 1")
        if store and timestamp < store[-1]:
            raise ValueError("timestamps must be non-decreasing")
        store.extend([timestamp] * count)
        self._expire(store, timestamp)

    def _expire(self, store: deque[float], now: float) -> None:
        horizon = now - self.window_s
        while store and store[0] <= horizon:
            store.popleft()
