"""Device network-stack substrate: kernel-style TCP segment counters,
fault injection, and the probe surface the Android-MOD prober uses."""

from repro.netstack.tcp_counters import TcpSegmentCounters
from repro.netstack.faults import ActiveFault, FaultKind
from repro.netstack.stack import DeviceNetStack

__all__ = [
    "TcpSegmentCounters",
    "ActiveFault",
    "FaultKind",
    "DeviceNetStack",
]
