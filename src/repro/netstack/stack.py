"""The device network stack.

Owns the kernel TCP counters, the assigned DNS servers, and any injected
fault, and exposes the probe surface (loopback ICMP, DNS-server ICMP,
DNS query) that the Android-MOD prober exercises (Sec. 2.2).
"""

from __future__ import annotations

import random

from repro.netstack.faults import ActiveFault, FaultKind
from repro.netstack.tcp_counters import TcpSegmentCounters
from repro.network.dns import DnsServer, default_dns_servers


class DeviceNetStack:
    """Simulated network stack of one device."""

    def __init__(
        self,
        dns_servers: list[DnsServer] | None = None,
        window_s: float = 60.0,
    ) -> None:
        self.counters = TcpSegmentCounters(window_s=window_s)
        self.dns_servers = (
            list(dns_servers) if dns_servers is not None
            else default_dns_servers()
        )
        if not self.dns_servers:
            raise ValueError("a device needs at least one DNS server")
        self._fault: ActiveFault | None = None

    # -- fault management ---------------------------------------------------

    def inject_fault(self, fault: ActiveFault) -> None:
        """Install ``fault``; replaces any previous fault."""
        self._fault = fault

    def clear_fault(self) -> None:
        self._fault = None

    def fault_at(self, now: float) -> ActiveFault | None:
        """The fault active at ``now``, if any (expired faults clear)."""
        if self._fault is not None and not self._fault.active_at(now):
            if now >= self._fault.end:
                self._fault = None
        return self._fault if (
            self._fault is not None and self._fault.active_at(now)
        ) else None

    def shorten_fault(self, now: float) -> None:
        """End the current fault at ``now`` (a recovery action worked)."""
        fault = self.fault_at(now)
        if fault is not None:
            fault.duration = max(0.0, now - fault.start)
            self._fault = None

    # -- probe surface (what the Android-MOD prober calls) --------------------

    def ping_loopback(self, now: float, timeout_s: float) -> tuple[bool, float]:
        """ICMP to 127.0.0.1: times out only for system-side faults."""
        fault = self.fault_at(now)
        if fault is not None and fault.kind.is_system_side:
            return False, timeout_s
        return True, 0.001

    def ping_dns_server(
        self, server: DnsServer, now: float, timeout_s: float
    ) -> tuple[bool, float]:
        """ICMP to an assigned DNS server."""
        fault = self.fault_at(now)
        if fault is not None:
            if fault.kind.is_system_side:
                return False, timeout_s
            if fault.kind is FaultKind.NETWORK_STALL:
                return False, timeout_s
        return server.ping(timeout_s)

    def resolve(
        self,
        server: DnsServer,
        domain: str,
        now: float,
        timeout_s: float,
    ) -> tuple[bool, float]:
        """DNS query through ``server``."""
        fault = self.fault_at(now)
        if fault is not None:
            if fault.kind.is_system_side:
                return False, timeout_s
            if fault.kind is FaultKind.NETWORK_STALL:
                return False, timeout_s
            if fault.kind is FaultKind.DNS_OUTAGE:
                return False, timeout_s
        return server.resolve(domain, timeout_s)

    # -- traffic simulation ---------------------------------------------------

    def simulate_traffic(
        self,
        start: float,
        duration_s: float,
        rng: random.Random,
        outbound_rate_hz: float = 2.0,
    ) -> None:
        """Generate segment traffic for ``duration_s`` starting at ``start``.

        While a stall-class fault is active, outbound segments keep
        flowing (retransmissions, new requests) but nothing comes back —
        exactly the signature Android's detector looks for.
        """
        if duration_s < 0:
            raise ValueError("duration cannot be negative")
        step = 1.0 / outbound_rate_hz
        t = start
        end = start + duration_s
        while t < end:
            self.counters.record_outbound(t)
            fault = self.fault_at(t)
            stalled = fault is not None and fault.kind in (
                FaultKind.NETWORK_STALL,
                FaultKind.MODEM_DRIVER_FAILURE,
                FaultKind.FIREWALL_MISCONFIG,
                FaultKind.PROXY_MISCONFIG,
            )
            if not stalled:
                # Healthy traffic answers most segments.
                if rng.random() < 0.95:
                    self.counters.record_inbound(t + min(0.05, step / 2))
            t += step * rng.uniform(0.7, 1.3)
