"""Fault taxonomy for the device network stack.

The Android-MOD prober exists because not every suspected Data_Stall is a
cellular failure (Sec. 2.2): the stack distinguishes genuine network-side
stalls from system-side misconfigurations (firewall, proxy, modem driver)
and from DNS-service outages.  Fault injection at this layer is how the
simulator exercises every branch of the prober's verdict logic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.events import FalsePositiveReason, ProbeVerdict


class FaultKind(enum.Enum):
    """What is actually wrong when data stops flowing."""

    #: A genuine cellular/network-side stall (the true failure).
    NETWORK_STALL = "NETWORK_STALL"
    #: Erroneous firewall configuration drops local traffic.
    FIREWALL_MISCONFIG = "FIREWALL_MISCONFIG"
    #: A problematic proxy blackholes traffic.
    PROXY_MISCONFIG = "PROXY_MISCONFIG"
    #: The modem driver wedged; the whole stack is unresponsive.
    MODEM_DRIVER_FAILURE = "MODEM_DRIVER_FAILURE"
    #: Only the DNS resolution service is unavailable.
    DNS_OUTAGE = "DNS_OUTAGE"

    @property
    def is_system_side(self) -> bool:
        """Faults the loopback probe exposes (false positives)."""
        return self in _SYSTEM_SIDE

    @property
    def is_true_stall(self) -> bool:
        return self is FaultKind.NETWORK_STALL

    @property
    def expected_verdict(self) -> ProbeVerdict:
        """The verdict a correct prober must reach for this fault."""
        if self.is_system_side:
            return ProbeVerdict.SYSTEM_SIDE_FAULT
        if self is FaultKind.DNS_OUTAGE:
            return ProbeVerdict.DNS_SERVICE_FAULT
        return ProbeVerdict.NETWORK_SIDE_STALL

    @property
    def false_positive_reason(self) -> FalsePositiveReason | None:
        """How Android-MOD records this fault when filtering it out."""
        if self.is_system_side:
            return FalsePositiveReason.SYSTEM_SIDE
        if self is FaultKind.DNS_OUTAGE:
            return FalsePositiveReason.DNS_SERVICE_UNAVAILABLE
        return None


_SYSTEM_SIDE = frozenset(
    {
        FaultKind.FIREWALL_MISCONFIG,
        FaultKind.PROXY_MISCONFIG,
        FaultKind.MODEM_DRIVER_FAILURE,
    }
)


@dataclass
class ActiveFault:
    """A fault live on the stack from ``start`` for ``duration`` seconds.

    ``duration`` may be ``float('inf')`` for faults that only a recovery
    action (or the user) will clear.
    """

    kind: FaultKind
    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("fault duration cannot be negative")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active_at(self, now: float) -> bool:
        return self.start <= now < self.end
