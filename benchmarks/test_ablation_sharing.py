"""Ablation: cross-ISP infrastructure sharing (Sec. 4.1 guideline).

The paper advises ISPs to coordinate BS deployment around transport
hubs: dense uncoordinated deployment drives the level-5 failure anomaly
through EMM complexity and adjacent-channel interference.  Modeling the
guideline as a density factor on hub/urban-core cells, the hub bearer-
failure rate should drop substantially while sparse cells are untouched.
"""

import random
from io import StringIO

from benchmarks.conftest import emit
from repro.core.signal import SignalLevel
from repro.network.basestation import BaseStation, DeploymentClass, make_identity
from repro.network.isp import ISP
from repro.network.topology import NationalTopology, TopologyConfig
from repro.radio.rat import RAT


def _hub_failure_rate(density_factor: float, attempts: int = 4_000):
    bs = BaseStation(
        bs_id=1,
        identity=make_identity(ISP.A, 1),
        isp=ISP.A,
        supported_rats=frozenset({RAT.LTE}),
        deployment=DeploymentClass.TRANSPORT_HUB,
        failure_propensity=1.0,
        density_factor=density_factor,
    )
    rng = random.Random(23)
    failures = sum(
        bs.admit_bearer(RAT.LTE, SignalLevel.LEVEL_5, rng) is not None
        for _ in range(attempts)
    )
    return failures / attempts


def test_ablation_infrastructure_sharing(benchmark, output_dir):
    def sweep():
        return {
            factor: _hub_failure_rate(factor)
            for factor in (1.0, 0.8, 0.55, 0.4)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    out = StringIO()
    out.write("density factor  hub bearer-failure rate\n")
    for factor, rate in results.items():
        out.write(f"{factor:>14.2f}  {rate:>22.3f}\n")
    emit(output_dir, "ablation_sharing.txt", out.getvalue())

    # Coordinated deployment monotonically de-risks hub cells...
    rates = [results[f] for f in (1.0, 0.8, 0.55, 0.4)]
    assert rates == sorted(rates, reverse=True)
    # ...with a material reduction at the modeled sharing factor.
    assert results[0.55] < results[1.0] * 0.75


def test_sharing_topology_option(benchmark):
    """The topology generator applies the factor to dense cells only."""
    def build():
        return NationalTopology(TopologyConfig(
            n_base_stations=1_000, seed=9,
            infrastructure_sharing=True,
        ))

    topology = benchmark.pedantic(build, rounds=1, iterations=1)
    for bs in topology.base_stations:
        if bs.deployment in (DeploymentClass.TRANSPORT_HUB,
                             DeploymentClass.URBAN_CORE):
            assert bs.density_factor < 1.0
        else:
            assert bs.density_factor == 1.0
