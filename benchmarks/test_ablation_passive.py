"""Ablation: active probing vs passive monitoring (Sec. 6).

The paper chose active probing (bounded 5 s error, small injected
traffic); the discussed passive alternative costs zero probe bytes but
its error depends on the application's own traffic cadence.  Both are
run over identical stall episodes.
"""

from io import StringIO

from benchmarks.conftest import emit
from repro.monitoring.passive import PassiveStallMonitor
from repro.monitoring.prober import NetworkStateProber
from repro.netstack.faults import ActiveFault, FaultKind
from repro.netstack.stack import DeviceNetStack
from repro.simtime import SimClock


def _measure_both(stall_s: float, traffic_gap_s: float):
    clock = SimClock()
    stack = DeviceNetStack()
    stack.inject_fault(ActiveFault(FaultKind.NETWORK_STALL, 0.0, stall_s))
    active = NetworkStateProber(clock).measure(stack)

    clock2 = SimClock()
    stack2 = DeviceNetStack()
    stack2.inject_fault(ActiveFault(FaultKind.NETWORK_STALL, 0.0,
                                    stall_s))
    passive = PassiveStallMonitor(clock2).measure(stack2, traffic_gap_s)
    return (active.duration_s - stall_s, active.probe_bytes,
            passive.duration_s - stall_s, passive.probe_bytes)


def test_ablation_active_vs_passive(benchmark, output_dir):
    def sweep():
        return {
            gap: _measure_both(stall_s=80.0, traffic_gap_s=gap)
            for gap in (1.0, 5.0, 15.0, 60.0)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    out = StringIO()
    out.write("traffic gap  active err  active bytes  "
              "passive err  passive bytes\n")
    for gap, (a_err, a_bytes, p_err, p_bytes) in results.items():
        out.write(f"{gap:>11.0f}  {a_err:>10.2f}  {a_bytes:>12}  "
                  f"{p_err:>11.2f}  {p_bytes:>13}\n")
    emit(output_dir, "ablation_active_vs_passive.txt", out.getvalue())

    for gap, (a_err, a_bytes, p_err, p_bytes) in results.items():
        # The active prober's error is bounded by one volley (Sec 2.2);
        # the passive monitor's error tracks the traffic gap.
        assert a_err <= 5.1
        assert p_err >= gap
        # The trade: passive injects nothing, active pays probe bytes.
        assert p_bytes == 0
        assert a_bytes > 0
    # With chatty traffic passive is competitive; with quiet traffic
    # its error dwarfs the active bound — the paper's reason to probe.
    assert results[60.0][2] > 10 * results[60.0][0]
