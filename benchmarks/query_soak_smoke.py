"""Query-soak smoke: poll a store-backed ``repro serve`` while a
chaotic fleet streams into it, and prove every live answer exact.

::

    PYTHONPATH=src python benchmarks/query_soak_smoke.py \
        [--devices 20] [--per-device 5] [--seed 2020]

The process-level acceptance gate for the live query plane:

1. **control leg** — run a chaotic fleet through a store-backed
   service to completion, SIGTERM, and compute the offline analysis
   block over the drained store: this is the reference answer;
2. **soak leg** — fresh service, same fleet and chaos, with a query
   client polling ``stats`` / ``isp_bs`` / ``transitions`` /
   ``summary`` the whole time.  SIGTERM lands **mid-run** while
   spools are still loaded; the service must drain, checkpoint, and
   exit 0;
3. **resume leg** — restart with ``--resume`` against the same store,
   keep polling while the fleet finishes, and require the final
   ``repro query`` answer byte-identical to the control block.

Then the exactness audit: the store journal's WAL lines are the
append order, so for *every* polled answer at watermark ``W`` the
offline fold over the first ``W`` journalled records must be
byte-identical (sorted JSON) to what the live service answered —
including answers that straddled the SIGTERM/resume hop.  Repeated
polls must also show partial-cache hits.  Exits non-zero on any
violation — the CI gate for the query plane.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.columnar import (  # noqa: E402
    analysis_summary,
    compute_analysis_block,
)
from repro.chaos.config import ChaosConfig  # noqa: E402
from repro.dataset.records import FailureRecord  # noqa: E402
from repro.dataset.store import Dataset  # noqa: E402
from repro.serve.client import (  # noqa: E402
    QueryClient,
    TransportSignal,
)
from repro.serve.harness import (  # noqa: E402
    drain_fleet,
    drive_fleet,
    synthetic_records,
)
from repro.serve.query import (  # noqa: E402
    ISP_BS_FIELDS,
    STATS_FIELDS,
    TRANSITIONS_FIELDS,
)

#: Retry-only chaos (drops, duplicates, reordering): every emitted
#: record is eventually accepted, so the control and soak stores
#: converge on the same dataset.
CHAOS = dict(drop_rate=0.15, duplicate_rate=0.1, reorder_rate=0.05)

PROJECTIONS = {
    "stats": STATS_FIELDS,
    "isp_bs": ISP_BS_FIELDS,
    "transitions": TRANSITIONS_FIELDS,
}


def canonical(block) -> str:
    return json.dumps(block, sort_keys=True)


class Serve:
    """One store-backed ``repro serve`` subprocess."""

    def __init__(self, checkpoint: Path, store_dir: Path,
                 resume: bool = False,
                 prom_out: Path | None = None):
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--checkpoint", str(checkpoint),
            "--store-dir", str(store_dir),
            "--seal-records", "16",
            "--read-deadline", "0.5",
            "--drain-timeout", "30",
        ]
        if resume:
            cmd.append("--resume")
        if prom_out:
            cmd += ["--prom-out", str(prom_out)]
        self.proc = subprocess.Popen(
            cmd, env=dict(os.environ, PYTHONPATH="src"),
            cwd=REPO_ROOT, text=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        self.banner: list[str] = []
        self.host, self.port = self._await_bind()

    def _await_bind(self) -> tuple[str, int]:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            self.banner.append(line.rstrip())
            if line.startswith("serving on "):
                host, port = line.split()[-1].rsplit(":", 1)
                return host, int(port)
        raise RuntimeError(
            "serve never bound; output so far: %r" % self.banner
        )

    def sigterm(self) -> tuple[int, str]:
        self.proc.send_signal(signal.SIGTERM)
        tail = self.proc.stdout.read()
        code = self.proc.wait(timeout=60)
        return code, tail


class Poller:
    """Polls every query kind against a live service in a thread."""

    def __init__(self):
        self.envelopes: list[dict] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self, host: str, port: int) -> None:
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, args=(host, port), daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def _loop(self, host: str, port: int) -> None:
        kinds = ("stats", "isp_bs", "transitions", "summary")
        with QueryClient(host, port, timeout_s=5.0) as client:
            turn = 0
            while not self._stop.is_set():
                kind = kinds[turn % len(kinds)]
                turn += 1
                try:
                    self.envelopes.append(client.query(kind))
                except TransportSignal:
                    # Shed / draining / connection lost mid-restart:
                    # all legitimate under soak; just poll again.
                    pass
                time.sleep(0.01)


def journal_rows(store_dir: Path) -> list[dict]:
    """Record dicts in append order (the WAL lines, first to last)."""
    rows = []
    with open(store_dir / "journal.jsonl", "rb") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if entry.get("op") == "wal":
                rows.append(entry["data"])
    return rows


def offline_block(rows: list[dict]) -> dict:
    return compute_analysis_block(Dataset(failures=[
        FailureRecord.from_dict(row) for row in rows
    ]))


def verify_envelopes(envelopes: list[dict],
                     rows: list[dict]) -> tuple[int, str | None]:
    """Check every polled answer against its journal prefix.

    Returns (answers_verified, error) — error is None when every
    watermark's answer was byte-identical to the offline fold.
    """
    block_cache: dict[int, dict] = {}
    verified = 0
    for envelope in envelopes:
        watermark = envelope["watermark"]
        if watermark["mode"] != "store":
            return verified, (
                f"expected a store watermark, got {watermark}"
            )
        n = watermark["n_records"]
        if n > len(rows):
            return verified, (
                f"watermark {n} exceeds the {len(rows)} journalled "
                "records"
            )
        if n not in block_cache:
            block_cache[n] = offline_block(rows[:n])
        block = block_cache[n]
        kind = envelope["query"]
        if kind == "summary":
            expected = analysis_summary(block)
        else:
            expected = {key: block[key] for key in PROJECTIONS[kind]}
        if canonical(envelope["result"]) != canonical(expected):
            return verified, (
                f"{kind} answer at watermark {n} diverged from the "
                "offline fold of the journal prefix"
            )
        verified += 1
    return verified, None


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--devices", type=int, default=20)
    parser.add_argument("--per-device", type=int, default=5)
    parser.add_argument("--seed", type=int, default=2020)
    args = parser.parse_args(argv)

    records = synthetic_records(args.devices, args.per_device,
                                seed=args.seed)
    total = len(records)

    with tempfile.TemporaryDirectory(prefix="query-soak-") as tmp:
        tmp_path = Path(tmp)

        # -- control leg -----------------------------------------------
        print(f"[1/3] control: {total} records through a store-backed "
              "service, offline fold is the reference")
        ctrl = Serve(tmp_path / "control.ckpt",
                     tmp_path / "control-store")
        drive = drive_fleet(records, ctrl.host, ctrl.port,
                            chaos=ChaosConfig(seed=args.seed, **CHAOS))
        drain_fleet(drive)
        if drive.pending_payloads:
            return fail("control fleet never drained its spools")
        time.sleep(0.3)
        code, _tail = ctrl.sigterm()
        drive.close()
        if code != 0:
            return fail(f"control serve exited {code}")
        control_rows = journal_rows(tmp_path / "control-store")
        if len(control_rows) != total:
            return fail(f"control store journalled "
                        f"{len(control_rows)}/{total} records")
        control_block = offline_block(control_rows)
        print(f"      offline block over {total} records: "
              f"n_failures={control_block['n_failures']} "
              f"devices={control_block['failing_devices']}")

        # -- soak leg: poll while ingest runs, SIGTERM mid-run ---------
        print("[2/3] soak: query poller rides along, SIGTERM mid-run")
        store_dir = tmp_path / "soak-store"
        ckpt = tmp_path / "soak.ckpt"
        soak = Serve(ckpt, store_dir)
        poller = Poller()
        poller.start(soak.host, soak.port)
        drive = drive_fleet(records, soak.host, soak.port,
                            chaos=ChaosConfig(seed=args.seed, **CHAOS))
        # A few flush rounds so answers land mid-stream, then SIGTERM
        # with spools still loaded.
        drain_fleet(drive, rounds=6)
        code, tail = soak.sigterm()
        poller.stop()
        if code != 0:
            return fail(f"soak serve exited {code} mid-drain: {tail}")
        if "checkpoint written" not in tail:
            return fail(f"soak drain never checkpointed: {tail!r}")
        if not poller.envelopes:
            return fail("the poller never got an answer mid-soak")
        mid_answers = len(poller.envelopes)
        mid_watermarks = sorted({e["watermark"]["n_records"]
                                 for e in poller.envelopes})
        print(f"      {mid_answers} live answers at watermarks "
              f"{mid_watermarks[0]}..{mid_watermarks[-1]}")

        # -- resume leg ------------------------------------------------
        print("[3/3] resume against the same store and finish")
        prom_out = tmp_path / "serve.prom"
        resumed = Serve(ckpt, store_dir, resume=True,
                        prom_out=prom_out)
        if not any("resumed from" in line for line in resumed.banner):
            return fail(f"resume leg did not load the checkpoint: "
                        f"{resumed.banner!r}")
        poller.start(resumed.host, resumed.port)
        drive = drive_fleet([], resumed.host, resumed.port, drive=drive)
        drain_fleet(drive)
        if drive.pending_payloads:
            return fail("resumed fleet never drained its spools")
        deadline = time.monotonic() + 15.0
        final = None
        while time.monotonic() < deadline:
            # The admission queue may still be flushing: poll the CLI
            # until the watermark covers every record.
            out = subprocess.run(
                [sys.executable, "-m", "repro", "query",
                 f"{resumed.host}:{resumed.port}", "stats", "--json"],
                env=dict(os.environ, PYTHONPATH="src"),
                cwd=REPO_ROOT, capture_output=True, text=True,
            )
            if out.returncode == 0:
                final = json.loads(out.stdout)
                if final["watermark"]["n_records"] == total:
                    break
            time.sleep(0.2)
        poller.stop()
        if final is None:
            return fail("the repro query CLI never got an answer")
        if final["watermark"]["n_records"] != total:
            return fail(f"final watermark stuck at "
                        f"{final['watermark']['n_records']}/{total}")
        expected = {key: control_block[key] for key in STATS_FIELDS}
        if canonical(final["result"]) != canonical(expected):
            return fail("the final live stats answer diverged from "
                        "the control run's offline block")
        code, _tail = resumed.sigterm()
        drive.close()
        if code != 0:
            return fail(f"resumed serve exited {code}")

        # -- the exactness audit ---------------------------------------
        rows = journal_rows(store_dir)
        if len(rows) != total:
            return fail(f"soak store journalled {len(rows)}/{total} "
                        "records")
        verified, error = verify_envelopes(poller.envelopes, rows)
        if error:
            return fail(error)
        hits = sum(e.get("cache", {}).get("hits", 0)
                   for e in poller.envelopes)
        if hits == 0:
            return fail("repeated polls never hit the partial cache")
        prom_text = prom_out.read_text()
        for metric in ("query_requests_total", "query_cache_hits_total",
                       "query_stage_seconds"):
            if metric not in prom_text:
                return fail(f"{metric} missing from the Prometheus "
                            "export")

        print(f"OK: {verified} live answers (watermarks "
              f"{mid_watermarks[0]}..{total}) each byte-identical to "
              f"the offline fold of their journal prefix, across "
              f"SIGTERM + resume; {hits} partial-cache hits; query "
              "metrics exported")
    return 0


if __name__ == "__main__":
    sys.exit(main())
