"""Ablation: do the mechanisms alone reproduce the tendencies?

The calibrated fleet schedules failures from Table 1 hazards; organic
mode schedules nothing — sessions simply run against the live network
and failures arise from the admission mechanics.  The paper's
qualitative tendencies must show through in both, or the calibration
would be doing all the work.
"""

from io import StringIO

from benchmarks.conftest import emit
from repro.fleet.organic import OrganicSimulator
from repro.network.topology import NationalTopology, TopologyConfig


def test_ablation_organic_tendencies(benchmark, output_dir):
    topology = NationalTopology(
        TopologyConfig(n_base_stations=2_000, seed=11)
    )

    result = benchmark.pedantic(
        lambda: OrganicSimulator(topology, seed=12).run(
            n_devices=80, sessions_per_device=50
        ),
        rounds=1, iterations=1,
    )
    by_level = result.failure_rate_by(lambda a: a.signal_level)
    by_rat = result.failure_rate_by(lambda a: a.rat)

    def events_per_session(deployment):
        pool = [a for a in result.attempts
                if a.deployment == deployment]
        return sum(a.true_failures + a.filtered
                   for a in pool) / max(1, len(pool))

    out = StringIO()
    out.write("organic session-failure rate by signal level:\n")
    for level in sorted(by_level):
        out.write(f"  level {level}: {by_level[level]:.3f}\n")
    out.write("organic session-failure rate by RAT:\n")
    for rat in sorted(by_rat):
        out.write(f"  {rat}: {by_rat[rat]:.3f}\n")
    out.write("failure events per session: "
              f"hub {events_per_session('TRANSPORT_HUB'):.3f} vs "
              f"suburban {events_per_session('SUBURBAN'):.3f}\n")
    emit(output_dir, "ablation_organic.txt", out.getvalue())

    # Unscheduled, the mechanisms still produce the paper's tendencies.
    assert by_level[0] > by_level[4]
    assert by_rat["3G"] < by_rat["2G"]
    assert by_rat["3G"] < by_rat["4G"]
    assert (events_per_session("TRANSPORT_HUB")
            > events_per_session("SUBURBAN"))
