"""Figs. 15-16: normalized prevalence by signal level — the RSS
counter-intuition (excellent signal, more failures)."""

from io import StringIO

from benchmarks.conftest import emit
from repro.analysis.isp_bs import (
    normalized_prevalence_by_level,
    normalized_prevalence_by_rat_level,
)
from repro.analysis.report import render_level_series


def test_fig15_normalized_prevalence(benchmark, vanilla_ds, output_dir):
    series = benchmark(normalized_prevalence_by_level, vanilla_ds)
    emit(output_dir, "fig15_rss.txt", render_level_series(series))

    # Fig. 15: monotone decrease over levels 0-4...
    assert series[0] > series[1] > series[2] > series[3] > series[4]
    # ...then the hub anomaly: level 5 beats every level-1..4 value
    # while staying below level 0.
    assert series[5] > max(series[level] for level in (1, 2, 3, 4))
    assert series[5] < series[0]


def test_fig16_rat_split(benchmark, vanilla_ds, output_dir):
    series = benchmark(normalized_prevalence_by_rat_level, vanilla_ds)
    out = StringIO()
    for rat in ("4G", "5G"):
        out.write(f"{rat}:\n")
        out.write(render_level_series(series[rat]))
    emit(output_dir, "fig16_rat_rss.txt", out.getvalue())

    # Fig. 16: at matched levels, failure likelihood under 5G access
    # sits above 4G (immature modules).
    above = sum(series["5G"][level] > series["4G"][level]
                for level in range(5))
    assert above >= 4
