"""Measure the wall-clock overhead of the observability layer.

::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        [--devices 1000] [--seed 7] [--repeats 3] \
        [--out BENCH_obs.json] [--max-overhead 0.10]

Runs the same serial scenario with metrics disabled and enabled,
interleaved ``--repeats`` times, and compares the best (least-noisy)
wall time of each arm.  Also asserts the no-op guarantee the tests rely
on: the two arms produce byte-identical records.  Exits non-zero if
the enabled-metrics overhead exceeds ``--max-overhead`` (default 10%,
the bound ``docs/observability.md`` promises).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from bench_parallel import record_digest, scenario_for
from repro.fleet.simulator import FleetSimulator

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def timed_run(scenario):
    started = time.perf_counter()
    dataset = FleetSimulator(scenario).run()
    return dataset, time.perf_counter() - started


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--devices", type=int, default=1_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument("--max-overhead", type=float, default=0.10,
                        help="fail if enabled/disabled - 1 exceeds "
                             "this fraction (default 0.10)")
    args = parser.parse_args(argv)

    disabled = scenario_for(args.devices, args.seed, metrics=False)
    enabled = scenario_for(args.devices, args.seed, metrics=True)

    disabled_walls: list[float] = []
    enabled_walls: list[float] = []
    disabled_digest = enabled_digest = None
    metrics_block = None
    for repeat in range(args.repeats):
        dataset, wall = timed_run(disabled)
        disabled_walls.append(wall)
        disabled_digest = record_digest(dataset)
        dataset, wall = timed_run(enabled)
        enabled_walls.append(wall)
        enabled_digest = record_digest(dataset)
        metrics_block = dataset.metadata["metrics"]
        print(f"repeat {repeat + 1}/{args.repeats}: "
              f"disabled {disabled_walls[-1]:.2f}s, "
              f"enabled {enabled_walls[-1]:.2f}s", flush=True)

    best_disabled = min(disabled_walls)
    best_enabled = min(enabled_walls)
    overhead = best_enabled / best_disabled - 1.0
    identical = disabled_digest == enabled_digest

    report = {
        "benchmark": "obs_overhead",
        "scenario": {"n_devices": args.devices, "seed": args.seed},
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "repeats": args.repeats,
        "disabled_wall_s": best_disabled,
        "enabled_wall_s": best_enabled,
        "overhead_fraction": overhead,
        "max_overhead_fraction": args.max_overhead,
        "records_identical_across_arms": identical,
        "n_counters": len(metrics_block["counters"]),
        "n_histograms": len(metrics_block["histograms"]),
        "histogram_observations": sum(
            h["count"] for h in metrics_block["histograms"].values()
        ),
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"overhead: {overhead:+.1%} "
          f"(disabled {best_disabled:.2f}s, enabled {best_enabled:.2f}s)"
          f" — wrote {args.out}")

    if not identical:
        print("FAIL: enabling metrics changed the records",
              file=sys.stderr)
        return 1
    if overhead > args.max_overhead:
        print(f"FAIL: overhead {overhead:.1%} exceeds the "
              f"{args.max_overhead:.0%} bound", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
