"""Store-crash smoke: SIGKILL a store-backed ``repro serve`` mid-flush
under disk chaos, scrub, resume, and require the exact analysis back.

::

    PYTHONPATH=src python benchmarks/store_crash_smoke.py \
        [--devices 20] [--per-device 6] [--seed 2020] [--chaos 0.04]

The process-level acceptance gate for the durable segment store:

1. **control leg** — ``python -m repro serve --store-dir`` on healthy
   disks, the whole fleet pushed through the socket, SIGTERM: the
   drained store's folded analysis block is the reference;
2. **crash leg** — a fresh service on the same records but with
   ``--disk-chaos`` injecting torn writes, bit flips, ENOSPC, and
   crash-in-rename into every store write, then **SIGKILL** (no drain,
   no checkpoint) while the fleet is still pushing and segments are
   still sealing;
3. **scrub** — ``python -m repro scrub`` over the wreckage must exit
   zero with ``--strict``: every damaged segment quarantined or
   repaired, WAL-recoverable records recovered, and the scrub report
   must reconcile against the injected-fault ledger the chaos layer
   fsynced as it fired — every fault classified, zero unexplained;
4. **resume leg** — a fresh service reattaches the repaired store
   (journal-proven identities rejoin the dedup set), the fleet
   re-uploads everything, and the resumed store's folded analysis
   block must be **byte-identical** to the control leg's.

Exits non-zero on any violation — the CI gate for the segment store.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.chaos.disk import DiskChaos  # noqa: E402
from repro.chaos.reconcile import reconcile_disk  # noqa: E402
from repro.serve.harness import (  # noqa: E402
    drain_fleet,
    drive_fleet,
    synthetic_records,
)
from repro.store import ScrubReport, SegmentStore  # noqa: E402


class Serve:
    """One store-backed ``repro serve`` subprocess."""

    def __init__(self, store_dir: Path, checkpoint: Path,
                 seal_records: int, chaos_rate: float = 0.0,
                 chaos_seed: int = 0,
                 analysis_out: Path | None = None):
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--store-dir", str(store_dir),
            "--seal-records", str(seal_records),
            "--checkpoint", str(checkpoint),
            "--read-deadline", "0.5",
            "--drain-timeout", "30",
        ]
        if chaos_rate > 0:
            cmd += ["--disk-chaos", str(chaos_rate),
                    "--disk-chaos-seed", str(chaos_seed)]
        if analysis_out is not None:
            cmd += ["--analysis-out", str(analysis_out)]
        self.proc = subprocess.Popen(
            cmd, env=dict(os.environ, PYTHONPATH="src"),
            cwd=REPO_ROOT, text=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        self.banner: list[str] = []
        self.host, self.port = self._await_bind()

    def _await_bind(self) -> tuple[str, int]:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            self.banner.append(line.rstrip())
            if line.startswith("serving on "):
                host, port = line.split()[-1].rsplit(":", 1)
                return host, int(port)
        raise RuntimeError(
            "serve never bound; output so far: %r" % self.banner
        )

    def sigterm(self) -> tuple[int, str]:
        self.proc.send_signal(signal.SIGTERM)
        tail = self.proc.stdout.read()
        code = self.proc.wait(timeout=60)
        return code, tail

    def sigkill(self) -> None:
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)
        self.proc.stdout.close()


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def canonical(block: dict) -> str:
    return json.dumps(block, sort_keys=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--devices", type=int, default=20)
    parser.add_argument("--per-device", type=int, default=6)
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument("--chaos", type=float, default=0.04,
                        help="per-operation disk fault rate for the "
                             "crash leg (default 0.04)")
    args = parser.parse_args(argv)

    records = synthetic_records(args.devices, args.per_device,
                                seed=args.seed)
    total = len(records)

    with tempfile.TemporaryDirectory(prefix="store-crash-") as tmp:
        tmp_path = Path(tmp)

        # -- control leg -----------------------------------------------
        print(f"[1/4] control: {total} records through a store-backed "
              "serve, healthy disks")
        ctrl_store = tmp_path / "control-store"
        ctrl_analysis = tmp_path / "control-analysis.json"
        ctrl = Serve(ctrl_store, tmp_path / "control.ckpt",
                     seal_records=16, analysis_out=ctrl_analysis)
        drive = drive_fleet(records, ctrl.host, ctrl.port)
        drain_fleet(drive)
        if drive.pending_payloads:
            return fail("control fleet never drained its spools")
        time.sleep(0.3)  # let the worker clear the admission queue
        code, tail = ctrl.sigterm()
        drive.close()
        if code != 0:
            return fail(f"control serve exited {code}: {tail}")
        control_block = json.loads(ctrl_analysis.read_text())["analysis"]
        if control_block["n_failures"] != total:
            return fail(f"control fold saw "
                        f"{control_block['n_failures']}/{total}")
        print(f"      control analysis folded over {total} records")

        # -- crash leg: disk chaos + SIGKILL mid-flush ------------------
        print(f"[2/4] crash: disk chaos at {args.chaos}/op, SIGKILL "
              "mid-run (no drain, no checkpoint)")
        crash_store = tmp_path / "crash-store"
        crash = Serve(crash_store, tmp_path / "crash.ckpt",
                      seal_records=8, chaos_rate=args.chaos,
                      chaos_seed=args.seed)
        drive = drive_fleet(records, crash.host, crash.port,
                            timeout_s=5.0)
        # Push long enough that tails are sealing, then pull the plug
        # while payloads are still in flight.
        drain_fleet(drive, rounds=12)
        crash.sigkill()
        drive.close()
        ledger = DiskChaos.read_ledger(crash_store
                                       / "chaos-ledger.jsonl")
        print(f"      killed; {len(ledger)} disk fault(s) were "
              "injected before death")

        # -- scrub -----------------------------------------------------
        print("[3/4] scrub the wreckage and reconcile every fault")
        scrub_json = tmp_path / "scrub.json"
        result = subprocess.run(
            [sys.executable, "-m", "repro", "scrub", str(crash_store),
             "--strict", "--json", str(scrub_json)],
            env=dict(os.environ, PYTHONPATH="src"), cwd=REPO_ROOT,
            text=True, capture_output=True,
        )
        if result.returncode != 0:
            return fail(f"repro scrub exited {result.returncode}:\n"
                        f"{result.stdout}{result.stderr}")
        report = ScrubReport.from_dict(
            json.loads(scrub_json.read_text())
        )
        disk = reconcile_disk(ledger, report)
        if not disk.ok:
            return fail("scrub left injected faults unexplained:\n"
                        + disk.render())
        print(f"      scrub ok: {report.segments_ok} verified, "
              f"{len(report.quarantined)} quarantined, "
              f"{len(report.recovered_keys)} recovered via WAL, "
              f"{len(report.lost_keys)} lost; all "
              f"{len(ledger)} fault(s) classified")

        # -- resume leg ------------------------------------------------
        print("[4/4] resume on the repaired store, re-upload the "
              "fleet, compare analyses")
        final_analysis = tmp_path / "final-analysis.json"
        resumed = Serve(crash_store, tmp_path / "resume.ckpt",
                        seal_records=8, analysis_out=final_analysis)
        drive = drive_fleet(records, resumed.host, resumed.port)
        drain_fleet(drive)
        if drive.pending_payloads:
            return fail("resumed fleet never drained its spools")
        time.sleep(0.3)
        code, tail = resumed.sigterm()
        drive.close()
        if code != 0:
            return fail(f"resumed serve exited {code}: {tail}")
        final_block = json.loads(final_analysis.read_text())
        if final_block["skipped_segments"]:
            return fail("resumed fold skipped segments: "
                        f"{final_block['skipped_segments']}")
        if canonical(final_block["analysis"]) != canonical(control_block):
            return fail("resumed analysis diverged from the "
                        "undisturbed control run")
        # The store itself must also be scrub-clean and whole.
        survivor = SegmentStore(crash_store, seal_records=8)
        if len(survivor.known_keys()) != total:
            return fail(f"store owns {len(survivor.known_keys())}"
                        f"/{total} records after resume")
        if not survivor.scrub(repair=False).ok:
            return fail("post-resume scrub found lost records")

        print(f"OK: SIGKILL mid-flush under disk chaos, "
              f"{len(ledger)} fault(s) injected and classified, "
              f"zero unexplained losses; resumed analysis "
              f"byte-identical to control over {total} records")
    return 0


if __name__ == "__main__":
    sys.exit(main())
