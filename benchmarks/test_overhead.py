"""Sec. 2.2 / 4.3: Android-MOD's client-side overhead envelope."""

from benchmarks.conftest import emit
from repro.monitoring.overhead import OverheadAccountant


def _typical_device() -> OverheadAccountant:
    accountant = OverheadAccountant(months_observed=8.0)
    for _ in range(33):  # the fleet-average failure count
        accountant.event_opened()
        accountant.event_closed(duration_s=180.0, probe_rounds=12,
                                probe_bytes=12 * 350)
    return accountant


def _heavy_device() -> OverheadAccountant:
    accountant = OverheadAccountant(months_observed=1.0)
    for _ in range(40_000):  # Sec. 2.2's heaviest producers
        accountant.event_opened()
        accountant.event_closed(duration_s=30.0, probe_rounds=1,
                                probe_bytes=350)
    return accountant


def test_typical_overhead_envelope(benchmark, output_dir):
    accountant = benchmark(_typical_device)
    summary = accountant.summary()
    emit(output_dir, "overhead_typical.txt", "\n".join(
        f"{key}: {value:,.3f}" for key, value in summary.items()
    ) + "\n")
    # Sec. 2.2: <2% CPU, <40 KB memory, <100 KB storage,
    # <100 KB network per month.
    assert accountant.within_envelope()


def test_worst_case_overhead_envelope(benchmark, output_dir):
    accountant = benchmark.pedantic(_heavy_device, rounds=1,
                                    iterations=1)
    summary = accountant.summary()
    emit(output_dir, "overhead_worst_case.txt", "\n".join(
        f"{key}: {value:,.3f}" for key, value in summary.items()
    ) + "\n")
    # Sec. 2.2: <8% CPU, <2 MB memory, <20 MB storage, ~20 MB network
    # per month even at 40k failures/month.
    assert accountant.within_envelope(worst_case=True)
