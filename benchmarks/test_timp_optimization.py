"""Sec. 4.2: the TIMP fit and probation optimization.

The paper anneals to 21 / 6 / 16 s with an expected recovery time of
27.8 s versus 38 s for vanilla Android; the reproducible shape is that
every annealed probation is far below 60 s and both the objective and
real simulated recoveries improve substantially.
"""

import random

from benchmarks.conftest import emit
from repro.timp.annealing import optimize_probations
from repro.timp.expected_time import simulate_expected_recovery_time
from repro.timp.model import RecoveryCdf, TimpModel


def test_timp_optimization(benchmark, vanilla_ds, output_dir):
    cdf = RecoveryCdf.from_dataset(vanilla_ds)
    model = TimpModel(recovery_cdf=cdf)

    result = benchmark.pedantic(
        optimize_probations,
        kwargs={"model": model, "rng": random.Random(17),
                "steps": 2_000},
        rounds=1, iterations=1,
    )

    naturals = cdf.sample_naturals(2_000)
    optimized_mc = simulate_expected_recovery_time(
        result.best_probations_s, naturals, random.Random(1),
        samples=3_000,
    )
    paper_mc = simulate_expected_recovery_time(
        (21.0, 6.0, 16.0), naturals, random.Random(1), samples=3_000
    )
    vanilla_mc = simulate_expected_recovery_time(
        (60.0, 60.0, 60.0), naturals, random.Random(1), samples=3_000
    )
    p0, p1, p2 = result.best_probations_s
    emit(output_dir, "timp_optimization.txt", "\n".join([
        f"annealed probations: {p0:.0f} / {p1:.0f} / {p2:.0f} s "
        "(paper: 21 / 6 / 16)",
        f"objective: {result.best_value:.1f} s vs "
        f"{result.default_value:.1f} s default "
        f"({result.improvement:.0%} better; paper: 27.8 vs 38 s)",
        "Monte-Carlo mean stall duration through the real engine:",
        f"  annealed probations : {optimized_mc:.1f} s",
        f"  paper 21/6/16       : {paper_mc:.1f} s",
        f"  vanilla 60/60/60    : {vanilla_mc:.1f} s",
    ]) + "\n")

    # Every probation far below vanilla's 60 s.
    assert all(p < 45.0 for p in result.best_probations_s)
    # The objective improves on the default trigger...
    assert result.improvement > 0.10
    # ...and the improvement is real, not an artifact of the objective.
    assert optimized_mc < vanilla_mc * 0.7
    assert paper_mc < vanilla_mc
