"""Figs. 2 and 5: prevalence and frequency per phone model.

The figures plot the same columns as Table 1; the benchmark renders
both series and checks their published ranges and spread.
"""

from io import StringIO

from benchmarks.conftest import emit
from repro.analysis.landscape import per_model_stats


def _render_series(rows, attribute: str) -> str:
    out = StringIO()
    peak = max(getattr(r, attribute) for r in rows) or 1.0
    out.write(f"model  {attribute}\n")
    for row in rows:
        value = getattr(row, attribute)
        bar = "#" * int(40 * value / peak)
        out.write(f"{row.model:>5}  {value:>8.3f}  {bar}\n")
    return out.getvalue()


def test_fig02_prevalence_per_model(benchmark, vanilla_ds, output_dir):
    rows = benchmark(per_model_stats, vanilla_ds)
    emit(output_dir, "fig02_prevalence.txt",
         _render_series(rows, "prevalence"))
    solid = [r for r in rows if r.n_devices >= 40]
    values = [r.prevalence for r in solid]
    # Fig. 2's range: 0.15% to 45%, wide spread across models.
    assert max(values) > 0.20
    assert min(values) < 0.12
    assert max(values) < 0.60


def test_fig05_frequency_per_model(benchmark, vanilla_ds, output_dir):
    rows = benchmark(per_model_stats, vanilla_ds)
    emit(output_dir, "fig05_frequency.txt",
         _render_series(rows, "frequency"))
    solid = [r for r in rows if r.n_devices >= 40]
    values = [r.frequency for r in solid]
    # Fig. 5's range: 2.3 to 90.2 failures per device.
    assert max(values) > 35.0
    assert min(values) < 15.0
