"""Kill-and-resume smoke: SIGKILL a checkpointed run, resume, verify.

::

    PYTHONPATH=src python benchmarks/kill_resume_smoke.py \
        [--devices 300] [--seed 11] [--workers 2] [--shards 8]

The harness proves the durability contract end to end at the process
level, the way a real outage would exercise it:

1. start ``python -m repro study --checkpoint-dir ...`` as a
   subprocess;
2. poll the checkpoint manifest and SIGKILL the subprocess the moment
   the first shard completes (no cooperative shutdown — the run dies
   mid-flight);
3. restart the same command with ``--resume --save ...``;
4. assert the resumed dataset is byte-identical to a fresh serial run
   of the same scenario, and that the resume actually reloaded the
   shards completed before the kill instead of re-simulating them.

Exits non-zero on any violation — the CI gate for the resilient
execution engine.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.dataset.store import load_dataset  # noqa: E402
from repro.fleet.scenario import ScenarioConfig  # noqa: E402
from repro.fleet.simulator import FleetSimulator  # noqa: E402
from repro.network.topology import TopologyConfig  # noqa: E402


def dataset_digest(dataset) -> str:
    hasher = hashlib.sha256()
    for group in (dataset.devices, dataset.base_stations,
                  dataset.failures, dataset.transitions):
        for record in group:
            hasher.update(
                json.dumps(record.to_dict(), sort_keys=True).encode()
            )
    return hasher.hexdigest()


def completed_shards(manifest_path: Path) -> dict:
    try:
        return json.loads(manifest_path.read_text())["shards"]
    except (OSError, ValueError, KeyError):
        return {}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--devices", type=int, default=300)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--kill-timeout-s", type=float, default=300.0,
                        help="give up if no shard completes in time")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="kill-resume-") as tmp:
        checkpoint_dir = Path(tmp) / "ckpt"
        out_path = Path(tmp) / "resumed.jsonl.gz"
        base_cmd = [
            sys.executable, "-m", "repro", "study",
            "--devices", str(args.devices), "--seed", str(args.seed),
            "--workers", str(args.workers),
            "--shards", str(args.shards),
            "--checkpoint-dir", str(checkpoint_dir),
        ]
        env = dict(os.environ, PYTHONPATH="src")

        print(f"[1/4] starting checkpointed run "
              f"(devices={args.devices} workers={args.workers} "
              f"shards={args.shards})")
        victim = subprocess.Popen(
            base_cmd, env=env, cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        manifest_path = checkpoint_dir / "manifest.json"
        deadline = time.monotonic() + args.kill_timeout_s
        while time.monotonic() < deadline:
            if completed_shards(manifest_path):
                break
            if victim.poll() is not None:
                break
            time.sleep(0.02)

        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=60)
            print("[2/4] SIGKILLed the run mid-flight")
        else:
            # The run beat us to completion; the resume leg still
            # proves full-reload byte-identity.
            print("[2/4] run finished before the kill landed; "
                  "resume will reload every shard")

        before = sorted(int(k) for k in completed_shards(manifest_path))
        if not before:
            print("FAIL: no shard completed before the kill; nothing "
                  "to resume", file=sys.stderr)
            return 1
        print(f"      shards completed before resume: {before}")

        print("[3/4] resuming from the manifest")
        resume = subprocess.run(
            base_cmd + ["--resume", "--save", str(out_path)],
            env=env, cwd=REPO_ROOT,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        if resume.returncode != 0:
            print(f"FAIL: resume exited {resume.returncode}\n"
                  f"{resume.stdout}", file=sys.stderr)
            return 1

        print("[4/4] verifying byte-identity against a fresh serial run")
        scenario = ScenarioConfig(
            n_devices=args.devices,
            seed=args.seed,
            topology=TopologyConfig(
                n_base_stations=max(400, args.devices // 2),
                seed=args.seed + 1,
            ),
        )
        fresh = FleetSimulator(scenario).run()
        resumed = load_dataset(out_path)
        fresh_digest = dataset_digest(fresh)
        resumed_digest = dataset_digest(resumed)
        if fresh_digest != resumed_digest:
            print(f"FAIL: resumed dataset diverges from serial run\n"
                  f"  serial:  {fresh_digest}\n"
                  f"  resumed: {resumed_digest}", file=sys.stderr)
            return 1

        execution = resumed.metadata["execution"]
        resumed_shards = execution.get("resumed_shards", [])
        if resumed_shards != before:
            print(f"FAIL: resume re-simulated completed shards "
                  f"(completed before: {before}, reloaded: "
                  f"{resumed_shards})", file=sys.stderr)
            return 1
        quarantined = execution.get("checkpoint", {}).get("quarantined")
        if quarantined:
            print(f"FAIL: clean artifacts were quarantined: "
                  f"{quarantined}", file=sys.stderr)
            return 1

        print(f"OK: kill-and-resume byte-identical "
              f"(sha256 {fresh_digest[:16]}..., reloaded "
              f"{len(before)}/{args.shards} shards)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
