"""Ablation: what the recovery trigger's pieces buy.

* fixed one-minute trigger (vanilla Android),
* the best *stationary* trigger (one probation value reused for all
  three stages — what a time-homogeneous Markov model can express),
* the paper's TIMP probations (21/6/16),
* our annealed probations.

All evaluated by Monte-Carlo through the real recovery engine over
naturals resampled from the fitted field CDF.
"""

import random

import pytest

from benchmarks.conftest import emit
from repro.timp.annealing import optimize_probations
from repro.timp.expected_time import (
    mechanism_expected_duration,
    simulate_expected_recovery_time,
)
from repro.timp.model import RecoveryCdf, TimpModel


@pytest.fixture(scope="module")
def naturals(vanilla_ds):
    return RecoveryCdf.from_dataset(vanilla_ds).sample_naturals(2_000)


def _mc(probations, naturals):
    return simulate_expected_recovery_time(
        probations, naturals, random.Random(3), samples=2_500
    )


def test_ablation_trigger_designs(benchmark, vanilla_ds, naturals,
                                  output_dir):
    cdf = RecoveryCdf.from_dataset(vanilla_ds)
    annealed = optimize_probations(
        TimpModel(recovery_cdf=cdf), rng=random.Random(5), steps=1_500
    ).best_probations_s

    # The best stationary (uniform) trigger, by sweep.
    uniform_results = {
        p: _mc((p, p, p), naturals)
        for p in (3.0, 6.0, 10.0, 15.0, 21.0, 30.0, 45.0, 60.0)
    }
    best_uniform = min(uniform_results, key=uniform_results.get)

    designs = {
        "vanilla 60/60/60": (60.0, 60.0, 60.0),
        f"best uniform {best_uniform:.0f}s": (best_uniform,) * 3,
        "paper TIMP 21/6/16": (21.0, 6.0, 16.0),
        "annealed": annealed,
    }
    results = benchmark.pedantic(
        lambda: {name: _mc(p, naturals) for name, p in designs.items()},
        rounds=1, iterations=1,
    )
    emit(output_dir, "ablation_recovery_trigger.txt", "\n".join(
        f"{name:<22} mean stall duration {value:7.1f} s"
        for name, value in results.items()
    ) + "\n")

    vanilla = results["vanilla 60/60/60"]
    assert results["paper TIMP 21/6/16"] < vanilla
    assert results["annealed"] < vanilla * 0.5
    # Under the deployment objective (which prices the user-experience
    # cost of firing recovery operations), the annealed non-uniform
    # trigger matches or beats every stationary trigger — the value of
    # time-inhomogeneity.
    objective = lambda p: mechanism_expected_duration(p, naturals)  # noqa: E731
    annealed_objective = objective(annealed)
    best_uniform_objective = min(
        objective((p, p, p))
        for p in (3.0, 6.0, 10.0, 15.0, 21.0, 30.0, 45.0, 60.0)
    )
    assert annealed_objective <= best_uniform_objective * 1.05


def test_ablation_probation_sweep(benchmark, naturals, output_dir):
    """Sensitivity of the first probation around the deployed value."""
    def sweep():
        return {
            pro0: _mc((pro0, 6.0, 16.0), naturals)
            for pro0 in (3.0, 9.0, 15.0, 21.0, 30.0, 45.0, 60.0)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(output_dir, "ablation_probation_sweep.txt", "\n".join(
        f"Pro0={pro0:4.0f}s  mean stall duration {value:7.1f} s"
        for pro0, value in results.items()
    ) + "\n")
    # Longer first probations monotonically hurt beyond the optimum.
    assert results[60.0] > results[21.0]
    assert results[45.0] > results[15.0]
