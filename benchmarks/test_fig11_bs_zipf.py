"""Fig. 11: BS ranking by experienced failures is Zipf-like."""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.isp_bs import (
    bs_failure_ranking,
    bs_failure_summary,
    fit_zipf,
)


def test_fig11_zipf_ranking(benchmark, bs_rich_ds, output_dir):
    ranking = benchmark(bs_failure_ranking, bs_rich_ds)
    fit = fit_zipf(ranking)
    summary = bs_failure_summary(bs_rich_ds)
    lines = [
        f"Zipf fit: a={fit.a:.2f} (paper: 0.82), "
        f"b={fit.b:.2f}, R^2={fit.r_squared:.3f}",
        f"failures per involved BS: median={summary['median']:.0f} "
        f"(paper: 1), mean={summary['mean']:.0f} (paper: 444), "
        f"max={summary['max']:.0f} (paper: 8.9M)",
        "",
        "rank  failures",
    ]
    for rank in (1, 2, 5, 10, 20, 50, 100, 200, 500):
        if rank <= len(ranking):
            lines.append(f"{rank:>4}  {ranking[rank - 1]:.0f}")
    emit(output_dir, "fig11_bs_zipf.txt", "\n".join(lines) + "\n")

    # Zipf-like: a power-law fit explains the ranking well and the
    # distribution is deeply skewed (median << mean << max).
    assert 0.4 <= fit.a <= 2.0
    assert fit.r_squared > 0.75
    assert summary["median"] < summary["mean"] / 3
    assert summary["max"] > 30 * summary["mean"]
    # The top-ranked cells concentrate a large share of all failures.
    top_share = float(ranking[: len(ranking) // 100 + 1].sum()
                      / ranking.sum())
    assert top_share > 0.05
