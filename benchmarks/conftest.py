"""Benchmark fixtures.

One measurement-scale scenario is simulated once per session (both
arms); every per-table/figure benchmark then times its analysis over
the shared datasets and writes the regenerated rows/series to
``benchmarks/output/``.  Scale with ``REPRO_BENCH_DEVICES`` (default
4000 devices).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.dataset.store import Dataset
from repro.fleet.scenario import ScenarioConfig
from repro.fleet.simulator import FleetSimulator
from repro.network.topology import TopologyConfig

BENCH_DEVICES = int(os.environ.get("REPRO_BENCH_DEVICES", "4000"))

BENCH_SCENARIO = ScenarioConfig(
    n_devices=BENCH_DEVICES,
    seed=2020,
    topology=TopologyConfig(
        n_base_stations=max(500, BENCH_DEVICES // 2), seed=2021
    ),
)


@pytest.fixture(scope="session")
def vanilla_ds() -> Dataset:
    """The measurement arm at benchmark scale."""
    return FleetSimulator(BENCH_SCENARIO.vanilla()).run()


@pytest.fixture(scope="session")
def patched_ds() -> Dataset:
    """The enhanced arm of the same scenario."""
    return FleetSimulator(BENCH_SCENARIO.patched()).run()


#: BS-rich scenario for the infrastructure figures (11 and 14): the
#: per-BS event density must stay below saturation for BS-level
#: prevalence to be informative, mirroring the paper's 5.27M-BS scale.
BS_RICH_SCENARIO = ScenarioConfig(
    n_devices=max(1_000, BENCH_DEVICES // 2),
    seed=2022,
    topology=TopologyConfig(
        n_base_stations=max(10_000, BENCH_DEVICES * 5), seed=2023
    ),
)


@pytest.fixture(scope="session")
def bs_rich_ds() -> Dataset:
    """A fleet over a BS-rich topology for the BS-landscape figures."""
    return FleetSimulator(BS_RICH_SCENARIO.vanilla()).run()


@pytest.fixture(scope="session")
def output_dir() -> Path:
    path = Path(__file__).parent / "output"
    path.mkdir(exist_ok=True)
    return path


def emit(output_dir: Path, name: str, text: str) -> None:
    """Persist a regenerated table/figure and echo it."""
    (output_dir / name).write_text(text)
    print(f"\n===== {name} =====\n{text}")
