"""Ablation: prober timeout settings vs measurement error and cost.

Sec. 2.2 chose 1 s ICMP / 5 s DNS timeouts: the volley then costs at
most five seconds, bounding the duration measurement error at 5 s.
Larger timeouts raise the error bound; smaller DNS timeouts misclassify
slow-but-alive resolvers.
"""

from io import StringIO

from benchmarks.conftest import emit
from repro.core.events import ProbeVerdict
from repro.monitoring.prober import NetworkStateProber
from repro.netstack.faults import ActiveFault, FaultKind
from repro.netstack.stack import DeviceNetStack
from repro.simtime import SimClock


def _measure_with(dns_timeout_s: float, stall_s: float = 47.0):
    clock = SimClock()
    stack = DeviceNetStack()
    stack.inject_fault(ActiveFault(FaultKind.NETWORK_STALL, 0.0,
                                   stall_s))
    prober = NetworkStateProber(clock, dns_timeout_s=dns_timeout_s)
    measurement = prober.measure(stack)
    return (measurement.duration_s - stall_s, measurement.rounds,
            measurement.probe_bytes)


def test_ablation_prober_timeouts(benchmark, output_dir):
    def sweep():
        return {
            timeout: _measure_with(timeout)
            for timeout in (2.0, 5.0, 10.0, 20.0)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    out = StringIO()
    out.write("DNS timeout  error (s)  rounds  probe bytes\n")
    for timeout, (error, rounds, probe_bytes) in results.items():
        out.write(f"{timeout:>11.0f}  {error:>9.2f}  {rounds:>6}  "
                  f"{probe_bytes:>11}\n")
    emit(output_dir, "ablation_prober_timeouts.txt", out.getvalue())

    # Error stays below one volley everywhere...
    for timeout, (error, _rounds, _bytes) in results.items():
        assert 0.0 <= error <= timeout
    # ...and the paper's 5 s setting keeps error under 5 s while
    # halving the probe volume of a 2 s setting.
    assert results[5.0][0] <= 5.0
    assert results[5.0][2] < results[2.0][2]


def test_prober_verdict_robustness(benchmark):
    """Whatever the timeout, fault classification stays correct."""
    def classify_all():
        verdicts = {}
        for kind in FaultKind:
            clock = SimClock()
            stack = DeviceNetStack()
            stack.inject_fault(ActiveFault(kind, 0.0, 600.0))
            volley = NetworkStateProber(clock).probe_once(
                stack, 1.0, 5.0
            )
            verdicts[kind] = volley.verdict
        return verdicts

    verdicts = benchmark(classify_all)
    for kind, verdict in verdicts.items():
        assert verdict is kind.expected_verdict
    assert verdicts[FaultKind.NETWORK_STALL] is (
        ProbeVerdict.NETWORK_SIDE_STALL
    )
