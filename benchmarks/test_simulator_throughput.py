"""Throughput of the fleet simulator itself.

Not a paper experiment — an engineering benchmark: how many failure
episodes per second the full mechanism chain (state machine + monitor
+ prober volley + recovery resolution) realizes.  Useful for sizing
larger reproduction runs.
"""

from benchmarks.conftest import emit
from repro.fleet.scenario import ScenarioConfig
from repro.fleet.simulator import FleetSimulator
from repro.network.topology import TopologyConfig


def _run_small_fleet():
    scenario = ScenarioConfig(
        n_devices=250, seed=77,
        topology=TopologyConfig(n_base_stations=300, seed=78),
    )
    return FleetSimulator(scenario).run()


def test_simulator_throughput(benchmark, output_dir):
    dataset = benchmark.pedantic(_run_small_fleet, rounds=3,
                                 iterations=1)
    episodes = dataset.n_failures + len(dataset.transitions)
    seconds = benchmark.stats["mean"]
    rate = episodes / seconds
    emit(output_dir, "simulator_throughput.txt",
         f"{episodes} episodes in {seconds:.2f} s "
         f"=> {rate:,.0f} episodes/s\n")
    assert dataset.n_failures > 1_000
    # A full nationwide bench run must stay tractable: require at
    # least a few thousand episodes per second on any modern machine.
    assert rate > 1_000
