"""Figs. 6-9: 5G vs non-5G and Android 10 vs 9 group comparisons,
including the paper's footnote-4 fair-comparison variants."""

from io import StringIO

from benchmarks.conftest import emit
from repro.analysis.landscape import compare_5g, compare_android_versions


def _render(comparison) -> str:
    out = StringIO()
    out.write(f"{comparison.group_a:<22} prevalence "
              f"{comparison.prevalence_a:6.1%}  frequency "
              f"{comparison.frequency_a:6.1f}\n")
    out.write(f"{comparison.group_b:<22} prevalence "
              f"{comparison.prevalence_b:6.1%}  frequency "
              f"{comparison.frequency_b:6.1f}\n")
    return out.getvalue()


def test_fig06_07_5g_vs_non5g(benchmark, vanilla_ds, output_dir):
    comparison = benchmark(compare_5g, vanilla_ds)
    fair = compare_5g(vanilla_ds, fair=True)
    emit(output_dir, "fig06_07_5g.txt",
         _render(comparison) + "\nfair comparison (footnote 4):\n"
         + _render(fair))
    # Figs. 6-7: 5G phones fail more, in both comparisons.
    assert comparison.prevalence_a > comparison.prevalence_b
    assert comparison.frequency_a > comparison.frequency_b
    assert fair.frequency_a > fair.frequency_b


def test_fig08_09_android_versions(benchmark, vanilla_ds, output_dir):
    comparison = benchmark(compare_android_versions, vanilla_ds)
    fair = compare_android_versions(vanilla_ds, fair=True)
    emit(output_dir, "fig08_09_android.txt",
         _render(comparison) + "\nfair comparison (footnote 4):\n"
         + _render(fair))
    # Figs. 8-9: Android 10 fails more than Android 9.
    assert comparison.frequency_a > comparison.frequency_b
    assert fair.frequency_a > fair.frequency_b
