"""Ablations: RAT-policy veto threshold and hub deployment density."""

import random
from io import StringIO

from benchmarks.conftest import emit
from repro.android.rat_policy import (
    RatCandidate,
    StabilityCompatiblePolicy,
)
from repro.fleet import behavior
from repro.network.emm import EmmContext, EmmState
from repro.radio.rat import RAT


def _policy_outcomes(policy, n=8_000, seed=31):
    """(expected transition-failure probability, 5G usage share)."""
    rng = random.Random(seed)
    expected_failures = 0.0
    on_5g = 0
    for _ in range(n):
        scenario = behavior.sample_transition_scenario(rng, has_5g=True)
        current = RatCandidate(scenario.current_rat,
                               scenario.current_level)
        candidates = [RatCandidate(rat, level)
                      for rat, level in scenario.candidates]
        chosen = policy.select(current, candidates)
        if chosen.rat is not current.rat:
            expected_failures += behavior.transition_failure_probability(
                current.rat, current.signal_level,
                chosen.rat, chosen.signal_level,
            )
        else:
            expected_failures += behavior.stay_failure_probability(
                current.rat, current.signal_level
            )
        if chosen.rat is RAT.NR:
            on_5g += 1
    return expected_failures / n, on_5g / n


def test_ablation_veto_threshold(benchmark, output_dir):
    """The stability/reachability trade-off of the veto threshold."""
    def sweep():
        return {
            threshold: _policy_outcomes(
                StabilityCompatiblePolicy(veto_threshold=threshold)
            )
            for threshold in (0.05, 0.10, 0.15, 0.25, 0.50, 10.0)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    out = StringIO()
    out.write("threshold  E[failure/opportunity]  5G usage share\n")
    for threshold, (p_fail, share_5g) in results.items():
        out.write(f"{threshold:>9.2f}  {p_fail:>21.3f}  "
                  f"{share_5g:>14.1%}\n")
    emit(output_dir, "ablation_veto_threshold.txt", out.getvalue())

    # A huge threshold is effectively the blind policy: most failures.
    p_blind = results[10.0][0]
    p_paper = results[0.15][0]
    assert p_paper < p_blind * 0.6
    # Tightening the veto trades 5G usage for stability, monotonically.
    shares = [results[t][1] for t in (0.05, 0.15, 0.50, 10.0)]
    assert shares == sorted(shares)


def test_ablation_hub_density(benchmark, output_dir):
    """Dense deployment drives EMM misbehaviour (the Fig. 15 anomaly's
    mechanism): barring and churn grow superlinearly with density."""
    def sweep():
        results = {}
        for density in (0.1, 0.3, 0.5, 0.7, 0.9):
            context = EmmContext(deployment_density=density)
            context.state = EmmState.REGISTERED
            rng = random.Random(13)
            failures = sum(
                context.check_bearer_request(rng) is not None
                for _ in range(4_000
                               )
            )
            results[density] = (context.barring_probability(),
                                failures / 4_000)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    out = StringIO()
    out.write("density  P(access barred)  measured bearer-failure rate\n")
    for density, (barring, measured) in results.items():
        out.write(f"{density:>7.1f}  {barring:>16.3f}  {measured:>27.3f}\n")
    emit(output_dir, "ablation_hub_density.txt", out.getvalue())

    rates = [results[d][1] for d in (0.1, 0.3, 0.5, 0.7, 0.9)]
    assert rates == sorted(rates)
    # Superlinear: the 0.9-density cell fails far more than 3x the
    # 0.3-density cell.
    assert rates[-1] > 3 * max(rates[1], 0.001)
