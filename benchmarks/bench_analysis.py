"""Benchmark the columnar analysis layer against record-walking loops.

::

    PYTHONPATH=src python benchmarks/bench_analysis.py \
        [--devices 1000] [--seed 7] [--repeats 5] \
        [--out BENCH_analysis.json] [--verify-only]

Simulates one study dataset, then times the **study-level statistics
suite** — every Sec. 3 statistic the analysis layer computes from raw
records: general stats and the Fig. 3/4/10 distributions (Sec. 3.1),
the stage-fix rate (Sec. 3.2), the BS ranking/summary and per-ISP /
per-RAT / normalized-prevalence series (Sec. 3.3, Figs. 11-16), and
the six Fig. 17 transition matrices plus the measured level risk —
two ways:

* **legacy** — the pre-columnar implementations, one Python loop over
  the record objects per statistic (kept verbatim in this file as the
  recorded baseline);
* **columnar** — the production :mod:`repro.analysis` path over the
  cached columnar view.

The columnar side is timed in the two states the pipeline actually
produces: **warm** (the view is already cached — every dataset coming
out of ``FleetSimulator.run`` is in this state, because computing the
streaming ``metadata["analysis"]`` block builds it) and **cold** (the
cache is dropped first, so the one-time view build is part of the
measurement — the ``load_dataset``-then-analyze path).  The headline
``speedup`` is the warm/as-delivered one; ``speedup_cold`` and the
isolated ``build_s`` are recorded alongside so nothing hides.

Both sides are checked for matching results before anything is timed;
the numbers land in ``BENCH_analysis.json`` together with a
serial-vs-sharded identity check of ``metadata["analysis"]`` (2
workers, 5 shards).

``--verify-only`` skips the timing and exits non-zero unless (a) the
sharded analysis block is byte-identical to the serial one and (b) the
columnar suite reproduces the legacy results — the streaming-analysis
smoke used by CI.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis import isp_bs, stats, transitions
from repro.analysis.columnar import columnar, invalidate_columnar
from repro.android.recovery import AUTO_RECOVERED
from repro.core.events import FailureType
from repro.dataset.aggregate import cdf
from repro.fleet.scenario import ScenarioConfig
from repro.fleet.simulator import FleetSimulator
from repro.network.topology import TopologyConfig
from repro.parallel import run_sharded

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_analysis.json"

_DATA_STALL = FailureType.DATA_STALL.value


def scenario_for(devices: int, seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        n_devices=devices,
        seed=seed,
        topology=TopologyConfig(
            n_base_stations=max(400, devices // 2), seed=seed + 1
        ),
    )


# ---------------------------------------------------------------------------
# The legacy record-walking implementations (the recorded baseline).
# Each is the pre-columnar production code, preserved verbatim.
# ---------------------------------------------------------------------------


def legacy_general_stats(dataset) -> dict:
    per_device: dict[int, int] = {}
    oos_devices: set[int] = set()
    n_failures = len(dataset.failures)
    durations = np.empty(n_failures)
    type_counts: dict[str, int] = {}
    type_durations: dict[str, float] = {}
    for i, failure in enumerate(dataset.failures):
        per_device[failure.device_id] = (
            per_device.get(failure.device_id, 0) + 1
        )
        durations[i] = failure.duration_s
        type_counts[failure.failure_type] = (
            type_counts.get(failure.failure_type, 0) + 1
        )
        type_durations[failure.failure_type] = (
            type_durations.get(failure.failure_type, 0.0)
            + failure.duration_s
        )
        if failure.failure_type == "OUT_OF_SERVICE":
            oos_devices.add(failure.device_id)
    n = dataset.n_devices
    total_duration = float(durations.sum()) if n_failures else 0.0
    return {
        "prevalence": len(per_device) / n,
        "frequency": n_failures / n,
        "max_failures": max(per_device.values(), default=0),
        "without_oos": 1.0 - len(oos_devices) / n,
        "mean_duration_s": float(durations.mean()) if n_failures else 0.0,
        "median_duration_s": (
            float(np.median(durations)) if n_failures else 0.0
        ),
        "duration_share_by_type": {
            ftype: total / total_duration
            for ftype, total in type_durations.items()
        } if total_duration else {},
        "count_by_type": type_counts,
    }


def legacy_failures_per_phone(dataset) -> np.ndarray:
    counts = {d.device_id: 0 for d in dataset.devices}
    for failure in dataset.failures:
        counts[failure.device_id] = counts.get(failure.device_id, 0) + 1
    return np.array(sorted(counts.values()), dtype=float)


def legacy_duration_cdf(dataset):
    return cdf([f.duration_s for f in dataset.failures])


def legacy_stall_autofix_durations(dataset) -> np.ndarray:
    values = [
        f.duration_s
        for f in dataset.failures
        if f.failure_type == _DATA_STALL
        and f.resolved_by == AUTO_RECOVERED
    ]
    return np.array(sorted(values), dtype=float)


def legacy_stage_fix_rate(dataset, stage: int = 1) -> float:
    executed = 0
    fixed = 0
    for failure in dataset.failures:
        if failure.failure_type != _DATA_STALL:
            continue
        if failure.stages_executed >= stage:
            executed += 1
            if failure.resolved_by == stage:
                fixed += 1
    return fixed / executed if executed else 0.0


def legacy_per_isp_stats(dataset) -> list[tuple]:
    devices_by_isp: dict[str, int] = {}
    for device in dataset.devices:
        devices_by_isp[device.isp] = devices_by_isp.get(device.isp, 0) + 1
    failing: dict[str, set[int]] = {}
    counts: dict[str, int] = {}
    for failure in dataset.failures:
        failing.setdefault(failure.isp, set()).add(failure.device_id)
        counts[failure.isp] = counts.get(failure.isp, 0) + 1
    return [
        (isp, n, len(failing.get(isp, ())) / n, counts.get(isp, 0) / n)
        for isp, n in sorted(devices_by_isp.items())
    ]


def legacy_bs_failure_ranking(dataset) -> np.ndarray:
    counts: dict[int, int] = {}
    for failure in dataset.failures:
        counts[failure.bs_id] = counts.get(failure.bs_id, 0) + 1
    return np.array(sorted(counts.values(), reverse=True), dtype=float)


def legacy_bs_failure_summary(dataset) -> dict[str, float]:
    ranking = legacy_bs_failure_ranking(dataset)
    return {
        "median": float(np.median(ranking)),
        "mean": float(np.mean(ranking)),
        "max": float(np.max(ranking)),
    }


def legacy_prevalence_by_level(dataset) -> dict[int, float]:
    failing: dict[int, set[int]] = {level: set() for level in range(6)}
    for failure in dataset.failures:
        failing[failure.signal_level].add(failure.device_id)
    n = dataset.n_devices
    return {level: len(devices) / n
            for level, devices in failing.items()}


def legacy_exposure_by_rat_level(dataset) -> dict[tuple[str, int], float]:
    totals: dict[tuple[str, int], float] = {}
    for device in dataset.devices:
        for key, seconds in device.exposure_s.items():
            totals[key] = totals.get(key, 0.0) + seconds
    n = dataset.n_devices
    return {key: total / n for key, total in totals.items()}


def legacy_normalized_prevalence_by_level(
    dataset, time_unit_s: float = 3600.0
) -> dict[int, float]:
    prevalence = legacy_prevalence_by_level(dataset)
    totals = {level: 0.0 for level in range(6)}
    for device in dataset.devices:
        for (_rat, level), seconds in device.exposure_s.items():
            totals[level] += seconds
    n = dataset.n_devices
    result = {}
    for level in range(6):
        hours = totals[level] / n / time_unit_s
        result[level] = prevalence[level] / hours if hours > 0 else 0.0
    return result


def legacy_normalized_prevalence_by_rat_level(
    dataset,
    rats: tuple[str, ...] = ("4G", "5G"),
    time_unit_s: float = 3600.0,
) -> dict[str, dict[int, float]]:
    failing: dict[tuple[str, int], set[int]] = {}
    for failure in dataset.failures:
        if failure.rat in rats:
            failing.setdefault(
                (failure.rat, failure.signal_level), set()
            ).add(failure.device_id)
    exposure = legacy_exposure_by_rat_level(dataset)
    n = dataset.n_devices
    result: dict[str, dict[int, float]] = {rat: {} for rat in rats}
    for rat in rats:
        for level in range(6):
            hours = exposure.get((rat, level), 0.0) / time_unit_s
            prevalence = len(failing.get((rat, level), ())) / n
            result[rat][level] = (
                prevalence / hours if hours > 0 else 0.0
            )
    return result


def legacy_per_rat_bs_prevalence(dataset) -> dict[str, float]:
    supporting = {label: 0 for label in isp_bs.RAT_LABELS}
    for bs in dataset.base_stations:
        for label in bs.rats:
            supporting[label] += 1
    failed: dict[str, set[int]] = {
        label: set() for label in isp_bs.RAT_LABELS
    }
    for failure in dataset.failures:
        failed[failure.rat].add(failure.bs_id)
    return {
        label: (len(failed[label]) / supporting[label]
                if supporting[label] else 0.0)
        for label in isp_bs.RAT_LABELS
    }


def legacy_baseline_rates(dataset) -> dict[tuple[str, int], float]:
    stayed: dict[tuple[str, int], list[int]] = {}
    for t in dataset.transitions:
        if not t.executed:
            key = (t.from_rat, t.from_level)
            stayed.setdefault(key, []).append(1 if t.failed_after else 0)
    return {
        key: float(np.mean(outcomes))
        for key, outcomes in stayed.items()
    }


def legacy_transition_matrices(dataset, min_samples: int = 5) -> dict:
    matrices = {}
    for from_rat, to_rat in transitions.FIG17_PANELS:
        # The pre-columnar code recomputed the baselines per panel (and
        # the columnar path still does); mirror that for a fair race.
        baselines = legacy_baseline_rates(dataset)
        fallback = (
            float(np.mean(list(baselines.values())))
            if baselines else 0.0
        )
        outcomes: dict[tuple[int, int], list[int]] = {}
        for t in dataset.transitions:
            if not t.executed:
                continue
            if t.from_rat != from_rat or t.to_rat != to_rat:
                continue
            key = (t.from_level, t.to_level)
            outcomes.setdefault(key, []).append(
                1 if t.failed_after else 0
            )
        increase = np.full((6, 6), np.nan)
        samples = np.zeros((6, 6), dtype=int)
        for (i, j), observed in outcomes.items():
            samples[i][j] = len(observed)
            if len(observed) < min_samples:
                continue
            baseline = baselines.get((from_rat, i), fallback)
            increase[i][j] = float(np.mean(observed)) - baseline
        matrices[(from_rat, to_rat)] = (increase, samples)
    return matrices


def legacy_measured_level_risk(dataset) -> dict[str, tuple[float, ...]]:
    outcomes: dict[tuple[str, int], list[int]] = {}
    for t in dataset.transitions:
        if not t.executed:
            continue
        outcomes.setdefault(
            (t.to_rat, t.to_level), []
        ).append(1 if t.failed_after else 0)
    result: dict[str, tuple[float, ...]] = {}
    for rat in ("2G", "3G", "4G", "5G"):
        result[rat] = tuple(
            float(np.mean(outcomes[(rat, level)]))
            if outcomes.get((rat, level)) else float("nan")
            for level in range(6)
        )
    return result


def legacy_suite(dataset) -> dict:
    return {
        "general": legacy_general_stats(dataset),
        "per_phone": legacy_failures_per_phone(dataset),
        "duration_cdf": legacy_duration_cdf(dataset),
        "stall_autofix": legacy_stall_autofix_durations(dataset),
        "stage_fix_rate": legacy_stage_fix_rate(dataset),
        "isp": legacy_per_isp_stats(dataset),
        "ranking": legacy_bs_failure_ranking(dataset),
        "bs_summary": legacy_bs_failure_summary(dataset),
        "normalized": legacy_normalized_prevalence_by_level(dataset),
        "normalized_rat": legacy_normalized_prevalence_by_rat_level(
            dataset
        ),
        "rat_bs": legacy_per_rat_bs_prevalence(dataset),
        "matrices": legacy_transition_matrices(dataset),
        "level_risk": legacy_measured_level_risk(dataset),
    }


# ---------------------------------------------------------------------------
# The production columnar suite — the same statistics, shipped code.
# ---------------------------------------------------------------------------


def columnar_suite(dataset) -> dict:
    general = stats.compute_general_stats(dataset)
    return {
        "general": {
            "prevalence": general.prevalence,
            "frequency": general.frequency,
            "max_failures": general.max_failures_single_device,
            "without_oos": general.fraction_devices_without_oos,
            "mean_duration_s": general.mean_duration_s,
            "median_duration_s": general.median_duration_s,
            "duration_share_by_type": general.duration_share_by_type,
            "count_by_type": {
                ftype: round(share * general.n_failures)
                for ftype, share in general.count_share_by_type.items()
            },
        },
        "per_phone": stats.failures_per_phone(dataset),
        "duration_cdf": stats.duration_cdf(dataset),
        "stall_autofix": stats.stall_autofix_durations(dataset),
        "stage_fix_rate": stats.stage_fix_rate(dataset),
        "isp": [
            (row.isp, row.n_devices, row.prevalence, row.frequency)
            for row in isp_bs.per_isp_stats(dataset)
        ],
        "ranking": isp_bs.bs_failure_ranking(dataset),
        "bs_summary": isp_bs.bs_failure_summary(dataset),
        "normalized": isp_bs.normalized_prevalence_by_level(dataset),
        "normalized_rat": isp_bs.normalized_prevalence_by_rat_level(
            dataset
        ),
        "rat_bs": isp_bs.per_rat_bs_prevalence(dataset),
        "matrices": {
            pair: (matrix.increase, matrix.samples)
            for pair, matrix in
            transitions.all_transition_matrices(dataset).items()
        },
        "level_risk": transitions.measured_level_risk(dataset),
    }


def results_match(legacy: dict, columnar: dict) -> list[str]:
    """Human-readable mismatches between the two suites ([] if none)."""
    problems = []

    def close(a, b) -> bool:
        return bool(np.allclose(a, b, rtol=0, atol=1e-9, equal_nan=True))

    def dicts_close(a, b) -> bool:
        return (set(a) == set(b)
                and all(close(a[k], b[k]) for k in a))

    for key, value in legacy["general"].items():
        got = columnar["general"][key]
        ok = (dicts_close(value, got) if isinstance(value, dict)
              else close(value, got))
        if not ok:
            problems.append(f"general.{key}: {value!r} != {got!r}")
    for key in ("per_phone", "stall_autofix", "ranking",
                "stage_fix_rate"):
        if not close(legacy[key], columnar[key]):
            problems.append(f"{key} differs")
    for key in ("bs_summary", "normalized", "rat_bs", "level_risk"):
        if not dicts_close(legacy[key], columnar[key]):
            problems.append(f"{key} differs")
    if not all(close(a, b) for a, b in
               zip(legacy["duration_cdf"], columnar["duration_cdf"])):
        problems.append("duration_cdf differs")
    if legacy["isp"] != columnar["isp"]:
        problems.append("per-ISP stats differ")
    if (set(legacy["normalized_rat"]) != set(columnar["normalized_rat"])
            or any(not dicts_close(legacy["normalized_rat"][rat],
                                   columnar["normalized_rat"][rat])
                   for rat in legacy["normalized_rat"])):
        problems.append("normalized_rat differs")
    for pair, (increase, samples) in legacy["matrices"].items():
        got_increase, got_samples = columnar["matrices"][pair]
        if not (close(increase, got_increase)
                and np.array_equal(samples, got_samples)):
            problems.append(f"matrix {pair} differs")
    return problems


def check_identity(scenario: ScenarioConfig, serial_dataset,
                   workers: int = 2, n_shards: int = 5) -> dict:
    """Serial vs sharded byte-identity of ``metadata["analysis"]``."""
    sharded = run_sharded(scenario, workers=workers, n_shards=n_shards,
                          mode="inline")
    serial_block = json.dumps(serial_dataset.metadata["analysis"],
                              sort_keys=True)
    sharded_block = json.dumps(sharded.metadata["analysis"],
                               sort_keys=True)
    return {
        "workers": workers,
        "n_shards": n_shards,
        "identical": serial_block == sharded_block,
    }


def best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--devices", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    parser.add_argument("--verify-only", action="store_true",
                        help="check streaming/serial identity and "
                             "legacy/columnar equivalence, no timing")
    args = parser.parse_args(argv)

    scenario = scenario_for(args.devices, args.seed)
    print(f"simulating {args.devices} devices (seed {args.seed})...")
    dataset = FleetSimulator(scenario).run()

    legacy = legacy_suite(dataset)
    invalidate_columnar(dataset)
    columnar_results = columnar_suite(dataset)
    problems = results_match(legacy, columnar_results)
    for problem in problems:
        print(f"MISMATCH: {problem}", file=sys.stderr)

    identity = check_identity(scenario, dataset)
    status = "identical" if identity["identical"] else "DIVERGED"
    print(f"analysis block serial vs {identity['workers']} workers / "
          f"{identity['n_shards']} shards: {status}")

    if args.verify_only:
        if problems or not identity["identical"]:
            return 1
        print("verify-only: OK")
        return 0

    legacy_s = best_of(lambda: legacy_suite(dataset), args.repeats)

    def cold_suite():
        invalidate_columnar(dataset)
        columnar_suite(dataset)

    cold_s = best_of(cold_suite, args.repeats)
    invalidate_columnar(dataset)
    build_started = time.perf_counter()
    columnar(dataset)
    build_s = time.perf_counter() - build_started
    # Warm = the as-delivered state: every dataset out of
    # FleetSimulator.run carries the view already (building it is part
    # of computing the streaming metadata["analysis"] block).
    warm_s = best_of(lambda: columnar_suite(dataset), args.repeats)

    report = {
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "devices": args.devices,
        "seed": args.seed,
        "repeats": args.repeats,
        "n_failures": dataset.n_failures,
        "n_transitions": len(dataset.transitions),
        "legacy_s": round(legacy_s, 6),
        "columnar_s": round(warm_s, 6),
        "columnar_cold_s": round(cold_s, 6),
        "build_s": round(build_s, 6),
        "speedup": round(legacy_s / warm_s, 2),
        "speedup_cold": round(legacy_s / cold_s, 2),
        "results_match": not problems,
        "identity": identity,
    }
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"legacy suite:          {legacy_s * 1e3:8.1f} ms")
    print(f"columnar (as run()):   {warm_s * 1e3:8.1f} ms "
          f"({report['speedup']}x)")
    print(f"columnar (cold build): {cold_s * 1e3:8.1f} ms "
          f"({report['speedup_cold']}x; view build "
          f"{build_s * 1e3:.1f} ms)")
    print(f"written to {out}")
    return 0 if (not problems and identity["identical"]) else 1


if __name__ == "__main__":
    sys.exit(main())
