"""Figs. 12-14: per-ISP user prevalence/frequency and per-RAT BS
prevalence."""

from io import StringIO

from benchmarks.conftest import emit
from repro.analysis.isp_bs import per_isp_stats, per_rat_bs_prevalence
from repro.analysis.report import render_isp_stats


def test_fig12_13_isp_discrepancy(benchmark, vanilla_ds, output_dir):
    stats = benchmark(per_isp_stats, vanilla_ds)
    emit(output_dir, "fig12_13_isp.txt", render_isp_stats(vanilla_ds))

    by_isp = {s.isp: s for s in stats}
    # Figs. 12-13: ISP-B worst (27.1%), then ISP-A (20.1%), then
    # ISP-C (14.7%) — the ordering is the reproducible shape.
    assert by_isp["ISP-B"].prevalence > by_isp["ISP-A"].prevalence
    assert by_isp["ISP-A"].prevalence > by_isp["ISP-C"].prevalence
    ratio = by_isp["ISP-B"].prevalence / by_isp["ISP-C"].prevalence
    assert ratio > 1.3  # paper: 27.1 / 14.7 = 1.84


def test_fig14_rat_bs_prevalence(benchmark, bs_rich_ds, output_dir):
    prevalence = benchmark(per_rat_bs_prevalence, bs_rich_ds)
    out = StringIO()
    out.write("RAT  BS failure prevalence\n")
    for rat, value in prevalence.items():
        out.write(f"{rat:>3}  {value:6.1%}\n")
    emit(output_dir, "fig14_rat.txt", out.getvalue())

    # Fig. 14: the "idle" 3G cells are the least failure-prone.
    assert prevalence["3G"] < prevalence["2G"]
    assert prevalence["3G"] < prevalence["4G"]
    # And nothing is saturated at this BS density.
    assert all(value < 0.95 for value in prevalence.values())
